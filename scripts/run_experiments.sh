#!/usr/bin/env bash
# Regenerate every paper figure/table into docs/results/.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p docs/results
BINS="headline fig6_bandwidth fig7_latency multihop_latency link_sweep \
      coherency_scaling endpoint_scaling sfence_ablation wc_ablation \
      artifact_ablation mesh_bisection"
cargo build --release -p tcc-bench
for b in $BINS; do
  echo "== $b =="
  cargo run --release -q -p tcc-bench --bin "$b" | tee "docs/results/$b.txt" | tail -3
done
echo "all experiments regenerated under docs/results/"
