//! A 1-D heat-diffusion stencil with halo exchange — the classic
//! HPC workload the paper's introduction motivates, running on the
//! MPI-like middleware over the threaded TCCluster backend.
//!
//! The global rod of `CELLS` points is block-partitioned across ranks;
//! each iteration exchanges one halo cell with each neighbour over
//! TCCluster channels, applies the three-point stencil, and every
//! `REPORT` steps the ranks allreduce the total heat to verify
//! conservation.
//!
//! ```text
//! cargo run --example stencil
//! ```

use tcc_middleware::{Comm, ReduceOp};
use tccluster::msglib::SendMode;
use tccluster::ShmCluster;

const RANKS: usize = 4;
const CELLS: usize = 4096; // global points
const STEPS: usize = 200;
const ALPHA: f64 = 0.25;

fn main() {
    let cluster = ShmCluster::new(RANKS, SendMode::WeaklyOrdered);
    let results = cluster.run(|ctx| {
        let mut comm = Comm::new(ctx);
        let me = comm.rank();
        let n = comm.size();
        let local_n = CELLS / n;
        // Initial condition: a hot spike in rank 0's first cell.
        let mut u = vec![0.0f64; local_n + 2]; // plus two halo cells
        if me == 0 {
            u[1] = 1000.0;
        }
        let initial = if me == 0 { 1000.0 } else { 0.0 };

        let left = me.checked_sub(1);
        let right = (me + 1 < n).then_some(me + 1);
        const HALO_L: u64 = 1;
        const HALO_R: u64 = 2;

        for step in 0..STEPS {
            // Halo exchange via remote stores (ring channels).
            if let Some(l) = left {
                comm.send(l, ((step as u64) << 2) | HALO_L, &u[1].to_le_bytes());
            }
            if let Some(r) = right {
                comm.send(r, ((step as u64) << 2) | HALO_R, &u[local_n].to_le_bytes());
            }
            if let Some(l) = left {
                let m = comm.recv(l, ((step as u64) << 2) | HALO_R);
                u[0] = f64::from_le_bytes(m.try_into().expect("8B"));
            } else {
                u[0] = u[1]; // insulated boundary
            }
            if let Some(r) = right {
                let m = comm.recv(r, ((step as u64) << 2) | HALO_L);
                u[local_n + 1] = f64::from_le_bytes(m.try_into().expect("8B"));
            } else {
                u[local_n + 1] = u[local_n];
            }
            // Three-point stencil.
            let prev = u.clone();
            for i in 1..=local_n {
                u[i] = prev[i] + ALPHA * (prev[i - 1] - 2.0 * prev[i] + prev[i + 1]);
            }
        }
        // Conservation check: total heat must be preserved.
        let mut total = vec![u[1..=local_n].iter().sum::<f64>()];
        comm.allreduce(ReduceOp::Sum, &mut total);
        let mut max = vec![u[1..=local_n].iter().cloned().fold(f64::MIN, f64::max)];
        comm.allreduce(ReduceOp::Max, &mut max);
        (initial, total[0], max[0])
    });

    let total_initial: f64 = results.iter().map(|r| r.0).sum();
    let (_, total_final, peak) = results[0];
    println!("heat initially injected : {total_initial:.3}");
    println!("heat after {STEPS} steps  : {total_final:.3}");
    println!("peak temperature now    : {peak:.3}");
    assert!(
        (total_final - total_initial).abs() < 1e-6,
        "diffusion must conserve heat"
    );
    assert!(peak < 1000.0, "spike must have spread");
    println!("conservation verified across {RANKS} ranks — OK");
}
