//! Quickstart: build the paper's two-node prototype, boot it through the
//! TCCluster firmware sequence, measure the headline numbers on the
//! packet-level simulator, then exchange real messages on the threaded
//! backend.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use tccluster::msglib::SendMode;
use tccluster::TcclusterBuilder;

fn main() {
    // --- 1. The simulated prototype (paper Fig. 5): two Tyan boards,
    //        one HTX cable, HT800 / 16 bit. -----------------------------
    let mut sim = TcclusterBuilder::new().build_sim();
    println!(
        "booted: {} firmware steps, {} self-test pairs",
        sim.boot.steps.len(),
        sim.boot.selftest_pairs
    );
    println!("boot steps: {:?}\n", sim.boot.steps);

    // --- 2. The paper's microbenchmarks. ------------------------------
    let latency = sim.pingpong(0, 1, 64, 100);
    let bandwidth = sim.stream_bandwidth(0, 1, 64, SendMode::WeaklyOrdered, 50);
    println!("64 B half-round-trip latency : {latency}   (paper: 227 ns)");
    println!("64 B message bandwidth       : {bandwidth:.0} MB/s (paper: ~2500 MB/s)\n");

    // --- 3. Real message passing on the threaded backend. -------------
    let cluster = TcclusterBuilder::new().build_shm();
    let results = cluster.run(|ctx| {
        if ctx.rank == 0 {
            ctx.send(1, b"hello over the host interface");
            let reply = ctx.recv(1);
            String::from_utf8(reply).expect("utf8")
        } else {
            let msg = ctx.recv(0);
            ctx.send(1 - ctx.rank, b"hello back, no NIC involved");
            String::from_utf8(msg).expect("utf8")
        }
    });
    println!("rank 0 received: {:?}", results[0]);
    println!("rank 1 received: {:?}", results[1]);
}
