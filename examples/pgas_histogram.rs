//! A distributed histogram in the PGAS programming model (paper §IV.A:
//! TCCluster supports the global-address-space model through remote
//! stores). Every rank draws random samples and `accumulate`s them into a
//! block-distributed [`GlobalArray`] of bin counters; a fence makes the
//! epoch globally visible; then every rank `get`s remote bins to verify
//! the global total — gets are two-sided underneath because the
//! interconnect cannot route read responses.
//!
//! ```text
//! cargo run --example pgas_histogram
//! ```

use tcc_middleware::GlobalArray;
use tccluster::fabric::rng::Xoshiro256;
use tccluster::msglib::SendMode;
use tccluster::ShmCluster;

const RANKS: usize = 4;
const BINS: usize = 32;
const SAMPLES_PER_RANK: usize = 50_000;

fn main() {
    let cluster = ShmCluster::new(RANKS, SendMode::WeaklyOrdered);
    let results = cluster.run(|ctx| {
        let mut hist = GlobalArray::new(ctx, BINS);
        let mut rng = Xoshiro256::seeded(0xC0FFEE + ctx.rank as u64);

        // Accumulate triangular-ish samples into global bins.
        for _ in 0..SAMPLES_PER_RANK {
            let bin = ((rng.below(BINS as u64) + rng.below(BINS as u64)) / 2) as usize;
            hist.accumulate(ctx, bin, 1.0);
            // Service incoming one-sided traffic now and then.
            hist.progress(ctx);
        }
        hist.fence(ctx);

        // Every rank reads back the full histogram with PGAS gets.
        let mut total = 0.0;
        let mut mode_bin = 0;
        let mut mode_count = 0.0;
        for b in 0..BINS {
            let v = hist.get(ctx, b);
            total += v;
            if v > mode_count {
                mode_count = v;
                mode_bin = b;
            }
        }
        hist.fence(ctx);
        (total, mode_bin, hist.local().to_vec())
    });

    let expected = (RANKS * SAMPLES_PER_RANK) as f64;
    for (r, (total, _, _)) in results.iter().enumerate() {
        assert_eq!(*total, expected, "rank {r} sees an incomplete histogram");
    }
    let (_, mode_bin, _) = results[0];
    println!("total samples  : {expected} (verified identically on all ranks)");
    println!(
        "mode bin       : {mode_bin} (triangular distribution centres near {})",
        BINS / 2
    );
    // Print rank 0's local block as a bar chart.
    println!("\nrank 0's local bins:");
    for (i, v) in results[0].2.iter().enumerate() {
        let bar = "#".repeat((v / 400.0) as usize);
        println!("  bin {i:>2}: {v:>8} {bar}");
    }
    assert!((BINS / 2 - 6..=BINS / 2 + 6).contains(&mode_bin));
    println!("\nhistogram verified — OK");
}
