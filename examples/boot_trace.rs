//! Boot-sequence walkthrough: assembles a 2×2 mesh of two-socket
//! supernodes and prints the firmware trace of the full TCCluster boot
//! (paper §V) — cold reset, coherent enumeration that deliberately skips
//! the TCC ports, the force-ncHT writes, the warm reset that makes them
//! effective, address-map programming and the remote-access self test.
//!
//! ```text
//! cargo run --example boot_trace
//! ```

use tccluster::firmware::machine::Platform;
use tccluster::firmware::tcc_boot::boot;
use tccluster::firmware::topology::{ClusterSpec, ClusterTopology, SupernodeSpec};
use tccluster::opteron::UarchParams;

fn main() {
    let spec = ClusterSpec::new(
        SupernodeSpec::new(2, 1 << 20),
        ClusterTopology::Mesh { x: 2, y: 2 },
    );
    let mut platform = Platform::assemble(spec, UarchParams::shanghai());
    println!(
        "assembled: {} processors in {} supernodes, {} wires ({} TCC cables)\n",
        spec.total_processors(),
        spec.supernode_count(),
        platform.wires.len(),
        platform.wires.iter().filter(|w| !w.internal).count(),
    );

    let report = boot(&mut platform);

    println!("=== firmware trace ===");
    print!("{}", platform.trace);

    println!("\n=== boot report ===");
    println!("steps: {:?}", report.steps);
    for e in &report.enumerations {
        println!(
            "supernode {}: discovered {:?}, skipped TCC ports {:?}",
            e.supernode, e.discovered, e.skipped_tcc_ports
        );
    }
    println!(
        "self-test: {} supernode pairs exchanged data (incl. multi-hop)",
        report.selftest_pairs
    );
    println!("boot completed at simulated t = {}", report.completed_at);

    // The two ordering facts the whole trick hinges on:
    assert!(platform
        .trace
        .happened_before("force-non-coherent", "warm-reset"));
    assert!(platform
        .trace
        .happened_before("warm-reset", "trained non-coherent"));
    println!("\nordering verified: force-ncHT -> warm reset -> non-coherent link");
}
