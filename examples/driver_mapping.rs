//! The OS view of TCCluster: audit the kernel, open `/dev/tcc`, and map
//! the windows the message library runs on — exactly the §V "Enabling
//! Remote Access" flow, including the failures the driver must refuse
//! (stock kernels, readable remote windows, cacheable receive buffers).
//!
//! ```text
//! cargo run --example driver_mapping
//! ```

use tcc_driver::{audit, AddressSpace, Backing, CacheAttr, KernelConfig, Prot, TccDevice, PAGE};
use tccluster::firmware::topology::{ClusterSpec, ClusterTopology, SupernodeSpec};

fn main() {
    let spec = ClusterSpec::new(SupernodeSpec::new(1, 1 << 20), ClusterTopology::Pair);

    // 1. A stock kernel fails the audit — the paper had to build its own.
    let stock = KernelConfig::stock_2_6_34();
    println!("auditing kernel {} …", stock.release);
    for v in audit(&stock) {
        println!("  VIOLATION: {v}");
    }
    assert!(TccDevice::open(spec, 0, 0, &stock).is_err());

    // 2. The patched kernel opens the device.
    let kernel = KernelConfig::tcc_2_6_34();
    println!("\nauditing kernel {} … clean", kernel.release);
    let dev = TccDevice::open(spec, 0, 0, &kernel).expect("device opens");
    let topo = dev.topology();
    println!(
        "topology: {} supernodes x {} processors, {} B exported per node",
        topo.supernodes, topo.processors_per_supernode, topo.exported_bytes
    );

    // 3. Map the two windows of a channel to the peer.
    let mut aspace = AddressSpace::new();
    dev.map_remote(&mut aspace, 0x7f00_0000_0000, 1, 0, 0, 64 * PAGE)
        .expect("send window");
    dev.map_local(&mut aspace, 0x7f00_1000_0000, 0, 64 * PAGE)
        .expect("receive window");
    println!("\nmapped {} pages", aspace.mapped_pages());

    // 4. Translation: a user store into the send window targets the
    //    peer's global address; a load from it faults.
    let t = aspace.store_translate(0x7f00_0000_0000 + 0x40).unwrap();
    println!("store at send-window+0x40 -> {t:?}");
    let fault = aspace.load_translate(0x7f00_0000_0000);
    println!("load  from send window    -> {fault:?} (write-only, as the fabric demands)");
    assert!(fault.is_err());

    // 5. The rules the driver enforces, demonstrated as refusals.
    let mut bad = AddressSpace::new();
    let readable_remote = bad.mmap(
        0x1000_0000,
        PAGE,
        Backing::Remote {
            global_addr: spec.node_base(1, 0),
        },
        Prot::RW,
        CacheAttr::WriteCombining,
    );
    println!("\nreadable remote mapping  -> {readable_remote:?}");
    let cacheable_export = bad.mmap(
        0x2000_0000,
        PAGE,
        Backing::LocalExported { offset: 0 },
        Prot::RW,
        CacheAttr::WriteBack,
    );
    println!("cacheable receive buffer -> {cacheable_export:?}");
    assert!(readable_remote.is_err() && cacheable_export.is_err());

    println!("\ndriver contract demonstrated — OK");
}
