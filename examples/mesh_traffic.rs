//! Traffic-pattern study on a 4×2 mesh of two-socket supernodes — the
//! blade-rack arrangement the paper's §IV.F proposes. Measures how the
//! ping-pong latency between supernodes grows with X-Y routing distance
//! and reports the bandwidth between the two farthest corners.
//!
//! ```text
//! cargo run --release --example mesh_traffic
//! ```

use tccluster::firmware::topology::ClusterTopology;
use tccluster::msglib::SendMode;
use tccluster::TcclusterBuilder;

fn main() {
    let builder = TcclusterBuilder::new()
        .topology(ClusterTopology::Mesh { x: 4, y: 2 })
        .processors_per_supernode(2);
    let spec = builder.spec();
    let mut sim = builder.build_sim();
    println!(
        "booted {} supernodes / {} processors; self-test pairs: {}\n",
        spec.supernode_count(),
        spec.total_processors(),
        sim.boot.selftest_pairs
    );

    // Latency from supernode 0's first socket to every other supernode.
    println!("{:>10} {:>8} {:>16}", "supernode", "hops", "64B half-RTT");
    let mut rows = Vec::new();
    for s in 1..spec.supernode_count() {
        let hops = spec.topology.hops(0, s);
        let lat = sim.pingpong(0, spec.proc_index(s, 0), 64, 25);
        println!("{s:>10} {hops:>8} {:>16}", format!("{lat}"));
        rows.push((hops, lat.nanos()));
    }

    // Latency must be monotone in hop count.
    let mut by_hops = rows.clone();
    by_hops.sort_by_key(|&(h, _)| h);
    for w in by_hops.windows(2) {
        assert!(
            w[1].1 >= w[0].1 - 1.0,
            "latency not monotone in hops: {w:?}"
        );
    }

    // Corner-to-corner bandwidth (4 hops through intermediate NBs).
    let far = spec.supernode_count() - 1;
    let bw = sim.stream_bandwidth(
        0,
        spec.proc_index(far, 0),
        64 << 10,
        SendMode::WeaklyOrdered,
        5,
    );
    println!(
        "\ncorner-to-corner (hops={}): 64 KB messages at {bw:.0} MB/s",
        spec.topology.hops(0, far)
    );
    // Sender-side measured bandwidth is hop-independent (posted writes
    // stream; only latency grows with distance).
    let near_bw = sim.stream_bandwidth(
        0,
        spec.proc_index(1, 0),
        64 << 10,
        SendMode::WeaklyOrdered,
        5,
    );
    println!("adjacent supernode:          64 KB messages at {near_bw:.0} MB/s");
    assert!(
        (bw - near_bw).abs() / near_bw < 0.05,
        "streaming bw must not depend on hops"
    );
    println!(
        "\nmesh traffic study OK — bandwidth is distance-independent, latency is ~linear in hops"
    );
}
