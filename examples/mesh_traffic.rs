//! Traffic-pattern study on a 4×2 mesh of two-socket supernodes — the
//! blade-rack arrangement the paper's §IV.F proposes. Measures how the
//! ping-pong latency between supernodes grows with X-Y routing distance,
//! reports the bandwidth between the two farthest corners, then switches
//! to the event-driven engine to put *concurrent* cross-traffic on the
//! mesh and show what congestion does to the corner-to-corner flow.
//!
//! ```text
//! cargo run --release --example mesh_traffic
//! ```

use tccluster::firmware::topology::ClusterTopology;
use tccluster::msglib::SendMode;
use tccluster::{EngineKind, TcclusterBuilder, TrafficPattern};

fn main() {
    let builder = TcclusterBuilder::new()
        .topology(ClusterTopology::Mesh { x: 4, y: 2 })
        .processors_per_supernode(2);
    let spec = builder.spec();
    let mut sim = builder.build_sim();
    println!(
        "booted {} supernodes / {} processors; self-test pairs: {}\n",
        spec.supernode_count(),
        spec.total_processors(),
        sim.boot.selftest_pairs
    );

    // Latency from supernode 0's first socket to every other supernode.
    println!("{:>10} {:>8} {:>16}", "supernode", "hops", "64B half-RTT");
    let mut rows = Vec::new();
    for s in 1..spec.supernode_count() {
        let hops = spec.topology.hops(0, s);
        let lat = sim.pingpong(0, spec.proc_index(s, 0), 64, 25);
        println!("{s:>10} {hops:>8} {:>16}", format!("{lat}"));
        rows.push((hops, lat.nanos()));
    }

    // Latency must be monotone in hop count.
    let mut by_hops = rows.clone();
    by_hops.sort_by_key(|&(h, _)| h);
    for w in by_hops.windows(2) {
        assert!(
            w[1].1 >= w[0].1 - 1.0,
            "latency not monotone in hops: {w:?}"
        );
    }

    // Corner-to-corner bandwidth (4 hops through intermediate NBs).
    let far = spec.supernode_count() - 1;
    let bw = sim.stream_bandwidth(
        0,
        spec.proc_index(far, 0),
        64 << 10,
        SendMode::WeaklyOrdered,
        5,
    );
    println!(
        "\ncorner-to-corner (hops={}): 64 KB messages at {bw:.0} MB/s",
        spec.topology.hops(0, far)
    );
    // Sender-side measured bandwidth is hop-independent (posted writes
    // stream; only latency grows with distance).
    let near_bw = sim.stream_bandwidth(
        0,
        spec.proc_index(1, 0),
        64 << 10,
        SendMode::WeaklyOrdered,
        5,
    );
    println!("adjacent supernode:          64 KB messages at {near_bw:.0} MB/s");
    assert!(
        (bw - near_bw).abs() / near_bw < 0.05,
        "streaming bw must not depend on hops"
    );
    // ── Concurrent traffic through the event-driven engine ─────────────
    //
    // The chained engine can only time one sender at a time; congestion
    // needs the event engine's shared queue and real credit flow control.
    // Compare the corner-to-corner flow running alone against the same
    // flow buried in all-to-all cross-traffic.
    let mut ev = builder.engine(EngineKind::EventDriven).build_sim();
    const FLOW_BYTES: u64 = 32 << 10;
    let solo = ev.run_workload(TrafficPattern::Single { src: 0, dst: far }, FLOW_BYTES);
    assert_eq!(solo.lost_packets(), 0);
    let solo_bw = solo.flows[0].goodput_mbps();

    let storm = ev.run_workload(TrafficPattern::AllToAll, FLOW_BYTES);
    assert_eq!(storm.lost_packets(), 0, "all-to-all lost packets");
    let corner = storm
        .flows
        .iter()
        .find(|f| f.src == 0 && f.dst == spec.proc_index(far, 0))
        .expect("corner flow present");

    println!("\nevent-driven engine, concurrent traffic ({FLOW_BYTES} B per flow):");
    println!(
        "{:>28} {:>12} {:>14} {:>12}",
        "pattern", "flows", "corner goodput", "stalls"
    );
    println!(
        "{:>28} {:>12} {:>11.0} MB/s {:>12}",
        "corner flow alone",
        solo.flows.len(),
        solo_bw,
        solo.stalls_no_credit
    );
    println!(
        "{:>28} {:>12} {:>11.0} MB/s {:>12}",
        "all-to-all cross-traffic",
        storm.flows.len(),
        corner.goodput_mbps(),
        storm.stalls_no_credit
    );

    // Congestion is real: the shared mesh links force the corner flow to
    // give up bandwidth, and the credit pools visibly throttle senders.
    assert!(
        corner.goodput_mbps() < solo_bw * 0.9,
        "cross-traffic should congest the corner flow: solo {solo_bw:.0} vs {:.0} MB/s",
        corner.goodput_mbps()
    );
    assert!(
        storm.stalls_no_credit > solo.stalls_no_credit,
        "all-to-all must stress flow control harder than a single flow"
    );

    // ── 8×8 mesh: the backplane scale §IV.F projects ────────────────────
    //
    // The sharded parallel executive (one shard per supernode,
    // conservative epochs) makes a 64-supernode mesh tractable; run the
    // classic adversarial patterns and put the bisection pressure on
    // display. Results are bit-identical for any `event_threads` value.
    let b8 = TcclusterBuilder::new()
        .topology(ClusterTopology::Mesh { x: 8, y: 8 })
        .processors_per_supernode(2)
        .engine(EngineKind::EventDriven)
        .event_threads(4);
    let spec8 = b8.spec();
    let mut ev8 = b8.build_sim();
    const BYTES8: u64 = 1 << 10;
    println!(
        "\n8x8 mesh ({} supernodes / {} processors), event engine ({BYTES8} B per flow):",
        spec8.supernode_count(),
        spec8.total_processors(),
    );
    println!(
        "{:>12} {:>8} {:>14} {:>12} {:>12} {:>12}",
        "pattern", "flows", "aggregate", "stalls", "sim time", "events"
    );
    let mut stalls8 = Vec::new();
    for (name, pattern) in [
        ("transpose", TrafficPattern::Transpose),
        ("tornado", TrafficPattern::Tornado),
        ("all-to-all", TrafficPattern::AllToAll),
    ] {
        let r = ev8.run_workload(pattern, BYTES8);
        assert_eq!(r.lost_packets(), 0, "{name} lost packets on 8x8");
        println!(
            "{:>12} {:>8} {:>9.0} MB/s {:>12} {:>12} {:>12}",
            name,
            r.flows.len(),
            r.aggregate_goodput_mbps(),
            r.stalls_no_credit,
            format!("{}", r.elapsed),
            r.events
        );
        stalls8.push(r.stalls_no_credit);
    }
    // All-to-all saturates the bisection far harder than the permutation
    // patterns (4032 flows vs at most 64).
    assert!(
        stalls8[2] > stalls8[0] && stalls8[2] > stalls8[1],
        "all-to-all must stress flow control hardest: {stalls8:?}"
    );

    println!(
        "\nmesh traffic study OK — bandwidth is distance-independent, latency is ~linear in \
         hops, and concurrent cross-traffic congests shared links"
    );
}
