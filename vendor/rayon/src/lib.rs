//! Minimal offline shim for `rayon` parallel iterators.
//!
//! Covers exactly the surface the workspace consumes — `par_iter()` on
//! slices with `map` / `map_init` and an order-preserving
//! `collect::<Vec<_>>()` — backed by `std::thread::scope` instead of a
//! work-stealing pool. Items are split into contiguous chunks, one scoped
//! thread per chunk, at most [`available`] workers. `map_init` runs the
//! init closure once per chunk (the real rayon runs it at least once per
//! split — same contract: a fresh init value is shared only by items of
//! one worker's run).
//!
//! Swapping the `path = "vendor/rayon"` override in the root `Cargo.toml`
//! for the real `rayon = "1"` upgrades identical call sites to the
//! work-stealing implementation.

#![forbid(unsafe_code)]

pub mod prelude {
    pub use crate::{FromParallelVec, IntoParallelRefIterator, ParIter, ParMap, ParMapInit};
}

/// Worker count: the host's available parallelism (1 in minimal cgroups).
fn available() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Entry point: `items.par_iter()` on anything that derefs to a slice.
pub trait IntoParallelRefIterator<'a> {
    type Item: Sync + 'a;
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iterator over a slice.
#[derive(Debug)]
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Like `map`, but each worker first builds a local value with `init`
    /// (e.g. a freshly booted simulation) that `f` threads through every
    /// item of that worker's chunk.
    pub fn map_init<I, R, FI, F>(self, init: FI, f: F) -> ParMapInit<'a, T, FI, F>
    where
        FI: Fn() -> I + Sync,
        F: Fn(&mut I, &T) -> R + Sync,
        R: Send,
    {
        ParMapInit {
            items: self.items,
            init,
            f,
        }
    }
}

/// Result of [`ParIter::map`], ready to collect.
#[derive(Debug)]
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<T, F, R> ParMap<'_, T, F>
where
    T: Sync,
    F: Fn(&T) -> R + Sync,
    R: Send,
{
    pub fn collect<C: FromParallelVec<R>>(self) -> C {
        C::from_vec(run_chunked(self.items, |chunk, out| {
            for (t, o) in chunk.iter().zip(out.iter_mut()) {
                *o = Some((self.f)(t));
            }
        }))
    }
}

/// Result of [`ParIter::map_init`], ready to collect.
#[derive(Debug)]
pub struct ParMapInit<'a, T, FI, F> {
    items: &'a [T],
    init: FI,
    f: F,
}

impl<T, I, FI, F, R> ParMapInit<'_, T, FI, F>
where
    T: Sync,
    FI: Fn() -> I + Sync,
    F: Fn(&mut I, &T) -> R + Sync,
    R: Send,
{
    pub fn collect<C: FromParallelVec<R>>(self) -> C {
        C::from_vec(run_chunked(self.items, |chunk, out| {
            let mut state = (self.init)();
            for (t, o) in chunk.iter().zip(out.iter_mut()) {
                *o = Some((self.f)(&mut state, t));
            }
        }))
    }
}

/// Split `items` into one contiguous chunk per worker, run `body` on each
/// chunk in a scoped thread, and return results in item order.
fn run_chunked<T, R, B>(items: &[T], body: B) -> Vec<R>
where
    T: Sync,
    R: Send,
    B: Fn(&[T], &mut [Option<R>]) + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = available().min(n);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    if workers <= 1 {
        body(items, &mut out);
    } else {
        let chunk = n.div_ceil(workers);
        std::thread::scope(|s| {
            for (islice, oslice) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
                let body = &body;
                s.spawn(move || body(islice, oslice));
            }
        });
    }
    out.into_iter()
        .map(|o| o.expect("every item produced"))
        .collect()
}

/// Shim-side stand-in for rayon's `FromParallelIterator`, so call sites
/// keep the idiomatic `.collect::<Vec<_>>()` shape.
pub trait FromParallelVec<R> {
    fn from_vec(v: Vec<R>) -> Self;
}

impl<R> FromParallelVec<R> for Vec<R> {
    fn from_vec(v: Vec<R>) -> Self {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(ys, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_init_builds_worker_state() {
        let xs: Vec<u64> = (0..64).collect();
        // Each worker's accumulator starts at 1000: results must not leak
        // between items in a way that depends on worker count only via
        // the explicitly chunk-local state.
        let ys: Vec<u64> = xs
            .par_iter()
            .map_init(
                || 1000u64,
                |acc, &x| {
                    *acc += 1;
                    x
                },
            )
            .collect();
        assert_eq!(ys, xs);
    }

    #[test]
    fn empty_input() {
        let xs: Vec<u8> = Vec::new();
        let ys: Vec<u8> = xs.par_iter().map(|&x| x).collect();
        assert!(ys.is_empty());
    }
}
