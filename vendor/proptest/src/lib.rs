//! Minimal offline shim for the `proptest` crate.
//!
//! Implements the subset of the API this workspace uses: the [`proptest!`]
//! test macro with an optional `#![proptest_config(...)]` header, the
//! [`prop_oneof!`] / [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_assume!`] macros, the [`strategy::Strategy`] trait with
//! `prop_map`, [`strategy::Just`], [`any`], numeric range strategies,
//! tuple strategies, and [`collection::vec`].
//!
//! Each test runs `ProptestConfig::cases` deterministic cases seeded by the
//! case index (splitmix64), so failures are reproducible. There is no
//! shrinking: a failing case panics with the ordinary assert message.

/// Per-test configuration. Only `cases` is modelled.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; the heavier simulation properties
        // in this workspace make a smaller deterministic sweep appropriate.
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic per-case RNG (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Construct the RNG for one test case. Exposed for the `proptest!` macro.
#[doc(hidden)]
pub fn test_rng(case: u64) -> TestRng {
    TestRng {
        state: case.wrapping_mul(0x9E3779B97F4A7C15) ^ 0x5DEECE66D,
    }
}

pub mod strategy {
    use super::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between heterogeneous strategies (see `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<Rc<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            Union { arms: Vec::new() }
        }

        pub fn or(mut self, s: impl Strategy<Value = T> + 'static) -> Self {
            self.arms.push(Rc::new(s));
            self
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].sample(rng)
        }
    }

    /// Strategy for "any value of T" (see [`super::any`]).
    #[derive(Debug)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<T> Copy for Any<T> {}

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! any_uint {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "empty range strategy");
                    (self.start as i128 + rng.below(span as u64) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                    assert!(span > 0, "empty range strategy");
                    (*self.start() as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

/// Generate an arbitrary value of `T` (bools and primitive integers).
pub fn any<T>() -> strategy::Any<T>
where
    strategy::Any<T>: strategy::Strategy,
{
    strategy::Any(std::marker::PhantomData)
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`].
    pub trait IntoSizeRange {
        /// (min, max) inclusive bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.end > self.start, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    /// The result of [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// A strategy producing `Vec`s of `elem` with length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { elem, min, max }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when the assumption does not hold. Expands to an
/// early return from the per-case closure the `proptest!` macro wraps each
/// body in.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice between strategies producing the same value type.
/// Weighted arms are not supported by this shim.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.or($arm))+
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __strats = ($($strat,)+);
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_rng(__case as u64);
                let ($($arg,)+) = {
                    let ($(ref $arg,)+) = __strats;
                    ($($crate::strategy::Strategy::sample($arg, &mut __rng),)+)
                };
                let __run = move || $body;
                __run();
            }
        }
    )*};
}

/// The `proptest!` test-definition macro. Each contained function becomes a
/// `#[test]` running `cases` deterministic samples of its argument
/// strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Mode {
        A,
        B,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_respect_bounds(x in 3u8..7, y in 10u64..=20, f in 0.25f64..0.75) {
            prop_assert!((3..7).contains(&x));
            prop_assert!((10..=20).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn oneof_map_and_tuples(
            m in prop_oneof![Just(Mode::A), Just(Mode::B)],
            pair in (0u8..4, any::<bool>()).prop_map(|(a, b)| (a as u32, b)),
        ) {
            prop_assert!(m == Mode::A || m == Mode::B);
            prop_assert!(pair.0 < 4);
        }

        #[test]
        fn vecs_have_requested_lengths(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = 0u64..1000;
        let a: Vec<u64> = (0..10).map(|c| s.sample(&mut crate::test_rng(c))).collect();
        let b: Vec<u64> = (0..10).map(|c| s.sample(&mut crate::test_rng(c))).collect();
        assert_eq!(a, b);
    }
}
