//! Minimal offline shim for the `bytes` crate.
//!
//! Provides [`Bytes`]: an immutable, cheaply cloneable byte buffer. Two
//! representations are supported — a borrowed `&'static [u8]` (from
//! [`Bytes::from_static`]) and a shared `Arc<Vec<u8>>` (from `Vec<u8>` or
//! from an `Arc` directly). Cloning never copies the payload.
//!
//! Local extension over the real crate: `From<Arc<Vec<u8>>>` lets a caller
//! hand out views of pooled buffers without copying, and
//! [`Bytes::ref_count`] exposes the sharing degree so a pool can detect
//! when a slab has been returned.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub const fn new() -> Self {
        Bytes {
            repr: Repr::Static(&[]),
        }
    }

    /// Wrap a static slice (no allocation).
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Static(bytes),
        }
    }

    /// Copy a slice into a freshly allocated buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(a) => a.as_slice(),
        }
    }

    /// How many `Bytes` handles (plus external `Arc` holders) share this
    /// buffer. Static buffers report 1. Used by slab pools to detect that
    /// every consumer has dropped its view.
    pub fn ref_count(&self) -> usize {
        match &self.repr {
            Repr::Static(_) => 1,
            Repr::Shared(a) => Arc::strong_count(a),
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            repr: Repr::Shared(Arc::new(v)),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

/// Local extension: share an existing `Arc`'d buffer without copying.
impl From<Arc<Vec<u8>>> for Bytes {
    fn from(a: Arc<Vec<u8>>) -> Self {
        Bytes {
            repr: Repr::Shared(a),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.ref_count(), 2);
        drop(c);
        assert_eq!(b.ref_count(), 1);
    }

    #[test]
    fn static_and_owned_compare_equal() {
        let s = Bytes::from_static(&[9, 9]);
        let o = Bytes::from(vec![9, 9]);
        assert_eq!(s, o);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn arc_view_does_not_copy() {
        let arc = Arc::new(vec![7u8; 64]);
        let b = Bytes::from(arc.clone());
        assert_eq!(b.as_slice(), &[7u8; 64][..]);
        assert_eq!(Arc::strong_count(&arc), 2);
    }
}
