//! Minimal offline shim for the `rand` crate (0.10-style trait split).
//!
//! Provides the fallible [`TryRng`] source trait and the infallible
//! [`Rng`] convenience trait, with the blanket derivation the real crate
//! performs: any `TryRng` whose error is uninhabited is an `Rng`.

use core::convert::Infallible;

/// A fallible random number source.
pub trait TryRng {
    type Error;

    fn try_next_u32(&mut self) -> Result<u32, Self::Error>;
    fn try_next_u64(&mut self) -> Result<u64, Self::Error>;
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Self::Error>;
}

/// An infallible random number source.
pub trait Rng {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// A uniformly distributed `f64` in `[0, 1)`.
    fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<T> Rng for T
where
    T: TryRng<Error = Infallible>,
{
    fn next_u32(&mut self) -> u32 {
        match self.try_next_u32() {
            Ok(v) => v,
        }
    }

    fn next_u64(&mut self) -> u64 {
        match self.try_next_u64() {
            Ok(v) => v,
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        match self.try_fill_bytes(dest) {
            Ok(()) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);

    impl TryRng for Lcg {
        type Error = Infallible;

        fn try_next_u32(&mut self) -> Result<u32, Infallible> {
            Ok((self.try_next_u64()? >> 32) as u32)
        }

        fn try_next_u64(&mut self) -> Result<u64, Infallible> {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            Ok(self.0)
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Infallible> {
            for chunk in dest.chunks_mut(8) {
                let v = self.try_next_u64()?.to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
            Ok(())
        }
    }

    #[test]
    fn blanket_rng_from_infallible_tryrng() {
        let mut r = Lcg(1);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, b);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&x| x != 0));
        let f = r.random_f64();
        assert!((0.0..1.0).contains(&f));
    }
}
