//! Minimal offline shim for the `loom` concurrency checker.
//!
//! The real `loom` replaces `std::sync::atomic`/`std::thread` with modeled
//! versions and `loom::model` exhaustively explores every legal
//! interleaving under the C11 memory model. This offline container cannot
//! fetch it, so this shim keeps the *same API surface* backed by `std`:
//! `model(f)` re-runs the body many times with real threads, which makes
//! the `cfg(loom)` tests a randomized-schedule stress suite rather than an
//! exhaustive proof. Swapping this path dependency for the real
//! `loom = "0.7"` upgrades the identical test source to exhaustive
//! exploration — keep test bodies small (≤3 threads, ≤4 operations each)
//! so they stay tractable when that happens.

#![forbid(unsafe_code)]

/// Number of stress repetitions standing in for loom's exhaustive search.
const SHIM_ITERATIONS: usize = 256;

/// Run `f` under the (shimmed) model: repeatedly, with real threads.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    for _ in 0..SHIM_ITERATIONS {
        f();
    }
}

pub mod thread {
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

pub mod sync {
    pub use std::sync::{Arc, Mutex};

    pub mod atomic {
        pub use std::sync::atomic::{
            fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }
}

pub mod hint {
    pub use std::hint::spin_loop;
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::Arc;

    #[test]
    fn model_runs_body_with_threads() {
        let total = Arc::new(AtomicU64::new(0));
        let t2 = Arc::clone(&total);
        super::model(move || {
            let v = Arc::new(AtomicU64::new(0));
            let v2 = Arc::clone(&v);
            let h = super::thread::spawn(move || v2.store(7, Ordering::Release));
            h.join().unwrap();
            assert_eq!(v.load(Ordering::Acquire), 7);
            t2.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), super::SHIM_ITERATIONS as u64);
    }
}
