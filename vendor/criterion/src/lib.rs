//! Minimal offline shim for the `criterion` crate.
//!
//! Runs each benchmark for a short, fixed measurement window and prints the
//! mean time per iteration. No warm-up statistics, outlier analysis, or
//! reports — just enough to keep `cargo bench` useful in an offline
//! environment and the bench targets compiling under `--all-targets`.

use std::fmt;
use std::time::{Duration, Instant};

/// Measurement driver handed to each benchmark closure.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by `iter`/`iter_custom`.
    mean_ns: f64,
}

impl Bencher {
    /// Time `f` over enough iterations to fill a small measurement window.
    // The bench shim is the legitimate wallclock consumer (clippy.toml).
    #[allow(clippy::disallowed_methods)]
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One calibration pass to pick an iteration count.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(50);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.mean_ns = t1.elapsed().as_nanos() as f64 / iters as f64;
    }

    /// The closure receives an iteration count and returns the elapsed time
    /// for that many iterations.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        let iters = 100u64;
        let total = f(iters);
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
    }
}

/// Throughput annotation (recorded, reported alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    #[allow(clippy::should_implement_trait)]
    pub fn default() -> Self {
        Criterion {}
    }

    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().id, None, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        run_one(&id, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        run_one(&id, self.throughput, &mut |b: &mut Bencher| {
            b_input(b, input, &mut f)
        });
        self
    }

    pub fn finish(self) {}
}

fn b_input<I, F: FnMut(&mut Bencher, &I)>(b: &mut Bencher, input: &I, f: &mut F) {
    f(b, input)
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, throughput: Option<Throughput>, f: &mut F) {
    let mut b = Bencher { mean_ns: 0.0 };
    f(&mut b);
    match throughput {
        Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) if b.mean_ns > 0.0 => {
            let mbps = n as f64 / b.mean_ns * 1e3;
            println!("{id:<40} {:>12.1} ns/iter  {mbps:>10.1} MB/s", b.mean_ns);
        }
        Some(Throughput::Elements(n)) if b.mean_ns > 0.0 => {
            let eps = n as f64 / b.mean_ns * 1e9;
            println!("{id:<40} {:>12.1} ns/iter  {eps:>10.0} elem/s", b.mean_ns);
        }
        _ => println!("{id:<40} {:>12.1} ns/iter", b.mean_ns),
    }
}

/// Define a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(64));
        g.bench_with_input(BenchmarkId::from_parameter(64), &64usize, |b, &s| {
            b.iter(|| s * 2)
        });
        g.finish();
    }

    #[test]
    fn iter_custom_records_time() {
        let mut c = Criterion::default();
        c.bench_function("custom", |b| b.iter_custom(Duration::from_nanos));
    }
}
