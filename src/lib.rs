//! Umbrella crate for the TCCluster reproduction workspace.
//!
//! This crate exists to host the workspace-level integration tests
//! (`tests/`) and runnable examples (`examples/`); the actual library
//! lives in the `tccluster` crate and its substrates.

pub use tccluster;
