//! Allocation-regression guard for the zero-allocation hot paths.
//!
//! A counting global allocator proves that steady-state message traffic
//! performs no heap allocation at all — on the shm channel path (send +
//! recv_into) and on the simulated store/propagate path.
//!
//! The counter is **thread-local**: the libtest harness's own threads
//! (the main thread waiting on its event channel, timeout bookkeeping)
//! allocate at unpredictable moments, and with a process-global counter
//! those allocations raced into the measurement window often enough to
//! make the test flaky. Only the measuring thread's allocations are the
//! code under test. The slot is const-initialized, so reading it from
//! inside the allocator cannot itself allocate or recurse.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use tcc_msglib::channel::{channel, CHANNEL_BYTES, CREDIT_BYTES};
use tcc_msglib::shm::ShmMemory;
use tcc_msglib::SendMode;

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    // Allocations during TLS teardown (after the slot is destroyed) are
    // not on any measured path; just stop counting them.
    let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.with(|c| c.get())
}

#[test]
fn steady_state_hot_paths_allocate_nothing() {
    // --- shm channel path: eager send + recv_into, single-threaded. ---
    let data = ShmMemory::new(CHANNEL_BYTES as usize);
    let credits = ShmMemory::new(CREDIT_BYTES as usize);
    let (mut tx, mut rx) = channel(
        data.remote(0, CHANNEL_BYTES),
        credits.local(0, CREDIT_BYTES),
        data.local(0, CHANNEL_BYTES),
        credits.remote(0, CREDIT_BYTES),
        SendMode::WeaklyOrdered,
    );
    let msg = [0x5Au8; 64];
    let mut buf = Vec::new();
    // Warm-up: grows the reassembly buffer, frame scratch and `buf` to
    // their steady-state capacities.
    for _ in 0..256 {
        tx.send(&msg).expect("fits");
        assert_eq!(rx.recv_into(&mut buf), 64);
    }
    let before = allocs();
    for _ in 0..10_000 {
        tx.send(&msg).expect("fits");
        assert_eq!(rx.recv_into(&mut buf), 64);
        assert_eq!(buf[0], 0x5A);
    }
    assert_eq!(
        allocs() - before,
        0,
        "shm eager message path must not allocate in steady state"
    );

    // --- simulated store/propagate path: 64 B WC stores to a remote
    //     node, fully propagated, with caller-reused buffers. ---
    use tccluster::fabric::time::SimTime;
    let mut cluster = tcc_bench::prototype();
    cluster.reset_timebase();
    let dst = cluster.spec().node_base(1, 0);
    let mut sink = tcc_opteron::ActionSink::new();
    let mut commits = Vec::new();
    let mut now = SimTime::ZERO;
    let mut run = |now: &mut SimTime, n: u64, a0: u64| {
        for i in a0..a0 + n {
            let addr = dst + (i * 64) % (256 << 10);
            let out = cluster.platform.nodes[0].store(*now, addr, &[0u8; 64], &mut sink);
            *now = out.issued;
            commits.clear();
            cluster.platform.propagate(0, &mut sink, &mut commits);
        }
    };
    // Warm-up: payload pool growth, link queues, propagate work buffers.
    run(&mut now, 4_096, 0);
    let before = allocs();
    run(&mut now, 20_000, 4_096);
    assert_eq!(
        allocs() - before,
        0,
        "store/propagate path must not allocate in steady state"
    );
}
