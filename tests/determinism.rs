//! Determinism of the sharded conservative-PDES event engine.
//!
//! The engine's contract (docs/engine.md, "Parallel execution") is that
//! results are **bit-identical** for every worker thread count, every
//! event-queue backend and both cross-shard mailbox implementations:
//! shard state is disjoint, every event is processed in deterministic
//! `(time, shard, seq)` key order, and the thread count / backend /
//! mailbox knobs only change wall clock. These tests enforce that
//! contract as a differential matrix — the same randomized workload runs
//! through {binary heap, calendar, ladder} × {mutex inbox, batch-ring
//! inbox} and must produce identical reports — and re-pin the paper's
//! anchors (227 ns / ~2500 MB/s) on the parallel path.

use proptest::prelude::*;
use tcc_firmware::topology::ClusterTopology;
use tcc_ht::link::LinkConfig;
use tccluster::{
    EngineKind, MailboxKind, QueueBackend, TcclusterBuilder, TrafficPattern, WorkloadReport,
};

/// Run one workload on a mesh with explicit executive options.
fn run(
    mesh: (usize, usize),
    link: LinkConfig,
    pattern: TrafficPattern,
    bytes: u64,
    threads: usize,
    backend: QueueBackend,
    mailbox: MailboxKind,
) -> WorkloadReport {
    let mut cluster = TcclusterBuilder::new()
        .topology(ClusterTopology::Mesh {
            x: mesh.0,
            y: mesh.1,
        })
        .processors_per_supernode(2)
        .tcc_link(link)
        .engine(EngineKind::EventDriven)
        .event_threads(threads)
        .event_queue(backend)
        .event_mailbox(mailbox)
        .build_sim();
    cluster.run_workload(pattern, bytes)
}

fn arb_link() -> impl Strategy<Value = LinkConfig> {
    (
        prop_oneof![Just(600), Just(800), Just(1_000)],
        prop_oneof![Just(8u8), Just(16u8)],
        40u64..=60,
    )
        .prop_map(|(clock_mhz, width_bits, hop_ns)| LinkConfig {
            clock_mhz,
            width_bits,
            hop_latency: tcc_fabric::time::Duration::from_nanos(hop_ns),
        })
}

fn arb_pattern() -> impl Strategy<Value = TrafficPattern> {
    prop_oneof![
        Just(TrafficPattern::AllToAll),
        Just(TrafficPattern::Hotspot { target: 0 }),
        Just(TrafficPattern::Halo),
        Just(TrafficPattern::Transpose),
        Just(TrafficPattern::Tornado),
    ]
}

/// Run one workload with the flat fast lane explicitly on or off,
/// optionally with the invariant monitors mounted. Returns the report
/// plus the monitors' view (packets seen, clean verdict) when mounted.
fn run_lane(
    mesh: (usize, usize),
    link: LinkConfig,
    pattern: TrafficPattern,
    bytes: u64,
    threads: usize,
    flat_lane: bool,
    monitored: bool,
) -> (WorkloadReport, Option<(u64, bool)>) {
    let mut cluster = TcclusterBuilder::new()
        .topology(ClusterTopology::Mesh {
            x: mesh.0,
            y: mesh.1,
        })
        .processors_per_supernode(2)
        .tcc_link(link)
        .engine(EngineKind::EventDriven)
        .event_threads(threads)
        .event_flat_lane(flat_lane)
        .build_sim();
    let handle = monitored.then(|| {
        let (monitor, handle) = tcc_verify::InvariantMonitor::new();
        cluster.platform.with_monitors(monitor);
        handle
    });
    let report = cluster.run_workload(pattern, bytes);
    let verdict = handle.map(|h| (h.packets_seen(), h.is_clean()));
    (report, verdict)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The core determinism property: the same workload yields a
    /// byte-identical [`WorkloadReport`] across thread counts {1, 2, 4},
    /// across every queue backend and across both mailbox kinds, for
    /// randomized link shapes, patterns and flow sizes on a 2x2 mesh.
    #[test]
    fn workload_reports_are_bit_identical_across_executives(
        link in arb_link(),
        pattern in arb_pattern(),
        kb in 2u64..=8,
    ) {
        let bytes = kb << 10;
        let baseline = run(
            (2, 2), link, pattern, bytes, 1, QueueBackend::BinaryHeap, MailboxKind::Mutex,
        );
        prop_assert!(baseline.delivered_packets > 0, "workload moved no data");
        for backend in QueueBackend::ALL {
            for mailbox in MailboxKind::ALL {
                for threads in [1usize, 2, 4] {
                    let got = run((2, 2), link, pattern, bytes, threads, backend, mailbox);
                    prop_assert_eq!(
                        &got,
                        &baseline,
                        "{:?} x {:?} x {} threads diverged on {:?}",
                        backend,
                        mailbox,
                        threads,
                        pattern
                    );
                }
            }
        }
    }

    /// The flat fast lane is an optimisation, never a semantic: delivery
    /// is byte-identical with the lane on and off, at one thread and
    /// several, and the mounted invariant monitors see the exact same
    /// packet stream (same count, same clean verdict) either way — the
    /// lane flag must be invisible to everything but wall clock.
    #[test]
    fn flat_lane_is_bit_identical_and_monitor_invisible(
        link in arb_link(),
        pattern in arb_pattern(),
        kb in 2u64..=8,
    ) {
        let bytes = kb << 10;
        let (on, _) = run_lane((2, 2), link, pattern, bytes, 1, true, false);
        prop_assert!(on.delivered_packets > 0, "workload moved no data");
        let (off, _) = run_lane((2, 2), link, pattern, bytes, 1, false, false);
        prop_assert_eq!(&off, &on, "flat lane off diverged on {:?}", pattern);
        for threads in [2usize, 4] {
            let (got, _) = run_lane((2, 2), link, pattern, bytes, threads, true, false);
            prop_assert_eq!(&got, &on, "flat lane x {} threads diverged", threads);
        }
        let (mon_on, saw_on) = run_lane((2, 2), link, pattern, bytes, 1, true, true);
        let (mon_off, saw_off) = run_lane((2, 2), link, pattern, bytes, 1, false, true);
        prop_assert_eq!(&mon_on, &on, "mounting a monitor changed the results");
        prop_assert_eq!(&mon_off, &on, "monitor + lane off changed the results");
        let (seen_on, clean_on) = saw_on.unwrap();
        let (seen_off, clean_off) = saw_off.unwrap();
        prop_assert_eq!(seen_on, seen_off, "monitors saw different packet streams");
        prop_assert!(seen_on > on.delivered_packets, "monitor missed forwarded hops");
        prop_assert!(clean_on && clean_off, "invariant violations");
    }
}

/// A bigger, deeply contended single case: all-to-all on a 4x4 mesh, all
/// thread counts, every backend × mailbox, compared field-for-field.
#[test]
fn mesh4x4_all_to_all_is_executive_invariant() {
    let baseline = run(
        (4, 4),
        LinkConfig::PROTOTYPE,
        TrafficPattern::AllToAll,
        4 << 10,
        1,
        QueueBackend::BinaryHeap,
        MailboxKind::Mutex,
    );
    assert_eq!(baseline.flows.len(), 16 * 15);
    assert_eq!(baseline.lost_packets(), 0, "{baseline:?}");
    for backend in QueueBackend::ALL {
        for mailbox in MailboxKind::ALL {
            for threads in [2usize, 4, 8] {
                let got = run(
                    (4, 4),
                    LinkConfig::PROTOTYPE,
                    TrafficPattern::AllToAll,
                    4 << 10,
                    threads,
                    backend,
                    mailbox,
                );
                assert_eq!(
                    got, baseline,
                    "{backend:?} x {mailbox:?} x {threads} threads diverged"
                );
            }
        }
    }
}

/// The paper's 227 ns half-RTT anchor must hold when the event engine
/// runs its parallel executive (2 shards on 2 threads) — the epoch
/// algorithm may not change any timing, only wall clock.
#[test]
fn parallel_path_reproduces_headline_latency() {
    let mut c = TcclusterBuilder::new()
        .engine(EngineKind::EventDriven)
        .event_threads(2)
        .build_sim();
    let lat = c.pingpong(0, 1, 64, 50);
    let ns = lat.nanos();
    assert!(
        (ns - 227.0).abs() < 25.0,
        "parallel event engine 64 B half-RTT = {ns:.1} ns (paper: 227 ns)"
    );
}

/// The ~2500 MB/s single-stream bandwidth anchor on the parallel path,
/// and exact agreement with the sequential event engine across the whole
/// backend × mailbox matrix.
#[test]
fn parallel_path_reproduces_headline_bandwidth() {
    use tcc_msglib::SendMode;
    let bw = |threads: usize, backend: QueueBackend, mailbox: MailboxKind| {
        let mut c = TcclusterBuilder::new()
            .engine(EngineKind::EventDriven)
            .event_threads(threads)
            .event_queue(backend)
            .event_mailbox(mailbox)
            .build_sim();
        c.stream_bandwidth(0, 1, 64, SendMode::WeaklyOrdered, 20)
    };
    let sequential = bw(1, QueueBackend::BinaryHeap, MailboxKind::Mutex);
    assert!(
        (sequential - 2500.0).abs() < 400.0,
        "64 B weak bandwidth = {sequential:.0} MB/s (paper: ~2500)"
    );
    for backend in QueueBackend::ALL {
        for mailbox in MailboxKind::ALL {
            for threads in [2usize, 4] {
                let got = bw(threads, backend, mailbox);
                assert_eq!(
                    got.to_bits(),
                    sequential.to_bits(),
                    "{backend:?} x {mailbox:?} x {threads}: {got} vs {sequential} MB/s"
                );
            }
        }
    }
}
