//! Workspace-level property-based tests: invariants that must hold across
//! randomly generated topologies, address patterns and message schedules.

use proptest::prelude::*;
use tcc_firmware::machine::Platform;
use tcc_firmware::tcc_boot::boot;
use tcc_firmware::topology::{ClusterSpec, ClusterTopology, SupernodeSpec, GLOBAL_BASE};
use tcc_msglib::channel::{channel, CHANNEL_BYTES, CREDIT_BYTES};
use tcc_msglib::ring::SendMode;
use tcc_msglib::shm::ShmMemory;
use tcc_opteron::UarchParams;

const MB: u64 = 1 << 20;

/// Strategy over bootable cluster shapes (kept small: every case boots a
/// full platform).
fn arb_spec() -> impl Strategy<Value = ClusterSpec> {
    prop_oneof![
        (1usize..=4)
            .prop_map(|p| ClusterSpec::new(SupernodeSpec::new(p, MB), ClusterTopology::Pair)),
        (2usize..=5)
            .prop_map(|n| ClusterSpec::new(SupernodeSpec::new(1, MB), ClusterTopology::Chain(n))),
        ((1usize..=3), (1usize..=2)).prop_map(|(x, y)| ClusterSpec::new(
            SupernodeSpec::new(2, MB),
            ClusterTopology::Mesh { x, y }
        )),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every topology boots, self-tests all pairs, and never leaks an
    /// interrupt broadcast over a TCC cable.
    #[test]
    fn every_topology_boots(spec in arb_spec()) {
        let mut platform = Platform::assemble(spec, UarchParams::shanghai());
        let report = boot(&mut platform);
        let n = spec.supernode_count();
        prop_assert_eq!(report.selftest_pairs, n * (n - 1));
    }

    /// After boot, every global address resolves consistently: a store
    /// from any node lands in the DRAM of exactly the node that owns the
    /// address, at the right offset.
    #[test]
    fn address_resolution_is_total_and_correct(
        spec in arb_spec(),
        addr_frac in 0.0f64..1.0,
        src_frac in 0.0f64..1.0,
    ) {
        let mut platform = Platform::assemble(spec, UarchParams::shanghai());
        boot(&mut platform);
        let total = spec.global_end() - GLOBAL_BASE;
        // Pick an aligned global address and a source node.
        let addr = GLOBAL_BASE + ((total as f64 * addr_frac) as u64 & !63).min(total - 64);
        let src = ((spec.total_processors() as f64 * src_frac) as usize)
            .min(spec.total_processors() - 1);
        // Expected owner from the layout.
        let rel = addr - GLOBAL_BASE;
        let sn = (rel / spec.supernode.slice_bytes()) as usize;
        let p = ((rel % spec.supernode.slice_bytes()) / spec.supernode.dram_per_node) as usize;
        let owner = spec.proc_index(sn, p);
        let offset = rel % spec.supernode.dram_per_node;

        let now = tcc_fabric::time::SimTime(1_000_000_000); // after boot traffic
        let (_, commits) = platform.store_and_propagate(src, now, addr, &[0x77u8; 8]);
        let hit = commits.iter().find(|c| c.offset == offset && c.node == owner);
        prop_assert!(
            hit.is_some(),
            "store from {} to {:#x} expected at node {} offset {:#x}, got {:?}",
            src, addr, owner, offset, commits
        );
        prop_assert_eq!(platform.nodes[owner].mem.peek(offset, 8), &[0x77u8; 8]);
    }

    /// The channel delivers any schedule of messages intact and in order
    /// (single-threaded schedule; the threaded case is covered by the shm
    /// stress tests).
    #[test]
    fn channel_delivers_any_schedule(
        sizes in proptest::collection::vec(0usize..20_000, 1..40),
        mode in prop_oneof![Just(SendMode::WeaklyOrdered), Just(SendMode::StrictlyOrdered)],
    ) {
        let data = ShmMemory::new(CHANNEL_BYTES as usize);
        let credits = ShmMemory::new(CREDIT_BYTES as usize);
        let (mut tx, mut rx) = channel(
            data.remote(0, CHANNEL_BYTES),
            credits.local(0, CREDIT_BYTES),
            data.local(0, CHANNEL_BYTES),
            credits.remote(0, CREDIT_BYTES),
            mode,
        );
        let mut pending: std::collections::VecDeque<Vec<u8>> = Default::default();
        for (i, &s) in sizes.iter().enumerate() {
            let msg: Vec<u8> = (0..s).map(|j| ((i * 31 + j) % 251) as u8).collect();
            // Drain when the channel would block (receiver keeps up).
            loop {
                match tx.try_send(&msg) {
                    Ok(()) => break,
                    Err(tcc_msglib::SendError::WouldBlock) => {
                        let got = rx.recv();
                        let want = pending.pop_front().expect("something in flight");
                        prop_assert_eq!(got, want);
                    }
                    Err(e) => prop_assert!(false, "send failed: {:?}", e),
                }
            }
            pending.push_back(msg);
        }
        while let Some(want) = pending.pop_front() {
            prop_assert_eq!(rx.recv(), want);
        }
        prop_assert_eq!(rx.try_recv(), None, "no phantom messages");
    }

    /// `store_burst` is exactly equivalent to the store()/sfence() loop it
    /// replaces: identical issue/retire times, identical commit stream,
    /// and a byte-identical destination memory image — on a fully booted
    /// platform with propagation, not just a bare node.
    #[test]
    fn store_burst_equals_store_loop_on_platform(
        len in 0usize..2048,
        strict in prop_oneof![Just(true), Just(false)],
        header in prop_oneof![Just(true), Just(false)],
    ) {
        use tcc_fabric::time::SimTime;
        use tcc_opteron::BurstPattern;

        let pattern = BurstPattern {
            cell_payload: 64,
            cell_stride: if header { 72 } else { 64 },
            header_bytes: if header { 8 } else { 0 },
            payload_fill: 0xD5,
            header_fill: 0xAD,
            fence_every: if strict { 1 } else { 0 },
            final_fence: !strict,
            wrap_bytes: 0,
        };

        let mut burst = tcc_bench::prototype();
        let mut looped = tcc_bench::prototype();
        burst.reset_timebase();
        looped.reset_timebase();
        let base = burst.spec().node_base(1, 0);

        // Burst side: one call, one propagation.
        let mut sink = tcc_opteron::ActionSink::new();
        let mut b_commits = Vec::new();
        let out = burst.platform.nodes[0].store_burst(SimTime::ZERO, base, &pattern, len, &mut sink);
        burst.platform.propagate(0, &mut sink, &mut b_commits);

        // Loop side: the equivalent driver loop, propagating per store —
        // the shape every pre-batching caller had.
        let mut l_sink = tcc_opteron::ActionSink::new();
        let mut l_commits = Vec::new();
        let mut scratch = Vec::new();
        let mut drive = |node: &mut tcc_firmware::machine::Platform,
                         f: &mut dyn FnMut(&mut tcc_firmware::machine::Platform,
                                            &mut tcc_opteron::ActionSink)| {
            f(node, &mut l_sink);
            scratch.clear();
            node.propagate(0, &mut l_sink, &mut scratch);
            l_commits.extend(scratch.iter().copied());
        };
        let cells = len.div_ceil(64).max(1);
        let mut now = SimTime::ZERO;
        let mut retire = now;
        for c in 0..cells {
            let cell_base = base + (c as u64) * pattern.cell_stride;
            let chunk = 64.min(len - (c * 64).min(len));
            if chunk > 0 {
                drive(&mut looped.platform, &mut |p, s| {
                    let o = p.nodes[0].store(now, cell_base, &[0xD5u8; 64][..chunk], s);
                    now = o.issued;
                    retire = retire.max(o.retire);
                });
            }
            if pattern.header_bytes > 0 {
                drive(&mut looped.platform, &mut |p, s| {
                    let o = p.nodes[0].store(now, cell_base + 64, &[0xADu8; 8], s);
                    now = o.issued;
                    retire = retire.max(o.retire);
                });
            }
            if strict {
                drive(&mut looped.platform, &mut |p, s| {
                    let f = p.nodes[0].sfence(now, s);
                    now = f.retire;
                    retire = retire.max(f.retire);
                });
            }
        }
        if pattern.final_fence {
            drive(&mut looped.platform, &mut |p, s| {
                let f = p.nodes[0].sfence(now, s);
                retire = retire.max(f.retire);
            });
        }

        prop_assert_eq!(out.issued, now, "issue clocks diverge");
        prop_assert_eq!(out.retire, retire, "retire times diverge");
        prop_assert_eq!(&b_commits, &l_commits, "commit streams diverge");
        let cap = burst.platform.nodes[1].mem.capacity();
        prop_assert_eq!(cap, looped.platform.nodes[1].mem.capacity());
        prop_assert!(
            burst.platform.nodes[1].mem.peek(0, cap) == looped.platform.nodes[1].mem.peek(0, cap),
            "destination memory images diverge"
        );
    }

    /// Latency is monotone in message size and bandwidth curves stay
    /// within physical bounds on the simulated prototype.
    #[test]
    fn sim_measurements_physically_bounded(size_pow in 6u32..12) {
        let spec = ClusterSpec::new(SupernodeSpec::new(1, MB), ClusterTopology::Pair);
        let mut sim = tccluster::SimCluster::boot(spec, UarchParams::shanghai());
        let size = 1usize << size_pow;
        let lat = sim.pingpong(0, 1, size, 10);
        let bigger = sim.pingpong(0, 1, size * 2, 10);
        prop_assert!(bigger > lat, "latency must grow with size");
        let bw = sim.stream_bandwidth(0, 1, size, SendMode::WeaklyOrdered, 5);
        // Nothing may exceed the absorption stage's 5.5 GB/s, and
        // everything should beat 100 MB/s.
        prop_assert!(bw < 5_800.0, "{} MB/s exceeds physics", bw);
        prop_assert!(bw > 100.0, "{} MB/s implausibly slow", bw);
    }
}
