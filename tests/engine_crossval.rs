//! Cross-validation of the two fabric timing engines.
//!
//! The chained analytic engine and the discrete-event engine model the
//! same hardware; wherever their validity domains overlap (single-flow
//! eager traffic) they must tell the same story. These tests pin them to
//! each other across randomized link configurations, and pin the event
//! engine's conservation properties (no packet lost, every credit home,
//! TCC discipline clean) under the concurrent workloads only it can run.

use proptest::prelude::*;
use tcc_firmware::topology::ClusterTopology;
use tcc_ht::link::LinkConfig;
use tcc_msglib::SendMode;
use tcc_verify::{check_conservation, InvariantMonitor, PortRef, TransitCounts};
use tccluster::{EngineKind, TcclusterBuilder, TrafficPattern};

/// Wire shapes worth cross-validating: real HT clock steps around the
/// paper's prototype, both cable widths, and a spread of cable lengths.
fn arb_link() -> impl Strategy<Value = LinkConfig> {
    (
        prop_oneof![Just(400), Just(600), Just(800), Just(1_000), Just(1_200)],
        prop_oneof![Just(8u8), Just(16u8)],
        40u64..=60,
    )
        .prop_map(|(clock_mhz, width_bits, hop_ns)| LinkConfig {
            clock_mhz,
            width_bits,
            hop_latency: tcc_fabric::time::Duration::from_nanos(hop_ns),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Single-flow eager streaming goodput agrees between the engines
    /// within tolerance for any link shape, message size and send mode.
    /// (Eager sizes only: the rendezvous clock-stop is sender-side by
    /// design in the chained engine and delivery-side in the event
    /// engine, so the paper's absorption artifact is chained-only.)
    #[test]
    fn engines_agree_on_single_flow_goodput(
        link in arb_link(),
        size_exp in 6u32..=10,
        mode in prop_oneof![Just(SendMode::WeaklyOrdered), Just(SendMode::StrictlyOrdered)],
    ) {
        let size = 1usize << size_exp;
        let builder = TcclusterBuilder::new().tcc_link(link);
        let mut chained = builder.clone().build_sim();
        let mut event = builder.engine(EngineKind::EventDriven).build_sim();
        let bw_c = chained.stream_bandwidth(0, 1, size, mode, 20);
        let bw_e = event.stream_bandwidth(0, 1, size, mode, 20);
        let err = (bw_e - bw_c).abs() / bw_c;
        prop_assert!(
            err < 0.12,
            "engines disagree at {size} B {mode:?} on {link:?}: \
             chained {bw_c:.0} vs event {bw_e:.0} MB/s ({:.1}%)",
            err * 100.0
        );
    }

    /// Half-round-trip latency agrees between the engines for eager
    /// ping-pong at any link shape.
    #[test]
    fn engines_agree_on_latency(link in arb_link(), size_exp in 6u32..=9) {
        let size = 1usize << size_exp;
        let builder = TcclusterBuilder::new().tcc_link(link);
        let mut chained = builder.clone().build_sim();
        let mut event = builder.engine(EngineKind::EventDriven).build_sim();
        let lat_c = chained.pingpong(0, 1, size, 15).nanos();
        let lat_e = event.pingpong(0, 1, size, 15).nanos();
        let err = (lat_e - lat_c).abs() / lat_c;
        prop_assert!(
            err < 0.10,
            "latency disagrees at {size} B on {link:?}: \
             chained {lat_c:.1} vs event {lat_e:.1} ns"
        );
    }
}

/// The tentpole conservation pin: concurrent all-to-all on a 2x2 mesh
/// through the event engine, with the tcc-verify invariant monitors
/// mounted on the packet path, delivers every injected packet, engages
/// flow control, returns every credit, and trips no invariant.
#[test]
fn mesh_all_to_all_conserves_packets_and_credits() {
    let mut cluster = TcclusterBuilder::new()
        .topology(ClusterTopology::Mesh { x: 2, y: 2 })
        .processors_per_supernode(2)
        .engine(EngineKind::EventDriven)
        .build_sim();
    let (monitor, handle) = InvariantMonitor::new();
    cluster.platform.with_monitors(monitor);

    let report = cluster.run_workload(TrafficPattern::AllToAll, 32 << 10);

    // Every packet injected by every flow landed in its window.
    assert_eq!(report.flows.len(), 12);
    assert_eq!(report.lost_packets(), 0, "{report:?}");
    assert_eq!(report.injected_packets, 12 * 512);
    for flow in &report.flows {
        assert_eq!(
            flow.delivered_bytes,
            32 << 10,
            "flow {}->{} incomplete",
            flow.src,
            flow.dst
        );
        assert!(flow.goodput_mbps() > 0.0);
    }
    // Contention is real: someone ran out of credits along the way.
    assert!(
        report.stalls_no_credit > 0,
        "all-to-all on a 2x2 mesh never hit flow control"
    );

    // The monitors saw every wire crossing — data hops *and* the credit
    // NOPs riding the reverse directions — and stayed clean.
    assert!(
        handle.is_clean(),
        "invariant violations: {:?}",
        handle.with(|m| m.violations.clone())
    );
    assert!(
        handle.packets_seen() > report.delivered_packets,
        "monitor must also see forwarded hops and credit NOPs: {} vs {}",
        handle.packets_seen(),
        report.delivered_packets
    );

    // Credit-ledger conservation on every directed wire: at quiescence
    // nothing is in transit, so the transmitter's pools plus the
    // receiver's occupancy must account for every credit exactly.
    let engine = cluster.event_engine().expect("event engine");
    let mut audited = 0;
    for (node, link) in engine.port_ids() {
        let port = engine.port(node, link).expect("listed port");
        let (peer, peer_link) = port.peer();
        let peer_port = engine.port(peer, peer_link).expect("peer port");
        let violations = check_conservation(
            PortRef { node, link: link.0 },
            port.tx().credits(),
            peer_port.rx().buffers(),
            &TransitCounts::default(),
        );
        assert!(violations.is_empty(), "credit ledger: {violations:?}");
        audited += 1;
    }
    // 2x2 mesh of 2-proc supernodes: 4 TCC cables + 4 board links, two
    // directions each.
    assert_eq!(audited, 16, "expected every directed wire to be audited");
}

/// Hotspot and halo patterns also complete without loss (smoke-level
/// pins for the congestion workloads the example drives).
#[test]
fn hotspot_and_halo_complete_without_loss() {
    let mut cluster = TcclusterBuilder::new()
        .topology(ClusterTopology::Mesh { x: 2, y: 2 })
        .processors_per_supernode(2)
        .engine(EngineKind::EventDriven)
        .build_sim();
    for pattern in [
        TrafficPattern::Hotspot { target: 0 },
        TrafficPattern::Halo,
        TrafficPattern::Single { src: 0, dst: 3 },
    ] {
        let report = cluster.run_workload(pattern, 8 << 10);
        assert_eq!(report.lost_packets(), 0, "{pattern:?}: {report:?}");
        assert!(report.delivered_packets > 0, "{pattern:?} moved nothing");
    }
}
