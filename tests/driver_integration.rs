//! Cross-layer integration: the `/dev/tcc` driver's user-space mappings
//! must agree with what the booted platform's northbridges actually do —
//! a store through a driver-mapped window lands in exactly the DRAM the
//! mapping named.

use tcc_driver::{AddressSpace, Backing, KernelConfig, TccDevice, PAGE};
use tcc_firmware::machine::Platform;
use tcc_firmware::tcc_boot::boot;
use tcc_firmware::topology::{ClusterSpec, ClusterTopology, SupernodeSpec};
use tcc_opteron::UarchParams;

const MB: u64 = 1 << 20;

#[test]
fn driver_mapping_agrees_with_fabric_routing() {
    let spec = ClusterSpec::new(SupernodeSpec::new(1, MB), ClusterTopology::Chain(3));
    let mut platform = Platform::assemble(spec, UarchParams::shanghai());
    boot(&mut platform);

    let kernel = KernelConfig::tcc_2_6_34();
    // Node 0 maps a window into node 2's memory (two hops away).
    let dev = TccDevice::open(spec, 0, 0, &kernel).expect("device opens");
    let mut aspace = AddressSpace::new();
    let user_va = 0x7f12_3400_0000u64;
    let window_off = 16 * PAGE;
    dev.map_remote(&mut aspace, user_va, 2, 0, window_off, 4 * PAGE)
        .expect("remote window");

    // A user store at (va + 0x88) translates to a global address…
    let store_va = user_va + PAGE + 0x88;
    let Backing::Remote { global_addr } = aspace.store_translate(store_va).expect("translates")
    else {
        panic!("expected remote backing")
    };
    assert_eq!(global_addr, spec.node_base(2, 0) + window_off + PAGE + 0x88);

    // …and issuing that store on the fabric lands the bytes in node 2's
    // DRAM at the same offset the driver promised.
    let now = tcc_fabric::time::SimTime(1_000_000_000);
    let (_, commits) = platform.store_and_propagate(0, now, global_addr, &[0x42u8; 8]);
    let expected_offset = window_off + PAGE + 0x88;
    assert!(
        commits
            .iter()
            .any(|c| c.node == 2 && c.offset == expected_offset),
        "store did not land where the mapping promised: {commits:?}"
    );
    assert_eq!(platform.nodes[2].mem.peek(expected_offset, 8), &[0x42u8; 8]);
}

#[test]
fn driver_refuses_what_the_fabric_cannot_do() {
    let spec = ClusterSpec::new(SupernodeSpec::new(1, MB), ClusterTopology::Pair);
    let kernel = KernelConfig::tcc_2_6_34();
    let dev = TccDevice::open(spec, 0, 0, &kernel).unwrap();
    let mut aspace = AddressSpace::new();
    dev.map_remote(&mut aspace, 0x1000_0000, 1, 0, 0, 4 * PAGE)
        .unwrap();
    // The fabric cannot route read responses; the driver surfaces that as
    // a protection fault on any load from the remote window.
    assert!(aspace.load_translate(0x1000_0000).is_err());
    // And the northbridge model says the same thing from the other side:
    // a read *request* still routes (it is addressed), but the *response*
    // coming back over the TCC link matches no local tag — the failure
    // mode that makes remote loads impossible (paper §IV.A).
    let mut platform = Platform::assemble(spec, UarchParams::shanghai());
    boot(&mut platform);
    let resp = tcc_ht::packet::Packet::control(tcc_ht::packet::Command::TgtDone {
        unit: tcc_ht::packet::UnitId::HOST,
        tag: tcc_ht::packet::SrcTag::new(5),
        error: false,
    });
    // Node 0's TCC port is East; for a 1-proc supernode that is link 3.
    let mut sink = tcc_opteron::ActionSink::new();
    let err = platform.nodes[0].deliver(
        tcc_fabric::time::SimTime(2_000_000_000),
        tcc_opteron::LinkId(3),
        resp,
        false,
        &mut sink,
    );
    assert!(matches!(err, Err(tcc_opteron::NbError::OrphanResponse)));
}
