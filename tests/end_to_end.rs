//! Cross-crate integration tests: the whole stack from firmware boot
//! through the message library to the middleware, exercised end to end.

use tcc_firmware::machine::Platform;
use tcc_firmware::tcc_boot::boot;
use tcc_firmware::topology::{ClusterSpec, ClusterTopology, SupernodeSpec};
use tcc_middleware::{Comm, GlobalArray, ReduceOp};
use tcc_msglib::SendMode;
use tcc_opteron::UarchParams;
use tccluster::{ShmCluster, SimCluster, TcclusterBuilder};

const MB: u64 = 1 << 20;

#[test]
fn paper_prototype_full_stack() {
    // Boot the two-board prototype, reproduce both headline numbers, and
    // confirm they beat the InfiniBand reference by the paper's margins.
    let mut sim = TcclusterBuilder::new().build_sim();
    assert_eq!(sim.boot.selftest_pairs, 2);

    let lat = sim.pingpong(0, 1, 64, 100).nanos();
    assert!((lat - 227.0).abs() < 25.0, "latency {lat:.1} ns");

    let bw = sim.stream_bandwidth(0, 1, 64, SendMode::WeaklyOrdered, 30);
    assert!((bw - 2500.0).abs() < 300.0, "bandwidth {bw:.0} MB/s");

    let ib = tcc_baseline::IbNic::connectx();
    assert!(ib.latency(64).nanos() / lat > 4.0, "latency advantage");
    assert!(bw / ib.bandwidth_mb_s(64) > 10.0, "bandwidth advantage");
}

#[test]
fn chain_boot_and_multihop_latency_monotone() {
    let spec = ClusterSpec::new(SupernodeSpec::new(1, MB), ClusterTopology::Chain(4));
    let mut sim = SimCluster::boot(spec, UarchParams::shanghai());
    // Latency to farther supernodes grows by a bounded per-hop increment.
    let l1 = sim.pingpong(0, 1, 64, 30).nanos();
    let l2 = sim.pingpong(0, 2, 64, 30).nanos();
    let l3 = sim.pingpong(0, 3, 64, 30).nanos();
    assert!(l1 < l2 && l2 < l3, "{l1:.0} {l2:.0} {l3:.0}");
    let per_hop_a = l2 - l1;
    let per_hop_b = l3 - l2;
    // Supernode-to-supernode hops cross a full cable + NB forward; they
    // must be bounded and roughly equal.
    assert!(per_hop_a < 150.0 && per_hop_b < 150.0);
    assert!((per_hop_a - per_hop_b).abs() < 30.0);
}

#[test]
fn mesh_boot_every_pair_communicates() {
    let spec = ClusterSpec::new(
        SupernodeSpec::new(2, MB),
        ClusterTopology::Mesh { x: 2, y: 2 },
    );
    let mut platform = Platform::assemble(spec, UarchParams::shanghai());
    let report = boot(&mut platform);
    assert_eq!(report.selftest_pairs, 12, "4 supernodes, all ordered pairs");
    // Interrupt containment was verified as part of boot; the trace
    // records the step.
    assert!(platform
        .trace
        .grep("verify-interrupt-containment")
        .len()
        .gt(&0));
}

#[test]
fn firmware_trace_proves_the_trick_ordering() {
    let mut sim = TcclusterBuilder::new().build_sim();
    let trace = &sim.platform.trace;
    // The §IV.B mechanism, as recorded facts:
    assert!(trace.happened_before("trained coherent", "force-ncHT programmed"));
    assert!(trace.happened_before("force-ncHT programmed", "warm-reset"));
    assert!(trace.happened_before("warm-reset", "trained non-coherent"));
    // And it still works after the boot: data actually flows.
    let lat = sim.pingpong(0, 1, 64, 10);
    assert!(lat.nanos() > 100.0 && lat.nanos() < 400.0);
}

#[test]
fn mpi_over_shm_cluster_convergence() {
    // A small iterative solve: distributed dot products via allreduce.
    const N: usize = 6;
    let results = ShmCluster::new(N, SendMode::WeaklyOrdered).run(|ctx| {
        let mut comm = Comm::new(ctx);
        let me = comm.rank() as f64;
        // x = rank-indexed vector; compute global sum of squares twice.
        let mut v = vec![me + 1.0];
        comm.allreduce(ReduceOp::Sum, &mut v);
        let s1 = v[0];
        comm.barrier();
        let mut w = vec![s1 * (me + 1.0)];
        comm.allreduce(ReduceOp::Sum, &mut w);
        w[0]
    });
    let s1: f64 = (1..=6).map(|i| i as f64).sum(); // 21
    let expect = s1 * s1;
    assert!(results.iter().all(|&r| r == expect), "{results:?}");
}

#[test]
fn pgas_and_mpi_share_a_cluster_run_sequentially() {
    // PGAS phase first, global barrier, then MPI phase — mirrors how an
    // application would mix models (never interleaved, as documented).
    let results = ShmCluster::new(4, SendMode::WeaklyOrdered).run(|ctx| {
        let mut ga = GlobalArray::new(ctx, 8);
        ga.put(ctx, (ctx.rank * 2) % 8, ctx.rank as f64);
        ga.put(ctx, (ctx.rank * 2 + 1) % 8, ctx.rank as f64);
        ga.fence(ctx);
        let mine: f64 = ga.local().iter().sum();
        // MPI phase.
        let mut comm = Comm::new(ctx);
        let mut v = vec![mine];
        comm.allreduce(ReduceOp::Sum, &mut v);
        v[0]
    });
    let expect: f64 = (0..4).map(|r| 2.0 * r as f64).sum();
    assert!(results.iter().all(|&r| r == expect), "{results:?}");
}

#[test]
fn strict_and_weak_modes_agree_functionally() {
    for mode in [SendMode::StrictlyOrdered, SendMode::WeaklyOrdered] {
        let results = ShmCluster::new(2, mode).run(|ctx| {
            if ctx.rank == 0 {
                let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
                ctx.send(1, &payload);
                ctx.recv(1)
            } else {
                let m = ctx.recv(0);
                ctx.send(0, &m[..64]);
                m
            }
        });
        assert_eq!(results[1].len(), 10_000);
        assert_eq!(results[0].len(), 64);
    }
}

#[test]
fn link_speed_scales_measured_bandwidth() {
    // HT3 backplane (future work in the paper) vs the HT800 cable.
    let slow = TcclusterBuilder::new().build_sim();
    drop(slow);
    let mut proto = TcclusterBuilder::new().build_sim();
    let mut fast = TcclusterBuilder::new()
        .tcc_link(tcc_ht::link::LinkConfig::HT3_FULL)
        .build_sim();
    let bw_proto = proto.stream_bandwidth(0, 1, 4 << 20, SendMode::WeaklyOrdered, 2);
    let bw_fast = fast.stream_bandwidth(0, 1, 4 << 20, SendMode::WeaklyOrdered, 2);
    // 3.25x raw link speedup; the sustained number must follow (bounded
    // by the absorption stage, so somewhat less).
    assert!(bw_fast > bw_proto * 1.5, "{bw_proto:.0} -> {bw_fast:.0}");
}
