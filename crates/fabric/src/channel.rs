//! Bandwidth- and latency-limited transfer resources.
//!
//! [`Channel`] models a store-and-forward pipe: a transfer occupies the
//! channel for its serialisation time (bytes / bandwidth) and arrives a fixed
//! propagation latency after serialisation completes. Back-to-back transfers
//! queue behind one another, which is exactly how a HyperTransport lane, a
//! DRAM channel, or a PCIe link behaves at packet granularity.
//!
//! [`RateLimiter`] is the serialisation half alone (no latency), useful for
//! modelling issue-rate-limited stages such as a store queue.

use crate::time::{Duration, SimTime};

/// Exact serialisation time of `bytes` at `bytes_per_sec`, in picoseconds.
///
/// Computed in `u128` so that multi-megabyte transfers at multi-GB/s rates
/// never overflow or lose precision to floating point.
#[inline]
pub fn serialization_ps(bytes: u64, bytes_per_sec: u64) -> u64 {
    assert!(bytes_per_sec > 0, "zero-bandwidth channel");
    let num = bytes as u128 * 1_000_000_000_000u128;
    // Round up: a partial picosecond still occupies the wire.
    num.div_ceil(bytes_per_sec as u128) as u64
}

/// A store-and-forward pipe with finite bandwidth and fixed latency.
#[derive(Debug, Clone)]
pub struct Channel {
    /// Propagation delay applied after serialisation.
    pub latency: Duration,
    /// Serialisation bandwidth in bytes per second.
    pub bytes_per_sec: u64,
    /// Earliest time the channel can begin serialising the next transfer.
    next_free: SimTime,
    /// Total bytes ever pushed through (statistics).
    bytes_total: u64,
    /// Total time the channel spent busy (statistics).
    busy: Duration,
    /// Small memo of recently computed serialisation times. Hot paths
    /// stream a handful of transfer sizes (64 B payloads, 8 B headers,
    /// 72 B wire packets), and the exact `u128` division is the single
    /// most expensive operation on the store path. A single entry
    /// thrashes when payload and header transfers alternate through the
    /// same channel, so keep a few; `(0, ZERO)` is a correct entry.
    memo: [(u64, Duration); Self::MEMO_ENTRIES],
    /// Round-robin replacement cursor for `memo`.
    memo_next: usize,
}

/// Result of submitting a transfer to a [`Channel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// When serialisation began (>= submission time if the channel was free).
    pub start: SimTime,
    /// When the last byte left the sender (channel becomes free).
    pub sent: SimTime,
    /// When the last byte arrives at the receiver (`sent + latency`).
    pub arrival: SimTime,
}

impl Channel {
    const MEMO_ENTRIES: usize = 4;

    #[must_use]
    pub fn new(latency: Duration, bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "zero-bandwidth channel");
        Channel {
            latency,
            bytes_per_sec,
            next_free: SimTime::ZERO,
            bytes_total: 0,
            busy: Duration::ZERO,
            memo: [(0, Duration::ZERO); Self::MEMO_ENTRIES],
            memo_next: 0,
        }
    }

    /// Serialisation time of `bytes` on this channel, memoised.
    #[inline]
    fn serialization(&mut self, bytes: u64) -> Duration {
        for &(b, d) in &self.memo {
            if b == bytes {
                return d;
            }
        }
        let d = Duration(serialization_ps(bytes, self.bytes_per_sec));
        self.memo[self.memo_next] = (bytes, d);
        self.memo_next = (self.memo_next + 1) % Self::MEMO_ENTRIES;
        d
    }

    /// Submit a transfer of `bytes` at time `now`.
    pub fn transfer(&mut self, now: SimTime, bytes: u64) -> Transfer {
        let start = now.max(self.next_free);
        let ser = self.serialization(bytes);
        let sent = start + ser;
        self.next_free = sent;
        self.bytes_total += bytes;
        self.busy += ser;
        Transfer {
            start,
            sent,
            arrival: sent + self.latency,
        }
    }

    /// Earliest time a new transfer could begin.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Whether the channel is idle at `now`.
    pub fn is_free(&self, now: SimTime) -> bool {
        self.next_free <= now
    }

    /// Queueing delay a transfer submitted at `now` would see.
    pub fn backlog(&self, now: SimTime) -> Duration {
        self.next_free.since(now)
    }

    pub fn bytes_total(&self) -> u64 {
        self.bytes_total
    }

    pub fn busy_time(&self) -> Duration {
        self.busy
    }

    /// Reset occupancy (e.g. across warm resets) but keep configuration.
    pub fn reset(&mut self) {
        self.next_free = SimTime::ZERO;
        self.bytes_total = 0;
        self.busy = Duration::ZERO;
    }
}

/// A pure rate limiter: items are admitted no faster than one per `gap`.
#[derive(Debug, Clone)]
pub struct RateLimiter {
    pub gap: Duration,
    next_free: SimTime,
}

impl RateLimiter {
    #[must_use]
    pub fn new(gap: Duration) -> Self {
        RateLimiter {
            gap,
            next_free: SimTime::ZERO,
        }
    }

    /// Admit one item at `now`; returns the time it is actually admitted.
    pub fn admit(&mut self, now: SimTime) -> SimTime {
        let at = now.max(self.next_free);
        self.next_free = at + self.gap;
        at
    }

    pub fn next_free(&self) -> SimTime {
        self.next_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1_000_000_000;

    #[test]
    fn serialization_exact() {
        // 64 bytes at 3.2 GB/s = 20 ns.
        assert_eq!(serialization_ps(64, 3_200_000_000), 20_000);
        // 1 byte at 1 B/s = 1 second.
        assert_eq!(serialization_ps(1, 1), 1_000_000_000_000);
        // Rounds up.
        assert_eq!(serialization_ps(1, 3), 333_333_333_334);
    }

    #[test]
    fn no_overflow_at_scale() {
        // 4 GiB at 12.8 GB/s — would overflow naive u64 math.
        let ps = serialization_ps(4 << 30, 12_800_000_000);
        let secs = ps as f64 / 1e12;
        assert!((secs - (4u64 << 30) as f64 / 12.8e9).abs() < 1e-6);
    }

    #[test]
    fn idle_channel_transfer() {
        let mut ch = Channel::new(Duration::from_nanos(50), 3_200_000_000);
        let t = ch.transfer(SimTime::ZERO, 64);
        assert_eq!(t.start, SimTime::ZERO);
        assert_eq!(t.sent, SimTime(20_000));
        assert_eq!(t.arrival, SimTime(70_000)); // 20 ns ser + 50 ns prop
    }

    #[test]
    fn back_to_back_queues() {
        let mut ch = Channel::new(Duration::from_nanos(50), 3_200_000_000);
        let a = ch.transfer(SimTime::ZERO, 64);
        let b = ch.transfer(SimTime::ZERO, 64);
        assert_eq!(b.start, a.sent, "second transfer waits for the wire");
        assert_eq!(b.arrival, SimTime(90_000));
        assert!(!ch.is_free(SimTime(30_000)));
        assert!(ch.is_free(SimTime(40_000)));
        assert_eq!(ch.bytes_total(), 128);
        assert_eq!(ch.busy_time(), Duration::from_nanos(40));
    }

    #[test]
    fn gap_between_transfers_leaves_wire_idle() {
        let mut ch = Channel::new(Duration::ZERO, GB);
        ch.transfer(SimTime::ZERO, 1000); // busy until 1 us
        let t = ch.transfer(SimTime(5_000_000), 1000); // submitted at 5 us
        assert_eq!(t.start, SimTime(5_000_000));
        assert_eq!(ch.busy_time(), Duration::from_micros(2));
    }

    #[test]
    fn sustained_rate_matches_bandwidth() {
        // Pushing 1 MB as 64 B packets through a 2.7 GB/s channel must take
        // 1 MB / 2.7 GB/s regardless of packetisation.
        let mut ch = Channel::new(Duration::from_nanos(50), 2_700_000_000);
        let mut last = SimTime::ZERO;
        let total: u64 = 1 << 20;
        for _ in 0..total / 64 {
            last = ch.transfer(SimTime::ZERO, 64).arrival;
        }
        let secs = (last.picos() - 50_000) as f64 / 1e12;
        let rate = total as f64 / secs;
        assert!((rate - 2.7e9).abs() / 2.7e9 < 0.001, "rate = {rate}");
    }

    #[test]
    fn backlog_reporting() {
        let mut ch = Channel::new(Duration::ZERO, GB);
        assert_eq!(ch.backlog(SimTime::ZERO), Duration::ZERO);
        ch.transfer(SimTime::ZERO, 2000);
        assert_eq!(ch.backlog(SimTime::ZERO), Duration::from_micros(2));
        assert_eq!(ch.backlog(SimTime(1_000_000)), Duration::from_micros(1));
    }

    #[test]
    fn rate_limiter_spaces_admissions() {
        let mut rl = RateLimiter::new(Duration::from_nanos(10));
        assert_eq!(rl.admit(SimTime::ZERO), SimTime::ZERO);
        assert_eq!(rl.admit(SimTime::ZERO), SimTime(10_000));
        assert_eq!(rl.admit(SimTime(100_000)), SimTime(100_000));
    }

    #[test]
    fn reset_clears_occupancy() {
        let mut ch = Channel::new(Duration::ZERO, GB);
        ch.transfer(SimTime::ZERO, 1 << 20);
        ch.reset();
        assert!(ch.is_free(SimTime::ZERO));
        assert_eq!(ch.bytes_total(), 0);
    }
}
