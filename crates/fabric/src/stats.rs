//! Measurement plumbing: counters, histograms and time-weighted gauges.
//!
//! Every experiment harness reports through these so that the figure
//! binaries all print consistent summaries.

use crate::time::{Duration, SimTime};
use core::fmt;

/// A monotonically increasing event counter.
#[derive(Debug, Default, Clone)]
pub struct Counter {
    n: u64,
}

impl Counter {
    pub fn inc(&mut self) {
        self.n += 1;
    }

    pub fn add(&mut self, k: u64) {
        self.n += k;
    }

    pub fn get(&self) -> u64 {
        self.n
    }
}

/// A sample-based histogram keeping exact values for percentile queries.
///
/// Experiments collect at most a few hundred thousand samples, so keeping
/// them (8 bytes each) is cheap and gives exact quantiles instead of the
/// bucketing error a fixed-bin histogram would introduce.
#[derive(Debug, Default, Clone)]
pub struct Histogram {
    samples: Vec<u64>,
    sorted: bool,
    sum: u128,
}

impl Histogram {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, v: u64) {
        self.samples.push(v);
        self.sum += v as u128;
        self.sorted = false;
    }

    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.picos());
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.sum as f64 / self.samples.len() as f64
    }

    pub fn min(&self) -> u64 {
        self.samples.iter().copied().min().unwrap_or(0)
    }

    pub fn max(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    /// Exact q-quantile (0.0 ..= 1.0) by nearest-rank.
    pub fn quantile(&mut self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.samples.is_empty() {
            return 0;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let rank = ((self.samples.len() as f64 - 1.0) * q).round() as usize;
        self.samples[rank]
    }

    pub fn median(&mut self) -> u64 {
        self.quantile(0.5)
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var: f64 = self
            .samples
            .iter()
            .map(|&v| {
                let d = v as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / (n as f64 - 1.0);
        var.sqrt()
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut h = self.clone();
        write!(
            f,
            "n={} mean={} p50={} p99={} min={} max={}",
            h.len(),
            Duration(h.mean() as u64),
            Duration(h.median()),
            Duration(h.quantile(0.99)),
            Duration(h.min()),
            Duration(h.max()),
        )
    }
}

/// A time-weighted gauge: tracks a level over simulated time and reports its
/// time-average (e.g. queue occupancy, credits outstanding).
#[derive(Debug, Clone)]
pub struct Gauge {
    level: i64,
    last_change: SimTime,
    weighted_sum: i128,
    max_level: i64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            level: 0,
            last_change: SimTime::ZERO,
            weighted_sum: 0,
            max_level: 0,
        }
    }
}

impl Gauge {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn settle(&mut self, now: SimTime) {
        let dt = now.since(self.last_change).picos();
        self.weighted_sum += self.level as i128 * dt as i128;
        self.last_change = now;
    }

    pub fn set(&mut self, now: SimTime, level: i64) {
        self.settle(now);
        self.level = level;
        self.max_level = self.max_level.max(level);
    }

    pub fn adjust(&mut self, now: SimTime, delta: i64) {
        let l = self.level + delta;
        self.set(now, l);
    }

    pub fn level(&self) -> i64 {
        self.level
    }

    pub fn max_level(&self) -> i64 {
        self.max_level
    }

    /// Time-average of the level over [0, now].
    pub fn average(&mut self, now: SimTime) -> f64 {
        self.settle(now);
        if now.picos() == 0 {
            return self.level as f64;
        }
        self.weighted_sum as f64 / now.picos() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::default();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn histogram_quantiles_exact() {
        let mut h = Histogram::new();
        for v in [5u64, 1, 9, 3, 7] {
            h.record(v);
        }
        assert_eq!(h.len(), 5);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 9);
        assert_eq!(h.median(), 5);
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 9);
        assert!((h.mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_stddev() {
        let mut h = Histogram::new();
        for v in [2u64, 4, 4, 4, 5, 5, 7, 9] {
            h.record(v);
        }
        // Known sample stddev of this classic dataset: ~2.138.
        assert!((h.stddev() - 2.13808993).abs() < 1e-6);
    }

    #[test]
    fn histogram_interleaves_record_and_quantile() {
        let mut h = Histogram::new();
        h.record(10);
        assert_eq!(h.median(), 10);
        h.record(20);
        h.record(30);
        assert_eq!(h.median(), 20, "re-sorts after new samples");
    }

    #[test]
    fn empty_histogram_is_safe() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.median(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.stddev(), 0.0);
    }

    #[test]
    fn gauge_time_average() {
        let mut g = Gauge::new();
        g.set(SimTime(0), 10); // level 10 for 100 ps
        g.set(SimTime(100), 0); // level 0 for 100 ps
        assert_eq!(g.max_level(), 10);
        let avg = g.average(SimTime(200));
        assert!((avg - 5.0).abs() < 1e-12, "avg = {avg}");
    }

    #[test]
    fn gauge_adjust() {
        let mut g = Gauge::new();
        g.adjust(SimTime(0), 3);
        g.adjust(SimTime(50), -1);
        assert_eq!(g.level(), 2);
    }
}
