//! # tcc-fabric — discrete-event simulation kernel
//!
//! The substrate every simulated subsystem of the TCCluster reproduction is
//! built on:
//!
//! * [`time`] — a picosecond-resolution simulated clock.
//! * [`event`] — a deterministic time-ordered event queue.
//! * [`sim`] — the executive driving a [`sim::Model`] to quiescence.
//! * [`channel`] — bandwidth/latency-limited transfer resources (links,
//!   DRAM channels, PCIe) with exact integer serialisation math.
//! * [`stats`] — counters, exact-quantile histograms, time-weighted gauges.
//! * [`rng`] — deterministic xoshiro256** / SplitMix64 generators.
//! * [`trace`] — ordered event traces for boot sequences and protocol FSMs.
//! * [`series`] — figure/table output shared by all experiment harnesses.

#![forbid(unsafe_code)]

pub mod channel;
pub mod event;
pub mod rng;
pub mod series;
pub mod sim;
pub mod stats;
pub mod time;
pub mod trace;

pub use channel::{Channel, RateLimiter, Transfer};
pub use event::EventQueue;
pub use rng::Xoshiro256;
pub use series::{Figure, Series};
pub use sim::{Model, Sim, Stop};
pub use stats::{Counter, Gauge, Histogram};
pub use time::{Duration, SimTime};
pub use trace::Trace;
