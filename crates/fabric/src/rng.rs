//! Deterministic pseudo-random number generation.
//!
//! Experiments must be reproducible bit-for-bit across runs and across
//! versions of external crates, so the kernel carries its own
//! xoshiro256** generator (Blackman & Vigna) seeded through SplitMix64.
//! It also implements [`rand::RngCore`] so `rand` distributions can be used
//! on top when convenient.

/// SplitMix64 — used to expand a single `u64` seed into generator state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** 1.0 — the kernel's workhorse generator.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed via SplitMix64 as the xoshiro authors recommend.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Xoshiro256 { s }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)` via Lemire's multiply-shift reduction.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Unbiased enough for simulation purposes (bias < 2^-64 * bound).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Split off an independently-seeded child generator (for per-node RNGs).
    pub fn split(&mut self) -> Xoshiro256 {
        Xoshiro256::seeded(self.next_u64())
    }
}

// `rand` 0.10 derives its infallible `Rng` trait from `TryRng` with an
// `Infallible` error, so implementing `TryRng` is what makes `Xoshiro256`
// usable with `rand` distributions.
impl rand::TryRng for Xoshiro256 {
    type Error = core::convert::Infallible;

    fn try_next_u32(&mut self) -> Result<u32, Self::Error> {
        Ok((self.next_u64() >> 32) as u32)
    }

    fn try_next_u64(&mut self) -> Result<u64, Self::Error> {
        Ok(Xoshiro256::next_u64(self))
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Self::Error> {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 (from the public-domain
        // splitmix64.c output).
        let mut sm = SplitMix64::new(1234567);
        let v: Vec<u64> = (0..3).map(|_| sm.next_u64()).collect();
        assert_eq!(v[0], 6457827717110365317);
        assert_eq!(v[1], 3203168211198807973);
        assert_eq!(v[2], 9817491932198370423);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = Xoshiro256::seeded(42);
        let mut b = Xoshiro256::seeded(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256::seeded(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_in_bounds_and_covers() {
        let mut r = Xoshiro256::seeded(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit in 1000 draws");
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = Xoshiro256::seeded(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Xoshiro256::seeded(5);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_handles_remainder() {
        use rand::Rng;
        let mut r = Xoshiro256::seeded(11);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn split_decorrelates() {
        let mut parent = Xoshiro256::seeded(1);
        let mut a = parent.split();
        let mut b = parent.split();
        let eq = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(eq, 0);
    }
}
