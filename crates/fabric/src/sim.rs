//! The simulation executive: owns the clock and the event queue and drives a
//! user-supplied [`Model`] until quiescence or a time/event limit.
//!
//! The kernel is deliberately *not* built on trait-object component graphs —
//! cross-referencing mutable components fights the borrow checker and costs
//! virtual dispatch in the hot loop. Instead, a whole simulated system is one
//! [`Model`] value with one event enum; sub-systems are plain structs whose
//! methods return *actions* that the model turns into future events.

use crate::event::EventQueue;
use crate::time::{Duration, SimTime};

/// A simulated system: a state machine advanced by timed events.
pub trait Model {
    /// The system-wide event type.
    type Event;

    /// Handle `event` firing at time `now`; schedule follow-ups on `queue`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Why a [`Sim::run`] call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stop {
    /// The event queue drained — nothing left to do.
    Quiescent,
    /// The time horizon passed with events still pending.
    Horizon,
    /// The event budget was exhausted (runaway protection).
    EventLimit,
}

/// The simulation executive.
#[derive(Debug)]
pub struct Sim<M: Model> {
    pub model: M,
    queue: EventQueue<M::Event>,
    now: SimTime,
    events_handled: u64,
}

impl<M: Model> Sim<M> {
    #[must_use]
    pub fn new(model: M) -> Self {
        Sim {
            model,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            events_handled: 0,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    pub fn events_handled(&self) -> u64 {
        self.events_handled
    }

    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule an event at an absolute time (must not be in the past).
    pub fn schedule_at(&mut self, at: SimTime, event: M::Event) {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        self.queue.schedule_at(at, event);
    }

    /// Schedule an event `after` from now.
    pub fn schedule_in(&mut self, after: Duration, event: M::Event) {
        self.queue.schedule_in(self.now, after, event);
    }

    /// Run until the queue drains.
    pub fn run(&mut self) -> Stop {
        self.run_until(SimTime::MAX, u64::MAX)
    }

    /// Run until the queue drains, `horizon` passes, or `max_events` fire.
    pub fn run_until(&mut self, horizon: SimTime, max_events: u64) -> Stop {
        let mut budget = max_events;
        loop {
            match self.queue.peek_time() {
                None => return Stop::Quiescent,
                Some(t) if t > horizon => return Stop::Horizon,
                Some(_) => {}
            }
            if budget == 0 {
                return Stop::EventLimit;
            }
            budget -= 1;
            let (t, ev) = self.queue.pop().expect("peeked event exists");
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.events_handled += 1;
            self.model.handle(t, ev, &mut self.queue);
        }
    }

    /// Rebuild an executive around a previously parked queue and clock.
    ///
    /// This is the persistence hook for models that cannot live inside a
    /// long-lived `Sim` value: the N-node fabric engine borrows the booted
    /// platform only for the duration of one run, so between runs it parks
    /// its queue/clock (via [`into_parts`](Self::into_parts)) and resumes
    /// them here with a fresh short-lived model borrow.
    #[must_use]
    pub fn resume(model: M, queue: EventQueue<M::Event>, now: SimTime) -> Self {
        Sim {
            model,
            queue,
            now,
            events_handled: 0,
        }
    }

    /// Dismantle the executive, returning the model, the pending event
    /// queue and the current clock so a later [`resume`](Self::resume)
    /// picks up exactly where this run stopped.
    #[must_use]
    pub fn into_parts(self) -> (M, EventQueue<M::Event>, SimTime) {
        (self.model, self.queue, self.now)
    }

    /// Run a single event, returning its time, or `None` if quiescent.
    pub fn step(&mut self) -> Option<SimTime> {
        let (t, ev) = self.queue.pop()?;
        self.now = t;
        self.events_handled += 1;
        self.model.handle(t, ev, &mut self.queue);
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy model: a counter that reschedules itself `n` times.
    struct Ticker {
        ticks: u64,
        period: Duration,
        remaining: u64,
        last: SimTime,
    }

    impl Model for Ticker {
        type Event = ();
        fn handle(&mut self, now: SimTime, _: (), queue: &mut EventQueue<()>) {
            self.ticks += 1;
            self.last = now;
            if self.remaining > 0 {
                self.remaining -= 1;
                queue.schedule_in(now, self.period, ());
            }
        }
    }

    fn ticker(n: u64) -> Sim<Ticker> {
        let mut sim = Sim::new(Ticker {
            ticks: 0,
            period: Duration::from_nanos(10),
            remaining: n,
            last: SimTime::ZERO,
        });
        sim.schedule_at(SimTime::ZERO, ());
        sim
    }

    #[test]
    fn runs_to_quiescence() {
        let mut sim = ticker(9);
        assert_eq!(sim.run(), Stop::Quiescent);
        assert_eq!(sim.model.ticks, 10);
        assert_eq!(sim.model.last, SimTime(90_000));
        assert_eq!(sim.now(), SimTime(90_000));
        assert_eq!(sim.events_handled(), 10);
    }

    #[test]
    fn horizon_stops_early_without_consuming() {
        let mut sim = ticker(1_000);
        assert_eq!(sim.run_until(SimTime(45_000), u64::MAX), Stop::Horizon);
        // Ticks at 0,10,20,30,40 ns fired; 50 ns is pending.
        assert_eq!(sim.model.ticks, 5);
        assert_eq!(sim.pending(), 1);
        // Resuming picks up exactly where it left off.
        assert_eq!(sim.run(), Stop::Quiescent);
        assert_eq!(sim.model.ticks, 1_001);
    }

    #[test]
    fn event_limit_guards_runaway() {
        let mut sim = ticker(u64::MAX);
        assert_eq!(sim.run_until(SimTime::MAX, 100), Stop::EventLimit);
        assert_eq!(sim.model.ticks, 100);
    }

    #[test]
    fn resume_continues_a_parked_run() {
        let mut sim = ticker(10);
        assert_eq!(sim.run_until(SimTime(45_000), u64::MAX), Stop::Horizon);
        let (model, queue, now) = sim.into_parts();
        let mut sim = Sim::resume(model, queue, now);
        assert_eq!(sim.run(), Stop::Quiescent);
        assert_eq!(sim.model.ticks, 11);
        assert_eq!(sim.now(), SimTime(100_000));
    }

    #[test]
    fn step_advances_one_event() {
        let mut sim = ticker(2);
        assert_eq!(sim.step(), Some(SimTime::ZERO));
        assert_eq!(sim.step(), Some(SimTime(10_000)));
        assert_eq!(sim.step(), Some(SimTime(20_000)));
        assert_eq!(sim.step(), None);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut sim = ticker(5);
        sim.run();
        sim.schedule_at(SimTime(1), ());
    }
}
