//! Lightweight event tracing.
//!
//! The firmware boot sequence and the protocol state machines log their
//! transitions here so tests can assert on ordering ("force-ncHT happened
//! before the warm reset") and examples can print readable boot traces.

use crate::time::SimTime;
use core::fmt;

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    pub at: SimTime,
    /// Component that emitted the record, e.g. `"node0.nb"`.
    pub source: String,
    /// Free-form message.
    pub what: String,
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12}] {:<16} {}",
            format!("{}", self.at),
            self.source,
            self.what
        )
    }
}

/// An append-only trace buffer with an optional capacity bound.
#[derive(Debug, Default)]
pub struct Trace {
    records: Vec<Record>,
    capacity: Option<usize>,
    dropped: u64,
    enabled: bool,
}

impl Trace {
    /// An enabled, unbounded trace.
    #[must_use]
    pub fn new() -> Self {
        Trace {
            records: Vec::new(),
            capacity: None,
            dropped: 0,
            enabled: true,
        }
    }

    /// An enabled trace that keeps only the most recent `cap` records.
    pub fn bounded(cap: usize) -> Self {
        Trace {
            records: Vec::new(),
            capacity: Some(cap),
            dropped: 0,
            enabled: true,
        }
    }

    /// A disabled trace: `log` is a no-op (zero-cost in hot paths that
    /// format lazily via [`Trace::log_with`]).
    pub fn disabled() -> Self {
        Trace {
            enabled: false,
            ..Trace::new()
        }
    }

    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub fn log(&mut self, at: SimTime, source: impl Into<String>, what: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if let Some(cap) = self.capacity {
            if self.records.len() == cap {
                self.records.remove(0);
                self.dropped += 1;
            }
        }
        self.records.push(Record {
            at,
            source: source.into(),
            what: what.into(),
        });
    }

    /// Log with lazy message construction — the closure only runs when the
    /// trace is enabled.
    pub fn log_with(&mut self, at: SimTime, source: &str, what: impl FnOnce() -> String) {
        if self.enabled {
            self.log(at, source, what());
        }
    }

    pub fn records(&self) -> &[Record] {
        &self.records
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// All records whose message contains `needle`, in order. (Named
    /// `grep` rather than `find` so name-based call-graph resolution in
    /// tcc-analyze never confuses it with `Iterator::find`.)
    pub fn grep(&self, needle: &str) -> Vec<&Record> {
        self.records
            .iter()
            .filter(|r| r.what.contains(needle) || r.source.contains(needle))
            .collect()
    }

    /// Index of the first record whose message contains `needle`.
    pub fn position(&self, needle: &str) -> Option<usize> {
        self.records.iter().position(|r| r.what.contains(needle))
    }

    /// Assert helper: `a` was logged strictly before `b`.
    pub fn happened_before(&self, a: &str, b: &str) -> bool {
        match (self.position(a), self.position(b)) {
            (Some(i), Some(j)) => i < j,
            _ => false,
        }
    }

    pub fn clear(&mut self) {
        self.records.clear();
        self.dropped = 0;
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.records {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logs_in_order() {
        let mut t = Trace::new();
        t.log(SimTime(10), "a", "first");
        t.log(SimTime(20), "b", "second");
        assert_eq!(t.len(), 2);
        assert!(t.happened_before("first", "second"));
        assert!(!t.happened_before("second", "first"));
        assert!(!t.happened_before("first", "missing"));
    }

    #[test]
    fn bounded_drops_oldest() {
        let mut t = Trace::bounded(2);
        t.log(SimTime(1), "x", "one");
        t.log(SimTime(2), "x", "two");
        t.log(SimTime(3), "x", "three");
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.records()[0].what, "two");
    }

    #[test]
    fn disabled_is_noop() {
        let mut t = Trace::disabled();
        t.log(SimTime(1), "x", "hidden");
        let mut ran = false;
        t.log_with(SimTime(2), "x", || {
            ran = true;
            "lazy".into()
        });
        assert!(t.is_empty());
        assert!(!ran, "lazy closure must not run when disabled");
    }

    #[test]
    fn find_filters_by_source_and_message() {
        let mut t = Trace::new();
        t.log(SimTime(1), "node0.nb", "route programmed");
        t.log(SimTime(2), "node1.nb", "route programmed");
        t.log(SimTime(3), "node0.core", "sfence");
        assert_eq!(t.grep("route").len(), 2);
        assert_eq!(t.grep("node0").len(), 2);
        assert_eq!(t.grep("sfence").len(), 1);
    }

    #[test]
    fn display_formats() {
        let mut t = Trace::new();
        t.log(SimTime(1_000), "fw", "cold reset");
        let s = format!("{t}");
        assert!(s.contains("cold reset"));
        assert!(s.contains("fw"));
    }
}
