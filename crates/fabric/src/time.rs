//! Simulated time.
//!
//! The simulation clock counts **picoseconds** in a `u64`, which covers
//! roughly 213 days of simulated time — far beyond anything the TCCluster
//! experiments need (the longest runs simulate a few seconds) — while still
//! resolving a single bit-time of an HT3.2 lane (~156 ps) exactly.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in picoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    #[inline]
    pub fn picos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn nanos(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    #[inline]
    pub fn micros(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating difference `self - earlier`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl Duration {
    pub const ZERO: Duration = Duration(0);

    #[inline]
    pub const fn from_picos(ps: u64) -> Duration {
        Duration(ps)
    }

    #[inline]
    pub const fn from_nanos(ns: u64) -> Duration {
        Duration(ns.saturating_mul(1_000))
    }

    #[inline]
    pub const fn from_micros(us: u64) -> Duration {
        Duration(us.saturating_mul(1_000_000))
    }

    #[inline]
    pub const fn from_millis(ms: u64) -> Duration {
        Duration(ms.saturating_mul(1_000_000_000))
    }

    #[inline]
    pub fn picos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn nanos(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    #[inline]
    pub fn micros(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Multiply by an integer count (saturating).
    #[inline]
    pub fn times(self, n: u64) -> Duration {
        Duration(self.0.saturating_mul(n))
    }

    /// Bytes-per-second rate sustained when `bytes` take this duration.
    ///
    /// Returns `f64::INFINITY` for a zero duration.
    pub fn bytes_per_sec(self, bytes: u64) -> f64 {
        if self.0 == 0 {
            return f64::INFINITY;
        }
        bytes as f64 * 1e12 / self.0 as f64
    }

    /// Megabytes (1e6 bytes) per second — the unit the paper's figures use.
    pub fn mb_per_sec(self, bytes: u64) -> f64 {
        self.bytes_per_sec(bytes) / 1e6
    }
}

// The `+` impls saturate: `SimTime::MAX` is the "never" sentinel, and
// saturation keeps it absorbing — "never" plus any delay is still
// "never" — instead of wrapping into the distant past in release builds.
impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: SimTime) -> Duration {
        debug_assert!(self.0 >= rhs.0, "negative sim-time difference");
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", Duration(self.0))
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps < 1_000 {
            write!(f, "{ps}ps")
        } else if ps < 1_000_000 {
            write!(f, "{:.2}ns", ps as f64 / 1e3)
        } else if ps < 1_000_000_000 {
            write!(f, "{:.2}us", ps as f64 / 1e6)
        } else {
            write!(f, "{:.3}ms", ps as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Duration::from_nanos(227).picos(), 227_000);
        assert_eq!(Duration::from_micros(3).picos(), 3_000_000);
        assert_eq!(Duration::from_millis(1).picos(), 1_000_000_000);
        assert!((Duration::from_nanos(227).nanos() - 227.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + Duration::from_nanos(100);
        let u = t + Duration::from_nanos(27);
        assert_eq!((u - t).picos(), 27_000);
        assert_eq!(u.since(t).picos(), 27_000);
        assert_eq!(t.since(u).picos(), 0, "since saturates");
    }

    #[test]
    fn bandwidth_math() {
        // 64 bytes in 227 ns is the paper's headline small-message point:
        // ~282 MB/s for a single one-way message.
        let d = Duration::from_nanos(227);
        let mbps = d.mb_per_sec(64);
        assert!((mbps - 281.9).abs() < 1.0, "{mbps}");
        assert_eq!(Duration::ZERO.bytes_per_sec(1), f64::INFINITY);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Duration(999)), "999ps");
        assert_eq!(format!("{}", Duration::from_nanos(50)), "50.00ns");
        assert_eq!(format!("{}", Duration::from_micros(2)), "2.00us");
        assert_eq!(format!("{}", Duration::from_millis(5)), "5.000ms");
    }

    #[test]
    fn min_max() {
        let a = SimTime(5);
        let b = SimTime(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn never_stays_never() {
        // SimTime::MAX is the "never" sentinel: adding any delay must
        // saturate rather than wrap into the past.
        assert_eq!(SimTime::MAX + Duration::from_millis(1), SimTime::MAX);
        let mut t = SimTime::MAX;
        t += Duration(1);
        assert_eq!(t, SimTime::MAX);
        assert_eq!(SimTime::MAX + Duration(u64::MAX), SimTime::MAX);
    }

    #[test]
    fn duration_addition_saturates() {
        assert_eq!(Duration(u64::MAX) + Duration(1), Duration(u64::MAX));
        let mut d = Duration(u64::MAX - 1);
        d += Duration(5);
        assert_eq!(d, Duration(u64::MAX));
    }

    #[test]
    fn conversions_saturate_instead_of_wrapping() {
        assert_eq!(Duration::from_nanos(u64::MAX).picos(), u64::MAX);
        assert_eq!(Duration::from_micros(u64::MAX).picos(), u64::MAX);
        assert_eq!(Duration::from_millis(u64::MAX).picos(), u64::MAX);
        assert_eq!(Duration::from_millis(1).picos(), 1_000_000_000);
    }
}
