//! Figure/table output: named data series and aligned-table printing.
//!
//! Every `tcc-bench` binary regenerates one paper figure or table by filling
//! a [`Figure`] and printing it; tests assert on the numbers through the same
//! structure, so the printed artifact and the tested values cannot drift
//! apart.

use core::fmt;

/// One named series of (x, y) points, e.g. "weakly ordered" in Figure 6.
#[derive(Debug, Clone, Default)]
pub struct Series {
    pub name: String,
    pub points: Vec<(f64, f64)>,
}

impl Series {
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// y at the given x (exact match).
    pub fn at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (*px - x).abs() < 1e-9)
            .map(|&(_, y)| y)
    }

    pub fn max_y(&self) -> f64 {
        self.points.iter().map(|&(_, y)| y).fold(f64::MIN, f64::max)
    }

    /// x at which y is maximal.
    pub fn argmax(&self) -> Option<f64> {
        self.points
            .iter()
            .copied()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(x, _)| x)
    }

    /// First x (scanning left to right) where this series' y exceeds
    /// `other`'s y — the crossover point, if any.
    pub fn crossover_with(&self, other: &Series) -> Option<f64> {
        for &(x, y) in &self.points {
            if let Some(oy) = other.at(x) {
                if y > oy {
                    return Some(x);
                }
            }
        }
        None
    }
}

/// A figure: a set of series over a common x axis plus labels.
#[derive(Debug, Clone, Default)]
pub struct Figure {
    pub title: String,
    pub x_label: String,
    pub y_label: String,
    pub series: Vec<Series>,
}

impl Figure {
    #[must_use]
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    pub fn add(&mut self, series: Series) -> &mut Self {
        self.series.push(series);
        self
    }

    pub fn get(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// CSV rendering (x column then one column per series; union of x's).
    pub fn to_csv(&self) -> String {
        let mut xs: Vec<f64> = Vec::new();
        for s in &self.series {
            for &(x, _) in &s.points {
                if !xs.iter().any(|&e| (e - x).abs() < 1e-9) {
                    xs.push(x);
                }
            }
        }
        xs.sort_by(f64::total_cmp);
        let mut out = String::new();
        out.push_str(&self.x_label);
        for s in &self.series {
            out.push(',');
            out.push_str(&s.name);
        }
        out.push('\n');
        for x in xs {
            out.push_str(&format!("{x}"));
            for s in &self.series {
                out.push(',');
                match s.at(x) {
                    Some(y) => out.push_str(&format!("{y:.3}")),
                    None => out.push_str(""),
                }
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Figure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} ===", self.title)?;
        // Header.
        write!(f, "{:>14}", self.x_label)?;
        for s in &self.series {
            write!(f, "  {:>22}", s.name)?;
        }
        writeln!(f)?;
        // Rows over the union of x values.
        let mut xs: Vec<f64> = Vec::new();
        for s in &self.series {
            for &(x, _) in &s.points {
                if !xs.iter().any(|&e| (e - x).abs() < 1e-9) {
                    xs.push(x);
                }
            }
        }
        xs.sort_by(f64::total_cmp);
        for x in xs {
            if x == x.trunc() && x.abs() < 1e15 {
                write!(f, "{:>14}", x as i64)?;
            } else {
                write!(f, "{x:>14.2}")?;
            }
            for s in &self.series {
                match s.at(x) {
                    Some(y) => write!(f, "  {y:>22.2}")?,
                    None => write!(f, "  {:>22}", "-")?,
                }
            }
            writeln!(f)?;
        }
        writeln!(f, "({})", self.y_label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Figure {
        let mut fig = Figure::new("Fig X", "size", "MB/s");
        let mut a = Series::new("weak");
        a.push(64.0, 2500.0);
        a.push(1024.0, 2700.0);
        let mut b = Series::new("ib");
        b.push(64.0, 200.0);
        b.push(1024.0, 1500.0);
        fig.add(a);
        fig.add(b);
        fig
    }

    #[test]
    fn at_and_max() {
        let fig = sample();
        let weak = fig.get("weak").unwrap();
        assert_eq!(weak.at(64.0), Some(2500.0));
        assert_eq!(weak.at(65.0), None);
        assert_eq!(weak.max_y(), 2700.0);
        assert_eq!(weak.argmax(), Some(1024.0));
    }

    #[test]
    fn crossover() {
        let mut a = Series::new("a");
        let mut b = Series::new("b");
        for (x, ya, yb) in [(1.0, 1.0, 5.0), (2.0, 4.0, 4.5), (3.0, 9.0, 4.0)] {
            a.push(x, ya);
            b.push(x, yb);
        }
        assert_eq!(a.crossover_with(&b), Some(3.0));
        assert_eq!(b.crossover_with(&a), Some(1.0));
    }

    #[test]
    fn csv_includes_all_series() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("size,weak,ib"));
        assert_eq!(lines.next(), Some("64,2500.000,200.000"));
        assert_eq!(lines.next(), Some("1024,2700.000,1500.000"));
    }

    #[test]
    fn display_renders_table() {
        let s = format!("{}", sample());
        assert!(s.contains("Fig X"));
        assert!(s.contains("weak"));
        assert!(s.contains("2700.00"));
    }

    #[test]
    fn ragged_series_show_dash() {
        let mut fig = sample();
        let mut c = Series::new("partial");
        c.push(64.0, 1.0);
        fig.add(c);
        let s = format!("{fig}");
        assert!(s.contains('-'), "missing point rendered as dash");
    }
}
