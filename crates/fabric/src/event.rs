//! The event queue at the heart of the discrete-event kernel.
//!
//! Events are ordered by `(time, sequence)`: two events scheduled for the
//! same instant fire in the order they were scheduled, which makes every
//! simulation run fully deterministic.

use crate::time::{Duration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    at: SimTime,
    seq: u64,
}

/// A time-ordered queue of events of type `E`.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(Key, usize)>>,
    slots: Vec<Option<E>>,
    free: Vec<usize>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let key = Key {
            at,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.scheduled_total += 1;
        let slot = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(event);
                i
            }
            None => {
                self.slots.push(Some(event));
                self.slots.len() - 1
            }
        };
        self.heap.push(Reverse((key, slot)));
    }

    /// Schedule `event` to fire `after` past `now`.
    pub fn schedule_in(&mut self, now: SimTime, after: Duration, event: E) {
        self.schedule_at(now + after, event);
    }

    /// Pop the earliest event, returning its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse((key, slot)) = self.heap.pop()?;
        let ev = self.slots[slot].take().expect("event slot occupied");
        self.free.push(slot);
        Some((key.at, ev))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((k, _))| k.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (for run statistics).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(30), "c");
        q.schedule_at(SimTime(10), "a");
        q.schedule_at(SimTime(20), "b");
        assert_eq!(q.peek_time(), Some(SimTime(10)));
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_within_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(SimTime(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((SimTime(5), i)));
        }
    }

    #[test]
    fn schedule_in_adds_to_now() {
        let mut q = EventQueue::new();
        q.schedule_in(SimTime(1_000), Duration::from_picos(500), ());
        assert_eq!(q.pop(), Some((SimTime(1_500), ())));
    }

    #[test]
    fn slot_reuse_keeps_len_bounded() {
        let mut q = EventQueue::new();
        for round in 0..10u64 {
            for i in 0..64u64 {
                q.schedule_at(SimTime(round * 100 + i), i);
            }
            while q.pop().is_some() {}
        }
        assert!(q.slots.len() <= 64, "slots grew to {}", q.slots.len());
        assert_eq!(q.scheduled_total(), 640);
    }

    #[test]
    fn interleaved_pop_and_schedule() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(1), 1u32);
        q.schedule_at(SimTime(3), 3);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (SimTime(1), 1));
        q.schedule_at(SimTime(2), 2);
        assert_eq!(q.pop(), Some((SimTime(2), 2)));
        assert_eq!(q.pop(), Some((SimTime(3), 3)));
    }
}
