//! The event queue at the heart of the discrete-event kernel.
//!
//! Events are totally ordered by [`EventKey`] = `(time, src, seq)`: two
//! events scheduled for the same instant fire in the order their keys
//! compare, which makes every simulation run fully deterministic. The
//! `src` component exists for the *parallel* fabric engine: each shard of
//! a sharded simulation stamps the events it schedules with its own shard
//! index and a shard-local sequence number, so the interleaving of
//! same-instant events is a pure function of the model — independent of
//! which worker thread ran which shard, and independent of thread count.
//! Single-queue users never see it: [`EventQueue::schedule_at`] stamps
//! `src = 0` and a queue-local sequence, which reduces to the classic
//! `(time, seq)` FIFO-within-instant order.
//!
//! # Arena-pooled storage
//!
//! Event payloads never move through the ordering structures. Every
//! scheduled event is parked in a slab arena owned by the queue and
//! addressed by a `u32` handle; the backends order bare
//! `(EventKey, u32)` pairs — 32 bytes, `Copy`, no drop glue — so a heap
//! sift or a bucket migration shuffles handles, not payloads. Slots are
//! recycled through a free list, which keeps the steady state of a
//! schedule/pop loop allocation-free (the `alloc_regression` suite
//! counts).
//!
//! # Backends
//!
//! Four backends implement the same contract. Because pop order is a
//! pure function of the keys, every backend yields the bit-identical
//! event sequence — the choice is purely a constant-factor decision.
//!
//! * [`QueueBackend::Auto`] (the default) — population-adaptive: runs
//!   the ladder while the queue is small and migrates to the calendar
//!   when the population sustains above the hold-model crossover
//!   (~64 pending events), and back when it collapses. Fabric shards
//!   under the sharded engine stay in the ladder band; coarse
//!   single-queue users with large populations get the calendar.
//! * [`QueueBackend::Ladder`] — a two-tier ladder queue:
//!   a *bottom* tier holds the imminent events sorted ascending behind a
//!   head cursor (dequeue advances the cursor, O(1)), a *top* tier holds
//!   everything past the bottom's horizon unsorted with an always-valid
//!   minimum hint. Inserts into the bottom are a binary search plus a
//!   short shift — and fabric events are overwhelmingly scheduled *later*
//!   than everything pending, which appends them for free. When the
//!   bottom drains, one sweep moves the next window of top events down
//!   and sorts them, with the window width adapting to the observed
//!   event density. `pop_keyed_before` is O(1) when it refuses: the
//!   bottom tail / top hint answer without any scan.
//! * [`QueueBackend::Calendar`] — a Brown-style calendar queue: events
//!   hash into `width`-picosecond buckets mod the bucket count, dequeue
//!   scans the bucket of the current "day" for the minimum key, and the
//!   structure resizes itself as the population grows or shrinks. Kept
//!   for differential testing and as the better structure should a
//!   workload produce very large, uniformly banded populations.
//! * [`QueueBackend::BinaryHeap`] — the original `BinaryHeap` engine,
//!   kept as the canonical reference (the determinism suite runs every
//!   workload on all backends and asserts bit-identical results).

use crate::time::{Duration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Total order on events: time first, then the scheduling source (shard
/// index in sharded simulations, 0 otherwise), then the source-local
/// sequence number. Unique per event, so the order is total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventKey {
    /// Absolute firing time.
    pub at: SimTime,
    /// Scheduling source (shard index); 0 for single-queue users.
    pub src: u32,
    /// Source-local sequence number; unique per `src`.
    pub seq: u64,
}

/// Which implementation backs an [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueBackend {
    /// Population-adaptive default: runs the ladder while the queue is
    /// small and migrates to the calendar when the population sustains
    /// above the band where the ladder's refill sweep stops paying (the
    /// hold-model crossover), and back on collapse. Pop order is a pure
    /// function of the keys on every backend, so the migrations are
    /// invisible to results.
    #[default]
    Auto,
    /// Two-tier ladder queue (O(1) pop, near-O(1) insert for the
    /// schedule-soon pattern fabric engines produce).
    Ladder,
    /// Brown calendar queue (O(1) amortised for banded populations).
    Calendar,
    /// Binary heap (O(log n)); the differential-testing reference.
    BinaryHeap,
}

impl QueueBackend {
    /// Every backend, for differential tests and benches.
    pub const ALL: [QueueBackend; 4] = [
        QueueBackend::Ladder,
        QueueBackend::Calendar,
        QueueBackend::BinaryHeap,
        QueueBackend::Auto,
    ];

    /// Short stable name (bench JSON keys, test labels).
    pub fn name(self) -> &'static str {
        match self {
            QueueBackend::Auto => "auto",
            QueueBackend::Ladder => "ladder",
            QueueBackend::Calendar => "calendar",
            QueueBackend::BinaryHeap => "binary_heap",
        }
    }
}

/// Slab arena of parked event payloads: `u32` handles in, payloads out.
/// Slots are `Option<E>` (taking leaves `None`) and recycle through a
/// free list, so a steady-state schedule/pop loop touches no allocator.
#[derive(Debug)]
struct Arena<E> {
    slots: Vec<Option<E>>,
    free: Vec<u32>,
}

impl<E> Arena<E> {
    fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Park `event`, returning its handle.
    ///
    /// Deliberate panic (reviewed): handles are u32 by layout contract
    /// with every backend; 2^32 simultaneously-parked events means the
    /// event budget check has already failed and memory is gone —
    /// truncating the handle instead would silently alias two events.
    #[cfg_attr(lint, tcc_no_alloc, tcc_panic_ok, tcc_acquires(arena_handle))]
    fn park(&mut self, event: E) -> u32 {
        match self.free.pop() {
            Some(h) => {
                debug_assert!(self.slots[h as usize].is_none());
                self.slots[h as usize] = Some(event);
                h
            }
            None => {
                let h = u32::try_from(self.slots.len()).expect("arena capacity");
                self.slots.push(Some(event));
                h
            }
        }
    }

    /// Reclaim the payload behind `handle`; the slot returns to the free
    /// list.
    ///
    /// Deliberate panic (reviewed): an empty slot here means a backend
    /// double-popped a handle — continuing would replay or drop an event
    /// and silently break bit-determinism, the one guarantee the whole
    /// queue exists to keep.
    #[cfg_attr(lint, tcc_no_alloc, tcc_panic_ok, tcc_releases(arena_handle))]
    fn take(&mut self, handle: u32) -> E {
        let ev = self.slots[handle as usize]
            .take()
            .expect("arena slot occupied");
        self.free.push(handle);
        ev
    }
}

/// A time-ordered queue of events of type `E`, generic over backend.
/// Payloads live in the queue's [`Arena`]; the backend orders
/// `(EventKey, u32)` handle pairs.
#[derive(Debug)]
pub struct EventQueue<E> {
    arena: Arena<E>,
    inner: Inner,
    next_seq: u64,
    scheduled_total: u64,
}

#[derive(Debug)]
enum Inner {
    Heap(HeapQueue),
    Calendar(CalendarQueue),
    Ladder(LadderQueue),
    Auto(AutoQueue),
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// A queue on the default backend (population-adaptive).
    #[must_use]
    pub fn new() -> Self {
        Self::with_backend(QueueBackend::default())
    }

    /// A queue on the classic binary-heap backend.
    #[must_use]
    pub fn binary_heap() -> Self {
        Self::with_backend(QueueBackend::BinaryHeap)
    }

    #[must_use]
    pub fn with_backend(backend: QueueBackend) -> Self {
        let inner = match backend {
            QueueBackend::BinaryHeap => Inner::Heap(HeapQueue::new()),
            QueueBackend::Calendar => Inner::Calendar(CalendarQueue::new()),
            QueueBackend::Ladder => Inner::Ladder(LadderQueue::new()),
            QueueBackend::Auto => Inner::Auto(AutoQueue::new()),
        };
        EventQueue {
            arena: Arena::new(),
            inner,
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// The backend this queue runs on.
    pub fn backend(&self) -> QueueBackend {
        match &self.inner {
            Inner::Heap(_) => QueueBackend::BinaryHeap,
            Inner::Calendar(_) => QueueBackend::Calendar,
            Inner::Ladder(_) => QueueBackend::Ladder,
            Inner::Auto(_) => QueueBackend::Auto,
        }
    }

    /// Schedule `event` to fire at absolute time `at` (source 0, local
    /// sequence — FIFO within the same instant).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.schedule_keyed(EventKey { at, src: 0, seq }, event);
    }

    /// Schedule `event` to fire `after` past `now`.
    pub fn schedule_in(&mut self, now: SimTime, after: Duration, event: E) {
        self.schedule_at(now + after, event);
    }

    /// Schedule `event` under an explicit key. The sharded engine uses
    /// this to stamp events with `(shard, shard-local seq)` so merge
    /// order is deterministic across thread counts. Keys must be unique.
    // tcc_transfer_ok: the parked handle is owned by the backend until a
    // pop reclaims it through `Arena::take` — held-at-exit is the point.
    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]
    #[cfg_attr(lint, tcc_linear(arena_handle), tcc_transfer_ok)]
    pub fn schedule_keyed(&mut self, key: EventKey, event: E) {
        self.scheduled_total += 1;
        let h = self.arena.park(event);
        match &mut self.inner {
            Inner::Heap(q) => q.push(key, h),
            Inner::Calendar(q) => q.insert(key, h),
            Inner::Ladder(q) => q.insert(key, h),
            Inner::Auto(q) => q.insert(key, h),
        }
    }

    /// Pop the earliest event, returning its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_keyed().map(|(k, e)| (k.at, e))
    }

    /// Pop the earliest event together with its full key.
    #[cfg_attr(lint, tcc_linear(arena_handle))]
    pub fn pop_keyed(&mut self) -> Option<(EventKey, E)> {
        let (key, h) = match &mut self.inner {
            Inner::Heap(q) => q.pop()?,
            Inner::Calendar(q) => q.pop()?,
            Inner::Ladder(q) => q.pop()?,
            Inner::Auto(q) => q.pop()?,
        };
        Some((key, self.arena.take(h)))
    }

    /// Pop the earliest event only if it fires strictly before `limit` —
    /// the epoch primitive of the sharded engine. The refusal path is
    /// O(1) on the ladder and memoised-O(1) on the calendar: when the
    /// pending minimum already lies at or past the horizon the call
    /// returns without scanning anything.
    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]
    #[cfg_attr(lint, tcc_linear(arena_handle))]
    pub fn pop_keyed_before(&mut self, limit: SimTime) -> Option<(EventKey, E)> {
        let (key, h) = match &mut self.inner {
            Inner::Heap(q) => {
                if q.peek_key()?.at >= limit {
                    return None;
                }
                q.pop()?
            }
            Inner::Calendar(q) => q.pop_before(limit)?,
            Inner::Ladder(q) => q.pop_before(limit)?,
            Inner::Auto(q) => q.pop_before(limit)?,
        };
        Some((key, self.arena.take(h)))
    }

    /// Time of the earliest pending event. Takes `&mut self` so the
    /// calendar backend can memoise the located minimum; the ladder and
    /// heap answer from an always-valid hint without any scan.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.inner {
            Inner::Heap(q) => q.peek_key().map(|k| k.at),
            Inner::Calendar(q) => q.peek_key().map(|k| k.at),
            Inner::Ladder(q) => q.peek_key().map(|k| k.at),
            Inner::Auto(q) => q.peek_key().map(|k| k.at),
        }
    }

    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Heap(q) => q.len(),
            Inner::Calendar(q) => q.len(),
            Inner::Ladder(q) => q.len(),
            Inner::Auto(q) => q.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled (for run statistics).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

// ───────────────────────── binary-heap backend ─────────────────────────

#[derive(Debug)]
struct HeapQueue {
    heap: BinaryHeap<Reverse<(EventKey, u32)>>,
}

impl HeapQueue {
    fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
        }
    }

    fn push(&mut self, key: EventKey, handle: u32) {
        self.heap.push(Reverse((key, handle)));
    }

    fn pop(&mut self) -> Option<(EventKey, u32)> {
        self.heap.pop().map(|Reverse(kh)| kh)
    }

    fn peek_key(&self) -> Option<EventKey> {
        self.heap.peek().map(|Reverse((k, _))| *k)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

// ───────────────────────── ladder backend ──────────────────────────────

/// Two-tier ladder queue over `(EventKey, u32)` handle pairs.
///
/// * `bottom` — every pending event with `at <= bot_end`, sorted
///   **ascending** with a head cursor: the live events are
///   `bottom[bot_head..]`, the minimum is `bottom[bot_head]`, and `pop`
///   advances the cursor (O(1), no shifting). Inserts binary-search the
///   live region; an event *later* than everything pending — the
///   dominant pattern in a fabric hot loop, where each flow schedules
///   its next hop at `now + Δ` while the rest of the window fires before
///   it — is a plain `Vec::push`. The dead prefix is compacted away once
///   it outweighs the live region, so cursor advance stays amortised
///   O(1) in both time and space.
/// * `top` — events with `at > bot_end`, unsorted, with `top_min`
///   tracking the minimum key. `top_min` is maintained on insert (one
///   compare) and re-derived during the refill sweep, so it is *always
///   valid* — the lazy min-hint that lets the epoch executive bound a
///   shard's next event time without touching bucket storage.
///
/// When `bottom` runs dry, `refill` advances `bot_end` to
/// `top_min + width`, sweeps the qualifying events down in one pass and
/// sorts them (each event is sorted exactly once on its way through the
/// bottom). `width` adapts by feedback — halved when a sweep moves more
/// than [`REFILL_HI`] events, doubled when it moves fewer than
/// [`REFILL_LO`] — which keeps sweep cost and sort depth bounded for
/// clustered *and* sparse populations without a rung hierarchy.
#[derive(Debug)]
struct LadderQueue {
    /// Imminent events, ascending; live region is `bottom[bot_head..]`.
    bottom: Vec<(EventKey, u32)>,
    /// First live index into `bottom`; everything before it was popped.
    bot_head: usize,
    /// Far events (`at > bot_end`), unsorted.
    top: Vec<(EventKey, u32)>,
    /// Minimum key in `top`; `None` iff `top` is empty. Always valid.
    top_min: Option<EventKey>,
    /// Inclusive upper bound (picoseconds) of the bottom tier's window.
    bot_end: u64,
    /// Current refill window width in picoseconds.
    width: u64,
}

/// Initial window: 2^14 ps ≈ 16 ns — the serialisation+drain band of one
/// fabric hop, so fresh queues start near the adapted state.
const INIT_LADDER_WIDTH: u64 = 1 << 14;
/// Refill sizes outside [`REFILL_LO`], [`REFILL_HI`] retune the width.
const REFILL_LO: usize = 8;
const REFILL_HI: usize = 64;
/// Width bounds: 2^6 ps .. 2^40 ps (the calendar uses the same clamp).
const MIN_WIDTH: u64 = 1 << 6;
const MAX_WIDTH: u64 = 1 << 40;
/// Live-bottom length that triggers a spill back to the top tier.
const SPILL_LEN: usize = 128;

impl LadderQueue {
    fn new() -> Self {
        LadderQueue {
            bottom: Vec::new(),
            bot_head: 0,
            top: Vec::new(),
            top_min: None,
            bot_end: 0,
            width: INIT_LADDER_WIDTH,
        }
    }

    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]
    fn insert(&mut self, key: EventKey, handle: u32) {
        if self.bottom.is_empty() && self.top.is_empty() {
            // Queue fully drained: re-anchor the window at the new event
            // so a workload that jumped far ahead (or back) starts clean.
            self.bot_end = key.at.0.saturating_add(self.width);
            self.bottom.push((key, handle));
            return;
        }
        if key.at.0 <= self.bot_end {
            // Ascending order, append fast path first: an event later
            // than everything live (the hot-loop common case) is a plain
            // push. Otherwise binary-search the live region; events
            // before `bottom[bot_head]` cannot exist (time flows
            // forward), so the dead prefix never needs touching.
            if self.bottom.last().is_none_or(|e| e.0 < key) {
                self.bottom.push((key, handle));
            } else {
                let live = &self.bottom[self.bot_head..];
                let idx = self.bot_head + live.partition_point(|e| e.0 < key);
                self.bottom.insert(idx, (key, handle));
            }
            // A window that swallowed the whole population degenerates
            // into a sorted vec with O(n) mid-inserts: spill the latest
            // half back to the top and pull the window in (amortised
            // O(1) — a spill of k events pays for k prior inserts). The
            // boundary must sit between *distinct* times, else a future
            // same-instant insert could land below a spilled key that
            // precedes it in the total order.
            if self.bottom.len() - self.bot_head > SPILL_LEN {
                let mut keep = self.bot_head + (self.bottom.len() - self.bot_head) / 2;
                while keep < self.bottom.len()
                    && self.bottom[keep].0.at == self.bottom[keep - 1].0.at
                {
                    keep += 1;
                }
                if keep < self.bottom.len() {
                    for &(k, h) in &self.bottom[keep..] {
                        self.top.push((k, h));
                        if self.top_min.is_none_or(|m| k < m) {
                            self.top_min = Some(k);
                        }
                    }
                    // The boundary search guarantees a strictly smaller
                    // time before `keep`, so the spilled minimum is >= 1.
                    self.bot_end = self.bottom[keep].0.at.0.saturating_sub(1);
                    self.bottom.truncate(keep);
                    self.width = (self.width / 2).max(MIN_WIDTH);
                }
            }
        } else {
            self.top.push((key, handle));
            if self.top_min.is_none_or(|m| key < m) {
                self.top_min = Some(key);
            }
        }
    }

    /// Move the next window of top events into the bottom and sort it.
    /// Called only when the bottom is dry and the top is not.
    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]
    fn refill(&mut self) {
        debug_assert!(self.bottom.is_empty() && !self.top.is_empty());
        debug_assert_eq!(self.bot_head, 0);
        // The hint is maintained by every push into the top; if it were
        // ever lost, re-derive it with one cold sweep rather than abort.
        let floor = match self.top_min {
            Some(m) => m,
            None => match self.top.iter().map(|&(k, _)| k).min() {
                Some(m) => m,
                None => return,
            },
        };
        self.bot_end = floor.at.0.saturating_add(self.width);
        // One sweep: qualifying events move down (swap_remove keeps the
        // sweep O(n)), the survivors' minimum is re-derived in place.
        let mut new_min: Option<EventKey> = None;
        let mut i = 0;
        while i < self.top.len() {
            let (k, h) = self.top[i];
            if k.at.0 <= self.bot_end {
                self.bottom.push((k, h));
                self.top.swap_remove(i);
            } else {
                if new_min.is_none_or(|m| k < m) {
                    new_min = Some(k);
                }
                i += 1;
            }
        }
        self.top_min = new_min;
        // Ascending: pops advance the head cursor in key order.
        self.bottom.sort_unstable();
        // Feedback width adaptation for the next sweep.
        let moved = self.bottom.len();
        if moved > REFILL_HI {
            self.width = (self.width / 2).max(MIN_WIDTH);
        } else if moved < REFILL_LO {
            self.width = self.width.saturating_mul(2).min(MAX_WIDTH);
        }
        debug_assert!(moved > 0, "window starts at the top minimum");
    }

    /// Take the live minimum and advance the cursor. The dead prefix is
    /// dropped when the live region empties (free) or when it outweighs
    /// the live region (one compaction memmove, amortised O(1) per pop).
    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]
    fn pop_live(&mut self) -> (EventKey, u32) {
        let e = self.bottom[self.bot_head];
        self.bot_head += 1;
        if self.bot_head == self.bottom.len() {
            self.bottom.clear();
            self.bot_head = 0;
        } else if self.bot_head >= 64 && self.bot_head * 2 >= self.bottom.len() {
            self.bottom.drain(..self.bot_head);
            self.bot_head = 0;
        }
        e
    }

    fn pop(&mut self) -> Option<(EventKey, u32)> {
        if self.bottom.is_empty() {
            if self.top.is_empty() {
                return None;
            }
            self.refill();
        }
        Some(self.pop_live())
    }

    /// Pop the minimum only if it fires strictly before `limit`. The
    /// refusal path never scans: the live head or the top hint decides
    /// in one comparison.
    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]
    fn pop_before(&mut self, limit: SimTime) -> Option<(EventKey, u32)> {
        if let Some(&(k, _)) = self.bottom.get(self.bot_head) {
            if k.at >= limit {
                return None;
            }
            return Some(self.pop_live());
        }
        // Bottom dry: the top hint bounds the minimum from below, so a
        // hint at/past the horizon refuses without sweeping.
        if self.top_min.is_none_or(|m| m.at >= limit) {
            return None;
        }
        self.refill();
        match self.bottom.get(self.bot_head) {
            Some(&(k, _)) if k.at < limit => Some(self.pop_live()),
            _ => None,
        }
    }

    fn peek_key(&self) -> Option<EventKey> {
        match self.bottom.get(self.bot_head) {
            Some(&(k, _)) => Some(k),
            // The top minimum IS the queue minimum when the bottom is
            // dry — no refill needed to answer a peek.
            None => self.top_min,
        }
    }

    fn len(&self) -> usize {
        (self.bottom.len() - self.bot_head) + self.top.len()
    }

    /// Move every pending pair out (order unspecified), leaving the
    /// queue empty and ready to re-anchor on the next insert. Backend
    /// migration support.
    fn drain_entries(&mut self, out: &mut Vec<(EventKey, u32)>) {
        out.extend(self.bottom.drain(self.bot_head..));
        self.bottom.clear();
        self.bot_head = 0;
        out.append(&mut self.top);
        self.top_min = None;
    }
}

// ───────────────────────── calendar backend ────────────────────────────

/// A Brown calendar queue over `(EventKey, u32)` handle pairs. Buckets
/// are unsorted vectors; an event at time `t` lives in bucket
/// `(t / width) % nbuckets`. Dequeue walks buckets from the cursor,
/// taking the minimum-key event whose time falls inside the bucket's
/// current "day"; after scanning a full year without a hit it falls back
/// to a direct min search (events far beyond the calendar horizon).
///
/// The queue resizes (doubling/halving the bucket count and re-deriving
/// the bucket width from the observed spread of pending events) when the
/// population crosses 2×/0.5× the bucket count, which keeps the expected
/// bucket occupancy — and therefore schedule/pop cost — O(1) for the
/// banded distributions discrete-event fabrics produce.
#[derive(Debug)]
struct CalendarQueue {
    buckets: Vec<Vec<(EventKey, u32)>>,
    /// Picoseconds per bucket (power of two, so the hash is a shift).
    width_shift: u32,
    /// `buckets.len() - 1`; bucket count is a power of two.
    mask: usize,
    /// Bucket the dequeue cursor is standing on.
    cursor: usize,
    /// Start of the day the cursor bucket currently covers.
    day_start: u64,
    count: usize,
    /// Memoised location `(bucket, index)` of the minimum-key event, or
    /// `None` when unknown. A peek finds the minimum, a pop of the same
    /// event reuses it; inserts keep it live (a smaller key simply takes
    /// it over), so a peek/pop pair costs one bucket scan, not two.
    min_hint: Option<(usize, usize)>,
    /// Excess `find_min` scan work accumulated since the last width
    /// (re-)derivation. Resizes re-derive the width from the observed
    /// event spread, but a steady population never resizes — so a stale
    /// width (all events aliased into a day or two) would persist
    /// forever. Once the excess outweighs a few calendar years, the
    /// width is re-derived in place.
    waste: usize,
    /// Spare bucket storage kept across resizes so steady-state churn
    /// allocates nothing.
    spare: Vec<Vec<(EventKey, u32)>>,
}

/// Initial bucket width: 2^12 ps ≈ 4 ns — the low edge of the wire
/// serialisation band, so freshly built queues start near the adapted
/// state for fabric workloads.
const INIT_WIDTH_SHIFT: u32 = 12;
const INIT_BUCKETS: usize = 16;

impl CalendarQueue {
    fn new() -> Self {
        CalendarQueue {
            buckets: (0..INIT_BUCKETS).map(|_| Vec::new()).collect(),
            width_shift: INIT_WIDTH_SHIFT,
            mask: INIT_BUCKETS - 1,
            cursor: 0,
            day_start: 0,
            count: 0,
            min_hint: None,
            waste: 0,
            spare: Vec::new(),
        }
    }

    #[inline]
    fn bucket_of(&self, at: SimTime) -> usize {
        ((at.0 >> self.width_shift) as usize) & self.mask
    }

    /// Insert under `key`. Amortised O(1): a bucket index computation and
    /// an append; the occupancy-triggered `resize` is the only non-hot
    /// step and recycles bucket storage.
    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]
    fn insert(&mut self, key: EventKey, handle: u32) {
        // An event earlier than the cursor's day (legal: ties with the
        // current instant, or a sharded merge delivering work at the
        // epoch floor) must rewind the cursor so dequeue sees it.
        if key.at.0 < self.day_start {
            self.day_start = (key.at.0 >> self.width_shift) << self.width_shift;
            self.cursor = self.bucket_of(key.at);
        }
        let b = self.bucket_of(key.at);
        self.buckets[b].push((key, handle));
        // Bucket pushes never move existing entries, so a live hint stays
        // valid; it only changes hands if the new key is smaller (keys
        // are unique, so `<` suffices).
        self.min_hint = match self.min_hint {
            None if self.count == 0 => Some((b, self.buckets[b].len() - 1)),
            Some((hb, hi)) if key < self.buckets[hb][hi].0 => Some((b, self.buckets[b].len() - 1)),
            h => h,
        };
        self.count += 1;
        if self.count > 2 * self.buckets.len() && self.buckets.len() < (1 << 20) {
            self.resize(self.buckets.len() * 2);
        }
    }

    /// Locate the minimum-key event: walk day buckets from the cursor for
    /// at most one year (each day's events can only live in its own
    /// bucket, so the first day with an event holds the minimum), falling
    /// back to a direct sweep for sparse far-future populations.
    /// Returns the location plus the scan work spent finding it: dry
    /// day-buckets walked and entries examined. A well-tuned calendar
    /// answers in O(1) work; sustained excess is the staleness signal
    /// `find_min_cached` feeds the width retune.
    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]
    fn find_min(&self) -> (Option<(usize, usize)>, usize) {
        if self.count == 0 {
            return (None, 0);
        }
        let width = 1u64 << self.width_shift;
        let nb = self.buckets.len();
        let mut work = 0usize;
        for step in 0..nb {
            let b = (self.cursor + step) & self.mask;
            let day_end = self
                .day_start
                .saturating_add((step as u64 + 1).saturating_mul(width));
            let bucket = &self.buckets[b];
            work += bucket.len().max(1);
            let mut best: Option<usize> = None;
            for (i, (k, _)) in bucket.iter().enumerate() {
                if k.at.0 < day_end {
                    best = match best {
                        Some(j) if bucket[j].0 <= *k => Some(j),
                        _ => Some(i),
                    };
                }
            }
            if let Some(i) = best {
                return (Some((b, i)), work);
            }
        }
        let mut out: Option<(usize, usize)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (i, (k, _)) in bucket.iter().enumerate() {
                let better = match out {
                    Some((ob, oi)) => *k < self.buckets[ob][oi].0,
                    None => true,
                };
                if better {
                    out = Some((b, i));
                }
            }
        }
        debug_assert!(out.is_some(), "count > 0 but no event found");
        (out, nb + self.count)
    }

    /// [`find_min`](Self::find_min) through the memo: reuse a live hint,
    /// otherwise scan and remember the answer. When the accumulated dry
    /// walking says the bucket width no longer matches the population's
    /// spread, re-derive it in place (a same-size `resize`) and rescan —
    /// rare by construction, since the retune resets the waste meter.
    fn find_min_cached(&mut self) -> Option<(usize, usize)> {
        if self.min_hint.is_none() {
            let (hit, work) = self.find_min();
            // Up to a few touches per scan is the healthy steady state;
            // only the excess counts toward staleness, so a well-tuned
            // calendar never accumulates any.
            self.waste += work.saturating_sub(3);
            self.min_hint = hit;
            if self.waste > 8 * self.buckets.len() && self.count >= 2 {
                self.resize(self.buckets.len());
                self.min_hint = self.find_min().0;
            }
        }
        self.min_hint
    }

    fn pop(&mut self) -> Option<(EventKey, u32)> {
        let (b, i) = self.find_min_cached()?;
        Some(self.commit_take(b, i))
    }

    /// Pop the minimum only if it fires strictly before `limit`; the
    /// cursor stays put on a refusal and the hint stays live, so the next
    /// call is O(1) (the gap is at most one epoch's lookahead band).
    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]
    fn pop_before(&mut self, limit: SimTime) -> Option<(EventKey, u32)> {
        let (b, i) = self.find_min_cached()?;
        if self.buckets[b][i].0.at >= limit {
            return None;
        }
        Some(self.commit_take(b, i))
    }

    /// Advance the cursor to the popped key's day and remove it.
    fn commit_take(&mut self, b: usize, i: usize) -> (EventKey, u32) {
        let at = self.buckets[b][i].0.at;
        self.day_start = (at.0 >> self.width_shift) << self.width_shift;
        self.cursor = self.bucket_of(at);
        self.take(b, i)
    }

    /// Remove entry `i` of bucket `b` (order inside a bucket is
    /// irrelevant, so `swap_remove`), shrinking the calendar if the
    /// population collapsed.
    fn take(&mut self, b: usize, i: usize) -> (EventKey, u32) {
        // `swap_remove` relocates the bucket's last entry, and the
        // minimum is gone either way: drop the hint.
        self.min_hint = None;
        let out = self.buckets[b].swap_remove(i);
        self.count -= 1;
        if self.count * 4 < self.buckets.len() && self.buckets.len() > INIT_BUCKETS {
            self.resize(self.buckets.len() / 2);
        }
        out
    }

    fn peek_key(&mut self) -> Option<EventKey> {
        self.find_min_cached().map(|(b, i)| self.buckets[b][i].0)
    }

    fn len(&self) -> usize {
        self.count
    }

    /// Move every pending pair out (order unspecified), leaving the
    /// calendar empty and re-anchored at time zero. Backend migration
    /// support.
    fn drain_entries(&mut self, out: &mut Vec<(EventKey, u32)>) {
        for bucket in &mut self.buckets {
            out.append(bucket);
        }
        self.count = 0;
        self.min_hint = None;
        self.waste = 0;
        self.cursor = 0;
        self.day_start = 0;
    }

    /// Rebuild with `nb` buckets (power of two) and a bucket width
    /// re-derived from the observed event spread, re-hashing every
    /// pending event. Amortised against the pushes/pops that triggered
    /// it; bucket storage is recycled through `spare`.
    #[cfg_attr(lint, tcc_alloc_ok)]
    fn resize(&mut self, nb: usize) {
        debug_assert!(nb.is_power_of_two());
        self.min_hint = None; // every entry is about to be re-hashed
        self.waste = 0; // the width below is fresh for this population

        // Width adaptation: aim for the day span (nb * width) to cover
        // the pending population's time spread, so events spread across
        // the year instead of aliasing into the same day.
        if self.count >= 2 {
            let mut lo = u64::MAX;
            let mut hi = 0u64;
            for (k, _) in self.buckets.iter().flatten() {
                lo = lo.min(k.at.0);
                hi = hi.max(k.at.0);
            }
            // `hi`/`lo` span the full u64 picosecond range (SimTime::MAX
            // is a legal "never" key), so the spread and its doubling
            // must saturate rather than wrap.
            let spread = hi.saturating_sub(lo).max(1);
            // width ≈ 2 * spread / count, clamped to [2^6, 2^40] ps.
            let target = (spread.saturating_mul(2) / self.count as u64).max(1);
            self.width_shift = (63 - target.leading_zeros()).clamp(6, 40);
        }
        let mut old = std::mem::take(&mut self.buckets);
        self.buckets = (0..nb)
            .map(|_| self.spare.pop().unwrap_or_default())
            .collect();
        self.mask = nb - 1;
        let mut min_at: Option<u64> = None;
        for bucket in &old {
            for (k, _) in bucket {
                min_at = Some(min_at.map_or(k.at.0, |m| m.min(k.at.0)));
            }
        }
        for mut bucket in old.drain(..) {
            for (k, h) in bucket.drain(..) {
                let b = self.bucket_of(k.at);
                self.buckets[b].push((k, h));
            }
            self.spare.push(bucket);
        }
        let floor = min_at.unwrap_or(self.day_start);
        self.day_start = (floor >> self.width_shift) << self.width_shift;
        self.cursor = ((floor >> self.width_shift) as usize) & self.mask;
    }
}

// ─────────────────────────── auto backend ──────────────────────────────

/// Migrate ladder → calendar once the population has sat above this for
/// a full streak. Set just below the band where the ladder's
/// O(population) refill sweep starts losing to the calendar in the hold
/// model (see `simspeed --hold`).
const AUTO_UP_LEN: usize = 64;
/// Migrate calendar → ladder once the population collapses below this
/// for a full streak — the band where the ladder's sorted bottom wins.
const AUTO_DOWN_LEN: usize = 24;
/// Consecutive inserts the population must hold beyond a threshold
/// before migrating: migration re-inserts every pending event, so the
/// streak keeps that O(n) cost amortised and bursts from thrashing.
const AUTO_STREAK: u32 = 256;

/// The population-adaptive backend: a ladder while small, a calendar
/// while large. Every backend pops in identical (total) key order, so
/// which structure holds the events at any instant is unobservable in
/// results — migration is purely a constant-factor decision, driven by
/// the measured hold-model crossover.
#[derive(Debug)]
struct AutoQueue {
    inner: AutoInner,
    /// Consecutive inserts spent beyond the active migration threshold.
    streak: u32,
    /// Reusable migration buffer, so steady-state churn (even with
    /// occasional migrations) stops allocating once warm.
    scratch: Vec<(EventKey, u32)>,
}

#[derive(Debug)]
enum AutoInner {
    Ladder(LadderQueue),
    Calendar(CalendarQueue),
}

impl AutoQueue {
    fn new() -> Self {
        AutoQueue {
            inner: AutoInner::Ladder(LadderQueue::new()),
            streak: 0,
            scratch: Vec::new(),
        }
    }

    #[cfg_attr(lint, tcc_no_panic)]
    fn insert(&mut self, key: EventKey, handle: u32) {
        match &mut self.inner {
            AutoInner::Ladder(q) => {
                q.insert(key, handle);
                if q.len() > AUTO_UP_LEN {
                    self.streak += 1;
                    if self.streak >= AUTO_STREAK {
                        self.migrate();
                    }
                } else {
                    self.streak = 0;
                }
            }
            AutoInner::Calendar(q) => {
                q.insert(key, handle);
                if q.len() < AUTO_DOWN_LEN {
                    self.streak += 1;
                    if self.streak >= AUTO_STREAK {
                        self.migrate();
                    }
                } else {
                    self.streak = 0;
                }
            }
        }
    }

    /// Rebuild the other structure from the pending population. The
    /// calendar bulk-build passes through its occupancy resizes, so it
    /// arrives with a width already derived from the real spread.
    ///
    /// Reviewed cold-path allocation: a migration happens at most once
    /// per [`AUTO_STREAK`] inserts and recycles `scratch`, so its cost
    /// (and its allocations) amortise to nothing over the inserts that
    /// earned it.
    #[cfg_attr(lint, tcc_alloc_ok)]
    fn migrate(&mut self) {
        self.streak = 0;
        match &mut self.inner {
            AutoInner::Ladder(q) => {
                q.drain_entries(&mut self.scratch);
                let mut c = CalendarQueue::new();
                for &(k, h) in &self.scratch {
                    c.insert(k, h);
                }
                self.inner = AutoInner::Calendar(c);
            }
            AutoInner::Calendar(q) => {
                q.drain_entries(&mut self.scratch);
                let mut l = LadderQueue::new();
                for &(k, h) in &self.scratch {
                    l.insert(k, h);
                }
                self.inner = AutoInner::Ladder(l);
            }
        }
        self.scratch.clear();
    }

    fn pop(&mut self) -> Option<(EventKey, u32)> {
        match &mut self.inner {
            AutoInner::Ladder(q) => q.pop(),
            AutoInner::Calendar(q) => q.pop(),
        }
    }

    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]
    fn pop_before(&mut self, limit: SimTime) -> Option<(EventKey, u32)> {
        match &mut self.inner {
            AutoInner::Ladder(q) => q.pop_before(limit),
            AutoInner::Calendar(q) => q.pop_before(limit),
        }
    }

    fn peek_key(&mut self) -> Option<EventKey> {
        match &mut self.inner {
            AutoInner::Ladder(q) => q.peek_key(),
            AutoInner::Calendar(q) => q.peek_key(),
        }
    }

    fn len(&self) -> usize {
        match &self.inner {
            AutoInner::Ladder(q) => q.len(),
            AutoInner::Calendar(q) => q.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        for backend in QueueBackend::ALL {
            let mut q = EventQueue::with_backend(backend);
            q.schedule_at(SimTime(30), "c");
            q.schedule_at(SimTime(10), "a");
            q.schedule_at(SimTime(20), "b");
            assert_eq!(q.peek_time(), Some(SimTime(10)), "{backend:?}");
            assert_eq!(q.pop(), Some((SimTime(10), "a")));
            assert_eq!(q.pop(), Some((SimTime(20), "b")));
            assert_eq!(q.pop(), Some((SimTime(30), "c")));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn fifo_within_same_instant() {
        for backend in QueueBackend::ALL {
            let mut q = EventQueue::with_backend(backend);
            for i in 0..100 {
                q.schedule_at(SimTime(5), i);
            }
            for i in 0..100 {
                assert_eq!(q.pop(), Some((SimTime(5), i)), "{backend:?}");
            }
        }
    }

    #[test]
    fn schedule_in_adds_to_now() {
        let mut q = EventQueue::new();
        q.schedule_in(SimTime(1_000), Duration::from_picos(500), ());
        assert_eq!(q.pop(), Some((SimTime(1_500), ())));
    }

    #[test]
    fn keyed_order_is_time_src_seq() {
        for backend in QueueBackend::ALL {
            let mut q = EventQueue::with_backend(backend);
            let k = |at, src, seq| EventKey {
                at: SimTime(at),
                src,
                seq,
            };
            q.schedule_keyed(k(50, 1, 0), "b");
            q.schedule_keyed(k(50, 0, 7), "a");
            q.schedule_keyed(k(50, 1, 1), "c");
            q.schedule_keyed(k(40, 9, 9), "first");
            assert_eq!(q.pop_keyed().unwrap().1, "first", "{backend:?}");
            assert_eq!(q.pop_keyed().unwrap().1, "a");
            assert_eq!(q.pop_keyed().unwrap().1, "b");
            assert_eq!(q.pop_keyed().unwrap().1, "c");
        }
    }

    #[test]
    fn near_max_keys_survive_resize_churn() {
        // The width-adaptation in `CalendarQueue::resize` measures the
        // key spread; with "never"-adjacent keys (SimTime::MAX) in the
        // population the spread spans nearly the whole u64 range and the
        // old `2 * spread` doubling wrapped. The ladder's window
        // arithmetic must saturate the same way. Mixing near-zero and
        // near-MAX keys through enough inserts to force restructuring
        // must still drain in exact order.
        for backend in QueueBackend::ALL {
            let mut q = EventQueue::with_backend(backend);
            for i in 0..64u64 {
                q.schedule_at(SimTime(i), i);
                q.schedule_at(SimTime(u64::MAX - i), u64::MAX - i);
            }
            let mut prev = None;
            let mut n = 0;
            while let Some((at, v)) = q.pop() {
                assert_eq!(at.picos(), v, "{backend:?}");
                if let Some(p) = prev {
                    assert!(at.picos() > p, "{backend:?}: {p} then {}", at.picos());
                }
                prev = Some(at.picos());
                n += 1;
            }
            assert_eq!(n, 128, "{backend:?}");
        }
    }

    #[test]
    fn arena_slot_reuse_keeps_storage_bounded() {
        // Payload slots recycle through the free list: pushing and fully
        // draining 64 events per round must never grow the arena past the
        // high-water population, on any backend.
        for backend in QueueBackend::ALL {
            let mut q = EventQueue::with_backend(backend);
            for round in 0..10u64 {
                for i in 0..64u64 {
                    q.schedule_at(SimTime(round * 100 + i), i);
                }
                while q.pop().is_some() {}
            }
            assert!(
                q.arena.slots.len() <= 64,
                "{backend:?}: arena grew to {}",
                q.arena.slots.len()
            );
            assert_eq!(q.scheduled_total(), 640, "{backend:?}");
        }
    }

    #[test]
    fn interleaved_pop_and_schedule() {
        for backend in QueueBackend::ALL {
            let mut q = EventQueue::with_backend(backend);
            q.schedule_at(SimTime(1), 1u32);
            q.schedule_at(SimTime(3), 3);
            let (t, e) = q.pop().unwrap();
            assert_eq!((t, e), (SimTime(1), 1), "{backend:?}");
            q.schedule_at(SimTime(2), 2);
            assert_eq!(q.pop(), Some((SimTime(2), 2)));
            assert_eq!(q.pop(), Some((SimTime(3), 3)));
        }
    }

    #[test]
    fn survives_resize_churn() {
        for backend in QueueBackend::ALL {
            let mut q = EventQueue::with_backend(backend);
            // Push enough to force several restructurings, then drain,
            // with times spanning ns to ms so widths adapt.
            let mut expect = Vec::new();
            let mut x = 0x9E3779B97F4A7C15u64;
            for i in 0..5_000u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let at = x % 1_000_000_000; // 0..1 ms
                q.schedule_at(SimTime(at), i);
                expect.push((at, i));
            }
            expect.sort();
            let mut got = Vec::new();
            while let Some((t, e)) = q.pop() {
                got.push((t.0, e));
            }
            assert_eq!(got, expect, "{backend:?}");
        }
    }

    #[test]
    fn handles_far_future_and_past_rewind() {
        for backend in QueueBackend::ALL {
            let mut q = EventQueue::with_backend(backend);
            q.schedule_at(SimTime(1_000_000_000_000), "far"); // 1 s out
            q.schedule_at(SimTime(10), "near");
            assert_eq!(q.pop(), Some((SimTime(10), "near")), "{backend:?}");
            // After the cursor advanced, a push behind it must still
            // dequeue in order.
            q.schedule_at(SimTime(20), "behind");
            assert_eq!(q.pop(), Some((SimTime(20), "behind")));
            assert_eq!(q.pop(), Some((SimTime(1_000_000_000_000), "far")));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn pop_before_respects_the_horizon() {
        for backend in QueueBackend::ALL {
            let mut q = EventQueue::with_backend(backend);
            q.schedule_at(SimTime(10), "a");
            q.schedule_at(SimTime(20), "b");
            q.schedule_at(SimTime(30), "c");
            assert_eq!(q.pop_keyed_before(SimTime(10)), None, "{backend:?}");
            assert_eq!(q.pop_keyed_before(SimTime(21)).unwrap().1, "a");
            assert_eq!(q.pop_keyed_before(SimTime(21)).unwrap().1, "b");
            assert_eq!(q.pop_keyed_before(SimTime(21)), None);
            assert_eq!(q.len(), 1);
            assert_eq!(q.pop_keyed_before(SimTime::MAX).unwrap().1, "c");
            assert_eq!(q.pop_keyed_before(SimTime::MAX), None);
        }
    }

    #[test]
    fn pop_before_fast_refusal_leaves_top_untouched() {
        // The ladder's whole point: a horizon below the pending minimum
        // refuses via the hint without sweeping events into the bottom.
        let mut q = EventQueue::with_backend(QueueBackend::Ladder);
        // "near" seeds the bottom window; "far" lies past it → top tier.
        q.schedule_at(SimTime(5), "near");
        q.schedule_at(SimTime(1_000_000), "far");
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.pop_keyed_before(SimTime(100)), None);
        match &q.inner {
            Inner::Ladder(l) => {
                assert!(
                    l.bottom.is_empty(),
                    "refusal must not sweep the top down: {l:?}"
                );
                assert_eq!(l.top_min.map(|k| k.at), Some(SimTime(1_000_000)));
            }
            _ => unreachable!(),
        }
        assert_eq!(q.pop_keyed_before(SimTime::MAX).unwrap().1, "far");
    }

    #[test]
    fn dense_window_spills_to_top() {
        // A population dense enough to sit entirely inside one bottom
        // window must spill: the live region stays bounded (inserts keep
        // their short-shift cost) and the drain order is still exact.
        let mut q = EventQueue::with_backend(QueueBackend::Ladder);
        for i in 0..512u64 {
            // All within the initial 2^14 ps window, distinct times.
            q.schedule_at(SimTime(1 + (i * 7) % 8000), i);
        }
        match &q.inner {
            Inner::Ladder(l) => {
                assert!(
                    l.bottom.len() - l.bot_head <= SPILL_LEN + 1,
                    "live bottom must stay capped: {} entries",
                    l.bottom.len() - l.bot_head
                );
                assert!(!l.top.is_empty(), "the spill feeds the top tier");
            }
            _ => unreachable!(),
        }
        let mut prev = None;
        for _ in 0..512 {
            let (t, _) = q.pop().expect("512 scheduled");
            if let Some(p) = prev {
                assert!(t >= p, "spill broke the drain order");
            }
            prev = Some(t);
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn auto_backend_migrates_both_ways_and_keeps_order() {
        // Drive the population through both migration thresholds with a
        // hold-model loop and check the structure actually switched each
        // time, with pop order staying exact throughout (the reference
        // heap runs the identical sequence alongside).
        let mut q: EventQueue<u64> = EventQueue::with_backend(QueueBackend::Auto);
        let mut r: EventQueue<u64> = EventQueue::binary_heap();
        assert_eq!(q.backend(), QueueBackend::Auto);
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 4096) + 1
        };
        for i in 0..200u64 {
            let d = step();
            q.schedule_at(SimTime(d), i);
            r.schedule_at(SimTime(d), i);
        }
        // Population 200 > AUTO_UP_LEN: a streak of holds migrates up.
        for _ in 0..2 * AUTO_STREAK {
            let (t, v) = q.pop().expect("steady population");
            assert_eq!(r.pop(), Some((t, v)));
            let d = step();
            q.schedule_at(SimTime(t.0 + d), v);
            r.schedule_at(SimTime(t.0 + d), v);
        }
        match &q.inner {
            Inner::Auto(a) => {
                assert!(
                    matches!(a.inner, AutoInner::Calendar(_)),
                    "sustained population 200 must migrate to the calendar"
                );
            }
            _ => unreachable!(),
        }
        // Drain below AUTO_DOWN_LEN, then hold there: migrates back.
        while q.len() > 8 {
            let (t, v) = q.pop().expect("still populated");
            assert_eq!(r.pop(), Some((t, v)));
        }
        for _ in 0..2 * AUTO_STREAK {
            let (t, v) = q.pop().expect("steady population");
            assert_eq!(r.pop(), Some((t, v)));
            let d = step();
            q.schedule_at(SimTime(t.0 + d), v);
            r.schedule_at(SimTime(t.0 + d), v);
        }
        match &q.inner {
            Inner::Auto(a) => {
                assert!(
                    matches!(a.inner, AutoInner::Ladder(_)),
                    "collapsed population must migrate back to the ladder"
                );
            }
            _ => unreachable!(),
        }
        while let Some((t, v)) = q.pop() {
            assert_eq!(r.pop(), Some((t, v)));
        }
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn backends_agree_on_random_workload() {
        // Differential test: identical operation sequences produce
        // identical pop sequences on all backends.
        let mut queues: Vec<EventQueue<u64>> = QueueBackend::ALL
            .iter()
            .map(|&b| EventQueue::with_backend(b))
            .collect();
        for q in &mut queues {
            let mut x = 0x2545F4914F6CDD1Du64;
            for i in 0..400u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let at = x % 50_000;
                q.schedule_at(SimTime(at), i);
            }
        }
        loop {
            let (rest, first) = queues.split_at_mut(1);
            let mut done = false;
            let t0 = rest[0].peek_time();
            let a = rest[0].pop_keyed();
            for q in first {
                assert_eq!(q.peek_time(), t0, "{:?}", q.backend());
                let b = q.pop_keyed();
                assert_eq!(a, b, "{:?}", q.backend());
            }
            if a.is_none() {
                done = true;
            }
            if done {
                break;
            }
        }
    }

    #[test]
    fn peek_memo_survives_inserts() {
        // Exercises the min-hints: a peek locates the minimum, then
        // inserts land both behind it (take the hint over) and ahead of
        // it (leave it alone) before the pops check the order.
        for backend in QueueBackend::ALL {
            let mut q = EventQueue::with_backend(backend);
            q.schedule_at(SimTime(500), "mid");
            assert_eq!(q.peek_time(), Some(SimTime(500)), "{backend:?}");
            q.schedule_at(SimTime(900), "late"); // keeps the hint
            q.schedule_at(SimTime(100), "early"); // takes the hint over
            assert_eq!(q.peek_time(), Some(SimTime(100)));
            q.schedule_at(SimTime(100), "early2"); // same instant, later seq
            assert_eq!(q.pop(), Some((SimTime(100), "early")));
            assert_eq!(q.pop(), Some((SimTime(100), "early2")));
            assert_eq!(q.peek_time(), Some(SimTime(500)));
            assert_eq!(q.pop(), Some((SimTime(500), "mid")));
            assert_eq!(q.pop(), Some((SimTime(900), "late")));
            assert_eq!(q.pop(), None);
            assert_eq!(q.peek_time(), None);
        }
    }
}
