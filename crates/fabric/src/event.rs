//! The event queue at the heart of the discrete-event kernel.
//!
//! Events are totally ordered by [`EventKey`] = `(time, src, seq)`: two
//! events scheduled for the same instant fire in the order their keys
//! compare, which makes every simulation run fully deterministic. The
//! `src` component exists for the *parallel* fabric engine: each shard of
//! a sharded simulation stamps the events it schedules with its own shard
//! index and a shard-local sequence number, so the interleaving of
//! same-instant events is a pure function of the model — independent of
//! which worker thread ran which shard, and independent of thread count.
//! Single-queue users never see it: [`EventQueue::schedule_at`] stamps
//! `src = 0` and a queue-local sequence, which reduces to the classic
//! `(time, seq)` FIFO-within-instant order.
//!
//! Two backends implement the same contract:
//!
//! * [`QueueBackend::Calendar`] (the default) — a Brown-style calendar
//!   queue: events hash into `width`-picosecond buckets mod the bucket
//!   count, dequeue scans the bucket of the current "day" for the minimum
//!   key, and the structure resizes itself as the population grows or
//!   shrinks. Fabric events cluster in a narrow band (wire
//!   serialisation plus receiver drain, tens of nanoseconds), which is
//!   exactly the access pattern calendar queues turn into O(1)
//!   schedule/pop.
//! * [`QueueBackend::BinaryHeap`] — the original `BinaryHeap` engine,
//!   kept behind a constructor for differential testing (the determinism
//!   suite runs every workload on both backends and asserts bit-identical
//!   results) and as a fallback should a pathological distribution defeat
//!   the calendar's bucket adaptation.

use crate::time::{Duration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Total order on events: time first, then the scheduling source (shard
/// index in sharded simulations, 0 otherwise), then the source-local
/// sequence number. Unique per event, so the order is total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventKey {
    /// Absolute firing time.
    pub at: SimTime,
    /// Scheduling source (shard index); 0 for single-queue users.
    pub src: u32,
    /// Source-local sequence number; unique per `src`.
    pub seq: u64,
}

/// Which implementation backs an [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueBackend {
    /// Calendar queue (O(1) amortised for banded event populations).
    #[default]
    Calendar,
    /// Binary heap (O(log n)); the differential-testing reference.
    BinaryHeap,
}

/// A time-ordered queue of events of type `E`, generic over backend.
#[derive(Debug)]
pub struct EventQueue<E> {
    inner: Inner<E>,
    next_seq: u64,
    scheduled_total: u64,
}

#[derive(Debug)]
enum Inner<E> {
    Heap(HeapQueue<E>),
    Calendar(CalendarQueue<E>),
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// A queue on the default backend (calendar).
    #[must_use]
    pub fn new() -> Self {
        Self::with_backend(QueueBackend::default())
    }

    /// A queue on the classic binary-heap backend.
    #[must_use]
    pub fn binary_heap() -> Self {
        Self::with_backend(QueueBackend::BinaryHeap)
    }

    #[must_use]
    pub fn with_backend(backend: QueueBackend) -> Self {
        let inner = match backend {
            QueueBackend::BinaryHeap => Inner::Heap(HeapQueue::new()),
            QueueBackend::Calendar => Inner::Calendar(CalendarQueue::new()),
        };
        EventQueue {
            inner,
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// The backend this queue runs on.
    pub fn backend(&self) -> QueueBackend {
        match &self.inner {
            Inner::Heap(_) => QueueBackend::BinaryHeap,
            Inner::Calendar(_) => QueueBackend::Calendar,
        }
    }

    /// Schedule `event` to fire at absolute time `at` (source 0, local
    /// sequence — FIFO within the same instant).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.schedule_keyed(EventKey { at, src: 0, seq }, event);
    }

    /// Schedule `event` to fire `after` past `now`.
    pub fn schedule_in(&mut self, now: SimTime, after: Duration, event: E) {
        self.schedule_at(now + after, event);
    }

    /// Schedule `event` under an explicit key. The sharded engine uses
    /// this to stamp events with `(shard, shard-local seq)` so merge
    /// order is deterministic across thread counts. Keys must be unique.
    pub fn schedule_keyed(&mut self, key: EventKey, event: E) {
        self.scheduled_total += 1;
        match &mut self.inner {
            Inner::Heap(q) => q.push(key, event),
            Inner::Calendar(q) => q.insert(key, event),
        }
    }

    /// Pop the earliest event, returning its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_keyed().map(|(k, e)| (k.at, e))
    }

    /// Pop the earliest event together with its full key.
    pub fn pop_keyed(&mut self) -> Option<(EventKey, E)> {
        match &mut self.inner {
            Inner::Heap(q) => q.pop(),
            Inner::Calendar(q) => q.pop(),
        }
    }

    /// Pop the earliest event only if it fires strictly before `limit` —
    /// the epoch primitive of the sharded engine (one ordered scan per
    /// call, nothing popped and re-pushed at the horizon).
    pub fn pop_keyed_before(&mut self, limit: SimTime) -> Option<(EventKey, E)> {
        match &mut self.inner {
            Inner::Heap(q) => {
                if q.peek_key()?.at >= limit {
                    return None;
                }
                q.pop()
            }
            Inner::Calendar(q) => q.pop_before(limit),
        }
    }

    /// Time of the earliest pending event. Takes `&mut self` so the
    /// calendar backend can memoise the located minimum: the epoch
    /// executive peeks every shard to publish its local bound, then pops
    /// the same event — one bucket scan instead of two.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.inner {
            Inner::Heap(q) => q.peek_key().map(|k| k.at),
            Inner::Calendar(q) => q.peek_key().map(|k| k.at),
        }
    }

    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Heap(q) => q.len(),
            Inner::Calendar(q) => q.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled (for run statistics).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

// ───────────────────────── binary-heap backend ─────────────────────────

#[derive(Debug)]
struct HeapQueue<E> {
    heap: BinaryHeap<Reverse<(EventKey, usize)>>,
    slots: Vec<Option<E>>,
    free: Vec<usize>,
}

impl<E> HeapQueue<E> {
    fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    fn push(&mut self, key: EventKey, event: E) {
        let slot = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(event);
                i
            }
            None => {
                self.slots.push(Some(event));
                self.slots.len() - 1
            }
        };
        self.heap.push(Reverse((key, slot)));
    }

    fn pop(&mut self) -> Option<(EventKey, E)> {
        let Reverse((key, slot)) = self.heap.pop()?;
        let ev = self.slots[slot].take().expect("event slot occupied");
        self.free.push(slot);
        Some((key, ev))
    }

    fn peek_key(&self) -> Option<EventKey> {
        self.heap.peek().map(|Reverse((k, _))| *k)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

// ───────────────────────── calendar backend ────────────────────────────

/// A Brown calendar queue. Buckets are unsorted vectors of
/// `(key, event)`; an event at time `t` lives in bucket
/// `(t / width) % nbuckets`. Dequeue walks buckets from the cursor,
/// taking the minimum-key event whose time falls inside the bucket's
/// current "day"; after scanning a full year without a hit it falls back
/// to a direct min search (events far beyond the calendar horizon).
///
/// The queue resizes (doubling/halving the bucket count and re-deriving
/// the bucket width from the observed spread of pending events) when the
/// population crosses 2×/0.5× the bucket count, which keeps the expected
/// bucket occupancy — and therefore schedule/pop cost — O(1) for the
/// banded distributions discrete-event fabrics produce.
#[derive(Debug)]
struct CalendarQueue<E> {
    buckets: Vec<Vec<(EventKey, E)>>,
    /// Picoseconds per bucket (power of two, so the hash is a shift).
    width_shift: u32,
    /// `buckets.len() - 1`; bucket count is a power of two.
    mask: usize,
    /// Bucket the dequeue cursor is standing on.
    cursor: usize,
    /// Start of the day the cursor bucket currently covers.
    day_start: u64,
    count: usize,
    /// Memoised location `(bucket, index)` of the minimum-key event, or
    /// `None` when unknown. A peek finds the minimum, a pop of the same
    /// event reuses it; inserts keep it live (a smaller key simply takes
    /// it over), so a peek/pop pair costs one bucket scan, not two.
    min_hint: Option<(usize, usize)>,
    /// Spare bucket storage kept across resizes so steady-state churn
    /// allocates nothing.
    spare: Vec<Vec<(EventKey, E)>>,
}

/// Initial bucket width: 2^12 ps ≈ 4 ns — the low edge of the wire
/// serialisation band, so freshly built queues start near the adapted
/// state for fabric workloads.
const INIT_WIDTH_SHIFT: u32 = 12;
const INIT_BUCKETS: usize = 16;

impl<E> CalendarQueue<E> {
    fn new() -> Self {
        CalendarQueue {
            buckets: (0..INIT_BUCKETS).map(|_| Vec::new()).collect(),
            width_shift: INIT_WIDTH_SHIFT,
            mask: INIT_BUCKETS - 1,
            cursor: 0,
            day_start: 0,
            count: 0,
            min_hint: None,
            spare: Vec::new(),
        }
    }

    #[inline]
    fn bucket_of(&self, at: SimTime) -> usize {
        ((at.0 >> self.width_shift) as usize) & self.mask
    }

    /// Insert under `key`. Amortised O(1): a bucket index computation and
    /// an append; the occupancy-triggered `resize` is the only non-hot
    /// step and recycles bucket storage.
    #[cfg_attr(lint, tcc_no_alloc)]
    fn insert(&mut self, key: EventKey, event: E) {
        // An event earlier than the cursor's day (legal: ties with the
        // current instant, or a sharded merge delivering work at the
        // epoch floor) must rewind the cursor so dequeue sees it.
        if key.at.0 < self.day_start {
            self.day_start = (key.at.0 >> self.width_shift) << self.width_shift;
            self.cursor = self.bucket_of(key.at);
        }
        let b = self.bucket_of(key.at);
        self.buckets[b].push((key, event));
        // Bucket pushes never move existing entries, so a live hint stays
        // valid; it only changes hands if the new key is smaller (keys
        // are unique, so `<` suffices).
        self.min_hint = match self.min_hint {
            None if self.count == 0 => Some((b, self.buckets[b].len() - 1)),
            Some((hb, hi)) if key < self.buckets[hb][hi].0 => Some((b, self.buckets[b].len() - 1)),
            h => h,
        };
        self.count += 1;
        if self.count > 2 * self.buckets.len() && self.buckets.len() < (1 << 20) {
            self.resize(self.buckets.len() * 2);
        }
    }

    /// Locate the minimum-key event: walk day buckets from the cursor for
    /// at most one year (each day's events can only live in its own
    /// bucket, so the first day with an event holds the minimum), falling
    /// back to a direct sweep for sparse far-future populations.
    #[cfg_attr(lint, tcc_no_alloc)]
    fn find_min(&self) -> Option<(usize, usize)> {
        if self.count == 0 {
            return None;
        }
        let width = 1u64 << self.width_shift;
        let nb = self.buckets.len();
        for step in 0..nb {
            let b = (self.cursor + step) & self.mask;
            let day_end = self
                .day_start
                .saturating_add((step as u64 + 1).saturating_mul(width));
            let bucket = &self.buckets[b];
            let mut best: Option<usize> = None;
            for (i, (k, _)) in bucket.iter().enumerate() {
                if k.at.0 < day_end {
                    best = match best {
                        Some(j) if bucket[j].0 <= *k => Some(j),
                        _ => Some(i),
                    };
                }
            }
            if let Some(i) = best {
                return Some((b, i));
            }
        }
        let mut out: Option<(usize, usize)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (i, (k, _)) in bucket.iter().enumerate() {
                let better = match out {
                    Some((ob, oi)) => *k < self.buckets[ob][oi].0,
                    None => true,
                };
                if better {
                    out = Some((b, i));
                }
            }
        }
        debug_assert!(out.is_some(), "count > 0 but no event found");
        out
    }

    /// [`find_min`](Self::find_min) through the memo: reuse a live hint,
    /// otherwise scan and remember the answer.
    fn find_min_cached(&mut self) -> Option<(usize, usize)> {
        if self.min_hint.is_none() {
            self.min_hint = self.find_min();
        }
        self.min_hint
    }

    fn pop(&mut self) -> Option<(EventKey, E)> {
        let (b, i) = self.find_min_cached()?;
        Some(self.commit_take(b, i))
    }

    /// Pop the minimum only if it fires strictly before `limit`; the
    /// cursor stays put on a refusal and the hint stays live, so the next
    /// call is O(1) (the gap is at most one epoch's lookahead band).
    #[cfg_attr(lint, tcc_no_alloc)]
    fn pop_before(&mut self, limit: SimTime) -> Option<(EventKey, E)> {
        let (b, i) = self.find_min_cached()?;
        if self.buckets[b][i].0.at >= limit {
            return None;
        }
        Some(self.commit_take(b, i))
    }

    /// Advance the cursor to the popped key's day and remove it.
    fn commit_take(&mut self, b: usize, i: usize) -> (EventKey, E) {
        let at = self.buckets[b][i].0.at;
        self.day_start = (at.0 >> self.width_shift) << self.width_shift;
        self.cursor = self.bucket_of(at);
        self.take(b, i)
    }

    /// Remove entry `i` of bucket `b` (order inside a bucket is
    /// irrelevant, so `swap_remove`), shrinking the calendar if the
    /// population collapsed.
    fn take(&mut self, b: usize, i: usize) -> (EventKey, E) {
        // `swap_remove` relocates the bucket's last entry, and the
        // minimum is gone either way: drop the hint.
        self.min_hint = None;
        let out = self.buckets[b].swap_remove(i);
        self.count -= 1;
        if self.count * 4 < self.buckets.len() && self.buckets.len() > INIT_BUCKETS {
            self.resize(self.buckets.len() / 2);
        }
        out
    }

    fn peek_key(&mut self) -> Option<EventKey> {
        self.find_min_cached().map(|(b, i)| self.buckets[b][i].0)
    }

    fn len(&self) -> usize {
        self.count
    }

    /// Rebuild with `nb` buckets (power of two) and a bucket width
    /// re-derived from the observed event spread, re-hashing every
    /// pending event. Amortised against the pushes/pops that triggered
    /// it; bucket storage is recycled through `spare`.
    #[cfg_attr(lint, tcc_alloc_ok)]
    fn resize(&mut self, nb: usize) {
        debug_assert!(nb.is_power_of_two());
        self.min_hint = None; // every entry is about to be re-hashed

        // Width adaptation: aim for the day span (nb * width) to cover
        // the pending population's time spread, so events spread across
        // the year instead of aliasing into the same day.
        if self.count >= 2 {
            let mut lo = u64::MAX;
            let mut hi = 0u64;
            for (k, _) in self.buckets.iter().flatten() {
                lo = lo.min(k.at.0);
                hi = hi.max(k.at.0);
            }
            // `hi`/`lo` span the full u64 picosecond range (SimTime::MAX
            // is a legal "never" key), so the spread and its doubling
            // must saturate rather than wrap.
            let spread = hi.saturating_sub(lo).max(1);
            // width ≈ 2 * spread / count, clamped to [2^6, 2^40] ps.
            let target = (spread.saturating_mul(2) / self.count as u64).max(1);
            self.width_shift = (63 - target.leading_zeros()).clamp(6, 40);
        }
        let mut old = std::mem::take(&mut self.buckets);
        self.buckets = (0..nb)
            .map(|_| self.spare.pop().unwrap_or_default())
            .collect();
        self.mask = nb - 1;
        let mut min_at: Option<u64> = None;
        for bucket in &old {
            for (k, _) in bucket {
                min_at = Some(min_at.map_or(k.at.0, |m| m.min(k.at.0)));
            }
        }
        for mut bucket in old.drain(..) {
            for (k, e) in bucket.drain(..) {
                let b = self.bucket_of(k.at);
                self.buckets[b].push((k, e));
            }
            self.spare.push(bucket);
        }
        let floor = min_at.unwrap_or(self.day_start);
        self.day_start = (floor >> self.width_shift) << self.width_shift;
        self.cursor = ((floor >> self.width_shift) as usize) & self.mask;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        for backend in [QueueBackend::Calendar, QueueBackend::BinaryHeap] {
            let mut q = EventQueue::with_backend(backend);
            q.schedule_at(SimTime(30), "c");
            q.schedule_at(SimTime(10), "a");
            q.schedule_at(SimTime(20), "b");
            assert_eq!(q.peek_time(), Some(SimTime(10)), "{backend:?}");
            assert_eq!(q.pop(), Some((SimTime(10), "a")));
            assert_eq!(q.pop(), Some((SimTime(20), "b")));
            assert_eq!(q.pop(), Some((SimTime(30), "c")));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn fifo_within_same_instant() {
        for backend in [QueueBackend::Calendar, QueueBackend::BinaryHeap] {
            let mut q = EventQueue::with_backend(backend);
            for i in 0..100 {
                q.schedule_at(SimTime(5), i);
            }
            for i in 0..100 {
                assert_eq!(q.pop(), Some((SimTime(5), i)), "{backend:?}");
            }
        }
    }

    #[test]
    fn schedule_in_adds_to_now() {
        let mut q = EventQueue::new();
        q.schedule_in(SimTime(1_000), Duration::from_picos(500), ());
        assert_eq!(q.pop(), Some((SimTime(1_500), ())));
    }

    #[test]
    fn keyed_order_is_time_src_seq() {
        for backend in [QueueBackend::Calendar, QueueBackend::BinaryHeap] {
            let mut q = EventQueue::with_backend(backend);
            let k = |at, src, seq| EventKey {
                at: SimTime(at),
                src,
                seq,
            };
            q.schedule_keyed(k(50, 1, 0), "b");
            q.schedule_keyed(k(50, 0, 7), "a");
            q.schedule_keyed(k(50, 1, 1), "c");
            q.schedule_keyed(k(40, 9, 9), "first");
            assert_eq!(q.pop_keyed().unwrap().1, "first", "{backend:?}");
            assert_eq!(q.pop_keyed().unwrap().1, "a");
            assert_eq!(q.pop_keyed().unwrap().1, "b");
            assert_eq!(q.pop_keyed().unwrap().1, "c");
        }
    }

    #[test]
    fn near_max_keys_survive_resize_churn() {
        // The width-adaptation in `CalendarQueue::resize` measures the
        // key spread; with "never"-adjacent keys (SimTime::MAX) in the
        // population the spread spans nearly the whole u64 range and the
        // old `2 * spread` doubling wrapped. Mixing near-zero and
        // near-MAX keys through enough inserts to force resizes must
        // still drain in exact order.
        for backend in [QueueBackend::Calendar, QueueBackend::BinaryHeap] {
            let mut q = EventQueue::with_backend(backend);
            for i in 0..64u64 {
                q.schedule_at(SimTime(i), i);
                q.schedule_at(SimTime(u64::MAX - i), u64::MAX - i);
            }
            let mut prev = None;
            let mut n = 0;
            while let Some((at, v)) = q.pop() {
                assert_eq!(at.picos(), v, "{backend:?}");
                if let Some(p) = prev {
                    assert!(at.picos() > p, "{backend:?}: {p} then {}", at.picos());
                }
                prev = Some(at.picos());
                n += 1;
            }
            assert_eq!(n, 128, "{backend:?}");
        }
    }

    #[test]
    fn slot_reuse_keeps_len_bounded() {
        let mut q = EventQueue::binary_heap();
        for round in 0..10u64 {
            for i in 0..64u64 {
                q.schedule_at(SimTime(round * 100 + i), i);
            }
            while q.pop().is_some() {}
        }
        match &q.inner {
            Inner::Heap(h) => assert!(h.slots.len() <= 64, "slots grew to {}", h.slots.len()),
            Inner::Calendar(_) => unreachable!(),
        }
        assert_eq!(q.scheduled_total(), 640);
    }

    #[test]
    fn interleaved_pop_and_schedule() {
        for backend in [QueueBackend::Calendar, QueueBackend::BinaryHeap] {
            let mut q = EventQueue::with_backend(backend);
            q.schedule_at(SimTime(1), 1u32);
            q.schedule_at(SimTime(3), 3);
            let (t, e) = q.pop().unwrap();
            assert_eq!((t, e), (SimTime(1), 1), "{backend:?}");
            q.schedule_at(SimTime(2), 2);
            assert_eq!(q.pop(), Some((SimTime(2), 2)));
            assert_eq!(q.pop(), Some((SimTime(3), 3)));
        }
    }

    #[test]
    fn calendar_survives_resize_churn() {
        let mut q = EventQueue::new();
        // Push enough to force several doublings, then drain to force
        // shrinks, with times spanning ns to ms so the width adapts.
        let mut expect = Vec::new();
        let mut x = 0x9E3779B97F4A7C15u64;
        for i in 0..5_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let at = x % 1_000_000_000; // 0..1 ms
            q.schedule_at(SimTime(at), i);
            expect.push((at, i));
        }
        expect.sort();
        let mut got = Vec::new();
        while let Some((t, e)) = q.pop() {
            got.push((t.0, e));
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn calendar_handles_far_future_and_past_rewind() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(1_000_000_000_000), "far"); // 1 s out
        q.schedule_at(SimTime(10), "near");
        assert_eq!(q.pop(), Some((SimTime(10), "near")));
        // After the cursor advanced, a push behind it must still dequeue
        // in order.
        q.schedule_at(SimTime(20), "behind");
        assert_eq!(q.pop(), Some((SimTime(20), "behind")));
        assert_eq!(q.pop(), Some((SimTime(1_000_000_000_000), "far")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_before_respects_the_horizon() {
        for backend in [QueueBackend::Calendar, QueueBackend::BinaryHeap] {
            let mut q = EventQueue::with_backend(backend);
            q.schedule_at(SimTime(10), "a");
            q.schedule_at(SimTime(20), "b");
            q.schedule_at(SimTime(30), "c");
            assert_eq!(q.pop_keyed_before(SimTime(10)), None, "{backend:?}");
            assert_eq!(q.pop_keyed_before(SimTime(21)).unwrap().1, "a");
            assert_eq!(q.pop_keyed_before(SimTime(21)).unwrap().1, "b");
            assert_eq!(q.pop_keyed_before(SimTime(21)), None);
            assert_eq!(q.len(), 1);
            assert_eq!(q.pop_keyed_before(SimTime::MAX).unwrap().1, "c");
            assert_eq!(q.pop_keyed_before(SimTime::MAX), None);
        }
    }

    #[test]
    fn backends_agree_on_random_workload() {
        // Differential test: identical operation sequences produce
        // identical pop sequences on both backends.
        let mut cal = EventQueue::new();
        let mut heap = EventQueue::binary_heap();
        let mut x = 0x2545F4914F6CDD1Du64;
        let step = |q: &mut EventQueue<u64>, x: &mut u64, ops: &mut Vec<(u64, u64)>| {
            for i in 0..400u64 {
                *x ^= *x << 13;
                *x ^= *x >> 7;
                *x ^= *x << 17;
                let at = *x % 50_000;
                q.schedule_at(SimTime(at), i);
                ops.push((at, i));
            }
        };
        let mut ops_a = Vec::new();
        let mut ops_b = Vec::new();
        let mut xa = x;
        step(&mut cal, &mut xa, &mut ops_a);
        step(&mut heap, &mut x, &mut ops_b);
        assert_eq!(ops_a, ops_b, "same op stream");
        loop {
            assert_eq!(cal.peek_time(), heap.peek_time());
            let a = cal.pop_keyed();
            let b = heap.pop_keyed();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn peek_memo_survives_inserts() {
        // Exercises the calendar's min-hint: a peek locates the minimum,
        // then inserts land both behind it (take the hint over) and ahead
        // of it (leave it alone) before the pops check the order.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(500), "mid");
        assert_eq!(q.peek_time(), Some(SimTime(500)));
        q.schedule_at(SimTime(900), "late"); // keeps the hint
        q.schedule_at(SimTime(100), "early"); // takes the hint over
        assert_eq!(q.peek_time(), Some(SimTime(100)));
        q.schedule_at(SimTime(100), "early2"); // same instant, later seq
        assert_eq!(q.pop(), Some((SimTime(100), "early")));
        assert_eq!(q.pop(), Some((SimTime(100), "early2")));
        assert_eq!(q.peek_time(), Some(SimTime(500)));
        assert_eq!(q.pop(), Some((SimTime(500), "mid")));
        assert_eq!(q.pop(), Some((SimTime(900), "late")));
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }
}
