//! Memory windows: the driver-level abstraction the message library is
//! built on.
//!
//! After boot, the TCCluster driver hands user space two kinds of mappings
//! (paper §V "Enabling Remote Access" / "Data Transmission"):
//!
//! * a [`RemoteWindow`] onto another node's exported memory — **write
//!   only**, because a TCCluster link cannot route responses, so the trait
//!   deliberately has no load method; and
//! * a [`LocalWindow`] onto this node's own exported (uncacheable) memory,
//!   where incoming posted writes appear and polling happens.
//!
//! Offsets are window-relative. All multi-byte values are little-endian.

/// Exponential-backoff spinner for polling loops.
///
/// TCCluster software really does spin (the receive path *is* a poll
/// loop), but an emulation must share cores with the thread it waits for.
/// Early iterations spin a handful of pause instructions (the message is
/// usually already in flight); only after the spin budget is exhausted
/// does the waiter start yielding its quantum. This keeps the common
/// ping-pong case on-core while still being polite under real contention
/// — on a single-core host an unbounded `spin_loop` would burn whole
/// scheduler quanta waiting for a peer that cannot run.
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// Spin budget: 2^SPIN_LIMIT pause instructions before yielding.
    const SPIN_LIMIT: u32 = 7;

    pub fn new() -> Self {
        Backoff { step: 0 }
    }

    /// What the next [`snooze`](Self::snooze) will do: burn `Some(n)`
    /// pause instructions, or `None` — give up the scheduler quantum.
    /// Exposed so the escalation schedule itself is unit-testable.
    pub fn spins_next(&self) -> Option<u32> {
        (self.step <= Self::SPIN_LIMIT).then(|| 1u32 << self.step)
    }

    /// Whether the spin budget is exhausted (every further snooze yields).
    pub fn is_yielding(&self) -> bool {
        self.step > Self::SPIN_LIMIT
    }

    /// Wait one escalating step: spin 2^step pauses, doubling each call,
    /// or yield the quantum once the spin budget is spent. The step
    /// saturates — total on-core spinning per wait is bounded at
    /// 2^(SPIN_LIMIT+1)-1 pauses, after which a waiter on a single-core
    /// host cedes the CPU to whoever it is waiting for.
    pub fn snooze(&mut self) {
        let spins = self.spins_next();
        self.step = (self.step + 1).min(Self::SPIN_LIMIT + 1);
        // Under loom, spinning never lets the modeled scheduler switch
        // threads: always yield so polling loops make progress.
        #[cfg(loom)]
        {
            let _ = spins;
            loom::thread::yield_now();
        }
        #[cfg(not(loom))]
        match spins {
            Some(n) => {
                for _ in 0..n {
                    std::hint::spin_loop();
                }
            }
            None => std::thread::yield_now(),
        }
    }

    /// Restart the escalation (call after making progress).
    pub fn reset(&mut self) {
        self.step = 0;
    }
}

/// Write-only mapping of remote memory.
pub trait RemoteWindow {
    /// Number of addressable bytes.
    fn len(&self) -> u64;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Posted store of `data` at `offset`. Weakly ordered: may coalesce
    /// with neighbouring stores in write-combining buffers.
    fn store(&self, offset: u64, data: &[u8]);

    /// Store a little-endian u64 (8-aligned offsets only).
    fn store_u64(&self, offset: u64, value: u64) {
        self.store(offset, &value.to_le_bytes());
    }

    /// `sfence`: all prior stores through this window become globally
    /// visible before any later ones.
    fn fence(&self);
}

/// Pollable mapping of local exported memory (uncacheable).
pub trait LocalWindow {
    fn len(&self) -> u64;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Uncached read of `buf.len()` bytes at `offset`.
    fn load(&self, offset: u64, buf: &mut [u8]);

    /// Uncached read of a little-endian u64.
    fn load_u64(&self, offset: u64) -> u64 {
        let mut b = [0u8; 8];
        self.load(offset, &mut b);
        u64::from_le_bytes(b)
    }
}

/// A trivially in-process window pair over one buffer — the unit-test
/// backend (single-threaded; the threaded backend is [`crate::shm`]).
pub mod inproc {
    use super::{LocalWindow, RemoteWindow};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Shared backing store.
    #[derive(Debug, Clone)]
    pub struct InprocMemory {
        bytes: Rc<RefCell<Vec<u8>>>,
    }

    impl InprocMemory {
        pub fn new(len: usize) -> Self {
            InprocMemory {
                bytes: Rc::new(RefCell::new(vec![0; len])),
            }
        }

        pub fn remote(&self) -> InprocRemote {
            InprocRemote { mem: self.clone() }
        }

        pub fn local(&self) -> InprocLocal {
            InprocLocal { mem: self.clone() }
        }
    }

    #[derive(Debug, Clone)]
    pub struct InprocRemote {
        mem: InprocMemory,
    }

    #[derive(Debug, Clone)]
    pub struct InprocLocal {
        mem: InprocMemory,
    }

    impl RemoteWindow for InprocRemote {
        fn len(&self) -> u64 {
            self.mem.bytes.borrow().len() as u64
        }

        fn store(&self, offset: u64, data: &[u8]) {
            let mut b = self.mem.bytes.borrow_mut();
            let o = offset as usize;
            assert!(o + data.len() <= b.len(), "remote store out of window");
            b[o..o + data.len()].copy_from_slice(data);
        }

        fn fence(&self) {}
    }

    impl LocalWindow for InprocLocal {
        fn len(&self) -> u64 {
            self.mem.bytes.borrow().len() as u64
        }

        fn load(&self, offset: u64, buf: &mut [u8]) {
            let b = self.mem.bytes.borrow();
            let o = offset as usize;
            assert!(o + buf.len() <= b.len(), "local load out of window");
            buf.copy_from_slice(&b[o..o + buf.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::inproc::InprocMemory;
    use super::*;

    #[test]
    fn backoff_schedule_doubles_then_yields() {
        let mut b = Backoff::new();
        // Spin phase: 1, 2, 4, ... 128 pauses — doubling each snooze.
        for expect in [1u32, 2, 4, 8, 16, 32, 64, 128] {
            assert_eq!(b.spins_next(), Some(expect));
            assert!(!b.is_yielding());
            b.snooze();
        }
        // Budget exhausted: every further snooze yields the quantum.
        for _ in 0..3 {
            assert_eq!(b.spins_next(), None);
            assert!(b.is_yielding());
            b.snooze();
        }
        // Progress restarts the escalation from the shortest spin.
        b.reset();
        assert_eq!(b.spins_next(), Some(1));
        assert!(!b.is_yielding());
    }

    #[test]
    fn store_load_round_trip() {
        let mem = InprocMemory::new(128);
        let r = mem.remote();
        let l = mem.local();
        r.store(16, &[1, 2, 3]);
        let mut buf = [0u8; 3];
        l.load(16, &mut buf);
        assert_eq!(buf, [1, 2, 3]);
    }

    #[test]
    fn u64_helpers_little_endian() {
        let mem = InprocMemory::new(64);
        mem.remote().store_u64(8, 0x0102_0304_0506_0708);
        assert_eq!(mem.local().load_u64(8), 0x0102_0304_0506_0708);
        let mut raw = [0u8; 8];
        mem.local().load(8, &mut raw);
        assert_eq!(raw[0], 0x08, "little-endian");
    }

    #[test]
    #[should_panic(expected = "out of window")]
    fn oob_store_panics() {
        let mem = InprocMemory::new(16);
        mem.remote().store(15, &[0, 0]);
    }

    #[test]
    fn window_has_no_load_on_remote() {
        // Compile-time property, documented here: RemoteWindow exposes
        // only store/fence. (If a `load` were added this test file is the
        // reminder of why it must not be.)
        fn takes_remote<R: RemoteWindow>(_: &R) {}
        let mem = InprocMemory::new(16);
        takes_remote(&mem.remote());
    }
}
