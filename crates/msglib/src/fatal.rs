//! msglib's protocol-violation funnel — the local twin of
//! `tcc_ht::fatal` (this crate sits below tcc-ht in the dependency
//! graph, so it cannot share that one). One reviewed `tcc_panic_ok`
//! function is the only way hot-path code aborts: a frame that fails to
//! decode after its ready flag was observed, or a tag outside the
//! protocol, means the shared-memory window is corrupt and any value
//! returned from it would be garbage.

use core::fmt;

/// Abort on a broken wire-protocol invariant. Never returns.
///
/// Deliberate panic, reviewed — see the module docs. Call through
/// [`protocol_violation!`](crate::protocol_violation).
#[cold]
#[inline(never)]
#[cfg_attr(lint, tcc_panic_ok)]
pub fn protocol_violation(args: fmt::Arguments<'_>) -> ! {
    panic!("protocol violation: {args}");
}

/// Format-and-abort sugar over [`fatal::protocol_violation`][self::protocol_violation].
#[macro_export]
macro_rules! protocol_violation {
    ($($arg:tt)*) => {
        $crate::fatal::protocol_violation(core::format_args!($($arg)*))
    };
}
