//! Atomics facade: `std::sync::atomic` normally, loom's modeled atomics
//! under `--cfg loom` so the shm protocols (single-writer rings, the
//! release-publication of [`crate::shm::ShmRemote::store`], dissemination
//! barriers) can be checked against the C11 memory model by
//! `tests/loom.rs` without touching protocol code.

#[cfg(loom)]
pub(crate) use loom::sync::atomic::{fence, AtomicU64, Ordering};
#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{fence, AtomicU64, Ordering};
