//! The shared-memory execution backend.
//!
//! Runs the message-library protocols with *real threads and real data
//! movement*, mapping TCCluster semantics onto the host memory model:
//!
//! * a remote posted store → relaxed word stores followed by a `Release`
//!   store of the last word (in-order visibility per channel, like the
//!   HT posted channel);
//! * `sfence` → `fence(SeqCst)`;
//! * an uncached poll → `Acquire` loads.
//!
//! Memory is an array of `AtomicU64` words, so any byte range can be read
//! and written concurrently without UB; the protocols guarantee a single
//! writer per region, mirroring the hardware (one HT link feeds one ring).

use crate::sync::{fence, AtomicU64, Ordering};
use crate::window::{LocalWindow, RemoteWindow};
use std::sync::Arc;

/// A block of exported memory, shareable across threads.
#[derive(Debug, Clone)]
pub struct ShmMemory {
    words: Arc<[AtomicU64]>,
}

impl ShmMemory {
    #[must_use]
    pub fn new(len_bytes: usize) -> Self {
        let words = len_bytes.div_ceil(8);
        ShmMemory {
            words: (0..words).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub fn len(&self) -> u64 {
        self.words.len() as u64 * 8
    }

    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// A write-only window over `[base, base+len)`.
    pub fn remote(&self, base: u64, len: u64) -> ShmRemote {
        assert!(base.is_multiple_of(8), "windows are 8-byte aligned");
        assert!(base + len <= self.len(), "window exceeds memory");
        ShmRemote {
            mem: self.clone(),
            base,
            len,
        }
    }

    /// A pollable window over `[base, base+len)`.
    pub fn local(&self, base: u64, len: u64) -> ShmLocal {
        assert!(base.is_multiple_of(8), "windows are 8-byte aligned");
        assert!(base + len <= self.len(), "window exceeds memory");
        ShmLocal {
            mem: self.clone(),
            base,
            len,
        }
    }

    fn store_bytes(&self, at: u64, data: &[u8]) {
        // Word-granular writes; partial edge words use read-merge-write.
        // Safe under the single-writer-per-region protocol invariant.
        let mut off = at;
        let mut data = data;
        // Leading partial word.
        if !off.is_multiple_of(8) {
            let w = (off / 8) as usize;
            let shift = (off % 8) as usize;
            let n = data.len().min(8 - shift);
            let mut cur = self.words[w].load(Ordering::Relaxed).to_le_bytes();
            cur[shift..shift + n].copy_from_slice(&data[..n]);
            self.words[w].store(u64::from_le_bytes(cur), Ordering::Relaxed);
            off += n as u64;
            data = &data[n..];
        }
        // Full words.
        let mut chunks = data.chunks_exact(8);
        for c in &mut chunks {
            let w = (off / 8) as usize;
            // chunks_exact(8) pins the length, so copy into a fixed word
            // rather than fallibly converting the slice.
            let mut word = [0u8; 8];
            word.copy_from_slice(c);
            self.words[w].store(u64::from_le_bytes(word), Ordering::Relaxed);
            off += 8;
        }
        // Trailing partial word.
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let w = (off / 8) as usize;
            let mut cur = self.words[w].load(Ordering::Relaxed).to_le_bytes();
            cur[..rem.len()].copy_from_slice(rem);
            self.words[w].store(u64::from_le_bytes(cur), Ordering::Relaxed);
        }
    }

    fn load_bytes(&self, at: u64, buf: &mut [u8]) {
        let mut off = at;
        let mut i = 0usize;
        while i < buf.len() {
            let w = (off / 8) as usize;
            let shift = (off % 8) as usize;
            let n = (buf.len() - i).min(8 - shift);
            let cur = self.words[w].load(Ordering::Acquire).to_le_bytes();
            buf[i..i + n].copy_from_slice(&cur[shift..shift + n]);
            off += n as u64;
            i += n;
        }
    }
}

/// Write-only view (the mmap of a remote node's exported page).
#[derive(Debug, Clone)]
pub struct ShmRemote {
    mem: ShmMemory,
    base: u64,
    len: u64,
}

impl RemoteWindow for ShmRemote {
    fn len(&self) -> u64 {
        self.len
    }

    fn store(&self, offset: u64, data: &[u8]) {
        assert!(
            offset + data.len() as u64 <= self.len,
            "store out of window"
        );
        self.mem.store_bytes(self.base + offset, data);
        // Publish: the header-last protocol needs the final word of a cell
        // to act as the release point. A release fence before nothing would
        // not order the relaxed stores for an acquire *load*, so promote
        // visibility with a real Release store of the last touched word.
        let last_word = (self.base + offset + data.len() as u64 - 1) / 8;
        let v = self.mem.words[last_word as usize].load(Ordering::Relaxed);
        self.mem.words[last_word as usize].store(v, Ordering::Release);
    }

    fn store_u64(&self, offset: u64, value: u64) {
        assert!(offset.is_multiple_of(8) && offset + 8 <= self.len);
        let w = ((self.base + offset) / 8) as usize;
        // Header stores are the release points of the ring protocol.
        fence(Ordering::Release);
        self.mem.words[w].store(value, Ordering::Release);
    }

    fn fence(&self) {
        fence(Ordering::SeqCst);
    }
}

/// Pollable view of the locally exported page.
#[derive(Debug, Clone)]
pub struct ShmLocal {
    mem: ShmMemory,
    base: u64,
    len: u64,
}

impl LocalWindow for ShmLocal {
    fn len(&self) -> u64 {
        self.len
    }

    fn load(&self, offset: u64, buf: &mut [u8]) {
        assert!(offset + buf.len() as u64 <= self.len, "load out of window");
        self.mem.load_bytes(self.base + offset, buf);
        fence(Ordering::Acquire);
    }

    fn load_u64(&self, offset: u64) -> u64 {
        assert!(offset.is_multiple_of(8) && offset + 8 <= self.len);
        let w = ((self.base + offset) / 8) as usize;
        self.mem.words[w].load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::{RingReceiver, RingSender, SendMode, RING_BYTES};

    #[test]
    fn unaligned_byte_ranges_round_trip() {
        let mem = ShmMemory::new(64);
        let r = mem.remote(0, 64);
        let l = mem.local(0, 64);
        r.store(3, &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
        let mut buf = [0u8; 11];
        l.load(3, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
        // Neighbouring bytes untouched.
        let mut edge = [0u8; 3];
        l.load(0, &mut edge);
        assert_eq!(edge, [0, 0, 0]);
    }

    #[test]
    fn windows_are_disjoint_views() {
        let mem = ShmMemory::new(128);
        let r1 = mem.remote(0, 64);
        let r2 = mem.remote(64, 64);
        r1.store(0, &[0xAA]);
        r2.store(0, &[0xBB]);
        let l = mem.local(0, 128);
        let mut b = [0u8; 1];
        l.load(0, &mut b);
        assert_eq!(b[0], 0xAA);
        l.load(64, &mut b);
        assert_eq!(b[0], 0xBB);
    }

    #[test]
    #[should_panic(expected = "window exceeds memory")]
    fn oversized_window_rejected() {
        let mem = ShmMemory::new(64);
        mem.remote(32, 64);
    }

    #[test]
    fn threaded_ring_stress() {
        // The load-bearing test: a real producer thread and consumer
        // thread running the eager ring protocol over shared memory.
        let ring = ShmMemory::new(RING_BYTES);
        let credit = ShmMemory::new(8);
        let mut tx = RingSender::new(
            ring.remote(0, RING_BYTES as u64),
            credit.local(0, 8),
            SendMode::WeaklyOrdered,
        );
        let mut rx = RingReceiver::new(ring.local(0, RING_BYTES as u64), credit.remote(0, 8));
        const N: u64 = 20_000;
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let len = (i % 190) as usize;
                let mut msg = vec![(i % 251) as u8; len];
                msg.extend_from_slice(&i.to_le_bytes());
                tx.send(&msg).unwrap();
            }
        });
        for i in 0..N {
            let msg = rx.recv();
            let len = (i % 190) as usize;
            assert_eq!(msg.len(), len + 8);
            assert!(msg[..len].iter().all(|&b| b == (i % 251) as u8));
            assert_eq!(u64::from_le_bytes(msg[len..].try_into().unwrap()), i);
        }
        producer.join().unwrap();
    }
}
