//! The eager message path: a ring of self-validating 72-byte cells.
//!
//! Layout (paper §IV.A: "each node has to allocate a 4 KB ring buffer for
//! each endpoint it wants to communicate with"):
//!
//! ```text
//! cell i (72 B):  [ payload: 64 B ][ header: 8 B ]
//! ring: 56 cells = 4032 B inside a 4 KB page
//! ```
//!
//! The header is written **after** the payload of its cell and cells are
//! written in ascending address order, so with HyperTransport's in-order
//! posted channel a valid header implies valid payload. Headers carry a
//! monotonically increasing sequence number, which both validates cells
//! across ring wraps (no cleanup stores needed) and lets the receiver
//! detect its position after restart.
//!
//! Flow control is the paper's "periodically exchange pointer information":
//! the receiver posts its consumed sequence number back into the sender's
//! memory every [`CREDIT_INTERVAL`] cells.

use crate::window::{LocalWindow, RemoteWindow};

/// Payload bytes per cell (one write-combining buffer / HT max packet).
pub const CELL_PAYLOAD: usize = 64;
/// Cell stride: payload + header.
pub const CELL_BYTES: usize = 72;
/// Cells per 4 KB ring.
pub const RING_CELLS: usize = 4096 / CELL_BYTES; // 56
/// Ring footprint in the exported page.
pub const RING_BYTES: usize = RING_CELLS * CELL_BYTES;
/// The receiver returns credit every this many consumed cells.
pub const CREDIT_INTERVAL: u64 = RING_CELLS as u64 / 4;

/// Largest message the eager path accepts (fills half the ring, so two
/// in-flight messages never deadlock on credits).
pub const MAX_EAGER: usize = (RING_CELLS / 2) * CELL_PAYLOAD;

/// Cell header encoding: [seq:40][len:7][first:1][last:1][magic:15].
const MAGIC: u64 = 0x5A17;

fn encode_header(seq: u64, len: usize, first: bool, last: bool) -> u64 {
    debug_assert!(len <= CELL_PAYLOAD);
    debug_assert!(seq < 1 << 40, "sequence space exhausted");
    (seq << 24) | ((len as u64) << 17) | ((first as u64) << 16) | ((last as u64) << 15) | MAGIC
}

fn decode_header(h: u64) -> Option<(u64, usize, bool, bool)> {
    if h & 0x7FFF != MAGIC {
        return None;
    }
    let seq = h >> 24;
    let len = ((h >> 17) & 0x7F) as usize;
    let first = h & (1 << 16) != 0;
    let last = h & (1 << 15) != 0;
    (len <= CELL_PAYLOAD).then_some((seq, len, first, last))
}

/// Ordering mode of a sender (paper Fig. 6's two mechanisms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendMode {
    /// Fence after every cell: strictly ordered delivery.
    StrictlyOrdered,
    /// Fence once per message (on the last cell's header): weakly ordered
    /// within the message, maximally write-combined.
    WeaklyOrdered,
}

/// Errors surfaced by the eager path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingError {
    /// Message exceeds [`MAX_EAGER`]; use the rendezvous path.
    TooLarge(usize),
    /// Not enough credit: the receiver has not freed enough cells yet.
    WouldBlock,
}

/// Sending half (lives on the sender node; writes into the receiver's
/// exported ring, reads its own credit cell).
#[derive(Debug)]
pub struct RingSender<R: RemoteWindow, L: LocalWindow> {
    ring: R,
    /// Local cell the receiver posts consumed-sequence credits into.
    credit: L,
    pub mode: SendMode,
    next_seq: u64,
    credited: u64,
    pub sent_messages: u64,
    pub sent_cells: u64,
    pub credit_stalls: u64,
}

impl<R: RemoteWindow, L: LocalWindow> RingSender<R, L> {
    #[must_use]
    pub fn new(ring: R, credit: L, mode: SendMode) -> Self {
        assert!(ring.len() >= RING_BYTES as u64, "ring window too small");
        assert!(credit.len() >= 8);
        RingSender {
            ring,
            credit,
            mode,
            next_seq: 0,
            credited: 0,
            sent_messages: 0,
            sent_cells: 0,
            credit_stalls: 0,
        }
    }

    /// Cells currently available without blocking.
    pub fn free_cells(&mut self) -> u64 {
        // Refresh credit from the local cell (receiver stores it remotely).
        let seen = self.credit.load_u64(0);
        debug_assert!(seen <= self.next_seq, "credit from the future");
        self.credited = self.credited.max(seen);
        RING_CELLS as u64 - (self.next_seq - self.credited)
    }

    /// Try to send one message on the eager path.
    pub fn try_send(&mut self, msg: &[u8]) -> Result<(), RingError> {
        if msg.len() > MAX_EAGER {
            return Err(RingError::TooLarge(msg.len()));
        }
        let cells = msg.len().div_ceil(CELL_PAYLOAD).max(1) as u64;
        if self.free_cells() < cells {
            self.credit_stalls += 1;
            return Err(RingError::WouldBlock);
        }
        let total = cells as usize;
        for (i, chunk) in msg
            .chunks(CELL_PAYLOAD)
            .chain(std::iter::once(&[][..]).take(usize::from(msg.is_empty())))
            .enumerate()
        {
            let seq = self.next_seq;
            let cell = (seq % RING_CELLS as u64) as usize;
            let base = (cell * CELL_BYTES) as u64;
            if !chunk.is_empty() {
                self.ring.store(base, chunk);
            }
            let header = encode_header(seq, chunk.len(), i == 0, i + 1 == total);
            self.ring.store_u64(base + CELL_PAYLOAD as u64, header);
            if self.mode == SendMode::StrictlyOrdered {
                self.ring.fence();
            }
            self.next_seq += 1;
            self.sent_cells += 1;
        }
        if self.mode == SendMode::WeaklyOrdered {
            // One fence per message finalises the transaction (the paper's
            // "synchronization operation that can finalize the transaction").
            self.ring.fence();
        }
        self.sent_messages += 1;
        Ok(())
    }

    /// Blocking send: exponential backoff while waiting on credit.
    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]
    pub fn send(&mut self, msg: &[u8]) -> Result<(), RingError> {
        let mut backoff = crate::window::Backoff::new();
        loop {
            match self.try_send(msg) {
                Err(RingError::WouldBlock) => backoff.snooze(),
                other => return other,
            }
        }
    }
}

/// Receiving half (lives on the receiver node; polls its own exported
/// ring, posts credits into the sender's memory).
#[derive(Debug)]
pub struct RingReceiver<L: LocalWindow, R: RemoteWindow> {
    ring: L,
    /// Remote cell in the sender's memory for credit returns.
    credit: R,
    expect_seq: u64,
    last_credit_sent: u64,
    /// Partially received multi-cell message.
    partial: Vec<u8>,
    pub received_messages: u64,
    pub polls: u64,
}

impl<L: LocalWindow, R: RemoteWindow> RingReceiver<L, R> {
    #[must_use]
    pub fn new(ring: L, credit: R) -> Self {
        assert!(ring.len() >= RING_BYTES as u64);
        assert!(credit.len() >= 8);
        RingReceiver {
            ring,
            credit,
            expect_seq: 0,
            last_credit_sent: 0,
            partial: Vec::new(),
            received_messages: 0,
            polls: 0,
        }
    }

    /// Poll once: returns a complete message if one is ready.
    ///
    /// Allocating convenience wrapper over [`try_recv_into`].
    ///
    /// [`try_recv_into`]: RingReceiver::try_recv_into
    pub fn try_recv(&mut self) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        self.try_recv_into(&mut out).map(|_| out)
    }

    /// Poll once, delivering a complete message into `out` (cleared
    /// first). Returns the message length.
    ///
    /// Allocation-free in steady state: the receiver's internal partial
    /// buffer and `out` swap roles on every delivery, so once both have
    /// grown to the working-set message size no further heap traffic
    /// occurs.
    pub fn try_recv_into(&mut self, out: &mut Vec<u8>) -> Option<usize> {
        loop {
            self.polls += 1;
            let cell = (self.expect_seq % RING_CELLS as u64) as usize;
            let base = (cell * CELL_BYTES) as u64;
            let header = self.ring.load_u64(base + CELL_PAYLOAD as u64);
            // Decode once: a cell is ready only when its header validates
            // and carries the expected sequence number.
            let (len, first, last) = match decode_header(header) {
                Some((seq, len, first, last)) if seq == self.expect_seq => (len, first, last),
                // Invalid or stale cell (previous ring lap): not ready.
                // The ring is idle from our side, so push any withheld
                // credit out now, otherwise a sender blocked on the last
                // few cells would deadlock against our CREDIT_INTERVAL
                // batching.
                _ => {
                    if self.expect_seq != self.last_credit_sent {
                        self.flush_credit();
                    }
                    return None;
                }
            };
            if first {
                self.partial.clear();
            }
            if len > 0 {
                let old = self.partial.len();
                self.partial.resize(old + len, 0);
                self.ring.load(base, &mut self.partial[old..old + len]);
            }
            self.expect_seq += 1;
            self.maybe_return_credit();
            if last {
                self.received_messages += 1;
                // Hand the accumulated message to the caller and adopt
                // their buffer as the next partial (capacity ping-pong).
                std::mem::swap(&mut self.partial, out);
                self.partial.clear();
                return Some(out.len());
            }
            // Multi-cell message: continue consuming cells.
        }
    }

    /// Spin until a message arrives.
    pub fn recv(&mut self) -> Vec<u8> {
        let mut out = Vec::new();
        self.recv_into(&mut out);
        out
    }

    /// Spin until a message arrives, delivering into `out`. Returns the
    /// message length. Uses exponential backoff while idle.
    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]
    pub fn recv_into(&mut self, out: &mut Vec<u8>) -> usize {
        let mut backoff = crate::window::Backoff::new();
        loop {
            if let Some(n) = self.try_recv_into(out) {
                return n;
            }
            backoff.snooze();
        }
    }

    fn maybe_return_credit(&mut self) {
        if self.expect_seq - self.last_credit_sent >= CREDIT_INTERVAL {
            self.credit.store_u64(0, self.expect_seq);
            self.credit.fence();
            self.last_credit_sent = self.expect_seq;
        }
    }

    /// Force a credit update (e.g. before idling).
    pub fn flush_credit(&mut self) {
        self.credit.store_u64(0, self.expect_seq);
        self.credit.fence();
        self.last_credit_sent = self.expect_seq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::inproc::InprocMemory;

    fn channel(
        mode: SendMode,
    ) -> (
        RingSender<crate::window::inproc::InprocRemote, crate::window::inproc::InprocLocal>,
        RingReceiver<crate::window::inproc::InprocLocal, crate::window::inproc::InprocRemote>,
    ) {
        let ring = InprocMemory::new(RING_BYTES);
        let credit = InprocMemory::new(8);
        (
            RingSender::new(ring.remote(), credit.local(), mode),
            RingReceiver::new(ring.local(), credit.remote()),
        )
    }

    #[test]
    fn header_round_trip() {
        for (seq, len, first, last) in [(0u64, 0usize, true, true), (1 << 39, 64, false, true)] {
            let h = encode_header(seq, len, first, last);
            assert_eq!(decode_header(h), Some((seq, len, first, last)));
        }
        assert_eq!(decode_header(0), None, "zeroed cell invalid");
        assert_eq!(decode_header(u64::MAX), None, "garbage len rejected");
    }

    #[test]
    fn single_cell_message() {
        let (mut tx, mut rx) = channel(SendMode::WeaklyOrdered);
        assert_eq!(rx.try_recv(), None);
        tx.try_send(b"hello tcc").unwrap();
        assert_eq!(rx.try_recv(), Some(b"hello tcc".to_vec()));
        assert_eq!(rx.try_recv(), None);
        assert_eq!(tx.sent_cells, 1);
    }

    #[test]
    fn empty_message_is_a_valid_signal() {
        let (mut tx, mut rx) = channel(SendMode::WeaklyOrdered);
        tx.try_send(b"").unwrap();
        assert_eq!(rx.try_recv(), Some(vec![]));
    }

    #[test]
    fn multi_cell_message_reassembles() {
        let (mut tx, mut rx) = channel(SendMode::WeaklyOrdered);
        let msg: Vec<u8> = (0..200u32).map(|i| i as u8).collect();
        tx.try_send(&msg).unwrap();
        assert_eq!(tx.sent_cells, 4, "200 B = 4 cells");
        assert_eq!(rx.try_recv(), Some(msg));
    }

    #[test]
    fn partial_message_not_delivered_early() {
        // Write only the first cell of a two-cell message manually: the
        // receiver must keep waiting, not deliver a fragment.
        let (mut tx, mut rx) = channel(SendMode::WeaklyOrdered);
        let msg = vec![7u8; 100];
        tx.try_send(&msg).unwrap();
        // Simulate in-order arrival: receiver sees both cells; but if we
        // corrupt the second header to "not yet written", it must block.
        // (Direct check of the first-cell path: fresh channel, craft cell0
        // only.)
        let _ = rx.try_recv();
        let (tx2, mut rx2) = channel(SendMode::WeaklyOrdered);
        drop(tx2);
        assert_eq!(rx2.try_recv(), None);
    }

    #[test]
    fn many_messages_wrap_the_ring() {
        let (mut tx, mut rx) = channel(SendMode::WeaklyOrdered);
        for round in 0..(RING_CELLS * 3) as u64 {
            let body = round.to_le_bytes();
            tx.send(&body).unwrap();
            assert_eq!(rx.recv(), body.to_vec(), "round {round}");
        }
        assert_eq!(rx.received_messages, (RING_CELLS * 3) as u64);
    }

    #[test]
    fn credit_backpressure_blocks_then_recovers() {
        let (mut tx, mut rx) = channel(SendMode::WeaklyOrdered);
        // Fill the ring without consuming.
        for _ in 0..RING_CELLS {
            tx.try_send(&[1u8; 8]).unwrap();
        }
        assert_eq!(tx.try_send(&[2u8; 8]), Err(RingError::WouldBlock));
        assert!(tx.credit_stalls > 0);
        // Consume everything; credits flow back (interval divides evenly).
        for _ in 0..RING_CELLS {
            assert!(rx.try_recv().is_some());
        }
        assert!(tx.try_send(&[3u8; 8]).is_ok(), "credit recovered");
    }

    #[test]
    fn oversized_goes_to_rendezvous() {
        let (mut tx, _) = channel(SendMode::WeaklyOrdered);
        let too_big = vec![0u8; MAX_EAGER + 1];
        assert_eq!(
            tx.try_send(&too_big),
            Err(RingError::TooLarge(MAX_EAGER + 1))
        );
    }

    #[test]
    fn strict_mode_delivers_identically() {
        let (mut tx, mut rx) = channel(SendMode::StrictlyOrdered);
        // Fill up to ring capacity without consuming (single-threaded: a
        // blocking send beyond RING_CELLS here would never be drained)…
        let burst = RING_CELLS as u64 - 4;
        for i in 0..burst {
            tx.send(&i.to_le_bytes()).unwrap();
        }
        for i in 0..burst {
            assert_eq!(rx.recv(), i.to_le_bytes().to_vec());
        }
        // …then stream many more, alternating.
        for i in 0..200u64 {
            tx.send(&i.to_le_bytes()).unwrap();
            assert_eq!(rx.recv(), i.to_le_bytes().to_vec());
        }
    }

    #[test]
    fn interleaved_sizes_preserve_order() {
        let (mut tx, mut rx) = channel(SendMode::WeaklyOrdered);
        let sizes = [1usize, 64, 65, 128, 13, 200, 0, 64];
        for (i, &s) in sizes.iter().enumerate() {
            tx.send(&vec![i as u8; s]).unwrap();
        }
        for (i, &s) in sizes.iter().enumerate() {
            assert_eq!(rx.recv(), vec![i as u8; s], "message {i}");
        }
    }
}
