//! Synchronisation primitives built from remote stores (paper §IV.A:
//! "global synchronization messages implemented through remote stores …
//! realized through API managed software barriers").
//!
//! The barrier is a dissemination barrier: ⌈log₂ n⌉ rounds, in round *k*
//! rank *r* signals rank *(r + 2ᵏ) mod n* and waits for the signal from
//! *(r − 2ᵏ) mod n*. Signals are epoch numbers stored into a per-round
//! cell of the waiter's exported sync page — monotonically increasing, so
//! no cell ever needs clearing and late arrivals from epoch *e* can never
//! satisfy epoch *e+1*.

use crate::window::{LocalWindow, RemoteWindow};

/// Maximum supported cluster size (2^10 ranks).
pub const MAX_ROUNDS: usize = 10;
/// Exported bytes each rank dedicates to barrier signals.
pub const SYNC_BYTES: u64 = (MAX_ROUNDS as u64) * 8;

/// Number of dissemination rounds for `n` ranks.
pub fn rounds_for(n: usize) -> usize {
    assert!(n >= 1);
    (usize::BITS - (n - 1).leading_zeros()) as usize
}

/// One rank's barrier state.
#[derive(Debug)]
pub struct Barrier<R: RemoteWindow, L: LocalWindow> {
    rank: usize,
    n: usize,
    /// Remote sync page of each peer rank (only the ⌈log n⌉ partners are
    /// ever used; a full vector keeps addressing trivial).
    peers: Vec<Option<R>>,
    /// This rank's own sync page.
    local: L,
    epoch: u64,
}

impl<R: RemoteWindow, L: LocalWindow> Barrier<R, L> {
    /// `peers[i]` must be a window onto rank *i*'s sync page for every
    /// partner this rank signals; other entries may be `None`.
    pub fn new(rank: usize, n: usize, peers: Vec<Option<R>>, local: L) -> Self {
        assert!(rank < n);
        assert!(n <= 1 << MAX_ROUNDS, "cluster too large for sync page");
        assert_eq!(peers.len(), n);
        assert!(local.len() >= SYNC_BYTES);
        for k in 0..rounds_for(n) {
            let partner = (rank + (1 << k)) % n;
            assert!(
                partner == rank || peers[partner].is_some(),
                "rank {rank} missing window to round-{k} partner {partner}"
            );
        }
        Barrier {
            rank,
            n,
            peers,
            local,
            epoch: 0,
        }
    }

    /// Enter the barrier; returns when all `n` ranks have entered.
    pub fn wait(&mut self) {
        self.epoch += 1;
        let e = self.epoch;
        for k in 0..rounds_for(self.n) {
            let to = (self.rank + (1 << k)) % self.n;
            if to != self.rank {
                // Validated in `new`: every round partner has a window.
                let Some(w) = self.peers[to].as_ref() else {
                    crate::protocol_violation!("rank {to} lost its sync window after validation");
                };
                w.store_u64((k * 8) as u64, e);
                w.fence();
            }
            // Wait for our round-k predecessor (bounded spin, then yield
            // — the predecessor may share this core).
            let from = (self.rank + self.n - (1 << k) % self.n) % self.n;
            if from != self.rank {
                let mut backoff = crate::window::Backoff::new();
                while self.local.load_u64((k * 8) as u64) < e {
                    backoff.snooze();
                }
            }
        }
    }

    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// A simple remote-store flag: one writer sets an epoch, one waiter polls.
/// The building block for ad-hoc synchronisation (e.g. rendezvous of a
/// benchmark's two sides).
#[derive(Debug)]
pub struct Flag<W> {
    window: W,
    offset: u64,
}

impl<W: RemoteWindow> Flag<W> {
    pub fn signaller(window: W, offset: u64) -> Self {
        Flag { window, offset }
    }

    pub fn signal(&self, value: u64) {
        self.window.store_u64(self.offset, value);
        self.window.fence();
    }
}

impl<W: LocalWindow> Flag<W> {
    pub fn waiter(window: W, offset: u64) -> Self {
        Flag { window, offset }
    }

    pub fn poll(&self) -> u64 {
        self.window.load_u64(self.offset)
    }

    pub fn wait_for(&self, value: u64) {
        let mut backoff = crate::window::Backoff::new();
        while self.poll() < value {
            backoff.snooze();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shm::{ShmLocal, ShmMemory, ShmRemote};

    #[test]
    fn rounds() {
        assert_eq!(rounds_for(1), 0);
        assert_eq!(rounds_for(2), 1);
        assert_eq!(rounds_for(3), 2);
        assert_eq!(rounds_for(8), 3);
        assert_eq!(rounds_for(9), 4);
    }

    fn build(n: usize) -> Vec<Barrier<ShmRemote, ShmLocal>> {
        let pages: Vec<ShmMemory> = (0..n)
            .map(|_| ShmMemory::new(SYNC_BYTES as usize))
            .collect();
        (0..n)
            .map(|r| {
                let peers = (0..n)
                    .map(|p| (p != r).then(|| pages[p].remote(0, SYNC_BYTES)))
                    .collect();
                Barrier::new(r, n, peers, pages[r].local(0, SYNC_BYTES))
            })
            .collect()
    }

    #[test]
    fn threaded_barrier_synchronises() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        const N: usize = 7;
        const ITERS: usize = 200;
        let barriers = build(N);
        let counter = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for (r, mut b) in barriers.into_iter().enumerate() {
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for i in 0..ITERS {
                    // Everybody increments, then the barrier, then all must
                    // observe the full count for this phase.
                    counter.fetch_add(1, Ordering::SeqCst);
                    b.wait();
                    let seen = counter.load(Ordering::SeqCst);
                    assert!(
                        seen >= (i + 1) * N,
                        "rank {r} iter {i}: saw {seen}, expected >= {}",
                        (i + 1) * N
                    );
                    b.wait();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), N * ITERS);
    }

    #[test]
    fn single_rank_barrier_is_trivial() {
        let mut b = build(1);
        b[0].wait();
        b[0].wait();
        assert_eq!(b[0].epoch(), 2);
    }

    #[test]
    fn flag_signals_across_threads() {
        let page = ShmMemory::new(64);
        let tx = Flag::signaller(page.remote(0, 64), 8);
        let rx = Flag::waiter(page.local(0, 64), 8);
        let t = std::thread::spawn(move || {
            tx.signal(42);
        });
        rx.wait_for(42);
        assert_eq!(rx.poll(), 42);
        t.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "missing window")]
    fn missing_partner_window_caught() {
        let pages: Vec<ShmMemory> = (0..2)
            .map(|_| ShmMemory::new(SYNC_BYTES as usize))
            .collect();
        let peers: Vec<Option<ShmRemote>> = vec![None, None];
        let _ = Barrier::new(0, 2, peers, pages[0].local(0, SYNC_BYTES));
    }
}
