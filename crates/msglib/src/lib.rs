//! # tcc-msglib — the TCCluster user-space message library
//!
//! The paper's §IV.A/§VI message library, rebuilt as a library:
//!
//! * [`window`] — the driver abstraction: write-only [`RemoteWindow`]s
//!   (TCCluster links cannot route responses, so remote *loads* do not
//!   exist in the type system) and pollable uncacheable [`LocalWindow`]s.
//! * [`ring`] — the eager path: 4 KB rings of self-validating 72 B cells,
//!   header-written-last, credits returned by remote store.
//! * [`channel`] — the full channel: eager ring + one-sided rendezvous for
//!   large messages, with strictly- and weakly-ordered send modes (the two
//!   mechanisms of paper Fig. 6).
//! * [`barrier`] — dissemination barriers and flags from remote stores.
//! * [`handoff`] — epoch-batched SPSC rings used by the sharded event
//!   engine to move cross-shard events without per-event locking.
//! * [`shm`] — the threaded execution backend mapping TCCluster semantics
//!   onto atomics (Release headers, Acquire polls, SeqCst sfence).

#![forbid(unsafe_code)]

pub mod barrier;
pub mod channel;
pub mod fatal;
pub mod handoff;
pub mod ring;
pub mod shm;
pub(crate) mod sync;
pub mod window;

pub use barrier::{Barrier, Flag, SYNC_BYTES};
pub use channel::{
    channel, Receiver, SendError, Sender, CHANNEL_BYTES, CREDIT_BYTES, MAX_MESSAGE, RDVZ_BYTES,
};
pub use handoff::{BatchRing, BATCH_RING_SLOTS};
pub use ring::{
    RingError, RingReceiver, RingSender, SendMode, CELL_PAYLOAD, MAX_EAGER, RING_BYTES,
};
pub use shm::{ShmLocal, ShmMemory, ShmRemote};
pub use window::{Backoff, LocalWindow, RemoteWindow};
