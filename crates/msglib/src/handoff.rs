//! Epoch-batched SPSC handoff rings for the sharded event engine.
//!
//! The conservative-PDES executive in `tcc-core` moves cross-shard
//! events between worker threads exactly once per epoch: a sender shard
//! accumulates every event bound for one receiver shard in a local
//! staging buffer, then *publishes* the whole batch at the epoch
//! barrier; the receiver *takes* it at the top of its next epoch. That
//! protocol makes the general MPMC mailbox (a `Mutex<Vec>` locked per
//! event) wildly over-general: each `(sender, receiver)` pair needs a
//! bounded single-producer single-consumer ring of **batches**, with at
//! most one batch in flight per epoch.
//!
//! [`BatchRing`] is that ring, built from the same seq-validated-cell
//! idiom as the eager message ring in [`ring`](crate::ring): a `head`
//! counter owned by the producer, a `tail` counter owned by the
//! consumer, and `capacity` slots addressed mod the ring size. The slot
//! payloads are `Vec`s that circulate by `mem::swap` — publish swaps the
//! producer's staging buffer into the slot and hands the slot's previous
//! (drained, capacity-preserving) buffer back; take swaps it out into
//! the consumer's scratch. After warm-up, a publish/take cycle touches
//! the allocator zero times: the same buffers shuttle between the two
//! shards forever.
//!
//! The crate forbids `unsafe`, so slots are `Mutex<Vec>` cells rather
//! than `UnsafeCell`s — but the SPSC + epoch-barrier protocol guarantees
//! a slot is never contended (the producer only writes slots in
//! `head - tail < capacity`, the consumer only reads slots in
//! `tail < head`, and the counters are acquire/release-ordered), so
//! every acquisition is an uncontended `try_lock` fast path: one CAS,
//! no syscall, no waiting. A contended `try_lock` would mean the
//! protocol is broken, and the ring treats it as a hard bug (panics)
//! rather than spinning.

use crate::sync::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Bounded SPSC ring of batches. `T` is the event type; each slot holds
/// a whole epoch's batch (`Vec<T>`) for one (sender → receiver) pair.
///
/// Capacity 2 is sufficient for the epoch protocol (at most one batch in
/// flight, plus one slot of slack so the producer never waits on the
/// consumer's same-epoch drain); the ring itself supports any power of
/// two.
#[derive(Debug)]
pub struct BatchRing<T> {
    slots: Vec<Mutex<Vec<T>>>,
    /// Batches ever published; owned by the producer.
    head: AtomicU64,
    /// Batches ever taken; owned by the consumer.
    tail: AtomicU64,
    mask: u64,
}

/// Default slot count: one in flight + one slack.
pub const BATCH_RING_SLOTS: usize = 2;

impl<T> BatchRing<T> {
    /// A ring with [`BATCH_RING_SLOTS`] slots.
    #[must_use]
    pub fn new() -> Self {
        Self::with_slots(BATCH_RING_SLOTS)
    }

    /// A ring with `slots` slots (power of two).
    #[must_use]
    pub fn with_slots(slots: usize) -> Self {
        assert!(slots.is_power_of_two(), "slot count must be a power of two");
        BatchRing {
            slots: (0..slots).map(|_| Mutex::new(Vec::new())).collect(),
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            mask: slots as u64 - 1,
        }
    }

    /// Producer side: publish the whole `staging` batch, receiving a
    /// drained buffer back in its place (capacity preserved — the buffers
    /// circulate, so the steady state allocates nothing). Empty batches
    /// are skipped for free. Returns `false` (staging untouched) if the
    /// ring is full, which the epoch protocol makes impossible; callers
    /// treat it as a protocol violation.
    /// Deliberate panic, reviewed: a contended `try_lock` means two
    /// threads hold the producer role at once, and any batch published
    /// past that point could be lost or duplicated — see the module docs.
    #[cfg_attr(lint, tcc_no_alloc, tcc_panic_ok, tcc_acquires(batch))]
    #[must_use]
    pub fn publish(&self, staging: &mut Vec<T>) -> bool {
        if staging.is_empty() {
            return true;
        }
        let head = self.head.load(Ordering::Relaxed);
        if head - self.tail.load(Ordering::Acquire) > self.mask {
            return false;
        }
        {
            // Uncontended by the SPSC protocol: only this producer
            // touches unpublished slots.
            let mut slot = self.slots[(head & self.mask) as usize]
                .try_lock()
                .expect("batch ring slot contended: SPSC protocol violated");
            debug_assert!(slot.is_empty(), "slot not drained before reuse");
            std::mem::swap(&mut *slot, staging);
        }
        // Release: the consumer's Acquire load of `head` sees the slot
        // contents written above.
        self.head.store(head + 1, Ordering::Release);
        true
    }

    /// Consumer side: take the oldest published batch into `scratch`
    /// (contents replaced, previous contents handed back to the slot for
    /// recycling — drain `scratch` before calling). Returns `false` and
    /// leaves `scratch` untouched when no batch is pending.
    /// Deliberate panic, reviewed: as with [`publish`](Self::publish), a
    /// contended slot means the SPSC roles are violated and the batch
    /// contents cannot be trusted.
    #[cfg_attr(lint, tcc_no_alloc, tcc_panic_ok, tcc_releases(batch))]
    #[must_use]
    pub fn take(&self, scratch: &mut Vec<T>) -> bool {
        let tail = self.tail.load(Ordering::Relaxed);
        if tail == self.head.load(Ordering::Acquire) {
            return false;
        }
        debug_assert!(scratch.is_empty(), "scratch not drained before take");
        {
            let mut slot = self.slots[(tail & self.mask) as usize]
                .try_lock()
                .expect("batch ring slot contended: SPSC protocol violated");
            std::mem::swap(&mut *slot, scratch);
            // `scratch` came in empty, so the slot is now drained and
            // ready for the producer's next swap.
        }
        // Release: the producer's Acquire load of `tail` knows the slot
        // is free to reuse.
        self.tail.store(tail + 1, Ordering::Release);
        true
    }

    /// Consumer side: drain *every* pending batch, feeding each event to
    /// `sink` in publish order, recycling `scratch` between batches (its
    /// capacity is preserved, so steady state allocates nothing). Returns
    /// the number of batches consumed. This is the top-of-epoch loop every
    /// receiver shard otherwise writes by hand around [`take`](Self::take).
    #[cfg_attr(lint, tcc_linear(batch))]
    pub fn take_each(&self, scratch: &mut Vec<T>, mut sink: impl FnMut(T)) -> u64 {
        let mut batches = 0;
        while self.take(scratch) {
            batches += 1;
            for ev in scratch.drain(..) {
                sink(ev);
            }
        }
        batches
    }

    /// Batches currently published but not yet taken.
    pub fn pending(&self) -> u64 {
        self.head.load(Ordering::Acquire) - self.tail.load(Ordering::Acquire)
    }
}

impl<T> Default for BatchRing<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_round_trip_in_order() {
        let ring: BatchRing<u32> = BatchRing::new();
        let mut staging = vec![1, 2, 3];
        assert!(ring.publish(&mut staging));
        assert!(staging.is_empty(), "publish hands back a drained buffer");
        let mut scratch = Vec::new();
        assert!(ring.take(&mut scratch));
        assert_eq!(scratch, [1, 2, 3]);
        scratch.clear();
        assert!(!ring.take(&mut scratch), "ring drained");
    }

    #[test]
    fn empty_publish_is_free() {
        let ring: BatchRing<u32> = BatchRing::new();
        let mut staging = Vec::new();
        assert!(ring.publish(&mut staging));
        assert_eq!(ring.pending(), 0);
        let mut scratch = Vec::new();
        assert!(!ring.take(&mut scratch));
    }

    #[test]
    fn full_ring_refuses_and_preserves_staging() {
        let ring: BatchRing<u32> = BatchRing::with_slots(2);
        let mut staging = vec![1];
        assert!(ring.publish(&mut staging));
        staging.push(2);
        assert!(ring.publish(&mut staging));
        staging.push(3);
        assert!(!ring.publish(&mut staging), "two slots, two in flight");
        assert_eq!(staging, [3], "refused publish leaves staging intact");
    }

    #[test]
    fn buffers_circulate_without_allocating() {
        let ring: BatchRing<u64> = BatchRing::new();
        let mut staging = Vec::with_capacity(64);
        let mut scratch = Vec::new();
        // Warm-up round grows the slot buffers to steady capacity.
        for round in 0..32u64 {
            for i in 0..64 {
                staging.push(round * 64 + i);
            }
            let cap = staging.capacity();
            assert!(ring.publish(&mut staging));
            assert!(ring.take(&mut scratch));
            assert_eq!(scratch.len(), 64);
            assert_eq!(scratch[0], round * 64);
            scratch.clear();
            // Four buffers circulate (staging, scratch, two slots); once
            // each has been through a publish they all hold steady-state
            // capacity.
            if round >= 3 {
                assert!(staging.capacity() >= 64, "recycled buffer lost capacity");
            }
            let _ = cap;
        }
    }

    #[test]
    #[should_panic(expected = "batch ring slot contended")]
    fn contended_slot_is_a_hard_protocol_bug() {
        // A second actor holding a slot lock across a publish models two
        // threads claiming the producer role at once. The ring must abort
        // rather than spin or silently drop the batch.
        let ring: BatchRing<u32> = BatchRing::new();
        let _intruder = ring.slots[0].lock().unwrap();
        let mut staging = vec![1];
        let _ = ring.publish(&mut staging);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "slot not drained before reuse")]
    fn publish_into_an_undrained_slot_trips_the_debug_assert() {
        let ring: BatchRing<u32> = BatchRing::new();
        // Corrupt the invariant from outside the protocol: slot 0 holds
        // leftovers the consumer never drained.
        ring.slots[0].lock().unwrap().push(99);
        let mut staging = vec![1];
        let _ = ring.publish(&mut staging);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scratch not drained before take")]
    fn take_with_a_dirty_scratch_trips_the_debug_assert() {
        let ring: BatchRing<u32> = BatchRing::new();
        let mut staging = vec![1];
        assert!(ring.publish(&mut staging));
        let mut scratch = vec![7]; // caller forgot to drain
        let _ = ring.take(&mut scratch);
    }

    #[test]
    fn take_each_drains_every_pending_batch_in_order() {
        let ring: BatchRing<u32> = BatchRing::with_slots(4);
        let mut staging = vec![1, 2];
        assert!(ring.publish(&mut staging));
        staging.extend([3, 4, 5]);
        assert!(ring.publish(&mut staging));
        let mut scratch = Vec::new();
        let mut seen = Vec::new();
        let batches = ring.take_each(&mut scratch, |v| seen.push(v));
        assert_eq!(batches, 2);
        assert_eq!(seen, [1, 2, 3, 4, 5]);
        assert!(scratch.is_empty(), "scratch handed back drained");
        assert_eq!(ring.pending(), 0);
        assert_eq!(ring.take_each(&mut scratch, |_| unreachable!()), 0);
    }

    #[test]
    fn randomized_schedule_stays_fifo_across_wraps() {
        // 10k publish/take operations in a pseudo-random order against a
        // two-slot ring: head and tail wrap the slot index thousands of
        // times, and every batch must still come out exactly once, in
        // order, including from a completely full ring.
        let ring: BatchRing<u64> = BatchRing::with_slots(2);
        let mut lcg = 0x2545F491_4F6CDD1Du64; // deterministic seed
        let mut staging = Vec::new();
        let mut scratch = Vec::new();
        let (mut published, mut taken) = (0u64, 0u64);
        let mut full_refusals = 0u64;
        for _ in 0..10_000 {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Decide from the high bits (the low bits of a 2^64-modulus
            // LCG alternate with a tiny period); bias 3:1 toward publish
            // so the schedule keeps the two-slot ring at capacity.
            if lcg >> 62 != 0 {
                staging.push(published);
                if ring.publish(&mut staging) {
                    published += 1;
                    assert!(staging.is_empty());
                } else {
                    // Full at wrap-around: staging must survive intact.
                    assert_eq!(ring.pending(), 2);
                    assert_eq!(staging, [published]);
                    staging.clear();
                    full_refusals += 1;
                }
            } else if ring.take(&mut scratch) {
                assert_eq!(scratch, [taken], "batches delivered in order");
                taken += 1;
                scratch.clear();
            }
        }
        while ring.take(&mut scratch) {
            assert_eq!(scratch, [taken]);
            taken += 1;
            scratch.clear();
        }
        assert_eq!(taken, published, "every published batch arrived once");
        assert!(published > 2_000, "schedule exercised the ring");
        assert!(full_refusals > 0, "schedule hit the full-ring wrap case");
        assert_eq!(ring.pending(), 0);
    }

    #[test]
    fn spsc_threads_agree() {
        use std::sync::Arc;
        let ring: Arc<BatchRing<u64>> = Arc::new(BatchRing::new());
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut staging = Vec::new();
                for batch in 0..1_000u64 {
                    for i in 0..8 {
                        staging.push(batch * 8 + i);
                    }
                    while !ring.publish(&mut staging) {
                        std::hint::spin_loop();
                    }
                }
            })
        };
        let mut scratch = Vec::new();
        let mut expect = 0u64;
        while expect < 8_000 {
            if ring.take(&mut scratch) {
                for &v in &scratch {
                    assert_eq!(v, expect);
                    expect += 1;
                }
                scratch.clear();
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert_eq!(ring.pending(), 0);
    }
}
