//! Epoch-batched SPSC handoff rings for the sharded event engine.
//!
//! The conservative-PDES executive in `tcc-core` moves cross-shard
//! events between worker threads exactly once per epoch: a sender shard
//! accumulates every event bound for one receiver shard in a local
//! staging buffer, then *publishes* the whole batch at the epoch
//! barrier; the receiver *takes* it at the top of its next epoch. That
//! protocol makes the general MPMC mailbox (a `Mutex<Vec>` locked per
//! event) wildly over-general: each `(sender, receiver)` pair needs a
//! bounded single-producer single-consumer ring of **batches**, with at
//! most one batch in flight per epoch.
//!
//! [`BatchRing`] is that ring, built from the same seq-validated-cell
//! idiom as the eager message ring in [`ring`](crate::ring): a `head`
//! counter owned by the producer, a `tail` counter owned by the
//! consumer, and `capacity` slots addressed mod the ring size. The slot
//! payloads are `Vec`s that circulate by `mem::swap` — publish swaps the
//! producer's staging buffer into the slot and hands the slot's previous
//! (drained, capacity-preserving) buffer back; take swaps it out into
//! the consumer's scratch. After warm-up, a publish/take cycle touches
//! the allocator zero times: the same buffers shuttle between the two
//! shards forever.
//!
//! The crate forbids `unsafe`, so slots are `Mutex<Vec>` cells rather
//! than `UnsafeCell`s — but the SPSC + epoch-barrier protocol guarantees
//! a slot is never contended (the producer only writes slots in
//! `head - tail < capacity`, the consumer only reads slots in
//! `tail < head`, and the counters are acquire/release-ordered), so
//! every acquisition is an uncontended `try_lock` fast path: one CAS,
//! no syscall, no waiting. A contended `try_lock` would mean the
//! protocol is broken, and the ring treats it as a hard bug (panics)
//! rather than spinning.

use crate::sync::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Bounded SPSC ring of batches. `T` is the event type; each slot holds
/// a whole epoch's batch (`Vec<T>`) for one (sender → receiver) pair.
///
/// Capacity 2 is sufficient for the epoch protocol (at most one batch in
/// flight, plus one slot of slack so the producer never waits on the
/// consumer's same-epoch drain); the ring itself supports any power of
/// two.
#[derive(Debug)]
pub struct BatchRing<T> {
    slots: Vec<Mutex<Vec<T>>>,
    /// Batches ever published; owned by the producer.
    head: AtomicU64,
    /// Batches ever taken; owned by the consumer.
    tail: AtomicU64,
    mask: u64,
}

/// Default slot count: one in flight + one slack.
pub const BATCH_RING_SLOTS: usize = 2;

impl<T> BatchRing<T> {
    /// A ring with [`BATCH_RING_SLOTS`] slots.
    #[must_use]
    pub fn new() -> Self {
        Self::with_slots(BATCH_RING_SLOTS)
    }

    /// A ring with `slots` slots (power of two).
    #[must_use]
    pub fn with_slots(slots: usize) -> Self {
        assert!(slots.is_power_of_two(), "slot count must be a power of two");
        BatchRing {
            slots: (0..slots).map(|_| Mutex::new(Vec::new())).collect(),
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            mask: slots as u64 - 1,
        }
    }

    /// Producer side: publish the whole `staging` batch, receiving a
    /// drained buffer back in its place (capacity preserved — the buffers
    /// circulate, so the steady state allocates nothing). Empty batches
    /// are skipped for free. Returns `false` (staging untouched) if the
    /// ring is full, which the epoch protocol makes impossible; callers
    /// treat it as a protocol violation.
    #[cfg_attr(lint, tcc_no_alloc)]
    #[must_use]
    pub fn publish(&self, staging: &mut Vec<T>) -> bool {
        if staging.is_empty() {
            return true;
        }
        let head = self.head.load(Ordering::Relaxed);
        if head - self.tail.load(Ordering::Acquire) > self.mask {
            return false;
        }
        {
            // Uncontended by the SPSC protocol: only this producer
            // touches unpublished slots.
            let mut slot = self.slots[(head & self.mask) as usize]
                .try_lock()
                .expect("batch ring slot contended: SPSC protocol violated");
            debug_assert!(slot.is_empty(), "slot not drained before reuse");
            std::mem::swap(&mut *slot, staging);
        }
        // Release: the consumer's Acquire load of `head` sees the slot
        // contents written above.
        self.head.store(head + 1, Ordering::Release);
        true
    }

    /// Consumer side: take the oldest published batch into `scratch`
    /// (contents replaced, previous contents handed back to the slot for
    /// recycling — drain `scratch` before calling). Returns `false` and
    /// leaves `scratch` untouched when no batch is pending.
    #[cfg_attr(lint, tcc_no_alloc)]
    #[must_use]
    pub fn take(&self, scratch: &mut Vec<T>) -> bool {
        let tail = self.tail.load(Ordering::Relaxed);
        if tail == self.head.load(Ordering::Acquire) {
            return false;
        }
        debug_assert!(scratch.is_empty(), "scratch not drained before take");
        {
            let mut slot = self.slots[(tail & self.mask) as usize]
                .try_lock()
                .expect("batch ring slot contended: SPSC protocol violated");
            std::mem::swap(&mut *slot, scratch);
            // `scratch` came in empty, so the slot is now drained and
            // ready for the producer's next swap.
        }
        // Release: the producer's Acquire load of `tail` knows the slot
        // is free to reuse.
        self.tail.store(tail + 1, Ordering::Release);
        true
    }

    /// Batches currently published but not yet taken.
    pub fn pending(&self) -> u64 {
        self.head.load(Ordering::Acquire) - self.tail.load(Ordering::Acquire)
    }
}

impl<T> Default for BatchRing<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_round_trip_in_order() {
        let ring: BatchRing<u32> = BatchRing::new();
        let mut staging = vec![1, 2, 3];
        assert!(ring.publish(&mut staging));
        assert!(staging.is_empty(), "publish hands back a drained buffer");
        let mut scratch = Vec::new();
        assert!(ring.take(&mut scratch));
        assert_eq!(scratch, [1, 2, 3]);
        scratch.clear();
        assert!(!ring.take(&mut scratch), "ring drained");
    }

    #[test]
    fn empty_publish_is_free() {
        let ring: BatchRing<u32> = BatchRing::new();
        let mut staging = Vec::new();
        assert!(ring.publish(&mut staging));
        assert_eq!(ring.pending(), 0);
        let mut scratch = Vec::new();
        assert!(!ring.take(&mut scratch));
    }

    #[test]
    fn full_ring_refuses_and_preserves_staging() {
        let ring: BatchRing<u32> = BatchRing::with_slots(2);
        let mut staging = vec![1];
        assert!(ring.publish(&mut staging));
        staging.push(2);
        assert!(ring.publish(&mut staging));
        staging.push(3);
        assert!(!ring.publish(&mut staging), "two slots, two in flight");
        assert_eq!(staging, [3], "refused publish leaves staging intact");
    }

    #[test]
    fn buffers_circulate_without_allocating() {
        let ring: BatchRing<u64> = BatchRing::new();
        let mut staging = Vec::with_capacity(64);
        let mut scratch = Vec::new();
        // Warm-up round grows the slot buffers to steady capacity.
        for round in 0..32u64 {
            for i in 0..64 {
                staging.push(round * 64 + i);
            }
            let cap = staging.capacity();
            assert!(ring.publish(&mut staging));
            assert!(ring.take(&mut scratch));
            assert_eq!(scratch.len(), 64);
            assert_eq!(scratch[0], round * 64);
            scratch.clear();
            // Four buffers circulate (staging, scratch, two slots); once
            // each has been through a publish they all hold steady-state
            // capacity.
            if round >= 3 {
                assert!(staging.capacity() >= 64, "recycled buffer lost capacity");
            }
            let _ = cap;
        }
    }

    #[test]
    fn spsc_threads_agree() {
        use std::sync::Arc;
        let ring: Arc<BatchRing<u64>> = Arc::new(BatchRing::new());
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut staging = Vec::new();
                for batch in 0..1_000u64 {
                    for i in 0..8 {
                        staging.push(batch * 8 + i);
                    }
                    while !ring.publish(&mut staging) {
                        std::hint::spin_loop();
                    }
                }
            })
        };
        let mut scratch = Vec::new();
        let mut expect = 0u64;
        while expect < 8_000 {
            if ring.take(&mut scratch) {
                for &v in &scratch {
                    assert_eq!(v, expect);
                    expect += 1;
                }
                scratch.clear();
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert_eq!(ring.pending(), 0);
    }
}
