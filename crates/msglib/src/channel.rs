//! The complete unidirectional channel: eager ring + one-sided rendezvous.
//!
//! Small messages ride the 4 KB ring (paper §IV.A); larger ones use the
//! rendezvous path the paper sketches: "data is written directly to the
//! final destination on the remote node and an additional queue is used
//! for synchronization and management". The destination is a byte ring in
//! the receiver's exported memory; completion descriptors travel over the
//! eager ring; reclamation credits flow back like ring credits.
//!
//! Channel memory layout, inside the **receiver's** exported page:
//!
//! ```text
//! [0, 4096)                    eager ring (56 × 72 B cells)
//! [4096, 4096 + RDVZ_BYTES)    rendezvous landing zone
//! ```
//!
//! plus a 16-byte credit block inside the **sender's** exported page:
//! `[0]` ring credit (consumed seq), `[8]` rendezvous credit (consumed
//! bytes).

use crate::protocol_violation;
use crate::ring::{RingError, RingReceiver, RingSender, SendMode, MAX_EAGER, RING_BYTES};
use crate::window::{LocalWindow, RemoteWindow};

/// Rendezvous landing-zone size per channel.
pub const RDVZ_BYTES: u64 = 256 * 1024;
/// Exported bytes one channel occupies on the receiver.
pub const CHANNEL_BYTES: u64 = RING_BYTES as u64 + RDVZ_BYTES;
/// Credit-block bytes one channel occupies on the sender.
pub const CREDIT_BYTES: u64 = 16;

const TAG_INLINE: u8 = 0;
const TAG_RDVZ: u8 = 1;

/// Largest single message: half the rendezvous zone. A half-zone
/// reservation is *always* satisfiable regardless of where the zone
/// pointer sits (a full-zone message would deadlock whenever the
/// wrap-gap skip plus the payload exceeds the zone — reservations larger
/// than `zone - skip` can never be granted once the pointer has moved).
/// Applications pipeline larger transfers as multiple messages, exactly
/// as real rendezvous protocols do.
pub const MAX_MESSAGE: usize = (RDVZ_BYTES / 2) as usize;

/// A shared sub-window: offsets into the parent with a fixed base.
#[derive(Debug, Clone)]
pub struct RemoteAt<R> {
    inner: R,
    base: u64,
    len: u64,
}

impl<R: RemoteWindow> RemoteAt<R> {
    #[must_use]
    pub fn new(inner: R, base: u64, len: u64) -> Self {
        assert!(base + len <= inner.len());
        RemoteAt { inner, base, len }
    }
}

impl<R: RemoteWindow> RemoteWindow for RemoteAt<R> {
    fn len(&self) -> u64 {
        self.len
    }

    fn store(&self, offset: u64, data: &[u8]) {
        assert!(offset + data.len() as u64 <= self.len);
        self.inner.store(self.base + offset, data);
    }

    fn fence(&self) {
        self.inner.fence();
    }
}

/// Local sub-window.
#[derive(Debug, Clone)]
pub struct LocalAt<L> {
    inner: L,
    base: u64,
    len: u64,
}

impl<L: LocalWindow> LocalAt<L> {
    #[must_use]
    pub fn new(inner: L, base: u64, len: u64) -> Self {
        assert!(base + len <= inner.len());
        LocalAt { inner, base, len }
    }
}

impl<L: LocalWindow> LocalWindow for LocalAt<L> {
    fn len(&self) -> u64 {
        self.len
    }

    fn load(&self, offset: u64, buf: &mut [u8]) {
        assert!(offset + buf.len() as u64 <= self.len);
        self.inner.load(self.base + offset, buf);
    }
}

/// Errors from the full channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// Exceeds [`MAX_MESSAGE`].
    TooLarge(usize),
    /// Would block on ring or rendezvous credit.
    WouldBlock,
}

/// Sending half of a channel.
#[derive(Debug)]
pub struct Sender<R: RemoteWindow + Clone, L: LocalWindow + Clone> {
    ring: RingSender<RemoteAt<R>, LocalAt<L>>,
    rdvz: RemoteAt<R>,
    rdvz_credit: LocalAt<L>,
    /// Next free byte in the rendezvous zone (monotonic, wraps by skip).
    rdvz_tail: u64,
    /// Bytes the receiver has confirmed consumed (monotonic).
    rdvz_credited: u64,
    /// Reusable tag-framing buffer for the inline path.
    frame_scratch: Vec<u8>,
    pub rendezvous_sends: u64,
}

/// Receiving half of a channel.
#[derive(Debug)]
pub struct Receiver<L: LocalWindow + Clone, R: RemoteWindow + Clone> {
    ring: RingReceiver<LocalAt<L>, RemoteAt<R>>,
    rdvz: LocalAt<L>,
    rdvz_credit: RemoteAt<R>,
    rdvz_consumed: u64,
}

impl<R: RemoteWindow + Clone, L: LocalWindow + Clone> Sender<R, L> {
    /// Build the sending half alone.
    ///
    /// * `to_receiver` — remote window onto the receiver's exported
    ///   channel region (`CHANNEL_BYTES`);
    /// * `credits` — local window onto this sender's credit block.
    #[must_use]
    pub fn new(to_receiver: R, credits: L, mode: SendMode) -> Self {
        assert!(to_receiver.len() >= CHANNEL_BYTES);
        assert!(credits.len() >= CREDIT_BYTES);
        Sender {
            ring: RingSender::new(
                RemoteAt::new(to_receiver.clone(), 0, RING_BYTES as u64),
                LocalAt::new(credits.clone(), 0, 8),
                mode,
            ),
            rdvz: RemoteAt::new(to_receiver, RING_BYTES as u64, RDVZ_BYTES),
            rdvz_credit: LocalAt::new(credits, 8, 8),
            rdvz_tail: 0,
            rdvz_credited: 0,
            frame_scratch: Vec::new(),
            rendezvous_sends: 0,
        }
    }
}

impl<L: LocalWindow + Clone, R: RemoteWindow + Clone> Receiver<L, R> {
    /// Build the receiving half alone.
    ///
    /// * `ring_local` — local view of this receiver's exported channel
    ///   region (`CHANNEL_BYTES`);
    /// * `to_sender_credits` — remote window onto the sender's credit
    ///   block.
    #[must_use]
    pub fn new(ring_local: L, to_sender_credits: R) -> Self {
        assert!(ring_local.len() >= CHANNEL_BYTES);
        assert!(to_sender_credits.len() >= CREDIT_BYTES);
        Receiver {
            ring: RingReceiver::new(
                LocalAt::new(ring_local.clone(), 0, RING_BYTES as u64),
                RemoteAt::new(to_sender_credits.clone(), 0, 8),
            ),
            rdvz: LocalAt::new(ring_local, RING_BYTES as u64, RDVZ_BYTES),
            rdvz_credit: RemoteAt::new(to_sender_credits, 8, 8),
            rdvz_consumed: 0,
        }
    }
}

/// Build the two halves of one channel.
///
/// * `to_receiver` — remote window onto the receiver's exported channel
///   region (`CHANNEL_BYTES`), held by the sender;
/// * `sender_credits` — local window onto the sender's credit block;
/// * `ring_local` — the receiver's local view of the same channel region;
/// * `to_sender_credits` — remote window onto the sender's credit block,
///   held by the receiver.
#[must_use]
pub fn channel<R1, L1, L2, R2>(
    to_receiver: R1,
    sender_credits: L1,
    ring_local: L2,
    to_sender_credits: R2,
    mode: SendMode,
) -> (Sender<R1, L1>, Receiver<L2, R2>)
where
    R1: RemoteWindow + Clone,
    L1: LocalWindow + Clone,
    L2: LocalWindow + Clone,
    R2: RemoteWindow + Clone,
{
    (
        Sender::new(to_receiver, sender_credits, mode),
        Receiver::new(ring_local, to_sender_credits),
    )
}

impl<R: RemoteWindow + Clone, L: LocalWindow + Clone> Sender<R, L> {
    /// Non-blocking send of a message of any size up to [`MAX_MESSAGE`].
    pub fn try_send(&mut self, msg: &[u8]) -> Result<(), SendError> {
        if msg.len() < MAX_EAGER {
            // Frame in a reusable scratch buffer: no per-send allocation
            // once it has grown to the working-set message size.
            self.frame_scratch.clear();
            self.frame_scratch.push(TAG_INLINE);
            self.frame_scratch.extend_from_slice(msg);
            return match self.ring.try_send(&self.frame_scratch) {
                Ok(()) => Ok(()),
                Err(RingError::WouldBlock) => Err(SendError::WouldBlock),
                // The inline frame is < MAX_EAGER + 1 by the guard above;
                // a TooLarge here means the ring was built undersized.
                Err(RingError::TooLarge(n)) => {
                    protocol_violation!("ring rejected {n} B inline frame under MAX_EAGER")
                }
            };
        }
        if msg.len() > MAX_MESSAGE {
            return Err(SendError::TooLarge(msg.len()));
        }
        self.try_send_rendezvous(msg)
    }

    fn try_send_rendezvous(&mut self, msg: &[u8]) -> Result<(), SendError> {
        let len = msg.len() as u64;
        // Reserve a contiguous span, skipping the wrap gap if needed.
        let pos = self.rdvz_tail % RDVZ_BYTES;
        let skip = if pos + len > RDVZ_BYTES {
            RDVZ_BYTES - pos // unusable gap at the end of the zone
        } else {
            0
        };
        let needed = skip + len;
        // Refresh credit.
        self.rdvz_credited = self.rdvz_credited.max(self.rdvz_credit.load_u64(0));
        if self.rdvz_tail + needed - self.rdvz_credited > RDVZ_BYTES {
            return Err(SendError::WouldBlock);
        }
        let start = self.rdvz_tail + skip;
        let off = start % RDVZ_BYTES;
        // One-sided write of the payload to its final destination.
        self.rdvz.store(off, msg);
        // The descriptor must not overtake the payload: posted-channel
        // ordering guarantees it, and the fence covers weak mode.
        self.rdvz.fence();
        let mut desc = [0u8; 17];
        desc[0] = TAG_RDVZ;
        desc[1..9].copy_from_slice(&off.to_le_bytes());
        desc[9..17].copy_from_slice(&(len).to_le_bytes());
        match self.ring.try_send(&desc) {
            Ok(()) => {
                self.rdvz_tail = start + len;
                self.rendezvous_sends += 1;
                Ok(())
            }
            Err(RingError::WouldBlock) => Err(SendError::WouldBlock),
            // A 17 B descriptor never exceeds a well-formed ring's slot.
            Err(RingError::TooLarge(n)) => {
                protocol_violation!("ring rejected {n} B rendezvous descriptor")
            }
        }
    }

    /// Blocking send. Uses exponential backoff while out of credit.
    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]
    pub fn send(&mut self, msg: &[u8]) -> Result<(), SendError> {
        let mut backoff = crate::window::Backoff::new();
        loop {
            match self.try_send(msg) {
                Err(SendError::WouldBlock) => backoff.snooze(),
                other => return other,
            }
        }
    }

    pub fn mode(&self) -> SendMode {
        self.ring.mode
    }
}

impl<L: LocalWindow + Clone, R: RemoteWindow + Clone> Receiver<L, R> {
    /// Poll once.
    ///
    /// Allocating convenience wrapper over [`try_recv_into`].
    ///
    /// [`try_recv_into`]: Receiver::try_recv_into
    pub fn try_recv(&mut self) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        self.try_recv_into(&mut out).map(|_| out)
    }

    /// Poll once, delivering a complete message into `out` (cleared
    /// first). Returns the message length.
    ///
    /// Allocation-free in steady state: the tag byte is stripped in
    /// place and rendezvous payloads land directly in `out`.
    pub fn try_recv_into(&mut self, out: &mut Vec<u8>) -> Option<usize> {
        let framed = self.ring.try_recv_into(out)?;
        assert!(framed > 0, "frame always carries a tag");
        match out[0] {
            TAG_INLINE => {
                out.copy_within(1.., 0);
                out.truncate(framed - 1);
                Some(out.len())
            }
            TAG_RDVZ => {
                assert_eq!(framed, 17, "descriptor frame");
                // copy_from_slice rather than try_into: the length is
                // pinned by the assert above, and this keeps the decode
                // free of Result plumbing on the hot receive path.
                let mut word = [0u8; 8];
                word.copy_from_slice(&out[1..9]);
                let off = u64::from_le_bytes(word);
                word.copy_from_slice(&out[9..17]);
                let len = u64::from_le_bytes(word);
                out.clear();
                out.resize(len as usize, 0);
                self.rdvz.load(off, out);
                // Account for any wrap gap the sender skipped.
                let pos = self.rdvz_consumed % RDVZ_BYTES;
                let skip = if pos + len > RDVZ_BYTES {
                    RDVZ_BYTES - pos
                } else {
                    0
                };
                self.rdvz_consumed += skip + len;
                self.rdvz_credit.store_u64(0, self.rdvz_consumed);
                self.rdvz_credit.fence();
                Some(out.len())
            }
            // A tag outside the protocol means the ring bytes are garbage;
            // nothing downstream could trust a value decoded from them.
            other => protocol_violation!("corrupt frame tag {other}"),
        }
    }

    /// Blocking receive.
    pub fn recv(&mut self) -> Vec<u8> {
        let mut out = Vec::new();
        self.recv_into(&mut out);
        out
    }

    /// Blocking receive into a caller-provided buffer. Returns the
    /// message length. Uses exponential backoff while idle.
    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]
    pub fn recv_into(&mut self, out: &mut Vec<u8>) -> usize {
        let mut backoff = crate::window::Backoff::new();
        loop {
            if let Some(n) = self.try_recv_into(out) {
                return n;
            }
            backoff.snooze();
        }
    }

    /// Push out pending ring credit (call before idling).
    pub fn flush_credit(&mut self) {
        self.ring.flush_credit();
    }

    pub fn received_messages(&self) -> u64 {
        self.ring.received_messages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::inproc::{InprocLocal, InprocMemory, InprocRemote};

    type TxRx = (
        Sender<InprocRemote, InprocLocal>,
        Receiver<InprocLocal, InprocRemote>,
    );

    fn make(mode: SendMode) -> TxRx {
        let data = InprocMemory::new(CHANNEL_BYTES as usize);
        let credits = InprocMemory::new(CREDIT_BYTES as usize);
        channel(
            data.remote(),
            credits.local(),
            data.local(),
            credits.remote(),
            mode,
        )
    }

    #[test]
    fn small_messages_inline() {
        let (mut tx, mut rx) = make(SendMode::WeaklyOrdered);
        tx.send(b"ping").unwrap();
        assert_eq!(rx.recv(), b"ping");
        assert_eq!(tx.rendezvous_sends, 0);
    }

    #[test]
    fn large_message_takes_rendezvous() {
        let (mut tx, mut rx) = make(SendMode::WeaklyOrdered);
        let big: Vec<u8> = (0..10_000u32).map(|i| (i * 7) as u8).collect();
        tx.send(&big).unwrap();
        assert_eq!(tx.rendezvous_sends, 1);
        assert_eq!(rx.recv(), big);
    }

    #[test]
    fn boundary_sizes() {
        let (mut tx, mut rx) = make(SendMode::WeaklyOrdered);
        for size in [
            0,
            1,
            MAX_EAGER - 1, // largest inline (tag byte takes one)
            MAX_EAGER,
            MAX_EAGER + 1,
            MAX_MESSAGE,
        ] {
            let msg = vec![0x3C; size];
            tx.send(&msg).unwrap();
            assert_eq!(rx.recv().len(), size, "size {size}");
        }
    }

    #[test]
    fn oversized_rejected() {
        let (mut tx, _) = make(SendMode::WeaklyOrdered);
        assert_eq!(
            tx.try_send(&vec![0u8; MAX_MESSAGE + 1]),
            Err(SendError::TooLarge(MAX_MESSAGE + 1))
        );
    }

    #[test]
    fn rendezvous_zone_wraps_and_reclaims() {
        let (mut tx, mut rx) = make(SendMode::WeaklyOrdered);
        // 100 KB messages: three fill the zone past capacity, forcing
        // wrap-gap skipping and credit-based reuse.
        let msg = vec![0xE7u8; 100 * 1024];
        for round in 0..12 {
            tx.send(&msg).unwrap();
            let got = rx.recv();
            assert_eq!(got.len(), msg.len(), "round {round}");
            assert!(got.iter().all(|&b| b == 0xE7));
        }
        assert_eq!(tx.rendezvous_sends, 12);
    }

    #[test]
    fn rendezvous_backpressure_without_receiver() {
        let (mut tx, _rx) = make(SendMode::WeaklyOrdered);
        let msg = vec![1u8; 100 * 1024];
        assert!(tx.try_send(&msg).is_ok());
        assert!(tx.try_send(&msg).is_ok());
        // Third 100 KB does not fit in 256 KB minus the in-flight two.
        assert_eq!(tx.try_send(&msg), Err(SendError::WouldBlock));
    }

    #[test]
    fn mixed_inline_and_rendezvous_preserve_order() {
        let (mut tx, mut rx) = make(SendMode::StrictlyOrdered);
        let sizes = [10usize, 5000, 64, 100_000, 0, 2000];
        for (i, &s) in sizes.iter().enumerate() {
            tx.send(&vec![i as u8; s]).unwrap();
        }
        for (i, &s) in sizes.iter().enumerate() {
            assert_eq!(rx.recv(), vec![i as u8; s], "message {i}");
        }
    }
}
