//! Concurrency checks for the shm primitives under `cfg(loom)`.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p tcc-msglib --test loom`.
//! Each body is kept tiny (two threads, a handful of operations) so that
//! when the vendored loom shim is swapped for the real checker, the
//! interleaving space stays tractable. Under the shim each `loom::model`
//! body is re-run as a randomized-schedule stress test.
//!
//! What is checked:
//!
//! * the release-publication protocol of `ShmRemote::store`/`store_u64`
//!   makes a message's payload visible before its header (the invariant
//!   the poll loop in `RingReceiver` depends on);
//! * the eager ring's Sender/Receiver half split delivers messages intact
//!   across real threads;
//! * the framed channel halves (PR 1's Sender/Receiver split) preserve
//!   message boundaries;
//! * `Flag` and the dissemination `Barrier` synchronise two ranks.

#![cfg(loom)]

use tcc_msglib::channel::{channel, CHANNEL_BYTES, CREDIT_BYTES};
use tcc_msglib::ring::{RingReceiver, RingSender, SendMode, RING_BYTES};
use tcc_msglib::shm::ShmMemory;
use tcc_msglib::{Barrier, Flag, LocalWindow, RemoteWindow, SYNC_BYTES};

/// Payload stored before a flag must be visible after observing the flag:
/// the store_u64 release / load_u64 acquire pair is the ring protocol's
/// entire correctness argument.
#[test]
fn flag_publication_orders_payload() {
    loom::model(|| {
        let page = ShmMemory::new(64);
        let remote = page.remote(0, 64);
        let local = page.local(0, 64);
        let writer = loom::thread::spawn(move || {
            remote.store(0, &[0xAB; 8]);
            remote.store_u64(8, 1); // release point
        });
        let flag = Flag::waiter(local.clone(), 8);
        flag.wait_for(1);
        let mut payload = [0u8; 8];
        local.load(0, &mut payload);
        assert_eq!(payload, [0xAB; 8], "payload published after header");
        writer.join().unwrap();
    });
}

/// One eager message through the ring's split halves, sender on its own
/// thread.
#[test]
fn ring_halves_deliver_one_message() {
    loom::model(|| {
        let ring = ShmMemory::new(RING_BYTES);
        let credit = ShmMemory::new(8);
        let mut tx = RingSender::new(
            ring.remote(0, RING_BYTES as u64),
            credit.local(0, 8),
            SendMode::WeaklyOrdered,
        );
        let mut rx = RingReceiver::new(ring.local(0, RING_BYTES as u64), credit.remote(0, 8));
        let producer = loom::thread::spawn(move || {
            tx.send(&[7, 6, 5]).unwrap();
        });
        assert_eq!(rx.recv(), vec![7, 6, 5]);
        producer.join().unwrap();
    });
}

/// Two back-to-back messages stay framed and ordered through the framed
/// channel halves.
#[test]
fn channel_halves_preserve_framing() {
    loom::model(|| {
        let chan = ShmMemory::new(CHANNEL_BYTES as usize);
        let creds = ShmMemory::new(CREDIT_BYTES as usize);
        let (mut tx, mut rx) = channel(
            chan.remote(0, CHANNEL_BYTES),
            creds.local(0, CREDIT_BYTES),
            chan.local(0, CHANNEL_BYTES),
            creds.remote(0, CREDIT_BYTES),
            SendMode::WeaklyOrdered,
        );
        let producer = loom::thread::spawn(move || {
            tx.send(&[1; 5]).unwrap();
            tx.send(&[2; 9]).unwrap();
        });
        assert_eq!(rx.recv(), vec![1; 5]);
        assert_eq!(rx.recv(), vec![2; 9]);
        producer.join().unwrap();
    });
}

/// A two-rank dissemination barrier: a value stored before the barrier on
/// one rank is visible after it on the other.
#[test]
fn barrier_two_ranks_synchronise() {
    loom::model(|| {
        let pages: Vec<ShmMemory> = (0..2)
            .map(|_| ShmMemory::new(SYNC_BYTES as usize))
            .collect();
        let data = ShmMemory::new(8);
        let mk = |rank: usize| {
            let peers = (0..2)
                .map(|p| (p != rank).then(|| pages[p].remote(0, SYNC_BYTES)))
                .collect();
            Barrier::new(rank, 2, peers, pages[rank].local(0, SYNC_BYTES))
        };
        let mut b0 = mk(0);
        let mut b1 = mk(1);
        let data_w = data.remote(0, 8);
        let data_r = data.local(0, 8);
        let t = loom::thread::spawn(move || {
            data_w.store_u64(0, 42);
            data_w.fence();
            b1.wait();
        });
        b0.wait();
        assert_eq!(data_r.load_u64(0), 42, "pre-barrier store visible");
        t.join().unwrap();
    });
}
