//! Property-based tests for the message-library protocols.

use proptest::prelude::*;
use tcc_msglib::ring::{RingReceiver, RingSender, SendMode, MAX_EAGER, RING_BYTES};
use tcc_msglib::shm::ShmMemory;
use tcc_msglib::window::inproc::InprocMemory;
use tcc_msglib::window::{LocalWindow, RemoteWindow};

proptest! {
    /// Windows are byte-exact at arbitrary (offset, length): what you
    /// store is what you load, and bytes outside the span are untouched.
    #[test]
    fn shm_window_byte_exact(
        offset in 0u64..100,
        payload in proptest::collection::vec(any::<u8>(), 1..64)
    ) {
        let mem = ShmMemory::new(256);
        let r = mem.remote(0, 256);
        let l = mem.local(0, 256);
        r.store(offset, &payload);
        let mut got = vec![0u8; payload.len()];
        l.load(offset, &mut got);
        prop_assert_eq!(&got, &payload);
        // A guard byte just past the span stays zero.
        if offset + payload.len() as u64 + 1 < 256 {
            let mut guard = [0xFFu8; 1];
            l.load(offset + payload.len() as u64, &mut guard);
            prop_assert_eq!(guard[0], 0, "trailing byte clobbered");
        }
    }

    /// The ring delivers any message sequence exactly once, in order,
    /// under an arbitrary interleaving of send and receive steps.
    #[test]
    fn ring_exactly_once_in_order(
        msgs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..MAX_EAGER.min(300)),
            1..60
        ),
        recv_bias in 2u8..5,
    ) {
        let ring = InprocMemory::new(RING_BYTES);
        let credit = InprocMemory::new(8);
        let mut tx = RingSender::new(ring.remote(), credit.local(), SendMode::WeaklyOrdered);
        let mut rx = RingReceiver::new(ring.local(), credit.remote());

        let mut to_send = msgs.iter();
        let mut expected = msgs.iter();
        let mut in_flight = 0usize;
        let mut step = 0u8;
        loop {
            step = step.wrapping_add(1);
            let prefer_recv = step.is_multiple_of(recv_bias);
            if !prefer_recv {
                if let Some(m) = to_send.clone().next() {
                    if tx.try_send(m).is_ok() {
                        to_send.next();
                        in_flight += 1;
                        continue;
                    }
                }
            }
            if let Some(got) = rx.try_recv() {
                let want = expected.next().expect("no phantom messages");
                prop_assert_eq!(&got, want);
                in_flight -= 1;
            } else if let Some(m) = to_send.clone().next() {
                // Nothing to receive: make progress by sending even on a
                // "prefer receive" step (otherwise a receive-only schedule
                // never terminates).
                if tx.try_send(m).is_ok() {
                    to_send.next();
                    in_flight += 1;
                }
            } else if in_flight == 0 {
                break;
            }
        }
        prop_assert!(expected.next().is_none(), "all messages delivered");
        prop_assert_eq!(rx.try_recv(), None);
    }

    /// Credits conserve ring capacity: the sender can never have more
    /// than RING_CELLS cells outstanding, and consuming everything always
    /// restores full capacity.
    #[test]
    fn ring_credit_capacity_invariant(sizes in proptest::collection::vec(0usize..200, 1..80)) {
        use tcc_msglib::ring::RING_CELLS;
        let ring = InprocMemory::new(RING_BYTES);
        let credit = InprocMemory::new(8);
        let mut tx = RingSender::new(ring.remote(), credit.local(), SendMode::WeaklyOrdered);
        let mut rx = RingReceiver::new(ring.local(), credit.remote());
        for s in sizes {
            let msg = vec![0xAB; s];
            if tx.try_send(&msg).is_err() {
                // Drain and retry once; must succeed with an empty ring.
                while rx.try_recv().is_some() {}
                rx.flush_credit();
                prop_assert!(tx.free_cells() == RING_CELLS as u64);
                prop_assert!(tx.try_send(&msg).is_ok());
            }
            prop_assert!(tx.free_cells() <= RING_CELLS as u64);
        }
    }
}
