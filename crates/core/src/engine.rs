//! The fabric timing engines.
//!
//! Every benchmark and workload in this crate runs over one of two
//! interchangeable timing engines selected by [`EngineKind`]:
//!
//! * **Chained** — the fast analytic path: `Platform::propagate` walks a
//!   sender's actions to completion through busy-tracked channels, with
//!   link credits auto-returned. Valid for open-loop traffic whose
//!   receiver provably drains at line rate; this is what regenerates the
//!   paper's figures in milliseconds of wall clock.
//! * **EventDriven** — a discrete-event model of the whole fabric with
//!   **real credit-based flow control**: every trained `Platform` wire
//!   becomes an event-driven channel pair ([`PortState`]) with per-VC
//!   credit pools, receiver buffers that drain with a modelled latency,
//!   credit returns riding back in NOP packets on the reverse direction,
//!   and hop-by-hop forwarding through each intermediate northbridge
//!   (via [`Node::deliver_routed`](tcc_opteron::node::Node::deliver_routed)
//!   and the same route tables the chained engine uses). Because the
//!   event queue interleaves all transmitters, many nodes can issue
//!   traffic *concurrently* — all-to-all, hotspot and halo-exchange
//!   patterns on `Mesh{x,y}` topologies exhibit genuine link contention,
//!   backpressure and fairness.
//!
//! The two engines are pinned to each other by cross-validation: on a
//! single flow their goodput must agree within a few percent (see
//! `tests/engine_crossval.rs` and the module tests below), and the
//! paper's 227 ns / ~2500 MB/s anchors reproduce on both. `docs/engine.md`
//! describes when each engine's answers are valid.
//!
//! Deadlock freedom: TCCluster restricts itself to posted writes, so all
//! data moves in one VC. The event engine releases an input port's buffer
//! only once a forwarded packet has been handed to its output link
//! (hold-until-forwarded), which is safe because X-Y dimension-ordered
//! routing keeps the channel dependency graph acyclic, and credit-return
//! NOPs are info packets that never wait for credits.

use bytes::Bytes;
use std::collections::VecDeque;
use tcc_fabric::event::EventQueue;
use tcc_fabric::sim::{Model, Sim, Stop};
use tcc_fabric::time::{Duration, SimTime};
use tcc_firmware::machine::{PacketEvent, Platform};
use tcc_firmware::topology::{ClusterSpec, Port};
use tcc_ht::link::{Delivery, LinkRx, LinkTx};
use tcc_ht::packet::{Packet, VirtualChannel};
use tcc_opteron::node::DeliverOutcome;
use tcc_opteron::regs::{LinkId, LINKS_PER_NODE};
use tcc_opteron::{Disposition, Source};

/// Which timing engine a [`SimCluster`](crate::sim::SimCluster) runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// The analytic chained-channel path (`Platform::propagate`).
    #[default]
    Chained,
    /// The discrete-event fabric with real flow control.
    EventDriven,
}

/// Time the receiving northbridge takes to drain one packet's buffers —
/// the memory-controller write for a 64 B payload (~6 ns at DDR2 rates
/// plus queue overhead). The IO-bridge conversion latency is on the
/// packet's path, not the buffer-occupancy path, so it does not throttle
/// the drain *rate*.
pub const DEFAULT_DRAIN: Duration = Duration(8_000);

/// Per-flow landing window in the destination's DRAM (64 packets deep).
const WIN: u64 = 0x1000;
/// Node-local offset of the first flow window — far above the message
/// rings at the bottom of each node's exported slice.
const WIN_BASE: u64 = 0x8_0000;

static ZERO64: [u8; 64] = [0u8; 64];

/// Events of the N-node fabric model.
#[derive(Debug)]
pub enum FabricEvent {
    /// Flow `flow` tries to enqueue + pump more packets at its source.
    Pump { flow: usize },
    /// A node's store path handed a packet to the fabric at (node, link).
    Inject {
        node: usize,
        link: LinkId,
        packet: Packet,
    },
    /// A packet arrives at `node` on `link`.
    Arrive {
        node: usize,
        link: LinkId,
        packet: Packet,
    },
    /// The receiver at (node, link) finished a packet of this shape; its
    /// buffers become returnable credits.
    Drained {
        node: usize,
        link: LinkId,
        vc: VirtualChannel,
        has_data: bool,
    },
}

/// One directed end of a trained wire: the transmitter leaving `node` via
/// `link` plus the receiver for packets arriving there.
#[derive(Debug)]
pub struct PortState {
    tx: LinkTx,
    rx: LinkRx,
    peer: usize,
    peer_link: LinkId,
    coherent: bool,
    /// Input link each queued (Posted, data-bearing) packet came in on;
    /// `None` for locally injected packets. Exactly parallel to the tx
    /// Posted queue: the engine never enqueues NOPs (they go out via
    /// `send_nop`), so one delivery pops one entry.
    provenance: VecDeque<Option<LinkId>>,
    /// Indices of flows whose first hop leaves through this port — woken
    /// when a credit NOP arrives.
    flows: Vec<usize>,
}

impl PortState {
    /// The receiving (node, link) at the far end of this wire direction.
    pub fn peer(&self) -> (usize, LinkId) {
        (self.peer, self.peer_link)
    }

    pub fn coherent(&self) -> bool {
        self.coherent
    }

    pub fn tx(&self) -> &LinkTx {
        &self.tx
    }

    pub fn rx(&self) -> &LinkRx {
        &self.rx
    }
}

/// A posted write that landed in some node's DRAM through the event
/// engine (the event-side analogue of `DeliveredWrite`).
#[derive(Debug, Clone, Copy)]
pub struct CommitRec {
    /// Global node index the write committed on.
    pub node: usize,
    /// Node-local DRAM offset.
    pub offset: u64,
    /// When the write became visible to polls.
    pub visible: SimTime,
    /// Payload bytes committed.
    pub bytes: u64,
}

/// One synthetic traffic source: a stream of 64 B posted writes from
/// `src` into a dedicated window of `dst`'s DRAM, injected as fast as
/// credits allow.
#[derive(Debug)]
pub struct Flow {
    /// Global source node index.
    pub src: usize,
    /// Global destination node index.
    pub dst: usize,
    /// First-hop link out of `src` (from the northbridge's own routing).
    port: LinkId,
    /// Node-local offset of the landing window in `dst`'s DRAM.
    win_off: u64,
    /// Window size in bytes; packet addresses wrap within it.
    window: u64,
    /// Global base address of the window.
    base: u64,
    /// Global address of the next packet.
    next: u64,
    /// Packets still to inject.
    remaining: u64,
    /// Packets enqueued so far.
    pub injected: u64,
}

/// Mutable fabric state, separable from the platform borrow.
#[derive(Debug)]
struct FabricState {
    ports: Vec<[Option<PortState>; LINKS_PER_NODE]>,
    /// Per-node receive-bridge serialisation clock for buffer drains.
    drain_free: Vec<SimTime>,
    drain: Duration,
    flows: Vec<Flow>,
    commits: Vec<CommitRec>,
    /// Scratch for link deliveries pumped by one event.
    dels: Vec<Delivery>,
}

/// The model actually driven by [`Sim`]: fabric state coupled to the
/// booted platform for the duration of one run. `Model::handle` cannot
/// carry extra borrows, so the engine parks its queue/clock between runs
/// (via [`Sim::into_parts`]) and resumes them with a fresh short-lived
/// platform borrow each time.
#[derive(Debug)]
struct Coupled<'a> {
    state: &'a mut FabricState,
    platform: &'a mut Platform,
}

impl Model for Coupled<'_> {
    type Event = FabricEvent;

    fn handle(&mut self, now: SimTime, ev: FabricEvent, queue: &mut EventQueue<FabricEvent>) {
        match ev {
            FabricEvent::Pump { flow } => self.pump_flow(now, flow, queue),
            FabricEvent::Inject { node, link, packet } => {
                self.on_inject(now, node, link, packet, queue);
            }
            FabricEvent::Arrive { node, link, packet } => {
                self.on_arrive(now, node, link, packet, queue);
            }
            FabricEvent::Drained {
                node,
                link,
                vc,
                has_data,
            } => self.on_drained(now, node, link, vc, has_data, queue),
        }
    }
}

impl Coupled<'_> {
    /// Keep flow `i`'s transmit queue primed and pump its port. The flow
    /// reschedules itself only while the wire (not credits) paces it: an
    /// empty queue after pumping means everything went out, so poll again
    /// when the wire frees; a non-empty queue means credits blocked and
    /// the arrival of a credit NOP will re-pump (no busy-spin).
    fn pump_flow(&mut self, now: SimTime, i: usize, queue: &mut EventQueue<FabricEvent>) {
        let FabricState { flows, ports, .. } = &mut *self.state;
        let f = &mut flows[i];
        let port = ports[f.src][f.port.0 as usize]
            .as_mut()
            .expect("flow's first hop is wired");
        while f.remaining > 0 && port.tx.queued(VirtualChannel::Posted) < 4 {
            port.tx
                .enqueue(Packet::posted_write(f.next, Bytes::from_static(&ZERO64)));
            port.provenance.push_back(None);
            f.next = f.base + (f.next - f.base + 64) % f.window;
            f.remaining -= 1;
            f.injected += 1;
        }
        let (src, link, remaining) = (f.src, f.port, f.remaining);
        self.pump_port(now, src, link, queue);
        let port = self.state.ports[src][link.0 as usize]
            .as_ref()
            .expect("port");
        if remaining > 0 && port.tx.queued(VirtualChannel::Posted) == 0 {
            let next = port.tx.next_free().max(now + Duration(1_000));
            queue.schedule_at(next, FabricEvent::Pump { flow: i });
        }
    }

    /// Transmit whatever credits admit at (node, link), scheduling an
    /// arrival per delivery. A delivery whose provenance names an input
    /// link releases that input port's buffer (hold-until-forwarded),
    /// serialised through the node's receive bridge.
    fn pump_port(
        &mut self,
        now: SimTime,
        node: usize,
        link: LinkId,
        queue: &mut EventQueue<FabricEvent>,
    ) {
        let FabricState {
            ports,
            drain_free,
            drain,
            dels,
            ..
        } = &mut *self.state;
        let mut out = std::mem::take(dels);
        out.clear();
        let port = ports[node][link.0 as usize]
            .as_mut()
            .unwrap_or_else(|| panic!("pump on inactive port n{node} l{}", link.0));
        port.tx.pump_into(now, &mut out);
        let (peer, peer_link) = (port.peer, port.peer_link);
        for d in out.drain(..) {
            let from = port.provenance.pop_front().expect("provenance aligned");
            if let Some(in_link) = from {
                let start = now.max(drain_free[node]);
                drain_free[node] = start + *drain;
                queue.schedule_at(
                    start + *drain,
                    FabricEvent::Drained {
                        node,
                        link: in_link,
                        vc: d.packet.vc(),
                        has_data: !d.packet.data.is_empty(),
                    },
                );
            }
            queue.schedule_at(
                d.arrival,
                FabricEvent::Arrive {
                    node: peer,
                    link: peer_link,
                    packet: d.packet,
                },
            );
        }
        *dels = out;
    }

    /// A node's own store path handed a packet to the fabric.
    fn on_inject(
        &mut self,
        now: SimTime,
        node: usize,
        link: LinkId,
        packet: Packet,
        queue: &mut EventQueue<FabricEvent>,
    ) {
        let port = self.state.ports[node][link.0 as usize]
            .as_mut()
            .unwrap_or_else(|| panic!("inject on inactive port n{node} l{}", link.0));
        port.tx.enqueue(packet);
        port.provenance.push_back(None);
        self.pump_port(now, node, link, queue);
    }

    /// A packet lands at (node, link): fire the monitor, occupy a buffer,
    /// and route it — commit locally, forward out another link, or (for a
    /// NOP) release the credits it carries and wake blocked transmitters.
    fn on_arrive(
        &mut self,
        now: SimTime,
        node: usize,
        link: LinkId,
        packet: Packet,
        queue: &mut EventQueue<FabricEvent>,
    ) {
        let (peer, peer_link, coherent) = {
            let port = self.state.ports[node][link.0 as usize]
                .as_ref()
                .unwrap_or_else(|| panic!("arrival on inactive port n{node} l{}", link.0));
            (port.peer, port.peer_link, port.coherent)
        };
        self.platform.monitor_packet(&PacketEvent {
            src: (peer, peer_link),
            dst: (node, link),
            coherent,
            packet: &packet,
            arrival: now,
        });
        let port = self.state.ports[node][link.0 as usize]
            .as_mut()
            .expect("port");
        match port.rx.accept(&packet).expect("sender honoured credits") {
            Some(ret) => {
                // A credit NOP: freed credits may unblock the queue and
                // any flow sourced at this port, immediately.
                port.tx
                    .credit_return(ret)
                    .expect("receiver-harvested credits");
                self.pump_port(now, node, link, queue);
                let n = self.state.ports[node][link.0 as usize]
                    .as_ref()
                    .expect("port")
                    .flows
                    .len();
                for k in 0..n {
                    let fi = self.state.ports[node][link.0 as usize]
                        .as_ref()
                        .expect("port")
                        .flows[k];
                    self.pump_flow(now, fi, queue);
                }
            }
            None => {
                let vc = packet.vc();
                let has_data = !packet.data.is_empty();
                let bytes = packet.data.len() as u64;
                let outcome = self.platform.nodes[node]
                    .deliver_routed(now, link, packet, coherent)
                    .unwrap_or_else(|e| panic!("delivery failed at node {node}: {e:?}"));
                match outcome {
                    DeliverOutcome::Committed { offset, visible } => {
                        let start = now.max(self.state.drain_free[node]);
                        self.state.drain_free[node] = start + self.state.drain;
                        queue.schedule_at(
                            start + self.state.drain,
                            FabricEvent::Drained {
                                node,
                                link,
                                vc,
                                has_data,
                            },
                        );
                        self.state.commits.push(CommitRec {
                            node,
                            offset,
                            visible,
                            bytes,
                        });
                    }
                    DeliverOutcome::Forward {
                        link: out,
                        packet,
                        at,
                    } => {
                        // Hold this input buffer until the packet leaves on
                        // the output link: pump_port schedules the drain.
                        let out_port = self.state.ports[node][out.0 as usize]
                            .as_mut()
                            .unwrap_or_else(|| {
                                panic!("forward out inactive port n{node} l{}", out.0)
                            });
                        out_port.tx.enqueue(packet);
                        out_port.provenance.push_back(Some(link));
                        self.pump_port(at, node, out, queue);
                    }
                    DeliverOutcome::Filtered => {
                        let start = now.max(self.state.drain_free[node]);
                        self.state.drain_free[node] = start + self.state.drain;
                        queue.schedule_at(
                            start + self.state.drain,
                            FabricEvent::Drained {
                                node,
                                link,
                                vc,
                                has_data,
                            },
                        );
                    }
                }
            }
        }
    }

    /// Buffers freed: harvest the pending credits into NOPs on the
    /// reverse direction (NOPs bypass credit checks, so returns can never
    /// deadlock).
    fn on_drained(
        &mut self,
        now: SimTime,
        node: usize,
        link: LinkId,
        vc: VirtualChannel,
        has_data: bool,
        queue: &mut EventQueue<FabricEvent>,
    ) {
        let port = self.state.ports[node][link.0 as usize]
            .as_mut()
            .unwrap_or_else(|| panic!("drain on inactive port n{node} l{}", link.0));
        port.rx
            .drain_parts(vc, has_data)
            .expect("accepted before drain");
        while port.rx.has_pending_credits() {
            let ret = port.rx.harvest();
            let d = port.tx.send_nop(now, ret);
            queue.schedule_at(
                d.arrival,
                FabricEvent::Arrive {
                    node: port.peer,
                    link: port.peer_link,
                    packet: d.packet,
                },
            );
        }
    }
}

/// The event-driven fabric engine: one [`PortState`] per trained wire
/// direction, persistent across runs against a borrowed [`Platform`].
#[derive(Debug)]
pub struct EventEngine {
    state: FabricState,
    queue: EventQueue<FabricEvent>,
    now: SimTime,
    events: u64,
}

impl EventEngine {
    /// Build an engine over every trained wire of `platform`, with link
    /// configurations taken from the negotiated endpoint state (the same
    /// tables the chained engine serialises against).
    pub fn new(platform: &mut Platform, drain: Duration) -> Self {
        let n = platform.nodes.len();
        let mut ports: Vec<[Option<PortState>; LINKS_PER_NODE]> =
            (0..n).map(|_| std::array::from_fn(|_| None)).collect();
        for (node, row) in ports.iter_mut().enumerate() {
            for (l, slot) in row.iter_mut().enumerate() {
                let link = LinkId(l as u8);
                if let Some((peer, peer_link, coherent)) = platform.route_hop(node, link) {
                    let config = platform
                        .active_config(node, link)
                        .expect("trained wire has an active config");
                    let seed = 0x1000 | ((node as u64) << 4) | l as u64;
                    *slot = Some(PortState {
                        tx: LinkTx::new(config, seed),
                        rx: LinkRx::new(),
                        peer,
                        peer_link,
                        coherent,
                        provenance: VecDeque::new(),
                        flows: Vec::new(),
                    });
                }
            }
        }
        EventEngine {
            state: FabricState {
                ports,
                drain_free: vec![SimTime::ZERO; n],
                drain,
                flows: Vec::new(),
                commits: Vec::new(),
                dels: Vec::new(),
            },
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            events: 0,
        }
    }

    /// The configured receiver drain latency.
    pub fn drain(&self) -> Duration {
        self.state.drain
    }

    /// The engine clock (last event handled).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events handled across all runs.
    pub fn events_handled(&self) -> u64 {
        self.events
    }

    /// Every DRAM commit delivered so far, in delivery order.
    pub fn commits(&self) -> &[CommitRec] {
        &self.state.commits
    }

    pub fn flows(&self) -> &[Flow] {
        &self.state.flows
    }

    /// The port at (node, link), if that wire end is trained.
    pub fn port(&self, node: usize, link: LinkId) -> Option<&PortState> {
        self.state.ports[node][link.0 as usize].as_ref()
    }

    /// All active (node, link) port coordinates.
    pub fn port_ids(&self) -> Vec<(usize, LinkId)> {
        let mut out = Vec::new();
        for (node, row) in self.state.ports.iter().enumerate() {
            for (l, slot) in row.iter().enumerate() {
                if slot.is_some() {
                    out.push((node, LinkId(l as u8)));
                }
            }
        }
        out
    }

    /// Total transmitter stalls for want of a credit, across all ports —
    /// nonzero exactly when flow control engaged.
    pub fn stalls_no_credit(&self) -> u64 {
        self.state
            .ports
            .iter()
            .flatten()
            .flatten()
            .map(|p| p.tx.stats.stalls_no_credit)
            .sum()
    }

    /// Total credit NOPs sent across all ports.
    pub fn nops_sent(&self) -> u64 {
        self.state
            .ports
            .iter()
            .flatten()
            .flatten()
            .map(|p| p.tx.stats.nops_sent)
            .sum()
    }

    /// Queue a packet leaving `node` on `link`, no earlier than `ready`
    /// (clamped to the engine clock — the store path's issue clock can
    /// lag a fabric that already ran ahead).
    pub fn inject_at(&mut self, node: usize, link: LinkId, packet: Packet, ready: SimTime) {
        let at = ready.max(self.now);
        self.queue
            .schedule_at(at, FabricEvent::Inject { node, link, packet });
    }

    /// Register a flow of `bytes` (rounded up to 64 B packets) from
    /// global node `src` into a dedicated window of `dst`'s DRAM, routed
    /// by `src`'s own northbridge. Returns the flow index.
    pub fn add_flow(
        &mut self,
        platform: &mut Platform,
        src: usize,
        dst: usize,
        bytes: u64,
    ) -> usize {
        let spec = platform.spec;
        let idx = self.state.flows.len();
        let win_off = WIN_BASE + (idx as u64) * WIN;
        assert!(
            win_off + WIN <= spec.supernode.dram_per_node,
            "flow window {idx} exceeds the destination's DRAM"
        );
        let (s, p) = (
            dst / spec.supernode.processors,
            dst % spec.supernode.processors,
        );
        let base = spec.node_base(s, p) + win_off;
        let probe = Packet::posted_write(base, Bytes::from_static(&ZERO64));
        let port = match platform.nodes[src].nb.dispose(&probe, Source::Core) {
            Ok(Disposition::Forward { link }) => link,
            other => panic!("flow {src}->{dst} does not leave node {src}: {other:?}"),
        };
        let packets = bytes.div_ceil(64).max(1);
        self.state.flows.push(Flow {
            src,
            dst,
            port,
            win_off,
            window: WIN,
            base,
            next: base,
            remaining: packets,
            injected: 0,
        });
        self.state.ports[src][port.0 as usize]
            .as_mut()
            .expect("flow's first hop is wired")
            .flows
            .push(idx);
        self.queue
            .schedule_at(self.now, FabricEvent::Pump { flow: idx });
        idx
    }

    /// Run the fabric until every pending packet, drain and credit return
    /// has completed. Returns the latest commit-visible time of this run
    /// (`SimTime::ZERO` if nothing landed).
    pub fn run_quiescent(&mut self, platform: &mut Platform) -> SimTime {
        let first_new = self.state.commits.len();
        let queue = std::mem::replace(&mut self.queue, EventQueue::new());
        let model = Coupled {
            state: &mut self.state,
            platform,
        };
        let mut sim = Sim::resume(model, queue, self.now);
        let stop = sim.run_until(SimTime::MAX, 500_000_000);
        assert_eq!(stop, Stop::Quiescent, "event fabric did not quiesce");
        let handled = sim.events_handled();
        let (_, queue, now) = sim.into_parts();
        self.queue = queue;
        self.now = now;
        self.events += handled;
        self.state.commits[first_new..]
            .iter()
            .map(|c| c.visible)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// After quiescence every credit must be home: transmit pools full,
    /// receive buffers empty, nothing pending return. Panics otherwise —
    /// a failure here means the engine lost or duplicated a credit.
    pub fn assert_quiescent_credits(&self) {
        for (node, row) in self.state.ports.iter().enumerate() {
            for (l, slot) in row.iter().enumerate() {
                let Some(port) = slot else { continue };
                assert!(
                    port.provenance.is_empty(),
                    "n{node} l{l}: packets still queued"
                );
                for vc in VirtualChannel::ALL {
                    let c = port.tx.credits();
                    assert_eq!(
                        c.available_cmd(vc),
                        c.initial_cmd(vc),
                        "n{node} l{l} {vc}: cmd credits missing"
                    );
                    assert_eq!(
                        c.available_data(vc),
                        c.initial_data(vc),
                        "n{node} l{l} {vc}: data credits missing"
                    );
                    let b = port.rx.buffers();
                    assert_eq!(b.held(vc), 0, "n{node} l{l} {vc}: buffers occupied");
                    assert_eq!(b.pending(vc), 0, "n{node} l{l} {vc}: returns unharvested");
                }
            }
        }
    }

    /// Per-flow delivery accounting, attributing commits by landing
    /// window.
    pub fn flow_reports(&self) -> Vec<FlowReport> {
        self.state
            .flows
            .iter()
            .map(|f| {
                let mut delivered = 0u64;
                let mut first = SimTime::MAX;
                let mut last = SimTime::ZERO;
                for c in &self.state.commits {
                    if c.node == f.dst && c.offset >= f.win_off && c.offset < f.win_off + f.window {
                        delivered += c.bytes;
                        first = first.min(c.visible);
                        last = last.max(c.visible);
                    }
                }
                if delivered == 0 {
                    first = SimTime::ZERO;
                }
                FlowReport {
                    src: f.src,
                    dst: f.dst,
                    injected_packets: f.injected,
                    delivered_bytes: delivered,
                    first_visible: first,
                    last_visible: last,
                }
            })
            .collect()
    }
}

/// Synthetic concurrent traffic shapes over the cluster's supernodes
/// (each supernode is represented by its processor 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficPattern {
    /// Every supernode streams to every other supernode.
    AllToAll,
    /// Every supernode streams to one `target` supernode.
    Hotspot { target: usize },
    /// Every supernode streams to each of its mesh neighbours
    /// (halo exchange).
    Halo,
    /// One flow from supernode `src` to supernode `dst`.
    Single { src: usize, dst: usize },
}

/// (src, dst) global node pairs a pattern expands to on `spec`.
pub fn pattern_pairs(spec: &ClusterSpec, pattern: TrafficPattern) -> Vec<(usize, usize)> {
    let rep = |s: usize| spec.proc_index(s, 0);
    let n = spec.supernode_count();
    let mut pairs = Vec::new();
    match pattern {
        TrafficPattern::Single { src, dst } => pairs.push((rep(src), rep(dst))),
        TrafficPattern::AllToAll => {
            for s in 0..n {
                for d in 0..n {
                    if s != d {
                        pairs.push((rep(s), rep(d)));
                    }
                }
            }
        }
        TrafficPattern::Hotspot { target } => {
            for s in 0..n {
                if s != target {
                    pairs.push((rep(s), rep(target)));
                }
            }
        }
        TrafficPattern::Halo => {
            for s in 0..n {
                for port in Port::ALL {
                    if let Some(d) = spec.neighbor(s, port) {
                        pairs.push((rep(s), rep(d)));
                    }
                }
            }
        }
    }
    pairs
}

/// Delivery accounting for one flow of a workload run.
#[derive(Debug, Clone)]
pub struct FlowReport {
    pub src: usize,
    pub dst: usize,
    pub injected_packets: u64,
    pub delivered_bytes: u64,
    pub first_visible: SimTime,
    pub last_visible: SimTime,
}

impl FlowReport {
    /// Delivered goodput across the flow's active window, MB/s.
    pub fn goodput_mbps(&self) -> f64 {
        let span = self.last_visible.since(self.first_visible).picos();
        if span == 0 {
            return 0.0;
        }
        self.delivered_bytes as f64 / (span as f64 / 1e12) / 1e6
    }
}

/// Result of one [`SimCluster::run_workload`](crate::sim::SimCluster::run_workload).
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    pub flows: Vec<FlowReport>,
    /// Transmitter stalls for want of a credit — nonzero under load iff
    /// flow control engaged.
    pub stalls_no_credit: u64,
    /// Events the engine handled.
    pub events: u64,
    /// Simulated completion time of the whole workload.
    pub elapsed: SimTime,
    pub injected_packets: u64,
    pub delivered_packets: u64,
}

impl WorkloadReport {
    pub fn lost_packets(&self) -> u64 {
        self.injected_packets.saturating_sub(self.delivered_packets)
    }

    /// Aggregate delivered goodput over the run, MB/s.
    pub fn aggregate_goodput_mbps(&self) -> f64 {
        let bytes: u64 = self.flows.iter().map(|f| f.delivered_bytes).sum();
        bytes as f64 / (self.elapsed.picos() as f64 / 1e12) / 1e6
    }
}

/// Run a single closed-loop flow of `packets` 64 B posted writes over a
/// freshly booted two-supernode platform with `config` as the TCC cable,
/// returning delivered goodput in MB/s. This is the cross-validation
/// primitive: the chained model's analytic expectation for the same wire
/// is `config.effective_bytes_per_sec() * 64 / 72`.
pub fn stream_goodput(config: tcc_ht::link::LinkConfig, packets: u64) -> f64 {
    stream_goodput_with_drain(config, packets, DEFAULT_DRAIN)
}

/// [`stream_goodput`] with an explicit receiver drain latency — a slow
/// receiver collapses goodput to credits-per-round-trip, which is how the
/// tests prove flow control is live.
pub fn stream_goodput_with_drain(
    config: tcc_ht::link::LinkConfig,
    packets: u64,
    drain: Duration,
) -> f64 {
    let (mut platform, mut engine) = booted_pair_engine(config, drain);
    engine.add_flow(&mut platform, 0, 1, packets * 64);
    engine.run_quiescent(&mut platform);
    assert_eq!(engine.commits().len() as u64, packets, "lost packets");
    engine.assert_quiescent_credits();
    let last = engine
        .commits()
        .iter()
        .map(|c| c.visible)
        .max()
        .expect("at least one packet");
    (packets * 64) as f64 / (last.picos() as f64 / 1e12) / 1e6
}

/// A booted paper-prototype pair plus a fresh engine over it, with node
/// pipelines quiesced so the measurement epoch starts at time zero.
fn booted_pair_engine(
    config: tcc_ht::link::LinkConfig,
    drain: Duration,
) -> (Platform, EventEngine) {
    use tcc_firmware::topology::{ClusterTopology, SupernodeSpec};
    let spec = ClusterSpec::new(SupernodeSpec::new(1, 1 << 20), ClusterTopology::Pair);
    let mut platform = Platform::assemble(spec, tcc_opteron::UarchParams::shanghai());
    platform.tcc_target = config;
    let _ = tcc_firmware::tcc_boot::boot(&mut platform);
    for node in &mut platform.nodes {
        node.quiesce();
    }
    let engine = EventEngine::new(&mut platform, drain);
    (platform, engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_ht::link::LinkConfig;

    #[test]
    fn closed_loop_delivers_everything() {
        let bw = stream_goodput(LinkConfig::PROTOTYPE, 2_000);
        // 64 B goodput behind 72 wire bytes at ~3.175 GB/s ≈ 2.82 GB/s;
        // with real credit stalls it must stay within ~10% of that.
        assert!(
            (2500.0..2850.0).contains(&bw),
            "credit-limited goodput = {bw:.0} MB/s"
        );
    }

    #[test]
    fn credits_actually_bind_under_slow_drain() {
        // A receiver that takes 200 ns per packet drains far slower than
        // the wire delivers: the 8-credit pools empty, the transmitter
        // genuinely stalls, and goodput collapses toward
        // credits-per-round-trip instead of wire rate.
        let slow = stream_goodput_with_drain(LinkConfig::PROTOTYPE, 500, Duration::from_nanos(200));
        assert!(
            slow < 600.0,
            "slow drain must collapse goodput: {slow:.0} MB/s"
        );
        let fast = stream_goodput(LinkConfig::PROTOTYPE, 500);
        assert!(
            fast > slow * 3.0,
            "line-rate drain {fast:.0} vs slow drain {slow:.0} MB/s"
        );
    }

    #[test]
    fn slow_drain_engages_flow_control_without_loss() {
        let (mut platform, mut engine) =
            booted_pair_engine(LinkConfig::PROTOTYPE, Duration::from_nanos(200));
        engine.add_flow(&mut platform, 0, 1, 500 * 64);
        engine.run_quiescent(&mut platform);
        assert!(engine.stalls_no_credit() > 0, "flow control never engaged");
        assert_eq!(engine.commits().len(), 500, "lost packets");
        engine.assert_quiescent_credits();
    }

    #[test]
    fn event_engine_agrees_with_channel_model() {
        // The event engine's wire-rate goodput must agree with the
        // analytic expectation used throughout the chained-channel model.
        let bw = stream_goodput(LinkConfig::PROTOTYPE, 5_000);
        let wire = LinkConfig::PROTOTYPE.effective_bytes_per_sec() as f64;
        let expected = wire * 64.0 / 72.0 / 1e6;
        let err = (bw - expected).abs() / expected;
        assert!(
            err < 0.10,
            "event engine {bw:.0} vs model {expected:.0} MB/s"
        );
    }

    #[test]
    fn faster_link_scales_goodput_until_credits_bind() {
        let slow = stream_goodput(LinkConfig::PROTOTYPE, 2_000);
        let fast = stream_goodput(LinkConfig::HT3_FULL, 2_000);
        // At HT800 the wire is the bottleneck (~2.8 GB/s goodput). At HT3
        // the wire would do ~9 GB/s, but the 8-entry credit pools and the
        // 3-credit-per-NOP return rate bind first: goodput improves ~1.6x,
        // not 3.3x. (Real HT3 parts grew their buffer counts for exactly
        // this reason.)
        assert!(
            fast > slow * 1.4,
            "HT3 should still beat HT800: {slow:.0} -> {fast:.0}"
        );
        assert!(
            fast < slow * 2.5,
            "credits should bind well below the 3.3x wire ratio: {fast:.0}"
        );
    }

    #[test]
    fn pattern_pairs_cover_the_mesh() {
        use tcc_firmware::topology::{ClusterTopology, SupernodeSpec};
        let spec = ClusterSpec::new(
            SupernodeSpec::new(2, 1 << 20),
            ClusterTopology::Mesh { x: 2, y: 2 },
        );
        assert_eq!(pattern_pairs(&spec, TrafficPattern::AllToAll).len(), 12);
        assert_eq!(
            pattern_pairs(&spec, TrafficPattern::Hotspot { target: 0 }).len(),
            3
        );
        // Every supernode in a 2x2 mesh has exactly two neighbours.
        assert_eq!(pattern_pairs(&spec, TrafficPattern::Halo).len(), 8);
        let single = pattern_pairs(&spec, TrafficPattern::Single { src: 0, dst: 3 });
        assert_eq!(single, vec![(spec.proc_index(0, 0), spec.proc_index(3, 0))]);
    }
}
