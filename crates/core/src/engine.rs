//! The fabric timing engines.
//!
//! Every benchmark and workload in this crate runs over one of two
//! interchangeable timing engines selected by [`EngineKind`]:
//!
//! * **Chained** — the fast analytic path: `Platform::propagate` walks a
//!   sender's actions to completion through busy-tracked channels, with
//!   link credits auto-returned. Valid for open-loop traffic whose
//!   receiver provably drains at line rate; this is what regenerates the
//!   paper's figures in milliseconds of wall clock.
//! * **EventDriven** — a discrete-event model of the whole fabric with
//!   **real credit-based flow control**: every trained `Platform` wire
//!   becomes an event-driven channel pair ([`PortState`]) with per-VC
//!   credit pools, receiver buffers that drain with a modelled latency,
//!   credit returns riding back in NOP packets on the reverse direction,
//!   and hop-by-hop forwarding through each intermediate northbridge
//!   (via [`Node::deliver_routed`](tcc_opteron::node::Node::deliver_routed)
//!   and the same route tables the chained engine uses). Because the
//!   event queue interleaves all transmitters, many nodes can issue
//!   traffic *concurrently* — all-to-all, hotspot and halo-exchange
//!   patterns on `Mesh{x,y}` topologies exhibit genuine link contention,
//!   backpressure and fairness.
//!
//! # Parallel execution
//!
//! The event engine is a conservative parallel discrete-event simulator
//! (Chandy–Misra style). The fabric is sharded **by supernode**: each
//! [`Shard`] owns the ports, flows, drain clocks and event queue of one
//! supernode's nodes, so shard state is fully disjoint. Wire latency
//! gives the synchronization lookahead for free — every cross-shard
//! event is a packet [`Arrive`](FabricEvent::Arrive) produced by
//! `put_on_wire`, whose arrival lies at least one hop latency in the
//! future. With `L = min(hop_latency over cut links)`, every epoch
//! processes events strictly below the horizon
//! `min(next event anywhere) + L`; events a shard generates for another
//! shard during the epoch land at or past the horizon, so exchanging
//! mailboxes at the epoch barrier never delivers an event into a
//! shard's past.
//!
//! Determinism: every event carries an [`EventKey`] `(time, shard, seq)`
//! stamped by the shard that *scheduled* it, each shard pops its queue
//! in total key order, and sequential execution (`threads = 1`) runs the
//! *same* epoch algorithm — so results are bit-identical for any thread
//! count. DRAM commits are concatenated in shard-index order after each
//! run, and monitor callbacks are recorded per shard and replayed in
//! merged global key order (see `replay_monitors`), which is likewise
//! thread-count-invariant.
//!
//! The two engines are pinned to each other by cross-validation: on a
//! single flow their goodput must agree within a few percent (see
//! `tests/engine_crossval.rs` and the module tests below), and the
//! paper's 227 ns / ~2500 MB/s anchors reproduce on both. `docs/engine.md`
//! describes when each engine's answers are valid.
//!
//! Deadlock freedom: TCCluster restricts itself to posted writes, so all
//! data moves in one VC. The event engine releases an input port's buffer
//! only once a forwarded packet has been handed to its output link
//! (hold-until-forwarded), which is safe because X-Y dimension-ordered
//! routing keeps the channel dependency graph acyclic, and credit-return
//! NOPs are info packets that never wait for credits.

use bytes::Bytes;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};
use tcc_fabric::event::{EventKey, EventQueue, QueueBackend};
use tcc_fabric::time::{Duration, SimTime};
use tcc_firmware::machine::{PacketEvent, Platform};
use tcc_firmware::topology::{ClusterSpec, ClusterTopology, Port};
use tcc_ht::link::{Delivery, LinkRx, LinkTx};
use tcc_ht::packet::{Packet, VirtualChannel};
use tcc_ht::protocol_violation;
use tcc_msglib::handoff::BatchRing;
use tcc_opteron::nb::FlatTable;
use tcc_opteron::node::{DeliverOutcome, FlatOutcome, Node};
use tcc_opteron::regs::{LinkId, LINKS_PER_NODE};
use tcc_opteron::{Disposition, Source};

/// Which timing engine a [`SimCluster`](crate::sim::SimCluster) runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// The analytic chained-channel path (`Platform::propagate`).
    #[default]
    Chained,
    /// The discrete-event fabric with real flow control.
    EventDriven,
}

/// How cross-shard events move between PDES workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MailboxKind {
    /// Epoch-batched SPSC [`BatchRing`]s, one per (sender → receiver)
    /// shard pair with a cut wire: senders stage events locally and
    /// publish the whole batch once per epoch — no per-event locking.
    #[default]
    Ring,
    /// The original per-receiver `Mutex<Vec>` mailbox, locked per event.
    /// Kept as the differential-testing reference for the ring path.
    Mutex,
}

impl MailboxKind {
    /// Every mailbox kind, for differential tests and benches.
    pub const ALL: [MailboxKind; 2] = [MailboxKind::Ring, MailboxKind::Mutex];

    /// Short stable name (bench JSON keys, test labels).
    pub fn name(self) -> &'static str {
        match self {
            MailboxKind::Ring => "ring",
            MailboxKind::Mutex => "mutex",
        }
    }
}

/// Tuning knobs for the event engine's executive.
///
/// No `PartialEq`: the profile clock is a function pointer, and function
/// pointer identity is not stable across codegen units.
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// Worker threads for the sharded conservative-PDES executive. One
    /// shard per supernode; threads beyond the shard count are clamped.
    /// `1` runs the same epoch algorithm inline (no spawn, no barriers)
    /// and is the zero-allocation reference path.
    pub threads: usize,
    /// Event-queue backend per shard (population-adaptive by default:
    /// ladder while small, calendar when large; the pure backends are
    /// kept for differential testing and A/B timing).
    pub backend: QueueBackend,
    /// Cross-shard mailbox implementation (batched SPSC rings by
    /// default; the mutex mailbox is kept for differential testing).
    pub mailbox: MailboxKind,
    /// Monotonic nanosecond clock for per-stage attribution
    /// ([`EventEngine::stage_profile`]). `None` (the default) runs the
    /// unconditional hot loop with zero instrumentation; benches inject
    /// a clock for attribution runs. A function pointer — not a reading
    /// of any wall clock by this crate — so the engine itself stays free
    /// of nondeterminism sources.
    pub profile_clock: Option<fn() -> u64>,
    /// Use the flat-wire fast lane for 64 B posted-write arrivals: route
    /// and credit class precomputed per address range at engine-build
    /// time ([`Northbridge::flat_table`](tcc_opteron::nb)), straight-line
    /// accept → deliver with no command dispatch. `false` forces every
    /// packet down the general path — the differential-testing reference
    /// the determinism suite diffs against. Results are bit-identical
    /// either way.
    pub flat_lane: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            threads: 1,
            backend: QueueBackend::default(),
            mailbox: MailboxKind::default(),
            profile_clock: None,
            flat_lane: true,
        }
    }
}

/// Wall-clock attribution of a profiled run, split over the three hot
/// sections of the epoch loop. Only populated when
/// [`EngineOptions::profile_clock`] is set; all zeros otherwise.
///
/// Queue and exec time are **sampled**: one event in
/// [`PROFILE_SAMPLE_EVERY`] gets clocked (`sampled_events` counts them),
/// the rest run the uninstrumented hot path — so a profiled run's
/// absolute rate stays close to the headline rate and the split stays
/// accurate. Per-event figures divide `queue_ns`/`exec_ns` (and the exec
/// sub-stages) by `sampled_events`, but `mailbox_ns` — measured per
/// epoch phase, not per event — by `profiled_events`.
///
/// The exec sub-stages cover `Arrive` events (the dominant kind):
/// `credit_ns` is receive-buffer and credit accounting (including whole
/// NOP arrivals), `route_ns` is the routing decision plus DRAM timing
/// (flat classification + table lookup, or the northbridge walk), and
/// `deliver_ns` is acting on the outcome (drain scheduling, commit
/// logging, forward enqueue and transmit pump). Their sum is below
/// `exec_ns`; the remainder is Pump/Inject/Drained handling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageProfile {
    /// Nanoseconds inside event-queue pops (including refused
    /// `pop_keyed_before` horizon probes), sampled events only.
    pub queue_ns: u64,
    /// Nanoseconds draining and publishing cross-shard mailboxes
    /// (measured on every epoch phase, not sampled).
    pub mailbox_ns: u64,
    /// Nanoseconds executing event handlers (the model itself), sampled
    /// events only.
    pub exec_ns: u64,
    /// Exec sub-stage: routing decision + DRAM timing of sampled arrivals.
    pub route_ns: u64,
    /// Exec sub-stage: credit/buffer accounting of sampled arrivals.
    pub credit_ns: u64,
    /// Exec sub-stage: outcome handling of sampled arrivals.
    pub deliver_ns: u64,
    /// Events handled under profiling (clocked or not).
    pub profiled_events: u64,
    /// Events whose queue + exec time was actually clocked.
    pub sampled_events: u64,
    /// Productive shard visits (a shard × horizon round with at least
    /// one due event is visited; shards with nothing due are skipped).
    pub epochs: u64,
}

impl StageProfile {
    fn merge(&mut self, other: StageProfile) {
        self.queue_ns += other.queue_ns;
        self.mailbox_ns += other.mailbox_ns;
        self.exec_ns += other.exec_ns;
        self.route_ns += other.route_ns;
        self.credit_ns += other.credit_ns;
        self.deliver_ns += other.deliver_ns;
        self.profiled_events += other.profiled_events;
        self.sampled_events += other.sampled_events;
        self.epochs += other.epochs;
    }
}

/// Sampling stride of the profiled epoch loop: one event in this many
/// gets the clock reads. 32 keeps the instrumented run within a few
/// percent of the uninstrumented rate while still clocking hundreds of
/// thousands of events on the 8×8 workload.
pub const PROFILE_SAMPLE_EVERY: u64 = 32;

/// Time the receiving northbridge takes to drain one packet's buffers —
/// the memory-controller write for a 64 B payload (~6 ns at DDR2 rates
/// plus queue overhead). The IO-bridge conversion latency is on the
/// packet's path, not the buffer-occupancy path, so it does not throttle
/// the drain *rate*.
pub const DEFAULT_DRAIN: Duration = Duration(8_000);

/// Per-flow landing window in the destination's DRAM (64 packets deep).
const WIN: u64 = 0x1000;
/// Node-local offset of the first flow window — far above the message
/// rings at the bottom of each node's exported slice.
const WIN_BASE: u64 = 0x8_0000;

/// Hard per-run event budget — a run that exceeds it did not quiesce.
const EVENT_BUDGET: u64 = 500_000_000;

static ZERO64: [u8; 64] = [0u8; 64];

/// Events of the N-node fabric model.
///
/// `node` indices are global; `flow` is the index within the owning
/// shard's flow table (flows never cross shards — a flow lives at its
/// source node's shard).
#[derive(Debug)]
pub enum FabricEvent {
    /// Flow `flow` (shard-local index) tries to enqueue + pump more
    /// packets at its source.
    Pump { flow: usize },
    /// A node's store path handed a packet to the fabric at (node, link).
    Inject {
        node: usize,
        link: LinkId,
        packet: Packet,
    },
    /// A packet arrives at `node` on `link`.
    Arrive {
        node: usize,
        link: LinkId,
        packet: Packet,
    },
    /// The receiver at (node, link) finished a packet of this shape; its
    /// buffers become returnable credits.
    Drained {
        node: usize,
        link: LinkId,
        vc: VirtualChannel,
        has_data: bool,
    },
}

/// One directed end of a trained wire: the transmitter leaving `node` via
/// `link` plus the receiver for packets arriving there.
#[derive(Debug)]
pub struct PortState {
    tx: LinkTx,
    rx: LinkRx,
    peer: usize,
    peer_link: LinkId,
    coherent: bool,
    /// Input link each queued (Posted, data-bearing) packet came in on;
    /// `None` for locally injected packets. Exactly parallel to the tx
    /// Posted queue: the engine never enqueues NOPs (they go out via
    /// `send_nop`), so one delivery pops one entry.
    provenance: VecDeque<Option<LinkId>>,
    /// Shard-local indices of flows whose first hop leaves through this
    /// port — woken when a credit NOP arrives.
    flows: Vec<usize>,
}

impl PortState {
    /// The receiving (node, link) at the far end of this wire direction.
    pub fn peer(&self) -> (usize, LinkId) {
        (self.peer, self.peer_link)
    }

    pub fn coherent(&self) -> bool {
        self.coherent
    }

    pub fn tx(&self) -> &LinkTx {
        &self.tx
    }

    pub fn rx(&self) -> &LinkRx {
        &self.rx
    }
}

/// A posted write that landed in some node's DRAM through the event
/// engine (the event-side analogue of `DeliveredWrite`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitRec {
    /// Global node index the write committed on.
    pub node: usize,
    /// Node-local DRAM offset.
    pub offset: u64,
    /// When the write became visible to polls.
    pub visible: SimTime,
    /// Payload bytes committed.
    pub bytes: u64,
}

/// One synthetic traffic source: a stream of 64 B posted writes from
/// `src` into a dedicated window of `dst`'s DRAM, injected as fast as
/// credits allow.
#[derive(Debug)]
pub struct Flow {
    /// Global source node index.
    pub src: usize,
    /// Global destination node index.
    pub dst: usize,
    /// First-hop link out of `src` (from the northbridge's own routing).
    port: LinkId,
    /// Node-local offset of the landing window in `dst`'s DRAM.
    win_off: u64,
    /// Window size in bytes; packet addresses wrap within it.
    window: u64,
    /// Global base address of the window.
    base: u64,
    /// Global address of the next packet.
    next: u64,
    /// Packets still to inject.
    remaining: u64,
    /// Packets enqueued so far.
    pub injected: u64,
}

/// A monitor callback captured on a shard during a run, replayed to the
/// platform's `FabricMonitor` in merged key order after the run so
/// monitors observe one deterministic global packet order regardless of
/// thread count.
#[derive(Debug)]
struct MonRec {
    key: EventKey,
    src: (usize, LinkId),
    dst: (usize, LinkId),
    coherent: bool,
    arrival: SimTime,
    packet: Packet,
}

/// Everything one supernode's slice of the fabric owns: its ports, its
/// flows, its receive-bridge drain clocks and its event queue. Shards
/// share nothing; cross-shard traffic moves only through [`Inbox`]es at
/// epoch boundaries.
#[derive(Debug)]
struct Shard {
    /// Shard index == supernode index; also the `src` stamp of every
    /// event this shard schedules.
    id: u32,
    /// First global node index of this supernode.
    base: usize,
    /// Ports indexed by node-local index (`global - base`).
    ports: Vec<[Option<PortState>; LINKS_PER_NODE]>,
    /// Per-node receive-bridge serialisation clock for buffer drains.
    drain_free: Vec<SimTime>,
    /// Flows sourced at this shard's nodes.
    flows: Vec<Flow>,
    queue: EventQueue<FabricEvent>,
    /// Monotonic scheduling counter — the `seq` of the next event key,
    /// shared by local scheduling and cross-shard sends so keys are
    /// globally unique.
    seq: u64,
    /// Shard clock (last event handled).
    now: SimTime,
    /// Events handled since the counter was last merged.
    events: u64,
    /// Commits of this run, merged into the engine log in shard order.
    commits: Vec<CommitRec>,
    /// Scratch for link deliveries pumped by one event.
    dels: Vec<Delivery>,
    /// Monitor records of this run (empty unless a monitor is mounted).
    monlog: Vec<MonRec>,
    /// Double-buffer for mailbox drains; capacity ping-pongs with the
    /// mailbox Vecs so the steady state allocates nothing.
    inscratch: Vec<(EventKey, FabricEvent)>,
    /// Ring-mailbox staging, indexed by destination shard: cross-shard
    /// sends accumulate here during an epoch and publish in one batch at
    /// the barrier. Only `out_peers` entries are ever non-empty.
    outbox: Vec<Vec<(EventKey, FabricEvent)>>,
    /// Destination shards this shard has cut wires *to*, ascending.
    out_peers: Vec<u32>,
    /// Source shards with cut wires *into* this shard, ascending — the
    /// drain order (order is cosmetic: queue insertion is key-ordered).
    in_peers: Vec<u32>,
    /// Per-stage attribution of this run (profiled runs only).
    profile: StageProfile,
}

/// A shard's per-epoch mailbox: events other shards scheduled into it,
/// applied at the next epoch barrier. The mutex is uncontended in the
/// inline path and epoch-bounded in the threaded path; push order is
/// irrelevant because delivery order is decided by the event keys.
#[derive(Debug)]
struct Inbox(Mutex<Vec<(EventKey, FabricEvent)>>);

/// The cross-shard transport, in both flavours. The ring fabric is the
/// default: `rings[src][dst]` exists iff some wire crosses from shard
/// `src` to shard `dst`, and carries at most one batch per epoch
/// (published before the epoch barrier, taken after it, with the barrier
/// providing the happens-before edge). The mutex mailboxes are the
/// reference implementation the determinism suite diffs against; they
/// are always allocated (one lock per shard is negligible) so a single
/// engine can be rebuilt onto either path.
/// One epoch batch in flight from one shard to another.
type EventRing = BatchRing<(EventKey, FabricEvent)>;

#[derive(Debug)]
struct Mailboxes {
    kind: MailboxKind,
    inboxes: Vec<Inbox>,
    rings: Vec<Vec<Option<EventRing>>>,
}

/// One shard coupled to its slice of platform nodes for the duration of
/// a run — the unit of work a PDES worker thread owns.
struct ShardRun<'a> {
    shard: &'a mut Shard,
    /// This supernode's nodes, indexed node-locally.
    nodes: &'a mut [Node],
    /// Per-node flat dispatch tables (node-local indexing, parallel to
    /// `nodes`), snapshotted at engine build.
    flat: &'a [FlatTable],
    mail: &'a Mailboxes,
    /// Global node index → owning shard id — `node / procs` precomputed,
    /// so the per-delivery routing in `send_arrive` never divides.
    shard_of: &'a [u32],
    drain: Duration,
    /// Record monitor callbacks for post-run replay.
    record: bool,
    /// Use the flat fast lane for 64 B posted-write arrivals. Forced off
    /// while recording so monitors always observe the general path.
    flat_lane: bool,
    /// Sequential-executive mode: cross-shard sends always go to the
    /// staging buffers (the executive moves them straight into the peer
    /// queue after each batch), regardless of the mailbox kind.
    direct: bool,
    /// Injected nanosecond clock for stage attribution, `None` on
    /// unprofiled (hot) runs.
    clock: Option<fn() -> u64>,
}

impl ShardRun<'_> {
    /// Stamp and schedule a shard-local event.
    fn schedule(&mut self, at: SimTime, ev: FabricEvent) {
        let key = EventKey {
            at,
            src: self.shard.id,
            seq: self.shard.seq,
        };
        self.shard.seq += 1;
        self.shard.queue.schedule_keyed(key, ev);
    }

    /// Serialise a buffer drain through `node`'s receive bridge.
    fn schedule_drain(
        &mut self,
        now: SimTime,
        node: usize,
        link: LinkId,
        vc: VirtualChannel,
        has_data: bool,
    ) {
        let ln = node - self.shard.base;
        let start = now.max(self.shard.drain_free[ln]);
        self.shard.drain_free[ln] = start + self.drain;
        self.schedule(
            start + self.drain,
            FabricEvent::Drained {
                node,
                link,
                vc,
                has_data,
            },
        );
    }

    /// Route an `Arrive` to whichever shard owns the receiving node:
    /// locally into our own queue, or toward the peer shard (applied at
    /// the next epoch barrier — sound because the arrival is at least
    /// one lookahead past the current horizon's base). On the ring path
    /// a cross-shard send is a plain push onto this shard's private
    /// staging buffer — no lock, no atomic; the whole buffer publishes
    /// once at the epoch barrier (`publish_outboxes`).
    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]
    fn send_arrive(&mut self, at: SimTime, node: usize, link: LinkId, packet: Packet) {
        let dst = self.shard_of[node] as usize;
        if dst == self.shard.id as usize {
            self.schedule(at, FabricEvent::Arrive { node, link, packet });
            return;
        }
        let key = EventKey {
            at,
            src: self.shard.id,
            seq: self.shard.seq,
        };
        self.shard.seq += 1;
        let ev = FabricEvent::Arrive { node, link, packet };
        if self.direct {
            // Sequential executive: the driver moves the staging buffer
            // straight into the peer queue after this batch.
            self.shard.outbox[dst].push((key, ev));
            return;
        }
        match self.mail.kind {
            MailboxKind::Ring => self.shard.outbox[dst].push((key, ev)),
            // A poisoned inbox means a peer worker panicked; its mail is
            // still intact, and the run is aborting anyway — keep going
            // so this worker reaches the barrier instead of double-
            // panicking the process.
            MailboxKind::Mutex => self.mail.inboxes[dst]
                .0
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push((key, ev)),
        }
    }

    /// Publish every non-empty staging buffer into its pair ring — once
    /// per epoch, before the B0 barrier (run_worker) or the end of the
    /// epoch phase. The epoch protocol guarantees at most
    /// one batch in flight per pair, so a full ring is a protocol bug.
    // tcc_transfer_ok: published batches stay in flight in the pair
    // rings until the receiver shard's drain_mail takes them next epoch.
    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]
    #[cfg_attr(lint, tcc_linear(batch), tcc_transfer_ok)]
    fn publish_outboxes(&mut self) {
        if self.mail.kind != MailboxKind::Ring {
            return;
        }
        let src = self.shard.id as usize;
        for i in 0..self.shard.out_peers.len() {
            let dst = self.shard.out_peers[i] as usize;
            let Some(ring) = self.mail.rings[src][dst].as_ref() else {
                protocol_violation!("shard {src} -> {dst}: out_peer entry without a ring");
            };
            assert!(
                ring.publish(&mut self.shard.outbox[dst]),
                "shard {src} -> {dst}: batch ring full (epoch protocol violated)"
            );
        }
    }

    /// Apply every event other shards mailed us since the last barrier:
    /// take each in-peer's published batch (ring path) or swap out the
    /// shared inbox (mutex path). Both paths recycle the shard's scratch
    /// buffer, so the steady state moves events without allocating.
    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]
    #[cfg_attr(lint, tcc_linear(batch))]
    fn drain_mail(&mut self) {
        let mut scratch = std::mem::take(&mut self.shard.inscratch);
        match self.mail.kind {
            MailboxKind::Ring => {
                let me = self.shard.id as usize;
                for i in 0..self.shard.in_peers.len() {
                    let src = self.shard.in_peers[i] as usize;
                    let Some(ring) = self.mail.rings[src][me].as_ref() else {
                        protocol_violation!("shard {src} -> {me}: in_peer entry without a ring");
                    };
                    while ring.take(&mut scratch) {
                        for (key, ev) in scratch.drain(..) {
                            self.shard.queue.schedule_keyed(key, ev);
                        }
                    }
                }
            }
            MailboxKind::Mutex => {
                {
                    // See send_arrive: survive a peer's poison so the
                    // abort path reaches the barrier.
                    let mut inbox = self.mail.inboxes[self.shard.id as usize]
                        .0
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    std::mem::swap(&mut *inbox, &mut scratch);
                }
                for (key, ev) in scratch.drain(..) {
                    self.shard.queue.schedule_keyed(key, ev);
                }
            }
        }
        self.shard.inscratch = scratch;
    }

    /// [`drain_mail`](Self::drain_mail) + [`publish_outboxes`]
    /// (Self::publish_outboxes), attributed to the mailbox stage when a
    /// profile clock is injected.
    fn drain_mail_timed(&mut self) {
        match self.clock {
            Some(clk) => {
                let t0 = clk();
                self.drain_mail();
                self.shard.profile.mailbox_ns += clk().saturating_sub(t0);
            }
            None => self.drain_mail(),
        }
    }

    fn publish_outboxes_timed(&mut self) {
        match self.clock {
            Some(clk) => {
                let t0 = clk();
                self.publish_outboxes();
                self.shard.profile.mailbox_ns += clk().saturating_sub(t0);
            }
            None => self.publish_outboxes(),
        }
    }

    /// Handle one popped event.
    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]
    fn dispatch(&mut self, key: EventKey, ev: FabricEvent) {
        self.shard.now = key.at;
        match ev {
            FabricEvent::Pump { flow } => self.pump_flow(key.at, flow),
            FabricEvent::Inject { node, link, packet } => {
                self.on_inject(key.at, node, link, packet);
            }
            FabricEvent::Arrive { node, link, packet } => {
                self.on_arrive(key, node, link, packet);
            }
            FabricEvent::Drained {
                node,
                link,
                vc,
                has_data,
            } => self.on_drained(key.at, node, link, vc, has_data),
        }
    }

    /// Handle every queued event strictly below `horizon`, in key order.
    /// Returns the number handled. Dispatches to the instrumented twin
    /// when a profile clock is injected; the hot path has no
    /// instrumentation at all.
    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]
    fn run_epoch(&mut self, horizon: SimTime) -> u64 {
        self.shard.profile.epochs += 1;
        if let Some(clk) = self.clock {
            return self.run_epoch_profiled(horizon, clk);
        }
        let mut handled = 0u64;
        while let Some((key, ev)) = self.shard.queue.pop_keyed_before(horizon) {
            handled += 1;
            self.dispatch(key, ev);
        }
        self.shard.events += handled;
        handled
    }

    /// The profiled twin of [`run_epoch`](Self::run_epoch): one event in
    /// [`PROFILE_SAMPLE_EVERY`] gets clock reads around the pop and the
    /// handler (arrivals sub-attribute into credit/route/deliver); the
    /// other N-1 run the exact uninstrumented path. Per-event figures
    /// divide queue/exec by `sampled_events`, so attribution now costs
    /// ~2/N clock reads per event instead of 2 — the measured run stays
    /// close to the headline run it is meant to explain.
    fn run_epoch_profiled(&mut self, horizon: SimTime, clk: fn() -> u64) -> u64 {
        let mut handled = 0u64;
        loop {
            // events + handled is monotone across the whole run, so the
            // sample pattern is deterministic and phase-independent.
            if !(self.shard.events + handled).is_multiple_of(PROFILE_SAMPLE_EVERY) {
                let Some((key, ev)) = self.shard.queue.pop_keyed_before(horizon) else {
                    break;
                };
                handled += 1;
                self.dispatch(key, ev);
                continue;
            }
            let t0 = clk();
            let popped = self.shard.queue.pop_keyed_before(horizon);
            let t1 = clk();
            self.shard.profile.queue_ns += t1.saturating_sub(t0);
            let Some((key, ev)) = popped else { break };
            handled += 1;
            self.shard.profile.sampled_events += 1;
            self.dispatch_profiled(key, ev);
            self.shard.profile.exec_ns += clk().saturating_sub(t1);
        }
        self.shard.profile.profiled_events += handled;
        self.shard.events += handled;
        handled
    }

    /// [`dispatch`](Self::dispatch) for a sampled event: arrivals take
    /// the instrumented handler so exec time sub-attributes into
    /// credit/route/deliver; the other event kinds have no sub-stages.
    fn dispatch_profiled(&mut self, key: EventKey, ev: FabricEvent) {
        self.shard.now = key.at;
        match ev {
            FabricEvent::Pump { flow } => self.pump_flow(key.at, flow),
            FabricEvent::Inject { node, link, packet } => {
                self.on_inject(key.at, node, link, packet);
            }
            FabricEvent::Arrive { node, link, packet } => {
                self.on_arrive_profiled(key, node, link, packet);
            }
            FabricEvent::Drained {
                node,
                link,
                vc,
                has_data,
            } => self.on_drained(key.at, node, link, vc, has_data),
        }
    }

    /// Keep flow `i`'s transmit queue primed and pump its port. The flow
    /// reschedules itself only while the wire (not credits) paces it: an
    /// empty queue after pumping means everything went out, so poll again
    /// when the wire frees; a non-empty queue means credits blocked and
    /// the arrival of a credit NOP will re-pump (no busy-spin).
    fn pump_flow(&mut self, now: SimTime, i: usize) {
        let base = self.shard.base;
        let Shard { flows, ports, .. } = &mut *self.shard;
        let f = &mut flows[i];
        let Some(port) = ports[f.src - base][f.port.0 as usize].as_mut() else {
            protocol_violation!("flow {i}: first hop n{} l{} is not wired", f.src, f.port.0);
        };
        while f.remaining > 0 && port.tx.queued(VirtualChannel::Posted) < 4 {
            port.tx
                .enqueue(Packet::posted_write(f.next, Bytes::from_static(&ZERO64)));
            port.provenance.push_back(None);
            f.next = f.base + (f.next - f.base + 64) % f.window;
            f.remaining -= 1;
            f.injected += 1;
        }
        let (src, link, remaining) = (f.src, f.port, f.remaining);
        self.pump_port(now, src, link);
        let Some(port) = self.shard.ports[src - base][link.0 as usize].as_ref() else {
            protocol_violation!("flow {i}: first hop n{src} l{} vanished", link.0);
        };
        if remaining > 0 && port.tx.queued(VirtualChannel::Posted) == 0 {
            let next = port.tx.next_free().max(now + Duration(1_000));
            self.schedule(next, FabricEvent::Pump { flow: i });
        }
    }

    /// Transmit whatever credits admit at (node, link), scheduling an
    /// arrival per delivery. A delivery whose provenance names an input
    /// link releases that input port's buffer (hold-until-forwarded),
    /// serialised through the node's receive bridge.
    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]
    fn pump_port(&mut self, now: SimTime, node: usize, link: LinkId) {
        let ln = node - self.shard.base;
        let (peer, peer_link) = {
            let Some(port) = self.shard.ports[ln][link.0 as usize].as_mut() else {
                protocol_violation!("pump on inactive port n{node} l{}", link.0);
            };
            // Idle transmitter: nothing to send, nothing to stall-count,
            // no provenance to release. Redundant pumps (a credit NOP on
            // a caught-up port, a flow wake that enqueued nothing) are
            // common enough that the early-out pays.
            if port.tx.is_idle() {
                return;
            }
            (port.peer, port.peer_link)
        };
        let mut out = std::mem::take(&mut self.shard.dels);
        out.clear();
        {
            let Some(port) = self.shard.ports[ln][link.0 as usize].as_mut() else {
                protocol_violation!("pump on inactive port n{node} l{}", link.0);
            };
            port.tx.pump_into(now, &mut out);
        }
        for d in out.drain(..) {
            let Some(Some(from)) = self.shard.ports[ln][link.0 as usize]
                .as_mut()
                .map(|p| p.provenance.pop_front())
            else {
                protocol_violation!(
                    "n{node} l{}: provenance out of step with deliveries",
                    link.0
                );
            };
            if let Some(in_link) = from {
                self.schedule_drain(now, node, in_link, d.packet.vc(), !d.packet.data.is_empty());
            }
            self.send_arrive(d.arrival, peer, peer_link, d.packet);
        }
        self.shard.dels = out;
    }

    /// A node's own store path handed a packet to the fabric.
    fn on_inject(&mut self, now: SimTime, node: usize, link: LinkId, packet: Packet) {
        let ln = node - self.shard.base;
        let Some(port) = self.shard.ports[ln][link.0 as usize].as_mut() else {
            protocol_violation!("inject on inactive port n{node} l{}", link.0);
        };
        port.tx.enqueue(packet);
        port.provenance.push_back(None);
        self.pump_port(now, node, link);
    }

    /// Clock read for the instrumented twin; compiles to nothing on the
    /// hot (`PROF = false`) instantiation.
    #[inline(always)]
    fn tick<const PROF: bool>(&self) -> u64 {
        if PROF {
            self.clock.map_or(0, |c| c())
        } else {
            0
        }
    }

    /// A packet lands at (node, link): record it for the monitors, occupy
    /// a buffer, and route it — commit locally, forward out another link,
    /// or (for a NOP) release the credits it carries and wake blocked
    /// transmitters.
    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]
    fn on_arrive(&mut self, key: EventKey, node: usize, link: LinkId, packet: Packet) {
        self.on_arrive_impl::<false>(key, node, link, packet);
    }

    /// The instrumented twin of [`on_arrive`](Self::on_arrive): the same
    /// code path (one monomorphization apart) with exec sub-stage probes
    /// filling `route_ns`/`credit_ns`/`deliver_ns`.
    fn on_arrive_profiled(&mut self, key: EventKey, node: usize, link: LinkId, packet: Packet) {
        self.on_arrive_impl::<true>(key, node, link, packet);
    }

    // tcc_transfer_ok: an accepted packet's buffer stays occupied until
    // the Drain event scheduled here fires and on_drained releases it.
    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]
    #[cfg_attr(lint, tcc_linear(credit, rxbuf), tcc_transfer_ok)]
    #[inline(always)]
    fn on_arrive_impl<const PROF: bool>(
        &mut self,
        key: EventKey,
        node: usize,
        link: LinkId,
        packet: Packet,
    ) {
        let now = key.at;
        let ln = node - self.shard.base;
        let (peer, peer_link, coherent) = {
            let Some(port) = self.shard.ports[ln][link.0 as usize].as_ref() else {
                protocol_violation!("arrival on inactive port n{node} l{}", link.0);
            };
            (port.peer, port.peer_link, port.coherent)
        };
        if self.record {
            self.shard.monlog.push(MonRec {
                key,
                src: (peer, peer_link),
                dst: (node, link),
                coherent,
                arrival: now,
                packet: packet.clone(),
            });
        }
        let t0 = self.tick::<PROF>();
        // ── Flat fast lane: the fixed-shape 64 B posted write whose
        // disposition was precomputed per address range at engine build.
        // Classify, one table scan, straight-line accept → deliver — no
        // command dispatch, no northbridge walk. Bit-identical effects
        // to the general path below (the determinism suite forces the
        // lane off and diffs).
        if self.flat_lane {
            if let Some(addr) = packet.flat_addr() {
                if let Some(plan) = self.flat[ln].lookup(addr) {
                    let t_route = self.tick::<PROF>();
                    let Some(port) = self.shard.ports[ln][link.0 as usize].as_mut() else {
                        protocol_violation!("arrival port n{node} l{} vanished", link.0);
                    };
                    if let Err(e) = port.rx.accept_flat() {
                        protocol_violation!(
                            "n{node} l{}: sender violated flow control: {e}",
                            link.0
                        );
                    }
                    let t_credit = self.tick::<PROF>();
                    let outcome =
                        self.nodes[ln].deliver_flat(now, plan, addr, &packet.data, !coherent);
                    let t_deliver = self.tick::<PROF>();
                    match outcome {
                        FlatOutcome::Committed { offset, visible } => {
                            self.schedule_drain(now, node, link, VirtualChannel::Posted, true);
                            self.shard.commits.push(CommitRec {
                                node,
                                offset,
                                visible,
                                bytes: 64,
                            });
                        }
                        FlatOutcome::Forward { link: out, at } => {
                            // Same hold-until-forwarded policy as the
                            // general path below.
                            let Some(out_port) = self.shard.ports[ln][out.0 as usize].as_mut()
                            else {
                                protocol_violation!("forward out inactive port n{node} l{}", out.0);
                            };
                            let hold = !out_port.coherent;
                            out_port.tx.enqueue(packet);
                            out_port
                                .provenance
                                .push_back(if hold { Some(link) } else { None });
                            if !hold {
                                self.schedule_drain(now, node, link, VirtualChannel::Posted, true);
                            }
                            self.pump_port(at, node, out);
                        }
                    }
                    if PROF {
                        let end = self.tick::<PROF>();
                        let p = &mut self.shard.profile;
                        p.route_ns +=
                            t_route.saturating_sub(t0) + t_deliver.saturating_sub(t_credit);
                        p.credit_ns += t_credit.saturating_sub(t_route);
                        p.deliver_ns += end.saturating_sub(t_deliver);
                    }
                    return;
                }
            }
        }
        let accepted = {
            let Some(port) = self.shard.ports[ln][link.0 as usize].as_mut() else {
                protocol_violation!("arrival port n{node} l{} vanished", link.0);
            };
            port.rx.accept(&packet).unwrap_or_else(|e| {
                protocol_violation!("n{node} l{}: sender violated flow control: {e}", link.0)
            })
        };
        let t_credit = self.tick::<PROF>();
        if PROF {
            self.shard.profile.credit_ns += t_credit.saturating_sub(t0);
        }
        match accepted {
            Some(ret) => {
                // A credit NOP: freed credits may unblock the queue and
                // any flow sourced at this port, immediately.
                let Some(port) = self.shard.ports[ln][link.0 as usize].as_mut() else {
                    protocol_violation!("arrival port n{node} l{} vanished", link.0);
                };
                if let Err(e) = port.tx.credit_return(ret) {
                    protocol_violation!("n{node} l{}: bad credit return: {e}", link.0);
                }
                self.pump_port(now, node, link);
                let n = match self.shard.ports[ln][link.0 as usize].as_ref() {
                    Some(p) => p.flows.len(),
                    None => 0,
                };
                for k in 0..n {
                    let Some(port) = self.shard.ports[ln][link.0 as usize].as_ref() else {
                        break;
                    };
                    // Once the transmit queue is full again the freed
                    // credits are spoken for: no later flow can enqueue
                    // (the queue caps at 4) or transmit (pump_flow's own
                    // pump already drained whatever credits admitted),
                    // so the remaining wakes would be pure no-ops. On
                    // congested ports this turns an O(flows) fan-out per
                    // credit NOP into O(queue slots).
                    if port.tx.queued(VirtualChannel::Posted) >= 4 {
                        break;
                    }
                    let fi = port.flows[k];
                    // An exhausted flow has nothing left to enqueue and
                    // never reschedules, so its wake is a no-op: the
                    // arm's own pump above already attempted whatever
                    // the freed credits admit. Skipping it keeps the
                    // drained tail of a port's flow list (every finished
                    // flow stays registered) from turning each credit
                    // NOP into an O(flows) scan of dead flows.
                    if self.shard.flows[fi].remaining == 0 {
                        continue;
                    }
                    self.pump_flow(now, fi);
                }
                if PROF {
                    let end = self.tick::<PROF>();
                    self.shard.profile.credit_ns += end.saturating_sub(t_credit);
                }
            }
            None => {
                let vc = packet.vc();
                let has_data = !packet.data.is_empty();
                let bytes = packet.data.len() as u64;
                let outcome = self.nodes[ln]
                    .deliver_routed(now, link, packet, coherent)
                    .unwrap_or_else(|e| {
                        protocol_violation!("delivery failed at node {node}: {e:?}")
                    });
                let t_route = self.tick::<PROF>();
                if PROF {
                    self.shard.profile.route_ns += t_route.saturating_sub(t_credit);
                }
                match outcome {
                    DeliverOutcome::Committed { offset, visible } => {
                        self.schedule_drain(now, node, link, vc, has_data);
                        self.shard.commits.push(CommitRec {
                            node,
                            offset,
                            visible,
                            bytes,
                        });
                    }
                    DeliverOutcome::Forward {
                        link: out,
                        packet,
                        at,
                    } => {
                        // Across a TCC hop, hold this input buffer until
                        // the packet leaves on the output link (pump_port
                        // schedules the drain). Into the *coherent*
                        // crossbar inside the supernode, release it at
                        // handoff instead: cHT has its own per-port
                        // buffering, and holding across the shared
                        // internal links would couple the X- and Y-phase
                        // dependency graphs into credit cycles (a real
                        // deadlock on meshes of 4x4 and up — the 2x2 the
                        // model checker covers is too small to close the
                        // loop).
                        let Some(out_port) = self.shard.ports[ln][out.0 as usize].as_mut() else {
                            protocol_violation!("forward out inactive port n{node} l{}", out.0);
                        };
                        let hold = !out_port.coherent;
                        out_port.tx.enqueue(packet);
                        out_port
                            .provenance
                            .push_back(if hold { Some(link) } else { None });
                        if !hold {
                            self.schedule_drain(now, node, link, vc, has_data);
                        }
                        self.pump_port(at, node, out);
                    }
                    DeliverOutcome::Filtered => {
                        self.schedule_drain(now, node, link, vc, has_data);
                    }
                }
                if PROF {
                    let end = self.tick::<PROF>();
                    self.shard.profile.deliver_ns += end.saturating_sub(t_route);
                }
            }
        }
    }

    /// Buffers freed: harvest the pending credits into NOPs on the
    /// reverse direction (NOPs bypass credit checks, so returns can never
    /// deadlock).
    #[cfg_attr(lint, tcc_linear(rxbuf))]
    fn on_drained(
        &mut self,
        now: SimTime,
        node: usize,
        link: LinkId,
        vc: VirtualChannel,
        has_data: bool,
    ) {
        let ln = node - self.shard.base;
        {
            let Some(port) = self.shard.ports[ln][link.0 as usize].as_mut() else {
                protocol_violation!("drain on inactive port n{node} l{}", link.0);
            };
            if let Err(e) = port.rx.drain_parts(vc, has_data) {
                protocol_violation!("n{node} l{}: drained a buffer never accepted: {e}", link.0);
            }
        }
        loop {
            let (d, peer, peer_link) = {
                let Some(port) = self.shard.ports[ln][link.0 as usize].as_mut() else {
                    break;
                };
                if !port.rx.has_pending_credits() {
                    break;
                }
                let ret = port.rx.harvest();
                (port.tx.send_nop(now, ret), port.peer, port.peer_link)
            };
            self.send_arrive(d.arrival, peer, peer_link, d.packet);
        }
    }
}

/// Epoch coordination shared by the PDES workers. Three barrier phases
/// per epoch: (B1) every worker has drained its mailboxes and published
/// its local minimum; (B2) worker 0 has combined them into the next
/// horizon; (B0) every worker has finished the epoch, so all cross-shard
/// sends for it are in the mailboxes.
struct Coord {
    barrier: Barrier,
    /// Per-worker minimum next-event time (picoseconds), `u64::MAX` when
    /// the worker's shards are all idle.
    mins: Vec<AtomicU64>,
    /// The published horizon, or a sentinel ([`DONE`]/[`ABORT`]).
    horizon: AtomicU64,
    /// Events handled so far this run, for the budget check.
    events: AtomicU64,
    lookahead: u64,
}

/// Horizon sentinel: every queue and mailbox is empty — quiescent.
const DONE: u64 = u64::MAX;
/// Horizon sentinel: the event budget blew — abort cleanly (a panic in a
/// worker would deadlock the others on the barrier).
const ABORT: u64 = u64::MAX - 1;

/// One PDES worker: loops epochs over its contiguous group of shards
/// until the horizon goes to a sentinel. Returns `true` on quiescence.
#[cfg_attr(lint, tcc_no_panic)]
fn run_worker(runs: &mut [ShardRun<'_>], w: usize, coord: &Coord) -> bool {
    loop {
        let mut min = u64::MAX;
        for run in runs.iter_mut() {
            run.drain_mail_timed();
            if let Some(t) = run.shard.queue.peek_time() {
                min = min.min(t.picos());
            }
        }
        coord.mins[w].store(min, Ordering::Release);
        coord.barrier.wait(); // B1: all minima published.
        if w == 0 {
            let gmin = coord
                .mins
                .iter()
                .map(|m| m.load(Ordering::Acquire))
                .fold(u64::MAX, u64::min);
            let total = coord.events.load(Ordering::Relaxed);
            let horizon = if gmin == u64::MAX {
                DONE
            } else if total > EVENT_BUDGET {
                ABORT
            } else {
                gmin.saturating_add(coord.lookahead).min(ABORT - 1)
            };
            coord.horizon.store(horizon, Ordering::Release);
        }
        coord.barrier.wait(); // B2: horizon visible to everyone.
        let horizon = coord.horizon.load(Ordering::Acquire);
        if horizon == DONE {
            return true;
        }
        if horizon == ABORT {
            return false;
        }
        let mut delta = 0u64;
        for run in runs.iter_mut() {
            // A shard whose minimum sits at or past the horizon pops
            // nothing (pops are strictly below), and having dispatched
            // nothing it has staged no sends, so publishing is a no-op
            // too: skip the visit outright. The queue is untouched since
            // the minima pass (only this worker mutates it), so the
            // re-peek sees the same value the horizon was computed from.
            if run
                .shard
                .queue
                .peek_time()
                .is_none_or(|t| t.picos() >= horizon)
            {
                continue;
            }
            delta += run.run_epoch(SimTime(horizon));
            run.publish_outboxes_timed();
        }
        coord.events.fetch_add(delta, Ordering::Relaxed);
        coord.barrier.wait(); // B0: epoch done, all sends mailed/published.
    }
}

/// Disjoint mutable borrows of two shard runs (`a != b`).
fn pair_mut<'r, 'a>(
    runs: &'r mut [ShardRun<'a>],
    a: usize,
    b: usize,
) -> (&'r mut ShardRun<'a>, &'r mut ShardRun<'a>) {
    if a < b {
        let (l, r) = runs.split_at_mut(b);
        (&mut l[a], &mut r[0])
    } else {
        let (l, r) = runs.split_at_mut(a);
        (&mut r[0], &mut l[b])
    }
}

/// The sequential executive: a merged single-driver DES, bit-identical
/// to the epoch algorithm but with none of its scaffolding. Instead of
/// sweeping every shard each round, it keeps the per-shard queue minima
/// in a flat array, picks the globally-earliest shard, and batches that
/// one shard up to `second_min + lookahead` — the epoch-horizon
/// argument with the runner-up standing in for the global minimum:
/// nothing any other shard still has to process can mail the winner an
/// event below `second_min + lookahead`, so everything strictly below
/// that is safe to run now. Results are bit-identical to the epoch
/// executive because both process each shard's events in key order and
/// cross-shard influence is impossible below the horizon; the
/// interleaving *across* shards differs, but no event can observe it.
///
/// Cross-shard sends skip the mailbox machinery entirely: the runs are
/// built in `direct` mode, so sends stage in the per-destination
/// buffers and the executive moves each batch straight into the peer's
/// queue — no rings, no locks, no publish/take handshake.
#[cfg_attr(lint, tcc_no_panic)]
fn run_sequential(runs: &mut [ShardRun<'_>], lookahead: Duration) -> bool {
    let n = runs.len();
    let mut mins = vec![u64::MAX; n];
    for (i, run) in runs.iter_mut().enumerate() {
        // Boot-time mail only: with `direct` sends nothing touches a
        // mailbox after this point.
        run.drain_mail_timed();
        mins[i] = run.shard.queue.peek_time().map_or(u64::MAX, |t| t.picos());
    }
    let la = lookahead.picos();
    let mut total = 0u64;
    loop {
        // One pass for the two smallest minima: the winner runs, the
        // runner-up bounds how far it may run.
        let (mut best, mut bi) = (u64::MAX, 0usize);
        let mut second = u64::MAX;
        for (i, &m) in mins.iter().enumerate() {
            if m < best {
                second = best;
                best = m;
                bi = i;
            } else if m < second {
                second = m;
            }
        }
        if best == u64::MAX {
            return true;
        }
        if total > EVENT_BUDGET {
            return false;
        }
        // When the winner is the only shard with work, fall back to the
        // epoch horizon so the event budget keeps its old granularity.
        let base = if second == u64::MAX { best } else { second };
        total += runs[bi].run_epoch(SimTime(base.saturating_add(la)));
        // Hand staged cross-shard sends straight to their destination
        // queues, then refresh the touched minima (peeks are O(1)).
        let clk = runs[bi].clock;
        let t0 = clk.map_or(0, |c| c());
        for k in 0..runs[bi].shard.out_peers.len() {
            let dst = runs[bi].shard.out_peers[k] as usize;
            if runs[bi].shard.outbox[dst].is_empty() {
                continue;
            }
            let (src, peer) = pair_mut(runs, bi, dst);
            for (key, ev) in src.shard.outbox[dst].drain(..) {
                peer.shard.queue.schedule_keyed(key, ev);
            }
            mins[dst] = peer.shard.queue.peek_time().map_or(u64::MAX, |t| t.picos());
        }
        if let Some(c) = clk {
            runs[bi].shard.profile.mailbox_ns += c().saturating_sub(t0);
        }
        mins[bi] = runs[bi]
            .shard
            .queue
            .peek_time()
            .map_or(u64::MAX, |t| t.picos());
    }
}

/// Split the shard runs into `threads` contiguous groups and drive them
/// with scoped workers (worker 0 runs on the caller's thread). Returns
/// `true` on quiescence.
fn run_threaded(runs: &mut [ShardRun<'_>], lookahead: Duration, threads: usize) -> bool {
    let coord = Coord {
        barrier: Barrier::new(threads),
        mins: (0..threads).map(|_| AtomicU64::new(u64::MAX)).collect(),
        horizon: AtomicU64::new(0),
        events: AtomicU64::new(0),
        lookahead: lookahead.picos(),
    };
    let n = runs.len();
    let mut groups: Vec<&mut [ShardRun<'_>]> = Vec::with_capacity(threads);
    let mut rest = runs;
    for w in 0..threads {
        let take = n / threads + usize::from(w < n % threads);
        let (head, tail) = rest.split_at_mut(take);
        groups.push(head);
        rest = tail;
    }
    std::thread::scope(|s| {
        let mut iter = groups.into_iter().enumerate();
        let (_, first) = iter.next().expect("at least one group");
        for (w, group) in iter {
            let coord = &coord;
            s.spawn(move || run_worker(group, w, coord));
        }
        run_worker(first, 0, &coord);
    });
    coord.horizon.load(Ordering::Acquire) == DONE
}

/// Replay recorded monitor callbacks in merged global key order. Each
/// shard's log is already key-sorted (shards process events in key
/// order), so a k-way min-merge walks them once.
fn replay_monitors(platform: &mut Platform, shards: &mut [Shard]) {
    let mut idx = vec![0usize; shards.len()];
    loop {
        let mut best: Option<(EventKey, usize)> = None;
        for (s, shard) in shards.iter().enumerate() {
            if let Some(rec) = shard.monlog.get(idx[s]) {
                if best.is_none_or(|(k, _)| rec.key < k) {
                    best = Some((rec.key, s));
                }
            }
        }
        let Some((_, s)) = best else { break };
        let rec = &shards[s].monlog[idx[s]];
        idx[s] += 1;
        platform.monitor_packet(&PacketEvent {
            src: rec.src,
            dst: rec.dst,
            coherent: rec.coherent,
            packet: &rec.packet,
            arrival: rec.arrival,
        });
    }
    for shard in shards {
        shard.monlog.clear();
    }
}

/// The event-driven fabric engine: one [`PortState`] per trained wire
/// direction, persistent across runs against a borrowed [`Platform`],
/// sharded by supernode for the conservative-PDES executive.
#[derive(Debug)]
pub struct EventEngine {
    shards: Vec<Shard>,
    mail: Mailboxes,
    /// Global flow index → (shard, shard-local flow index), in
    /// registration order.
    flow_dir: Vec<(u32, u32)>,
    /// Commits of all runs, concatenated in shard-index order per run.
    commits_log: Vec<CommitRec>,
    /// Next free landing-window offset per destination node.
    win_next: Vec<u64>,
    dram_per_node: u64,
    procs: usize,
    /// Conservative lookahead: minimum hop latency over cut links.
    lookahead: Duration,
    drain: Duration,
    threads: usize,
    backend: QueueBackend,
    /// Per-node flat dispatch tables, rebuilt at engine construction
    /// (i.e. once per train), indexed like `platform.nodes`.
    flat: Vec<FlatTable>,
    flat_lane: bool,
    /// Global node index → owning shard id.
    shard_of: Vec<u32>,
    profile_clock: Option<fn() -> u64>,
    /// Aggregated per-stage attribution across profiled runs.
    profile: StageProfile,
    now: SimTime,
    events: u64,
}

impl EventEngine {
    /// Build an engine over every trained wire of `platform`, with link
    /// configurations taken from the negotiated endpoint state (the same
    /// tables the chained engine serialises against).
    pub fn new(platform: &mut Platform, drain: Duration) -> Self {
        Self::with_options(platform, drain, EngineOptions::default())
    }

    /// [`EventEngine::new`] with explicit executive options.
    pub fn with_options(platform: &mut Platform, drain: Duration, options: EngineOptions) -> Self {
        let spec = platform.spec;
        let procs = spec.supernode.processors;
        let n = platform.nodes.len();
        let nshards = n / procs;
        let mut lookahead = Duration(u64::MAX);
        // Which (src, dst) shard pairs have a cut wire — exactly the
        // pairs that ever exchange cross-shard events (arrivals travel
        // the wire's direction; credit NOPs travel the reverse wire,
        // which is its own port and registers its own pair).
        let mut wired = vec![vec![false; nshards]; nshards];
        let mut shards = Vec::with_capacity(nshards);
        for (sid, wired_row) in wired.iter_mut().enumerate() {
            let base = sid * procs;
            let mut ports: Vec<[Option<PortState>; LINKS_PER_NODE]> =
                (0..procs).map(|_| std::array::from_fn(|_| None)).collect();
            for (ln, row) in ports.iter_mut().enumerate() {
                let node = base + ln;
                for (l, slot) in row.iter_mut().enumerate() {
                    let link = LinkId(l as u8);
                    if let Some((peer, peer_link, coherent)) = platform.route_hop(node, link) {
                        let config = platform
                            .active_config(node, link)
                            .expect("trained wire has an active config");
                        if peer / procs != sid {
                            lookahead = lookahead.min(config.hop_latency);
                            wired_row[peer / procs] = true;
                        }
                        let seed = 0x1000 | ((node as u64) << 4) | l as u64;
                        *slot = Some(PortState {
                            tx: LinkTx::new(config, seed),
                            rx: LinkRx::new(),
                            peer,
                            peer_link,
                            coherent,
                            provenance: VecDeque::new(),
                            flows: Vec::new(),
                        });
                    }
                }
            }
            shards.push(Shard {
                id: sid as u32,
                base,
                ports,
                drain_free: vec![SimTime::ZERO; procs],
                flows: Vec::new(),
                queue: EventQueue::with_backend(options.backend),
                seq: 0,
                now: SimTime::ZERO,
                events: 0,
                commits: Vec::new(),
                dels: Vec::new(),
                monlog: Vec::new(),
                inscratch: Vec::new(),
                outbox: (0..nshards).map(|_| Vec::new()).collect(),
                out_peers: Vec::new(),
                in_peers: Vec::new(),
                profile: StageProfile::default(),
            });
        }
        for src in 0..nshards {
            for dst in 0..nshards {
                if wired[src][dst] {
                    shards[src].out_peers.push(dst as u32);
                    shards[dst].in_peers.push(src as u32);
                }
            }
        }
        let rings = match options.mailbox {
            MailboxKind::Ring => (0..nshards)
                .map(|src| {
                    (0..nshards)
                        .map(|dst| wired[src][dst].then(BatchRing::new))
                        .collect()
                })
                .collect(),
            MailboxKind::Mutex => Vec::new(),
        };
        // A zero lookahead would make the horizon equal the minimum and
        // process nothing; one picosecond still admits the minimum event.
        let lookahead = Duration(lookahead.picos().max(1));
        EventEngine {
            shards,
            mail: Mailboxes {
                kind: options.mailbox,
                inboxes: (0..nshards)
                    .map(|_| Inbox(Mutex::new(Vec::new())))
                    .collect(),
                rings,
            },
            flow_dir: Vec::new(),
            commits_log: Vec::new(),
            win_next: vec![WIN_BASE; n],
            dram_per_node: spec.supernode.dram_per_node,
            procs,
            lookahead,
            drain,
            threads: options.threads.max(1),
            backend: options.backend,
            flat: platform.nodes.iter().map(|n| n.nb.flat_table()).collect(),
            flat_lane: options.flat_lane,
            shard_of: (0..n).map(|node| (node / procs) as u32).collect(),
            profile_clock: options.profile_clock,
            profile: StageProfile::default(),
            now: SimTime::ZERO,
            events: 0,
        }
    }

    /// The configured receiver drain latency.
    pub fn drain(&self) -> Duration {
        self.drain
    }

    /// The executive options this engine was built with.
    pub fn options(&self) -> EngineOptions {
        EngineOptions {
            threads: self.threads,
            backend: self.backend,
            mailbox: self.mail.kind,
            flat_lane: self.flat_lane,
            profile_clock: self.profile_clock,
        }
    }

    /// Per-stage wall-clock attribution accumulated over profiled runs
    /// (all zeros unless the engine was built with a
    /// [`profile_clock`](EngineOptions::profile_clock)).
    pub fn stage_profile(&self) -> StageProfile {
        self.profile
    }

    /// The conservative synchronization lookahead (minimum hop latency
    /// over links whose two ends live in different shards).
    pub fn lookahead(&self) -> Duration {
        self.lookahead
    }

    /// The engine clock (last event handled).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events handled across all runs.
    pub fn events_handled(&self) -> u64 {
        self.events
    }

    /// Every DRAM commit delivered so far: per run, shards' commits in
    /// processing order, concatenated in shard-index order.
    pub fn commits(&self) -> &[CommitRec] {
        &self.commits_log
    }

    /// The port at (node, link), if that wire end is trained.
    pub fn port(&self, node: usize, link: LinkId) -> Option<&PortState> {
        let shard = &self.shards[node / self.procs];
        shard.ports[node - shard.base][link.0 as usize].as_ref()
    }

    /// All active (node, link) port coordinates.
    pub fn port_ids(&self) -> Vec<(usize, LinkId)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for (ln, row) in shard.ports.iter().enumerate() {
                for (l, slot) in row.iter().enumerate() {
                    if slot.is_some() {
                        out.push((shard.base + ln, LinkId(l as u8)));
                    }
                }
            }
        }
        out
    }

    /// Total transmitter stalls for want of a credit, across all ports —
    /// nonzero exactly when flow control engaged.
    pub fn stalls_no_credit(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|s| s.ports.iter().flatten().flatten())
            .map(|p| p.tx.stats.stalls_no_credit)
            .sum()
    }

    /// Total credit NOPs sent across all ports.
    pub fn nops_sent(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|s| s.ports.iter().flatten().flatten())
            .map(|p| p.tx.stats.nops_sent)
            .sum()
    }

    /// Queue a packet leaving `node` on `link`, no earlier than `ready`
    /// (clamped to the engine clock — the store path's issue clock can
    /// lag a fabric that already ran ahead).
    pub fn inject_at(&mut self, node: usize, link: LinkId, packet: Packet, ready: SimTime) {
        let at = ready.max(self.now);
        let sid = node / self.procs;
        let shard = &mut self.shards[sid];
        let key = EventKey {
            at,
            src: sid as u32,
            seq: shard.seq,
        };
        shard.seq += 1;
        shard
            .queue
            .schedule_keyed(key, FabricEvent::Inject { node, link, packet });
    }

    /// Register a flow of `bytes` (rounded up to 64 B packets) from
    /// global node `src` into a dedicated window of `dst`'s DRAM, routed
    /// by `src`'s own northbridge. Returns the global flow index.
    pub fn add_flow(
        &mut self,
        platform: &mut Platform,
        src: usize,
        dst: usize,
        bytes: u64,
    ) -> usize {
        let spec = platform.spec;
        let gidx = self.flow_dir.len();
        let win_off = self.win_next[dst];
        assert!(
            win_off + WIN <= self.dram_per_node,
            "flow {gidx}: node {dst} is out of landing windows"
        );
        self.win_next[dst] = win_off + WIN;
        let (s, p) = (dst / self.procs, dst % self.procs);
        let base = spec.node_base(s, p) + win_off;
        let probe = Packet::posted_write(base, Bytes::from_static(&ZERO64));
        let port = match platform.nodes[src].nb.dispose(&probe, Source::Core) {
            Ok(Disposition::Forward { link }) => link,
            other => panic!("flow {src}->{dst} does not leave node {src}: {other:?}"),
        };
        let packets = bytes.div_ceil(64).max(1);
        let sid = src / self.procs;
        let shard = &mut self.shards[sid];
        let lidx = shard.flows.len();
        shard.flows.push(Flow {
            src,
            dst,
            port,
            win_off,
            window: WIN,
            base,
            next: base,
            remaining: packets,
            injected: 0,
        });
        shard.ports[src - shard.base][port.0 as usize]
            .as_mut()
            .expect("flow's first hop is wired")
            .flows
            .push(lidx);
        let key = EventKey {
            at: self.now,
            src: sid as u32,
            seq: shard.seq,
        };
        shard.seq += 1;
        shard
            .queue
            .schedule_keyed(key, FabricEvent::Pump { flow: lidx });
        self.flow_dir.push((sid as u32, lidx as u32));
        gidx
    }

    /// Run the fabric until every pending packet, drain and credit return
    /// has completed, over `threads` PDES workers (clamped to the shard
    /// count; `1` runs inline). Returns the latest commit-visible time of
    /// this run (`SimTime::ZERO` if nothing landed).
    pub fn run_quiescent(&mut self, platform: &mut Platform) -> SimTime {
        let first_new = self.commits_log.len();
        let record = platform.has_monitor();
        let procs = self.procs;
        let drain = self.drain;
        let lookahead = self.lookahead;
        let threads = self.threads.min(self.shards.len()).max(1);
        let mail = &self.mail;
        let clock = self.profile_clock;
        // Monitor runs take the general path for every packet so the
        // recorded stream is exactly what `deliver_routed` handled;
        // correctness never depends on this (the lanes are bit-identical)
        // but it keeps the monitors' view trivially canonical.
        let flat_lane = self.flat_lane && !record;
        let shard_of = &self.shard_of;
        let mut runs: Vec<ShardRun<'_>> = self
            .shards
            .iter_mut()
            .zip(platform.nodes.chunks_mut(procs))
            .zip(self.flat.chunks(procs))
            .map(|((shard, nodes), flat)| ShardRun {
                shard,
                nodes,
                mail,
                shard_of,
                drain,
                record,
                flat,
                flat_lane,
                direct: threads == 1,
                clock,
            })
            .collect();
        let clean = if threads == 1 {
            run_sequential(&mut runs, lookahead)
        } else {
            run_threaded(&mut runs, lookahead, threads)
        };
        drop(runs);
        assert!(
            clean,
            "event fabric did not quiesce within {EVENT_BUDGET} events"
        );
        let mut now = self.now;
        for shard in &mut self.shards {
            now = now.max(shard.now);
            self.events += shard.events;
            shard.events = 0;
            self.profile.merge(shard.profile);
            shard.profile = StageProfile::default();
            self.commits_log.append(&mut shard.commits);
        }
        self.now = now;
        if record {
            replay_monitors(platform, &mut self.shards);
        }
        self.commits_log[first_new..]
            .iter()
            .map(|c| c.visible)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// After quiescence every credit must be home: transmit pools full,
    /// receive buffers empty, nothing pending return. Panics otherwise —
    /// a failure here means the engine lost or duplicated a credit.
    pub fn assert_quiescent_credits(&self) {
        for shard in &self.shards {
            for (ln, row) in shard.ports.iter().enumerate() {
                let node = shard.base + ln;
                for (l, slot) in row.iter().enumerate() {
                    let Some(port) = slot else { continue };
                    assert!(
                        port.provenance.is_empty(),
                        "n{node} l{l}: packets still queued"
                    );
                    for vc in VirtualChannel::ALL {
                        let c = port.tx.credits();
                        assert_eq!(
                            c.available_cmd(vc),
                            c.initial_cmd(vc),
                            "n{node} l{l} {vc}: cmd credits missing"
                        );
                        assert_eq!(
                            c.available_data(vc),
                            c.initial_data(vc),
                            "n{node} l{l} {vc}: data credits missing"
                        );
                        let b = port.rx.buffers();
                        assert_eq!(b.held(vc), 0, "n{node} l{l} {vc}: buffers occupied");
                        assert_eq!(b.pending(vc), 0, "n{node} l{l} {vc}: returns unharvested");
                    }
                }
            }
        }
    }

    /// Per-flow delivery accounting, attributing commits by landing
    /// window, in flow-registration order.
    pub fn flow_reports(&self) -> Vec<FlowReport> {
        self.flow_dir
            .iter()
            .map(|&(sid, lidx)| {
                let f = &self.shards[sid as usize].flows[lidx as usize];
                let mut delivered = 0u64;
                let mut first = SimTime::MAX;
                let mut last = SimTime::ZERO;
                for c in &self.commits_log {
                    if c.node == f.dst && c.offset >= f.win_off && c.offset < f.win_off + f.window {
                        delivered += c.bytes;
                        first = first.min(c.visible);
                        last = last.max(c.visible);
                    }
                }
                if delivered == 0 {
                    first = SimTime::ZERO;
                }
                FlowReport {
                    src: f.src,
                    dst: f.dst,
                    injected_packets: f.injected,
                    delivered_bytes: delivered,
                    first_visible: first,
                    last_visible: last,
                }
            })
            .collect()
    }
}

/// Synthetic concurrent traffic shapes over the cluster's supernodes
/// (each supernode is represented by its processor 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficPattern {
    /// Every supernode streams to every other supernode.
    AllToAll,
    /// Every supernode streams to one `target` supernode.
    Hotspot { target: usize },
    /// Every supernode streams to each of its mesh neighbours
    /// (halo exchange).
    Halo,
    /// Matrix transpose: supernode (r, c) of a mesh streams to (c, r) —
    /// the classic adversarial case for X-Y routing (every flow turns at
    /// the diagonal). On non-mesh topologies: `s → n-1-s`.
    Transpose,
    /// Tornado: each supernode streams to the one half the ring away in
    /// its own row — the worst case for minimal routing on tori, here a
    /// maximum-distance row-parallel load. On non-mesh topologies:
    /// `s → (s + n/2) mod n`.
    Tornado,
    /// One flow from supernode `src` to supernode `dst`.
    Single { src: usize, dst: usize },
}

/// (src, dst) global node pairs a pattern expands to on `spec`.
pub fn pattern_pairs(spec: &ClusterSpec, pattern: TrafficPattern) -> Vec<(usize, usize)> {
    let rep = |s: usize| spec.proc_index(s, 0);
    let n = spec.supernode_count();
    let mut pairs = Vec::new();
    match pattern {
        TrafficPattern::Single { src, dst } => pairs.push((rep(src), rep(dst))),
        TrafficPattern::AllToAll => {
            for s in 0..n {
                for d in 0..n {
                    if s != d {
                        pairs.push((rep(s), rep(d)));
                    }
                }
            }
        }
        TrafficPattern::Hotspot { target } => {
            for s in 0..n {
                if s != target {
                    pairs.push((rep(s), rep(target)));
                }
            }
        }
        TrafficPattern::Halo => {
            for s in 0..n {
                for port in Port::ALL {
                    if let Some(d) = spec.neighbor(s, port) {
                        pairs.push((rep(s), rep(d)));
                    }
                }
            }
        }
        TrafficPattern::Transpose => {
            for s in 0..n {
                let d = match spec.topology {
                    ClusterTopology::Mesh { x, y } => {
                        let (r, c) = (s / x, s % x);
                        // (r, c) → (c, r): valid only when the transposed
                        // coordinate exists, i.e. c < y and r < x.
                        if c < y && r < x {
                            c * x + r
                        } else {
                            s
                        }
                    }
                    _ => n - 1 - s,
                };
                if d != s {
                    pairs.push((rep(s), rep(d)));
                }
            }
        }
        TrafficPattern::Tornado => {
            for s in 0..n {
                let d = match spec.topology {
                    ClusterTopology::Mesh { x, .. } if x > 1 => {
                        let (r, c) = (s / x, s % x);
                        r * x + (c + x / 2) % x
                    }
                    _ => (s + n / 2) % n,
                };
                if d != s {
                    pairs.push((rep(s), rep(d)));
                }
            }
        }
    }
    pairs
}

/// Delivery accounting for one flow of a workload run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowReport {
    pub src: usize,
    pub dst: usize,
    pub injected_packets: u64,
    pub delivered_bytes: u64,
    pub first_visible: SimTime,
    pub last_visible: SimTime,
}

impl FlowReport {
    /// Delivered goodput across the flow's active window, MB/s.
    pub fn goodput_mbps(&self) -> f64 {
        let span = self.last_visible.since(self.first_visible).picos();
        if span == 0 {
            return 0.0;
        }
        self.delivered_bytes as f64 / (span as f64 / 1e12) / 1e6
    }
}

/// Result of one [`SimCluster::run_workload`](crate::sim::SimCluster::run_workload).
///
/// Derives `Eq`: two reports are equal iff every counter, timestamp and
/// per-flow record matches exactly — which is what the determinism suite
/// asserts across thread counts and queue backends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadReport {
    pub flows: Vec<FlowReport>,
    /// Transmitter stalls for want of a credit — nonzero under load iff
    /// flow control engaged.
    pub stalls_no_credit: u64,
    /// Events the engine handled.
    pub events: u64,
    /// Simulated completion time of the whole workload.
    pub elapsed: SimTime,
    pub injected_packets: u64,
    pub delivered_packets: u64,
}

impl WorkloadReport {
    pub fn lost_packets(&self) -> u64 {
        self.injected_packets.saturating_sub(self.delivered_packets)
    }

    /// Aggregate delivered goodput over the run, MB/s.
    pub fn aggregate_goodput_mbps(&self) -> f64 {
        let bytes: u64 = self.flows.iter().map(|f| f.delivered_bytes).sum();
        bytes as f64 / (self.elapsed.picos() as f64 / 1e12) / 1e6
    }
}

/// Run a single closed-loop flow of `packets` 64 B posted writes over a
/// freshly booted two-supernode platform with `config` as the TCC cable,
/// returning delivered goodput in MB/s. This is the cross-validation
/// primitive: the chained model's analytic expectation for the same wire
/// is `config.effective_bytes_per_sec() * 64 / 72`.
pub fn stream_goodput(config: tcc_ht::link::LinkConfig, packets: u64) -> f64 {
    stream_goodput_with_drain(config, packets, DEFAULT_DRAIN)
}

/// [`stream_goodput`] with an explicit receiver drain latency — a slow
/// receiver collapses goodput to credits-per-round-trip, which is how the
/// tests prove flow control is live.
pub fn stream_goodput_with_drain(
    config: tcc_ht::link::LinkConfig,
    packets: u64,
    drain: Duration,
) -> f64 {
    let (mut platform, mut engine) = booted_pair_engine(config, drain);
    engine.add_flow(&mut platform, 0, 1, packets * 64);
    engine.run_quiescent(&mut platform);
    assert_eq!(engine.commits().len() as u64, packets, "lost packets");
    engine.assert_quiescent_credits();
    let last = engine
        .commits()
        .iter()
        .map(|c| c.visible)
        .max()
        .expect("at least one packet");
    (packets * 64) as f64 / (last.picos() as f64 / 1e12) / 1e6
}

/// A booted paper-prototype pair plus a fresh engine over it, with node
/// pipelines quiesced so the measurement epoch starts at time zero.
fn booted_pair_engine(
    config: tcc_ht::link::LinkConfig,
    drain: Duration,
) -> (Platform, EventEngine) {
    booted_pair_engine_with(config, drain, EngineOptions::default())
}

/// [`booted_pair_engine`] with explicit executive options.
fn booted_pair_engine_with(
    config: tcc_ht::link::LinkConfig,
    drain: Duration,
    options: EngineOptions,
) -> (Platform, EventEngine) {
    use tcc_firmware::topology::SupernodeSpec;
    let spec = ClusterSpec::new(SupernodeSpec::new(1, 1 << 20), ClusterTopology::Pair);
    let mut platform = Platform::assemble(spec, tcc_opteron::UarchParams::shanghai());
    platform.tcc_target = config;
    let _ = tcc_firmware::tcc_boot::boot(&mut platform);
    for node in &mut platform.nodes {
        node.quiesce();
    }
    let engine = EventEngine::with_options(&mut platform, drain, options);
    (platform, engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_ht::link::LinkConfig;

    #[test]
    fn drain_scheduling_saturates_at_the_never_sentinel() {
        // `schedule_drain` advances the per-node drain clock with
        // `start + self.drain`; that `+` is the blessed SimTime/Duration
        // operator, which saturates so SimTime::MAX ("never") stays
        // absorbing instead of wrapping the drain-free clock into the
        // past. Exercise exactly the arithmetic the scheduler performs.
        let drain = DEFAULT_DRAIN;
        let start = SimTime::MAX.max(SimTime(123));
        assert_eq!(start + drain, SimTime::MAX);
        // A near-MAX clock saturates rather than wrapping below `now`.
        let near = SimTime(u64::MAX - 1) + drain;
        assert_eq!(near, SimTime::MAX);
        assert!(near >= SimTime(u64::MAX - 1));
        // The epoch-horizon guard arithmetic survives the sentinel too.
        assert_eq!(SimTime::MAX + Duration(1_000), SimTime::MAX);
    }

    #[test]
    fn closed_loop_delivers_everything() {
        let bw = stream_goodput(LinkConfig::PROTOTYPE, 2_000);
        // 64 B goodput behind 72 wire bytes at ~3.175 GB/s ≈ 2.82 GB/s;
        // with real credit stalls it must stay within ~10% of that.
        assert!(
            (2500.0..2850.0).contains(&bw),
            "credit-limited goodput = {bw:.0} MB/s"
        );
    }

    #[test]
    fn credits_actually_bind_under_slow_drain() {
        // A receiver that takes 200 ns per packet drains far slower than
        // the wire delivers: the 8-credit pools empty, the transmitter
        // genuinely stalls, and goodput collapses toward
        // credits-per-round-trip instead of wire rate.
        let slow = stream_goodput_with_drain(LinkConfig::PROTOTYPE, 500, Duration::from_nanos(200));
        assert!(
            slow < 600.0,
            "slow drain must collapse goodput: {slow:.0} MB/s"
        );
        let fast = stream_goodput(LinkConfig::PROTOTYPE, 500);
        assert!(
            fast > slow * 3.0,
            "line-rate drain {fast:.0} vs slow drain {slow:.0} MB/s"
        );
    }

    #[test]
    fn slow_drain_engages_flow_control_without_loss() {
        let (mut platform, mut engine) =
            booted_pair_engine(LinkConfig::PROTOTYPE, Duration::from_nanos(200));
        engine.add_flow(&mut platform, 0, 1, 500 * 64);
        engine.run_quiescent(&mut platform);
        assert!(engine.stalls_no_credit() > 0, "flow control never engaged");
        assert_eq!(engine.commits().len(), 500, "lost packets");
        engine.assert_quiescent_credits();
    }

    #[test]
    fn event_engine_agrees_with_channel_model() {
        // The event engine's wire-rate goodput must agree with the
        // analytic expectation used throughout the chained-channel model.
        let bw = stream_goodput(LinkConfig::PROTOTYPE, 5_000);
        let wire = LinkConfig::PROTOTYPE.effective_bytes_per_sec() as f64;
        let expected = wire * 64.0 / 72.0 / 1e6;
        let err = (bw - expected).abs() / expected;
        assert!(
            err < 0.10,
            "event engine {bw:.0} vs model {expected:.0} MB/s"
        );
    }

    #[test]
    fn faster_link_scales_goodput_until_credits_bind() {
        let slow = stream_goodput(LinkConfig::PROTOTYPE, 2_000);
        let fast = stream_goodput(LinkConfig::HT3_FULL, 2_000);
        // At HT800 the wire is the bottleneck (~2.8 GB/s goodput). At HT3
        // the wire would do ~9 GB/s, but the 8-entry credit pools and the
        // 3-credit-per-NOP return rate bind first: goodput improves ~1.6x,
        // not 3.3x. (Real HT3 parts grew their buffer counts for exactly
        // this reason.)
        assert!(
            fast > slow * 1.4,
            "HT3 should still beat HT800: {slow:.0} -> {fast:.0}"
        );
        assert!(
            fast < slow * 2.5,
            "credits should bind well below the 3.3x wire ratio: {fast:.0}"
        );
    }

    #[test]
    fn pattern_pairs_cover_the_mesh() {
        use tcc_firmware::topology::SupernodeSpec;
        let spec = ClusterSpec::new(
            SupernodeSpec::new(2, 1 << 20),
            ClusterTopology::Mesh { x: 2, y: 2 },
        );
        assert_eq!(pattern_pairs(&spec, TrafficPattern::AllToAll).len(), 12);
        assert_eq!(
            pattern_pairs(&spec, TrafficPattern::Hotspot { target: 0 }).len(),
            3
        );
        // Every supernode in a 2x2 mesh has exactly two neighbours.
        assert_eq!(pattern_pairs(&spec, TrafficPattern::Halo).len(), 8);
        let single = pattern_pairs(&spec, TrafficPattern::Single { src: 0, dst: 3 });
        assert_eq!(single, vec![(spec.proc_index(0, 0), spec.proc_index(3, 0))]);
    }

    #[test]
    fn transpose_and_tornado_patterns() {
        use tcc_firmware::topology::SupernodeSpec;
        let spec = ClusterSpec::new(
            SupernodeSpec::new(2, 1 << 20),
            ClusterTopology::Mesh { x: 4, y: 4 },
        );
        // Transpose on a 4x4 mesh: the 4 diagonal supernodes sit still,
        // the other 12 stream; the map is an involution. pattern_pairs
        // returns global node indices (processor 0 of each supernode).
        let t = pattern_pairs(&spec, TrafficPattern::Transpose);
        assert_eq!(t.len(), 12);
        for &(a, b) in &t {
            assert!(t.contains(&(b, a)), "transpose must be an involution");
            let (s, d) = (a / 2, b / 2);
            let (r, c) = (s / 4, s % 4);
            assert_eq!(d, c * 4 + r);
        }
        // Tornado on a 4x4 mesh: every supernode streams 2 columns right
        // within its own row.
        let t = pattern_pairs(&spec, TrafficPattern::Tornado);
        assert_eq!(t.len(), 16);
        for &(a, b) in &t {
            let (s, d) = (a / 2, b / 2);
            assert_eq!(s / 4, d / 4, "tornado stays in its row");
            assert_eq!(d % 4, (s % 4 + 2) % 4);
        }
    }

    /// The whole point of the conservative executive: running the two
    /// shards of a pair on two real threads must produce byte-for-byte
    /// the commits, clock and event count of the inline path — on both
    /// queue backends.
    #[test]
    fn threaded_run_is_bit_identical_to_sequential() {
        let run = |options: EngineOptions| {
            let (mut platform, mut engine) =
                booted_pair_engine_with(LinkConfig::PROTOTYPE, DEFAULT_DRAIN, options);
            engine.add_flow(&mut platform, 0, 1, 300 * 64);
            engine.add_flow(&mut platform, 1, 0, 300 * 64);
            engine.run_quiescent(&mut platform);
            engine.assert_quiescent_credits();
            (
                engine.commits().to_vec(),
                engine.now(),
                engine.events_handled(),
                engine.flow_reports(),
            )
        };
        let baseline = run(EngineOptions::default());
        for backend in QueueBackend::ALL {
            for mailbox in MailboxKind::ALL {
                for threads in [1, 2, 4] {
                    let got = run(EngineOptions {
                        threads,
                        backend,
                        mailbox,
                        ..EngineOptions::default()
                    });
                    assert_eq!(
                        got, baseline,
                        "{backend:?} x {mailbox:?} x {threads} threads diverged from sequential"
                    );
                }
            }
        }
    }
}
