//! Event-driven co-simulation of the fabric — the closed-loop validation
//! of the chained-channel timing model.
//!
//! [`SimCluster`]'s microbenchmarks compute times by chaining busy-tracked
//! channels, with link credits auto-returned (valid for open-loop streams
//! whose receiver provably drains at line rate). This module runs the same
//! traffic through the [`tcc_fabric::Sim`] discrete-event kernel with
//! **real credit-based flow control**: receiver buffers drain with a
//! modelled latency, credits ride back in NOP packets on the reverse link,
//! and the transmitter genuinely stalls when the 8-credit pools empty.
//!
//! The `event_sim_agrees_with_channel_model` test pins the two approaches
//! to each other: sustained goodput must agree within a few percent.

use bytes::Bytes;
use tcc_fabric::event::EventQueue;
use tcc_fabric::sim::{Model, Sim};
use tcc_fabric::time::{Duration, SimTime};
use tcc_ht::flow::CreditReturn;
use tcc_ht::link::{LinkConfig, LinkRx, LinkTx};
use tcc_ht::packet::Packet;

/// Time the receiving northbridge takes to drain one packet's buffers —
/// the memory-controller write for a 64 B payload (~6 ns at DDR2 rates
/// plus queue overhead). The IO-bridge conversion latency is on the
/// packet's path, not the buffer-occupancy path, so it does not throttle
/// the drain *rate*.
const DRAIN: Duration = Duration(8_000);

/// Events in the two-node closed loop.
#[derive(Debug)]
pub enum Ev {
    /// The source tries to enqueue + pump more packets.
    SourcePump,
    /// A packet arrives at the receiver.
    Arrive(Packet),
    /// The receiver finished processing a packet: return credits.
    Drained(Packet),
    /// A credit NOP arrives back at the sender.
    CreditBack(CreditReturn),
}

/// A unidirectional stream with full flow control: node A fires `count`
/// posted 64 B writes at node B as fast as credits allow.
pub struct StreamModel {
    tx: LinkTx,
    /// Reverse direction carries only credit NOPs.
    reverse: LinkTx,
    rx: LinkRx,
    remaining: u64,
    next_addr: u64,
    /// Completion time of the last delivery.
    pub last_arrival: SimTime,
    pub delivered: u64,
    /// Receiver-side drain queue (serialised through one IO bridge).
    drain_free: SimTime,
    /// Packets accepted but not yet drained. The packets themselves ride
    /// in their scheduled [`Ev::Drained`] events; only the occupancy
    /// count is needed here, so nothing is cloned on the hot path.
    pending_drain: usize,
}

impl StreamModel {
    pub fn new(config: LinkConfig, count: u64) -> Self {
        StreamModel {
            tx: LinkTx::new(config, 11),
            reverse: LinkTx::new(config, 12),
            rx: LinkRx::new(),
            remaining: count,
            next_addr: 0x1000_0000,
            last_arrival: SimTime::ZERO,
            delivered: 0,
            drain_free: SimTime::ZERO,
            pending_drain: 0,
        }
    }

    fn pump(&mut self, now: SimTime, queue: &mut EventQueue<Ev>) {
        // Keep the transmit queue primed.
        while self.remaining > 0 && self.tx.queued(tcc_ht::VirtualChannel::Posted) < 4 {
            self.tx.enqueue(Packet::posted_write(
                self.next_addr,
                Bytes::from_static(&[0u8; 64]),
            ));
            self.next_addr += 64;
            self.remaining -= 1;
        }
        for d in self.tx.pump(now) {
            queue.schedule_at(d.arrival, Ev::Arrive(d.packet));
        }
        // Poll again when the wire frees up (if work remains).
        if self.remaining > 0 || self.tx.queued(tcc_ht::VirtualChannel::Posted) > 0 {
            let next = self.tx.next_free().max(now + Duration(1_000));
            queue.schedule_at(next, Ev::SourcePump);
        }
    }
}

impl Model for StreamModel {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, queue: &mut EventQueue<Ev>) {
        match ev {
            Ev::SourcePump => self.pump(now, queue),
            Ev::Arrive(pkt) => {
                let accepted = self.rx.accept(&pkt).expect("tx sent within its credits");
                if let Some(ret) = accepted {
                    // (Only NOPs produce immediate returns; data packets
                    // occupy buffers until drained.)
                    self.tx.credit_return(ret).expect("receiver-harvested");
                } else {
                    // Serialise the drain through the IO bridge.
                    self.pending_drain += 1;
                    let start = now.max(self.drain_free);
                    self.drain_free = start + DRAIN;
                    queue.schedule_at(self.drain_free, Ev::Drained(pkt));
                }
            }
            Ev::Drained(pkt) => {
                self.rx.drain(&pkt).expect("accepted before drain");
                debug_assert!(self.pending_drain > 0, "drained more than accepted");
                self.pending_drain -= 1;
                self.delivered += 1;
                self.last_arrival = now;
                // Harvest credits and send them back in a NOP.
                let ret = self.rx.harvest();
                if !ret.is_empty() {
                    let d = self.reverse.send_nop(now, ret);
                    queue.schedule_at(d.arrival, Ev::CreditBack(ret));
                }
            }
            Ev::CreditBack(ret) => {
                self.tx.credit_return(ret).expect("receiver-harvested");
                // Freed credits may unblock the source immediately.
                self.pump(now, queue);
            }
        }
    }
}

/// Run the closed loop and return the sustained goodput in MB/s.
pub fn stream_goodput(config: LinkConfig, packets: u64) -> f64 {
    let mut sim = Sim::new(StreamModel::new(config, packets));
    sim.schedule_at(SimTime::ZERO, Ev::SourcePump);
    let stop = sim.run_until(SimTime(Duration::from_millis(100).picos()), 50_000_000);
    assert_eq!(
        stop,
        tcc_fabric::sim::Stop::Quiescent,
        "stream did not finish"
    );
    assert_eq!(sim.model.delivered, packets, "lost packets");
    let bytes = packets * 64;
    bytes as f64 / (sim.model.last_arrival.picos() as f64 / 1e12) / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_delivers_everything() {
        let bw = stream_goodput(LinkConfig::PROTOTYPE, 2_000);
        // 64 B goodput behind 72 wire bytes at ~3.175 GB/s ≈ 2.82 GB/s;
        // with real credit stalls it must stay within ~10% of that.
        assert!(
            (2500.0..2850.0).contains(&bw),
            "credit-limited goodput = {bw:.0} MB/s"
        );
    }

    #[test]
    fn credits_actually_bind() {
        // With a drain so slow the 8 credits dominate, goodput collapses
        // to credits-per-round-trip — proving flow control is live.
        let mut sim = Sim::new(StreamModel::new(LinkConfig::PROTOTYPE, 500));
        sim.model.drain_free = SimTime::ZERO;
        // (Slow drain via a tiny wire doesn't exist — emulate by checking
        // stall statistics instead: the transmitter must have stalled.)
        sim.schedule_at(SimTime::ZERO, Ev::SourcePump);
        sim.run_until(SimTime(Duration::from_millis(50).picos()), 10_000_000);
        assert!(
            sim.model.tx.stats.stalls_no_credit > 0,
            "flow control never engaged"
        );
        assert_eq!(sim.model.delivered, 500);
    }

    #[test]
    fn event_sim_agrees_with_channel_model() {
        // The co-simulation's wire-rate goodput must agree with the
        // analytic expectation used throughout the chained-channel model.
        let bw = stream_goodput(LinkConfig::PROTOTYPE, 5_000);
        let wire = LinkConfig::PROTOTYPE.effective_bytes_per_sec() as f64;
        let expected = wire * 64.0 / 72.0 / 1e6;
        let err = (bw - expected).abs() / expected;
        assert!(err < 0.10, "event sim {bw:.0} vs model {expected:.0} MB/s");
    }

    #[test]
    fn faster_link_scales_goodput_until_credits_bind() {
        let slow = stream_goodput(LinkConfig::PROTOTYPE, 2_000);
        let fast = stream_goodput(LinkConfig::HT3_FULL, 2_000);
        // At HT800 the wire is the bottleneck (~2.8 GB/s goodput). At HT3
        // the wire would do ~9 GB/s, but the 8-entry credit pools and the
        // 3-credit-per-NOP return rate bind first: goodput improves ~1.6x,
        // not 3.3x. (Real HT3 parts grew their buffer counts for exactly
        // this reason.)
        assert!(
            fast > slow * 1.4,
            "HT3 should still beat HT800: {slow:.0} -> {fast:.0}"
        );
        assert!(
            fast < slow * 2.5,
            "credits should bind well below the 3.3x wire ratio: {fast:.0}"
        );
    }
}
