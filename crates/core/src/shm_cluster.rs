//! The shared-memory execution backend: a TCCluster as `n` OS threads.
//!
//! Each rank exports one `ShmMemory` page laid out exactly like the booted
//! machine's exported slice: a channel region per peer (ring + rendezvous
//! zone), a credit block per peer, and a barrier sync page. Remote windows
//! between ranks are then write-only views of each other's pages — the
//! same API the driver would return after `mmap`ing remote MMIO space.
//!
//! This backend runs the full message-library protocols with real
//! parallelism; it is what the examples and the MPI/PGAS middleware
//! execute on.

use std::sync::Arc;
use std::thread;
use tcc_msglib::barrier::{Barrier, SYNC_BYTES};
use tcc_msglib::channel::{Receiver, Sender, CHANNEL_BYTES, CREDIT_BYTES};
use tcc_msglib::ring::SendMode;
use tcc_msglib::shm::{ShmLocal, ShmMemory, ShmRemote};

/// Handle each rank's program receives: its communication context.
pub struct NodeCtx {
    pub rank: usize,
    pub n: usize,
    /// `senders[p]` sends to rank `p` (None for self).
    senders: Vec<Option<Sender<ShmRemote, ShmLocal>>>,
    /// `receivers[p]` receives from rank `p` (None for self).
    receivers: Vec<Option<Receiver<ShmLocal, ShmRemote>>>,
    barrier: Barrier<ShmRemote, ShmLocal>,
}

impl NodeCtx {
    /// Blocking send of `msg` to `to`.
    pub fn send(&mut self, to: usize, msg: &[u8]) {
        self.senders[to]
            .as_mut()
            .unwrap_or_else(|| panic!("rank {} sending to itself", self.rank))
            .send(msg)
            .expect("message within size limits");
    }

    /// Non-blocking send.
    pub fn try_send(&mut self, to: usize, msg: &[u8]) -> Result<(), tcc_msglib::SendError> {
        self.senders[to]
            .as_mut()
            .expect("no self-channel")
            .try_send(msg)
    }

    /// Blocking receive from `from`.
    pub fn recv(&mut self, from: usize) -> Vec<u8> {
        self.receivers[from]
            .as_mut()
            .unwrap_or_else(|| panic!("rank {} receiving from itself", self.rank))
            .recv()
    }

    /// Blocking receive from `from` into a caller-provided buffer
    /// (cleared first). Returns the message length; allocation-free in
    /// steady state.
    pub fn recv_into(&mut self, from: usize, out: &mut Vec<u8>) -> usize {
        self.receivers[from]
            .as_mut()
            .unwrap_or_else(|| panic!("rank {} receiving from itself", self.rank))
            .recv_into(out)
    }

    /// Poll a specific peer.
    pub fn try_recv(&mut self, from: usize) -> Option<Vec<u8>> {
        self.receivers[from]
            .as_mut()
            .expect("no self-channel")
            .try_recv()
    }

    /// Poll a specific peer into a caller-provided buffer.
    pub fn try_recv_into(&mut self, from: usize, out: &mut Vec<u8>) -> Option<usize> {
        self.receivers[from]
            .as_mut()
            .expect("no self-channel")
            .try_recv_into(out)
    }

    /// Poll all peers round-robin; returns (source, message).
    pub fn try_recv_any(&mut self) -> Option<(usize, Vec<u8>)> {
        let mut out = Vec::new();
        self.try_recv_any_into(&mut out).map(|(src, _)| (src, out))
    }

    /// Poll all peers round-robin into a caller-provided buffer; returns
    /// (source, message length).
    pub fn try_recv_any_into(&mut self, out: &mut Vec<u8>) -> Option<(usize, usize)> {
        for p in 0..self.n {
            if p == self.rank {
                continue;
            }
            if let Some(n) = self.try_recv_into(p, out) {
                return Some((p, n));
            }
        }
        None
    }

    /// Blocking receive from any peer.
    pub fn recv_any(&mut self) -> (usize, Vec<u8>) {
        let mut out = Vec::new();
        let (src, _) = self.recv_any_into(&mut out);
        (src, out)
    }

    /// Blocking receive from any peer into a caller-provided buffer;
    /// returns (source, message length). Spins with exponential backoff
    /// while every ring is empty.
    pub fn recv_any_into(&mut self, out: &mut Vec<u8>) -> (usize, usize) {
        let mut backoff = tcc_msglib::Backoff::new();
        loop {
            if let Some(r) = self.try_recv_any_into(out) {
                return r;
            }
            backoff.snooze();
        }
    }

    /// Global barrier across all ranks.
    pub fn barrier(&mut self) {
        self.barrier.wait();
    }
}

/// Exported-page layout per rank.
fn channel_offset(from: usize) -> u64 {
    from as u64 * CHANNEL_BYTES
}

fn credit_offset(n: usize, to: usize) -> u64 {
    n as u64 * CHANNEL_BYTES + to as u64 * CREDIT_BYTES
}

fn sync_offset(n: usize) -> u64 {
    n as u64 * CHANNEL_BYTES + n as u64 * CREDIT_BYTES
}

fn page_bytes(n: usize) -> u64 {
    sync_offset(n) + SYNC_BYTES
}

/// A TCCluster running as threads over shared memory.
pub struct ShmCluster {
    pages: Vec<ShmMemory>,
    mode: SendMode,
}

impl ShmCluster {
    pub fn new(n: usize, mode: SendMode) -> Self {
        assert!(n >= 1);
        let pages = (0..n)
            .map(|_| ShmMemory::new(page_bytes(n) as usize))
            .collect();
        ShmCluster { pages, mode }
    }

    pub fn n(&self) -> usize {
        self.pages.len()
    }

    /// Build rank `r`'s context (windows onto every peer's page).
    fn ctx(&self, r: usize) -> NodeCtx {
        let n = self.n();
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for p in 0..n {
            if p == r {
                senders.push(None);
                receivers.push(None);
                continue;
            }
            // Channel r→p: ring in p's page (slot indexed by sender r),
            // credits in r's page (slot indexed by receiver p). Rank p
            // builds the matching receiver half from its own page.
            senders.push(Some(Sender::new(
                self.pages[p].remote(channel_offset(r), CHANNEL_BYTES),
                self.pages[r].local(credit_offset(n, p), CREDIT_BYTES),
                self.mode,
            )));
            // Channel p→r: ring in r's page, credits in p's page.
            receivers.push(Some(Receiver::new(
                self.pages[r].local(channel_offset(p), CHANNEL_BYTES),
                self.pages[p].remote(credit_offset(n, r), CREDIT_BYTES),
            )));
        }
        let peers = (0..n)
            .map(|p| (p != r).then(|| self.pages[p].remote(sync_offset(n), SYNC_BYTES)))
            .collect();
        let barrier = Barrier::new(r, n, peers, self.pages[r].local(sync_offset(n), SYNC_BYTES));
        NodeCtx {
            rank: r,
            n,
            senders,
            receivers,
            barrier,
        }
    }

    /// Run `program` on every rank in parallel; returns each rank's result
    /// in rank order.
    pub fn run<T, F>(self, program: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(&mut NodeCtx) -> T + Send + Sync + 'static,
    {
        let n = self.n();
        let program = Arc::new(program);
        let me = Arc::new(self);
        let mut handles = Vec::with_capacity(n);
        for r in 0..n {
            let program = Arc::clone(&program);
            let me = Arc::clone(&me);
            handles.push(
                thread::Builder::new()
                    .name(format!("tcc-rank-{r}"))
                    .spawn(move || {
                        let mut ctx = me.ctx(r);
                        program(&mut ctx)
                    })
                    .expect("spawn rank thread"),
            );
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_ranks_pingpong() {
        let cluster = ShmCluster::new(2, SendMode::WeaklyOrdered);
        let results = cluster.run(|ctx| {
            if ctx.rank == 0 {
                for i in 0..100u64 {
                    ctx.send(1, &i.to_le_bytes());
                    let pong = ctx.recv(1);
                    assert_eq!(u64::from_le_bytes(pong.try_into().unwrap()), i + 1);
                }
                0u64
            } else {
                for _ in 0..100 {
                    let ping = ctx.recv(0);
                    let v = u64::from_le_bytes(ping.try_into().unwrap());
                    ctx.send(0, &(v + 1).to_le_bytes());
                }
                1u64
            }
        });
        assert_eq!(results, vec![0, 1]);
    }

    #[test]
    fn all_to_all_with_barrier() {
        const N: usize = 5;
        let cluster = ShmCluster::new(N, SendMode::WeaklyOrdered);
        let results = cluster.run(|ctx| {
            let me = ctx.rank;
            // Phase 1: everyone sends its rank to everyone.
            for p in 0..ctx.n {
                if p != me {
                    ctx.send(p, &(me as u64).to_le_bytes());
                }
            }
            let mut sum = me as u64;
            for p in 0..ctx.n {
                if p != me {
                    let m = ctx.recv(p);
                    sum += u64::from_le_bytes(m.try_into().unwrap());
                }
            }
            ctx.barrier();
            sum
        });
        assert_eq!(results, vec![10; N]);
    }

    #[test]
    fn large_messages_cross_ranks() {
        let cluster = ShmCluster::new(2, SendMode::WeaklyOrdered);
        let results = cluster.run(|ctx| {
            if ctx.rank == 0 {
                let big: Vec<u8> = (0..100_000u32).map(|i| (i % 241) as u8).collect();
                ctx.send(1, &big);
                big.len()
            } else {
                let got = ctx.recv(0);
                assert!(got.iter().enumerate().all(|(i, &b)| b == (i % 241) as u8));
                got.len()
            }
        });
        assert_eq!(results, vec![100_000, 100_000]);
    }

    #[test]
    fn recv_any_collects_from_all() {
        const N: usize = 4;
        let cluster = ShmCluster::new(N, SendMode::WeaklyOrdered);
        let results = cluster.run(|ctx| {
            if ctx.rank == 0 {
                let mut seen = [false; N];
                for _ in 0..N - 1 {
                    let (src, msg) = ctx.recv_any();
                    assert_eq!(msg, (src as u64).to_le_bytes());
                    seen[src] = true;
                }
                seen.iter().skip(1).all(|&s| s) as usize
            } else {
                ctx.send(0, &(ctx.rank as u64).to_le_bytes());
                1
            }
        });
        assert_eq!(results[0], 1);
    }

    #[test]
    fn strict_mode_cluster_works() {
        let cluster = ShmCluster::new(3, SendMode::StrictlyOrdered);
        let results = cluster.run(|ctx| {
            let next = (ctx.rank + 1) % ctx.n;
            let prev = (ctx.rank + ctx.n - 1) % ctx.n;
            ctx.send(next, b"token");
            let t = ctx.recv(prev);
            t.len()
        });
        assert_eq!(results, vec![5, 5, 5]);
    }
}
