//! # tccluster — a cluster architecture using the processor host interface
//! as the network interconnect
//!
//! A from-scratch reproduction of Litz, Thuermer & Bruening, *"TCCluster: A
//! Cluster Architecture Utilizing the Processor Host Interface as a Network
//! Interconnect"* (IEEE CLUSTER 2010), as a simulation + emulation library.
//!
//! Two execution backends share the message-library API:
//!
//! * [`sim::SimCluster`] — a packet-level simulation of the whole stack
//!   (Opteron cores with write-combining, northbridges, HyperTransport
//!   links, the coreboot-style boot sequence). It regenerates the paper's
//!   latency/bandwidth figures.
//! * [`shm_cluster::ShmCluster`] — every node is an OS thread; TCCluster
//!   links become write-only shared-memory windows. It runs real programs
//!   (the examples and the MPI/PGAS middleware) with real parallelism.
//!
//! ```
//! use tccluster::TcclusterBuilder;
//!
//! // The paper's prototype: two nodes, one HT800 cable.
//! let mut cluster = TcclusterBuilder::new().build_sim();
//! let latency = cluster.pingpong(0, 1, 64, 50);
//! assert!(latency.nanos() < 300.0);
//! ```

#![forbid(unsafe_code)]

pub mod builder;
pub mod engine;
pub mod shm_cluster;
pub mod sim;

pub use builder::TcclusterBuilder;
pub use engine::{
    EngineKind, EngineOptions, EventEngine, FlowReport, MailboxKind, StageProfile, TrafficPattern,
    WorkloadReport,
};
pub use shm_cluster::{NodeCtx, ShmCluster};
pub use sim::SimCluster;
pub use tcc_fabric::event::QueueBackend;

// Re-export the substrate crates under one roof for downstream users.
pub use tcc_fabric as fabric;
pub use tcc_firmware as firmware;
pub use tcc_ht as ht;
pub use tcc_msglib as msglib;
pub use tcc_opteron as opteron;
