//! The simulated TCCluster: a booted [`Platform`] plus the paper's two
//! microbenchmark drivers (§VI) — ping-pong latency and streaming
//! bandwidth — reproduced at packet level over the Opteron/HT models.
//!
//! Measurement semantics follow the paper's methodology:
//!
//! * **Latency** (Fig. 7): a ping-pong kernel; the receiver polls an
//!   uncacheable location, the half-round-trip time is reported. Polling
//!   is modelled as back-to-back UC reads (`uc_read` apart) whose data
//!   sample point is mid-flight; the poll phase is staggered across
//!   iterations so the reported mean includes the expected residual wait.
//! * **Bandwidth** (Fig. 6): per-message sender-side timing — the clock
//!   stops when the core's last store has been *accepted by the on-chip
//!   buffering*, not when the data reaches the far node. That is exactly
//!   the artifact the paper names when explaining the 5300 MB/s point at
//!   256 KB ("leverages caching structures within the Opteron and does not
//!   reflect the bandwidth performance of the TCCluster link").

use crate::engine::{
    pattern_pairs, CommitRec, EngineKind, EngineOptions, EventEngine, TrafficPattern,
    WorkloadReport, DEFAULT_DRAIN,
};
use tcc_fabric::time::{Duration, SimTime};
use tcc_firmware::machine::{DeliveredWrite, Platform};
use tcc_firmware::tcc_boot::{boot, BootReport};
use tcc_firmware::topology::ClusterSpec;
use tcc_msglib::ring::{CELL_BYTES, CELL_PAYLOAD};
use tcc_msglib::SendMode;
use tcc_opteron::{Action, ActionSink, BurstPattern, UarchParams};

/// A booted, simulated TCCluster.
pub struct SimCluster {
    pub platform: Platform,
    pub boot: BootReport,
    /// Reusable action/commit buffers for the measurement drivers — the
    /// benchmark loops allocate nothing per message.
    sink: ActionSink,
    commits: Vec<DeliveredWrite>,
    /// Which timing engine paces the fabric.
    engine: EngineKind,
    /// Executive options for the event engine (threads, queue backend),
    /// preserved across `reset_timebase` rebuilds.
    options: EngineOptions,
    /// The event-driven fabric, present iff `engine == EventDriven`. The
    /// nodes run with `raw_egress` set: their store paths hand packets to
    /// this engine at northbridge-exit time and it owns all wire
    /// serialisation, credits and hop-by-hop forwarding.
    event: Option<EventEngine>,
}

/// Per-message software overhead of the message library (compose header,
/// advance pointers). ~11 core cycles.
const LIB_SEND_OVERHEAD: Duration = Duration(4_000);
/// Software cost from poll success to the reply's first store issuing.
const LIB_TURNAROUND: Duration = Duration(10_000);
/// Rendezvous setup cost per large message (zone-credit check, descriptor
/// composition, library bookkeeping).
const RDVZ_HANDSHAKE: Duration = Duration(400_000);

impl SimCluster {
    /// Assemble and boot with the paper's HT800/16-bit cable.
    pub fn boot(spec: ClusterSpec, params: UarchParams) -> Self {
        Self::boot_with(spec, params, tcc_ht::link::LinkConfig::PROTOTYPE)
    }

    /// Assemble and boot with a specific TCC link configuration (e.g. the
    /// full-speed backplane the paper projects for future work).
    pub fn boot_with(
        spec: ClusterSpec,
        params: UarchParams,
        tcc_link: tcc_ht::link::LinkConfig,
    ) -> Self {
        Self::boot_engine(spec, params, tcc_link, EngineKind::default())
    }

    /// Assemble and boot on an explicit timing engine (see
    /// [`EngineKind`] and `docs/engine.md` for the trade-off).
    pub fn boot_engine(
        spec: ClusterSpec,
        params: UarchParams,
        tcc_link: tcc_ht::link::LinkConfig,
        engine: EngineKind,
    ) -> Self {
        Self::boot_engine_opts(spec, params, tcc_link, engine, EngineOptions::default())
    }

    /// [`SimCluster::boot_engine`] with explicit event-executive options
    /// (worker threads, queue backend). The options persist across
    /// [`SimCluster::reset_timebase`] rebuilds.
    pub fn boot_engine_opts(
        spec: ClusterSpec,
        params: UarchParams,
        tcc_link: tcc_ht::link::LinkConfig,
        engine: EngineKind,
        options: EngineOptions,
    ) -> Self {
        let mut platform = Platform::assemble(spec, params);
        platform.tcc_target = tcc_link;
        let boot = boot(&mut platform);
        let mut cluster = SimCluster {
            platform,
            boot,
            sink: ActionSink::new(),
            commits: Vec::new(),
            engine,
            options,
            event: None,
        };
        if engine == EngineKind::EventDriven {
            cluster.install_event_engine(DEFAULT_DRAIN);
        }
        cluster
    }

    /// Flip every node to raw egress and mount a fresh event engine over
    /// the trained wires. Boot always runs chained (its self-tests assume
    /// the analytic path); the switch happens once, here.
    fn install_event_engine(&mut self, drain: Duration) {
        for node in &mut self.platform.nodes {
            node.raw_egress = true;
        }
        self.event = Some(EventEngine::with_options(
            &mut self.platform,
            drain,
            self.options,
        ));
    }

    pub fn spec(&self) -> ClusterSpec {
        self.platform.spec
    }

    pub fn engine_kind(&self) -> EngineKind {
        self.engine
    }

    /// The event-executive options this cluster runs with.
    pub fn engine_options(&self) -> EngineOptions {
        self.options
    }

    /// The event-driven fabric, when this cluster runs on it.
    pub fn event_engine(&self) -> Option<&EventEngine> {
        self.event.as_ref()
    }

    /// Start a fresh measurement epoch: drain every node's pipeline and
    /// link occupancy (the boot sequence itself moved traffic and left
    /// channel clocks far in the future). In event mode the fabric engine
    /// is rebuilt, restarting its clock, ports and credit pools.
    pub fn reset_timebase(&mut self) {
        for node in &mut self.platform.nodes {
            node.quiesce();
        }
        if let Some(e) = &self.event {
            let drain = e.drain();
            self.install_event_engine(drain);
        }
    }

    /// Event mode: run the fabric to quiescence — every in-flight packet
    /// delivered, every credit home — and return the latest commit time
    /// of the run. Chained mode: no-op returning `ZERO` (propagation
    /// already completed inside `drain_visible`), so call sites can
    /// simply `max()` this in.
    fn settle(&mut self) -> SimTime {
        match self.event.as_mut() {
            Some(engine) => engine.run_quiescent(&mut self.platform),
            None => SimTime::ZERO,
        }
    }

    /// Write one eager message of `len` payload bytes into the ring at
    /// `base` (in the target's exported memory) from `node`, starting at
    /// `at`. Returns (sender retire time, last-byte-visible time).
    ///
    /// `mode` selects the paper's two mechanisms: strictly ordered fences
    /// after every cell; weakly ordered lets WC buffers coalesce freely.
    /// `push_tail` issues a final fence so the last header leaves the WC
    /// buffers (needed whenever someone waits for this message).
    fn send_eager(
        &mut self,
        node: usize,
        base: u64,
        len: usize,
        at: SimTime,
        mode: SendMode,
        push_tail: bool,
    ) -> (SimTime, SimTime) {
        let mut now = at + LIB_SEND_OVERHEAD;
        self.send_eager_at(node, base, len, &mut now, mode, push_tail)
    }

    /// The one eager-send implementation: a single [`BurstPattern`] issue
    /// through the node's batched store path, chained on a running issue
    /// clock (`now` is advanced to where the next message may begin
    /// issuing). All message payload/header stores and fences — and their
    /// fabric propagation — happen in one `store_burst` + one `propagate`
    /// call, with no per-cell buffers or per-store action vectors.
    fn send_eager_at(
        &mut self,
        node: usize,
        base: u64,
        len: usize,
        now: &mut SimTime,
        mode: SendMode,
        push_tail: bool,
    ) -> (SimTime, SimTime) {
        let pattern = BurstPattern {
            cell_payload: CELL_PAYLOAD,
            cell_stride: CELL_BYTES as u64,
            header_bytes: 8,
            payload_fill: 0xD5,
            header_fill: 0xAD,
            fence_every: if mode == SendMode::StrictlyOrdered {
                1
            } else {
                0
            },
            final_fence: push_tail && mode == SendMode::WeaklyOrdered,
            wrap_bytes: 0,
        };
        let start = *now;
        self.sink.clear();
        let out = self.platform.nodes[node].store_burst(*now, base, &pattern, len, &mut self.sink);
        *now = out.issued;
        let visible = start.max(self.drain_visible(node));
        (start.max(out.retire), visible)
    }

    /// Move everything in the scratch sink into the fabric and return the
    /// latest *locally* DRAM-visible time (ZERO if nothing landed).
    ///
    /// Chained mode propagates to completion analytically. Event mode
    /// only *injects* the raw-egress packets into the engine's queue —
    /// remote visibility exists once [`Self::settle`] has run the fabric.
    fn drain_visible(&mut self, node: usize) -> SimTime {
        if let Some(engine) = self.event.as_mut() {
            let mut vis = SimTime::ZERO;
            for action in self.sink.drain() {
                match action {
                    Action::LocalCommit { visible, .. } => vis = vis.max(visible),
                    Action::PacketOut {
                        link,
                        packet,
                        arrival,
                    } => engine.inject_at(node, link, packet, arrival),
                    Action::BroadcastFiltered => {}
                }
            }
            return vis;
        }
        self.commits.clear();
        self.platform
            .propagate(node, &mut self.sink, &mut self.commits);
        self.commits
            .iter()
            .map(|c| c.visible)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Model of the receive-side poll: back-to-back UC reads `uc_read`
    /// apart, data sampled mid-flight, result available at read
    /// completion. `stagger` (0..uc_read) is the phase of the poll loop
    /// relative to the message's arrival.
    fn poll_detect(&self, node: usize, visible: SimTime, stagger: Duration) -> SimTime {
        let uc = self.platform.nodes[node].params.uc_read;
        // The first sample point at or after `visible`, then half a round
        // trip for the data to come back.
        visible + stagger + Duration(uc.picos() / 2)
    }

    fn stagger(&self, node: usize, iter: u32) -> Duration {
        let uc = self.platform.nodes[node].params.uc_read.picos();
        Duration((iter as u64).wrapping_mul(6_967) % uc)
    }

    /// Paper Fig. 7: mean half-round-trip latency of `size`-byte messages
    /// between global processors `a` and `b`.
    pub fn pingpong(&mut self, a: usize, b: usize, size: usize, iters: u32) -> Duration {
        self.reset_timebase();
        let spec = self.spec();
        let (sa, pa) = (a / spec.supernode.processors, a % spec.supernode.processors);
        let (sb, pb) = (b / spec.supernode.processors, b % spec.supernode.processors);
        let ring_at_b = spec.node_base(sb, pb); // ping lands at B's ring
        let ring_at_a = spec.node_base(sa, pa) + 0x1000; // pong ring at A
        let mut t = SimTime::ZERO;
        let mut total = Duration::ZERO;
        for iter in 0..iters {
            let t0 = t;
            let (_, vis_b) = self.send_eager(a, ring_at_b, size, t0, SendMode::WeaklyOrdered, true);
            // Event mode: the leg is only *injected* so far — run the
            // fabric to quiescence for the delivered time. Chained mode:
            // settle() is ZERO and the max is a no-op.
            let vis_b = vis_b.max(self.settle());
            let got_b = self.poll_detect(b, vis_b, self.stagger(b, iter));
            let reply_at = got_b + LIB_TURNAROUND;
            let (_, vis_a) =
                self.send_eager(b, ring_at_a, size, reply_at, SendMode::WeaklyOrdered, true);
            let vis_a = vis_a.max(self.settle());
            let got_a = self.poll_detect(a, vis_a, self.stagger(a, iter.wrapping_add(13)));
            total += got_a - t0;
            // Idle gap before the next iteration lets queues drain.
            t = got_a + Duration::from_nanos(500);
        }
        Duration(total.picos() / (iters as u64).saturating_mul(2))
    }

    /// Paper Fig. 6: sender-side streaming bandwidth in MB/s for
    /// `size`-byte messages from `a` to `b`.
    ///
    /// Methodology mirrors the paper's microbenchmark:
    ///
    /// * **eager sizes** (≤ [`tcc_msglib::MAX_EAGER`]) are streamed
    ///   back-to-back until the flow is steady — the ring's credit window
    ///   makes the link the bottleneck, so the curve sits at wire goodput
    ///   (~2500 MB/s at 64 B);
    /// * **rendezvous sizes** are timed per message with the pipeline
    ///   drained in between, stopping the clock when the last store is
    ///   accepted by the on-chip buffering. That is the sender-side
    ///   measurement the paper itself flags at 256 KB: the burst is
    ///   absorbed faster than the link drains, "leveraging caching
    ///   structures within the Opteron".
    pub fn stream_bandwidth(
        &mut self,
        a: usize,
        b: usize,
        size: usize,
        mode: SendMode,
        iters: u32,
    ) -> f64 {
        self.reset_timebase();
        let spec = self.spec();
        let (sb, pb) = (b / spec.supernode.processors, b % spec.supernode.processors);
        let dst_base = spec.node_base(sb, pb);
        if size <= tcc_msglib::MAX_EAGER {
            // Stream messages back to back; measure the steady state by
            // timing only the second half, after the absorption window
            // has filled and the link is pacing the sender.
            let window = self.platform.nodes[a].params.absorb_capacity_bytes as usize;
            let count = (iters as usize).max((8 * window) / size.max(1)).min(65_536);
            // Raw egress removes the sender-side absorption backpressure,
            // so event mode measures the receiver instead: remember where
            // the commit log stands and time deliveries, not retires.
            let commit_floor = self.event.as_ref().map(|e| e.commits().len());
            let mut now = SimTime::ZERO;
            let mut retire = SimTime::ZERO;
            let mut mid_retire = SimTime::ZERO;
            for i in 0..count {
                // Consecutive ring cells, wrapping over a 4 KB ring.
                let cells = size.div_ceil(CELL_PAYLOAD).max(1);
                let slot = (i * cells) % tcc_msglib::ring::RING_CELLS;
                let base = dst_base + (slot * CELL_BYTES) as u64;
                let (r, _) = self.send_eager_at(a, base, size, &mut now, mode, false);
                retire = retire.max(r);
                if i + 1 == count / 2 {
                    mid_retire = retire;
                }
            }
            if let Some(floor) = commit_floor {
                self.settle();
                let engine = self.event.as_ref().expect("event engine");
                return eager_delivered_goodput(engine.commits(), floor, size);
            }
            let second_half = count - count / 2;
            (size * second_half) as f64 / (retire.since(mid_retire).picos() as f64 / 1e12) / 1e6
        } else {
            let mut t = SimTime::ZERO;
            let mut sum_ps = 0.0;
            for _ in 0..iters {
                let t0 = t;
                let (retire, visible) = self.send_rendezvous(a, dst_base + 0x1000, size, t0, mode);
                let done = visible.max(self.settle());
                // Chained: the paper's sender-side clock stop. Event: the
                // absorption artifact doesn't exist under raw egress, so
                // the honest stamp is delivery completion.
                let stamp = if self.event.is_some() {
                    retire.max(done)
                } else {
                    retire
                };
                sum_ps += stamp.since(t0).picos() as f64;
                // Drain fully before the next message (per-message timing).
                t = retire.max(done) + Duration::from_micros(2);
            }
            size as f64 / (sum_ps / iters as f64 / 1e12) / 1e6
        }
    }

    /// Ablation harness (sfence-interval sweep): like the weakly ordered
    /// send, but an `sfence` is issued every `every` cells (0 = never,
    /// 1 = the paper's strictly ordered mechanism). Returns MB/s.
    pub fn bandwidth_fence_interval(
        &mut self,
        a: usize,
        b: usize,
        size: usize,
        every: usize,
        iters: u32,
    ) -> f64 {
        self.reset_timebase();
        let spec = self.spec();
        let (sb, pb) = (b / spec.supernode.processors, b % spec.supernode.processors);
        let dst = spec.node_base(sb, pb);
        let pattern = BurstPattern {
            cell_payload: CELL_PAYLOAD,
            cell_stride: CELL_BYTES as u64,
            header_bytes: 0,
            payload_fill: 0,
            header_fill: 0,
            fence_every: every,
            final_fence: false,
            wrap_bytes: 0,
        };
        let mut t = SimTime::ZERO;
        let mut sum_ps = 0.0;
        for _ in 0..iters {
            let t0 = t + LIB_SEND_OVERHEAD;
            self.sink.clear();
            let out = self.platform.nodes[a].store_burst(t0, dst, &pattern, size, &mut self.sink);
            let retire = t0.max(out.retire);
            self.drain_visible(a);
            // Event mode times delivery completion (sender-side retire is
            // not backpressured under raw egress); chained keeps the
            // paper's sender-side stamp.
            let fin = if self.event.is_some() {
                retire.max(self.settle())
            } else {
                retire
            };
            sum_ps += (fin - t0).picos() as f64;
            t = fin + Duration::from_micros(2);
        }
        size as f64 / (sum_ps / iters as f64 / 1e12) / 1e6
    }

    /// Ablation harness (write combining on/off): with WC disabled the
    /// remote window is mapped uncacheable, so every 8-byte store becomes
    /// its own serialised HT packet — the paper's §VI rationale for
    /// "intensive use of the write combining capability". Returns MB/s.
    pub fn bandwidth_without_wc(&mut self, a: usize, b: usize, size: usize, iters: u32) -> f64 {
        self.reset_timebase();
        let spec = self.spec();
        let (sb, pb) = (b / spec.supernode.processors, b % spec.supernode.processors);
        let dst = spec.node_base(sb, pb);
        // Remap the remote slice UC on the sender.
        let saved = self.platform.nodes[a].mtrrs.clone();
        self.platform.nodes[a].mtrrs.clear();
        self.platform.nodes[a].mtrrs.program(
            dst,
            dst + spec.supernode.slice_bytes(),
            tcc_opteron::MemType::Uncacheable,
        );
        // Every 8 B slot is stored in full (the driver loop wrote whole
        // qwords), so round the burst length up to the stride.
        let pattern = BurstPattern {
            cell_payload: 8,
            cell_stride: 8,
            header_bytes: 0,
            payload_fill: 0,
            header_fill: 0,
            fence_every: 0,
            final_fence: false,
            wrap_bytes: 0,
        };
        let len = size.div_ceil(8) * 8;
        let mut t = SimTime::ZERO;
        let mut sum_ps = 0.0;
        for _ in 0..iters {
            let t0 = t + LIB_SEND_OVERHEAD;
            self.sink.clear();
            let out = self.platform.nodes[a].store_burst(t0, dst, &pattern, len, &mut self.sink);
            let retire = t0.max(out.retire);
            self.drain_visible(a);
            // Event mode times delivery completion (sender-side retire is
            // not backpressured under raw egress); chained keeps the
            // paper's sender-side stamp.
            let fin = if self.event.is_some() {
                retire.max(self.settle())
            } else {
                retire
            };
            sum_ps += (fin - t0).picos() as f64;
            t = fin + Duration::from_micros(2);
        }
        self.platform.nodes[a].mtrrs = saved;
        size as f64 / (sum_ps / iters as f64 / 1e12) / 1e6
    }

    /// One-sided rendezvous: raw payload streamed to the landing zone in
    /// 64 B lines, then an 8 B descriptor. Payload larger than the zone is
    /// chunked, each chunk gated by zone reuse (the sender must wait for
    /// the previous lap to drain — modelled by the absorption window).
    fn send_rendezvous(
        &mut self,
        node: usize,
        zone_base: u64,
        len: usize,
        at: SimTime,
        mode: SendMode,
    ) -> (SimTime, SimTime) {
        // Rendezvous setup: zone-credit check and descriptor preparation
        // through the library (~400 ns of software per large message).
        let mut now = at + RDVZ_HANDSHAKE + LIB_SEND_OVERHEAD;
        let start = now;
        // Payload streamed as contiguous 64 B lines lapping the zone; in
        // strict mode "after each cache line sized store operation an
        // Sfence instruction is triggered" (paper §VI).
        let pattern = BurstPattern {
            cell_payload: CELL_PAYLOAD,
            cell_stride: CELL_PAYLOAD as u64,
            header_bytes: 0,
            payload_fill: 0xB6,
            header_fill: 0,
            fence_every: if mode == SendMode::StrictlyOrdered {
                1
            } else {
                0
            },
            final_fence: false,
            wrap_bytes: tcc_msglib::RDVZ_BYTES,
        };
        self.sink.clear();
        let out =
            self.platform.nodes[node].store_burst(now, zone_base, &pattern, len, &mut self.sink);
        now = out.issued;
        let mut retire = start.max(out.retire);
        let mut visible = start.max(self.drain_visible(node));
        // Descriptor through the ring (one header-sized store + fence).
        let out =
            self.platform.nodes[node].store(now, zone_base - 0x1000, &[1u8; 8], &mut self.sink);
        retire = retire.max(out.retire);
        let f = self.platform.nodes[node].sfence(out.issued, &mut self.sink);
        retire = retire.max(f.retire);
        visible = visible.max(self.drain_visible(node));
        (retire, visible)
    }

    /// Drive a concurrent synthetic traffic pattern through the
    /// event-driven fabric: one credit-paced 64 B posted-write flow of
    /// `bytes_per_flow` per (src, dst) pair the pattern expands to, all
    /// interleaved in one event queue so they genuinely contend for
    /// links. Requires [`EngineKind::EventDriven`].
    pub fn run_workload(&mut self, pattern: TrafficPattern, bytes_per_flow: u64) -> WorkloadReport {
        assert!(
            self.event.is_some(),
            "run_workload requires EngineKind::EventDriven (builder: .engine(..))"
        );
        // Fresh engine and clocks: each workload is its own epoch.
        self.reset_timebase();
        let pairs = pattern_pairs(&self.spec(), pattern);
        assert!(
            !pairs.is_empty(),
            "pattern yields no flows on this topology"
        );
        let engine = self.event.as_mut().expect("event engine");
        for (src, dst) in pairs {
            engine.add_flow(&mut self.platform, src, dst, bytes_per_flow);
        }
        engine.run_quiescent(&mut self.platform);
        engine.assert_quiescent_credits();
        let flows = engine.flow_reports();
        let injected_packets: u64 = flows.iter().map(|f| f.injected_packets).sum();
        WorkloadReport {
            stalls_no_credit: engine.stalls_no_credit(),
            events: engine.events_handled(),
            elapsed: engine.now(),
            injected_packets,
            delivered_packets: engine.commits().len() as u64,
            flows,
        }
    }
}

/// Receiver-side steady-state goodput for the event engine's eager
/// stream: application bytes per second over the second half of the
/// commit log (sorted by visibility), scaling the ring traffic down by
/// the header overhead each message carries.
fn eager_delivered_goodput(commits: &[CommitRec], floor: usize, size: usize) -> f64 {
    let cells = size.div_ceil(CELL_PAYLOAD).max(1);
    let app_frac = size as f64 / (size + 8 * cells) as f64;
    let mut vis: Vec<(SimTime, u64)> = commits[floor..]
        .iter()
        .map(|c| (c.visible, c.bytes))
        .collect();
    vis.sort();
    assert!(vis.len() >= 4, "not enough deliveries to measure");
    let mid = vis.len() / 2;
    let t0 = vis[mid].0;
    let t1 = vis.last().expect("nonempty").0;
    let ring: u64 = vis[mid + 1..].iter().map(|x| x.1).sum();
    ring as f64 * app_frac / (t1.since(t0).picos() as f64 / 1e12) / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_firmware::topology::{ClusterTopology, SupernodeSpec};

    const MB: u64 = 1 << 20;

    fn pair() -> SimCluster {
        let spec = ClusterSpec::new(SupernodeSpec::new(1, MB), ClusterTopology::Pair);
        SimCluster::boot(spec, UarchParams::shanghai())
    }

    fn pair_event() -> SimCluster {
        let spec = ClusterSpec::new(SupernodeSpec::new(1, MB), ClusterTopology::Pair);
        SimCluster::boot_engine(
            spec,
            UarchParams::shanghai(),
            tcc_ht::link::LinkConfig::PROTOTYPE,
            EngineKind::EventDriven,
        )
    }

    #[test]
    fn headline_latency_64b_is_about_227ns() {
        let mut c = pair();
        let lat = c.pingpong(0, 1, 64, 50);
        let ns = lat.nanos();
        assert!(
            (ns - 227.0).abs() < 25.0,
            "64 B half-RTT = {ns:.1} ns (paper: 227 ns)"
        );
    }

    #[test]
    fn latency_1kb_below_1us() {
        let mut c = pair();
        let lat = c.pingpong(0, 1, 1024, 20);
        assert!(lat.micros() < 1.0, "1 KB half-RTT = {lat}");
        assert!(lat.nanos() > 300.0, "sanity: bigger than 64 B");
    }

    #[test]
    fn weak_bandwidth_64b_about_2500() {
        let mut c = pair();
        let bw = c.stream_bandwidth(0, 1, 64, SendMode::WeaklyOrdered, 20);
        assert!(
            (bw - 2500.0).abs() < 400.0,
            "64 B weak bandwidth = {bw:.0} MB/s (paper: ~2500)"
        );
    }

    #[test]
    fn strict_bandwidth_plateaus_near_2000() {
        let mut c = pair();
        let bw = c.stream_bandwidth(0, 1, 4096, SendMode::StrictlyOrdered, 10);
        assert!(
            (bw - 2000.0).abs() < 300.0,
            "strict bandwidth = {bw:.0} MB/s (paper: ~2000)"
        );
    }

    #[test]
    fn weak_peak_at_256k_exceeds_5000() {
        let mut c = pair();
        let bw = c.stream_bandwidth(0, 1, 256 << 10, SendMode::WeaklyOrdered, 5);
        assert!(
            bw > 5000.0 && bw < 5800.0,
            "256 KB weak bandwidth = {bw:.0} MB/s (paper: ~5300)"
        );
    }

    #[test]
    fn event_engine_reproduces_headline_latency() {
        // The paper's 227 ns anchor must hold on the event-driven fabric
        // too: same store path, same wire math, now with real credits.
        let mut c = pair_event();
        let lat = c.pingpong(0, 1, 64, 50);
        let ns = lat.nanos();
        assert!(
            (ns - 227.0).abs() < 25.0,
            "event-driven 64 B half-RTT = {ns:.1} ns (paper: 227 ns)"
        );
    }

    #[test]
    fn event_engine_bandwidth_agrees_with_chained() {
        // Cross-validation pin: the two engines must tell the same story
        // for a single 64 B eager stream — the paper's ~2500 MB/s point —
        // within 10% of each other.
        let mut chained = pair();
        let mut event = pair_event();
        let bw_c = chained.stream_bandwidth(0, 1, 64, SendMode::WeaklyOrdered, 20);
        let bw_e = event.stream_bandwidth(0, 1, 64, SendMode::WeaklyOrdered, 20);
        assert!(
            (bw_e - 2500.0).abs() < 400.0,
            "event-driven 64 B bandwidth = {bw_e:.0} MB/s (paper: ~2500)"
        );
        let err = (bw_e - bw_c).abs() / bw_c;
        assert!(
            err < 0.10,
            "engines disagree: chained {bw_c:.0} vs event {bw_e:.0} MB/s"
        );
    }

    #[test]
    fn concurrent_all_to_all_contends_without_loss() {
        // The tentpole behaviour: concurrent flows on a 2x2 mesh through
        // the event engine see real backpressure (credit stalls) and
        // still deliver every packet.
        let spec = ClusterSpec::new(
            SupernodeSpec::new(2, MB),
            ClusterTopology::Mesh { x: 2, y: 2 },
        );
        let mut c = SimCluster::boot_engine(
            spec,
            UarchParams::shanghai(),
            tcc_ht::link::LinkConfig::PROTOTYPE,
            EngineKind::EventDriven,
        );
        let report = c.run_workload(TrafficPattern::AllToAll, 16 << 10);
        assert_eq!(report.flows.len(), 12);
        assert_eq!(report.lost_packets(), 0, "{report:?}");
        assert_eq!(report.delivered_packets, 12 * 256);
        assert!(
            report.stalls_no_credit > 0,
            "concurrent mesh traffic never hit flow control"
        );
        for f in &report.flows {
            assert_eq!(f.delivered_bytes, 16 << 10, "flow {}->{}", f.src, f.dst);
        }
    }

    #[test]
    fn weak_large_declines_toward_sustained() {
        let mut c = pair();
        let peak = c.stream_bandwidth(0, 1, 256 << 10, SendMode::WeaklyOrdered, 3);
        let big = c.stream_bandwidth(0, 1, 4 << 20, SendMode::WeaklyOrdered, 3);
        assert!(big < peak * 0.65, "peak {peak:.0}, 4 MB {big:.0}");
        assert!(big > 2500.0, "sustained stays near link rate: {big:.0}");
    }
}
