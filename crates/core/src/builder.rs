//! The user-facing entry point: describe a TCCluster, then realise it as
//! a packet-level simulation ([`SimCluster`]) or as a threaded
//! shared-memory emulation ([`ShmCluster`]).

use crate::engine::{EngineKind, EngineOptions, MailboxKind};
use crate::shm_cluster::ShmCluster;
use crate::sim::SimCluster;
use tcc_fabric::event::QueueBackend;
use tcc_firmware::topology::{ClusterSpec, ClusterTopology, SupernodeSpec};
use tcc_ht::link::LinkConfig;
use tcc_msglib::ring::SendMode;
use tcc_opteron::UarchParams;

/// Builder for TCCluster instances.
#[derive(Debug, Clone)]
pub struct TcclusterBuilder {
    topology: ClusterTopology,
    processors: usize,
    dram_per_node: u64,
    tcc_link: LinkConfig,
    params: UarchParams,
    mode: SendMode,
    engine: EngineKind,
    options: EngineOptions,
}

impl Default for TcclusterBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TcclusterBuilder {
    /// Defaults mirror the paper's prototype: two single-socket
    /// supernodes joined by one HT800/16-bit cable.
    #[must_use]
    pub fn new() -> Self {
        TcclusterBuilder {
            topology: ClusterTopology::Pair,
            processors: 1,
            dram_per_node: 1 << 20,
            tcc_link: LinkConfig::PROTOTYPE,
            params: UarchParams::shanghai(),
            mode: SendMode::WeaklyOrdered,
            engine: EngineKind::Chained,
            options: EngineOptions::default(),
        }
    }

    #[must_use]
    pub fn topology(mut self, t: ClusterTopology) -> Self {
        self.topology = t;
        self
    }

    #[must_use]
    pub fn processors_per_supernode(mut self, p: usize) -> Self {
        self.processors = p;
        self
    }

    /// Simulated DRAM per processor (power of two).
    #[must_use]
    pub fn dram_per_node(mut self, bytes: u64) -> Self {
        self.dram_per_node = bytes;
        self
    }

    /// TCC cable configuration (e.g. [`LinkConfig::PROTOTYPE`] = HT800,
    /// or [`LinkConfig::HT3_FULL`] for the backplane the paper projects).
    #[must_use]
    pub fn tcc_link(mut self, cfg: LinkConfig) -> Self {
        self.tcc_link = cfg;
        self
    }

    #[must_use]
    pub fn params(mut self, p: UarchParams) -> Self {
        self.params = p;
        self
    }

    /// Send-ordering mode for the shared-memory backend.
    #[must_use]
    pub fn send_mode(mut self, m: SendMode) -> Self {
        self.mode = m;
        self
    }

    /// Timing engine for the packet-level simulation: the default
    /// analytic [`EngineKind::Chained`] path, or the discrete-event
    /// fabric ([`EngineKind::EventDriven`]) with real credit flow control
    /// and concurrent multi-flow contention. See `docs/engine.md`.
    #[must_use]
    pub fn engine(mut self, k: EngineKind) -> Self {
        self.engine = k;
        self
    }

    /// Worker threads for the event engine's sharded conservative-PDES
    /// executive (one shard per supernode; extra threads are clamped).
    /// Results are bit-identical for every thread count — this knob
    /// trades wall clock only. Meaningful with
    /// [`EngineKind::EventDriven`].
    #[must_use]
    pub fn event_threads(mut self, threads: usize) -> Self {
        self.options.threads = threads.max(1);
        self
    }

    /// Event-queue backend for the event engine: the population-adaptive
    /// default (ladder while small, calendar when the population
    /// sustains above the hold-model crossover), or one of the pure
    /// backends kept for differential testing and A/B timing.
    #[must_use]
    pub fn event_queue(mut self, backend: QueueBackend) -> Self {
        self.options.backend = backend;
        self
    }

    /// Cross-shard mailbox implementation for the event engine: batched
    /// SPSC rings (default) or the mutex mailbox kept for differential
    /// testing. Results are bit-identical either way.
    #[must_use]
    pub fn event_mailbox(mut self, mailbox: MailboxKind) -> Self {
        self.options.mailbox = mailbox;
        self
    }

    /// Toggle the event engine's flat fast lane: fixed-shape 64 B posted
    /// writes dispatch through a precomputed per-node table instead of
    /// the general decision tree. On by default; results are
    /// bit-identical either way, so turning it off only serves A/B
    /// timing and differential tests.
    #[must_use]
    pub fn event_flat_lane(mut self, on: bool) -> Self {
        self.options.flat_lane = on;
        self
    }

    /// Inject a monotonic nanosecond clock for the event engine's
    /// per-stage attribution ([`EventEngine::stage_profile`]
    /// (crate::EventEngine::stage_profile)). Off by default; attribution
    /// runs time one sampled event in
    /// [`PROFILE_SAMPLE_EVERY`](crate::engine::PROFILE_SAMPLE_EVERY), so
    /// the overhead is a small fraction of a clock read per event.
    #[must_use]
    pub fn event_profile_clock(mut self, clock: fn() -> u64) -> Self {
        self.options.profile_clock = Some(clock);
        self
    }

    #[must_use]
    pub fn spec(&self) -> ClusterSpec {
        ClusterSpec::new(
            SupernodeSpec::new(self.processors, self.dram_per_node),
            self.topology,
        )
    }

    /// Boot the packet-level simulation (runs the full §V firmware
    /// sequence, including the remote-access self test).
    #[must_use]
    pub fn build_sim(&self) -> SimCluster {
        SimCluster::boot_engine_opts(
            self.spec(),
            self.params.clone(),
            self.tcc_link,
            self.engine,
            self.options,
        )
    }

    /// Build the threaded shared-memory emulation with one rank per
    /// processor.
    #[must_use]
    pub fn build_shm(&self) -> ShmCluster {
        let ranks = self.spec().total_processors();
        ShmCluster::new(ranks, self.mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_builder_is_the_prototype() {
        let b = TcclusterBuilder::new();
        let spec = b.spec();
        assert_eq!(spec.supernode_count(), 2);
        assert_eq!(spec.total_processors(), 2);
    }

    #[test]
    fn builder_shapes_clusters() {
        let b = TcclusterBuilder::new()
            .topology(ClusterTopology::Mesh { x: 2, y: 2 })
            .processors_per_supernode(2);
        assert_eq!(b.spec().total_processors(), 8);
        let shm = b.build_shm();
        assert_eq!(shm.n(), 8);
    }

    #[test]
    fn sim_builds_and_self_tests() {
        let c = TcclusterBuilder::new().build_sim();
        assert_eq!(c.boot.selftest_pairs, 2);
    }
}
