//! # tcc-verify — correctness tooling for the TCCluster reproduction
//!
//! The paper's mechanism is sound only while the HT protocol invariants
//! hold: credit conservation across all six pools per link direction,
//! the ch. 6 I/O ordering table, SrcTag/response matching, consistent
//! address maps and routes, and interrupt containment. This crate turns
//! those doc-comment invariants into executable checks at three depths:
//!
//! * [`monitor`] — runtime observers mounted on a live simulation via
//!   `Platform::with_monitors`, checking every delivered packet;
//! * [`audit`] + [`ledger`] — whole-platform static audits (address maps,
//!   routes, broadcast masks) and credit-conservation snapshots;
//! * [`mc`] — a bounded model checker proving deadlock-freedom and
//!   credit conservation exhaustively on small configurations, with
//!   minimal counterexample traces on failure.
//!
//! Violations are structured [`diag::Violation`] values, not panics.
//! See `docs/invariants.md` for the invariant ↔ spec-section map.

#![forbid(unsafe_code)]

pub mod audit;
pub mod diag;
pub mod ledger;
pub mod mc;
pub mod monitor;

pub use audit::{audit_platform, audit_quiescent_credits};
pub use diag::{PacketRef, PortRef, Violation};
pub use ledger::{check_conservation, TransitCounts};
pub use mc::{check, Counterexample, Fault, McConfig, McResult, McTopology};
pub use monitor::{key_may_pass, InvariantMonitor, MonitorHandle, OrderKey, Report};
