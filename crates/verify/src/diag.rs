//! Structured diagnostics for invariant violations.
//!
//! Every check in this crate reports a [`Violation`] carrying the full
//! context of the failure — which link, which packet pair, which cycle —
//! instead of a bare panic, so a failing run can be triaged from the
//! report alone and a harness can decide whether to abort or collect.

use tcc_ht::flow::CreditClass;
use tcc_ht::VirtualChannel;

/// A (node, link) port, printed as `n0.l3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortRef {
    pub node: usize,
    pub link: u8,
}

impl core::fmt::Display for PortRef {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "n{}.l{}", self.node, self.link)
    }
}

/// Compact description of one packet involved in a violation: its opcode
/// class, VC, address if any, and the monitor-assigned delivery sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketRef {
    pub opcode: &'static str,
    pub vc: VirtualChannel,
    pub addr: Option<u64>,
    /// Monotonic per-link emission sequence assigned by the monitor.
    pub seq: u64,
    /// Arrival time in picoseconds.
    pub arrival_ps: u64,
}

impl core::fmt::Display for PacketRef {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "#{} {}/{}", self.seq, self.opcode, self.vc)?;
        if let Some(a) = self.addr {
            write!(f, " @{a:#x}")?;
        }
        write!(f, " arr={}ps", self.arrival_ps)
    }
}

/// One detected invariant violation, with enough structure to identify
/// the invariant, the location and the witnesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// `in_flight + available + pending_return != initial` for a pool.
    CreditConservation {
        link: PortRef,
        vc: VirtualChannel,
        class: CreditClass,
        initial: u8,
        /// Sum observed across transmitter, wire and receiver.
        accounted: u32,
    },
    /// A typed credit-accounting error surfaced by the flow layer.
    CreditAccounting { link: PortRef, detail: String },
    /// Delivery order contradicts the HT ch. 6 ordering table: `later`
    /// overtook `earlier` on the same directed link although
    /// `may_pass(later, earlier)` is false.
    OrderingViolation {
        link: PortRef,
        earlier: PacketRef,
        later: PacketRef,
    },
    /// A SrcTag was issued while still outstanding (uniqueness broken).
    TagReuse { port: PortRef, tag: u8 },
    /// A response arrived carrying a tag with no outstanding request.
    TagUnmatched { port: PortRef, tag: u8 },
    /// A broadcast crossed a non-coherent (TCC) link — interrupts must
    /// stay inside the supernode.
    BroadcastLeak { link: PortRef, dst: PortRef },
    /// Non-posted or response traffic on a TCC link, which the
    /// architecture forbids (posted-write-only fabric).
    NonPostedOnTcc { link: PortRef, packet: PacketRef },
    /// An address map failed validation or two nodes' maps disagree.
    AddrMap { node: usize, detail: String },
    /// A routed walk from `from` toward `target_node`'s memory failed.
    Route {
        from: usize,
        target_node: usize,
        addr: u64,
        detail: String,
    },
    /// A broadcast route mask includes a TCC link.
    BroadcastRoute { node: usize, link: u8 },
}

impl core::fmt::Display for Violation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Violation::CreditConservation {
                link,
                vc,
                class,
                initial,
                accounted,
            } => write!(
                f,
                "credit conservation broken on {link} {vc}/{class}: accounted {accounted} \
                 of initial {initial}"
            ),
            Violation::CreditAccounting { link, detail } => {
                write!(f, "credit accounting error on {link}: {detail}")
            }
            Violation::OrderingViolation {
                link,
                earlier,
                later,
            } => write!(
                f,
                "illegal pass on {link}: [{later}] overtook [{earlier}] but may_pass=false"
            ),
            Violation::TagReuse { port, tag } => {
                write!(f, "SrcTag {tag} reissued while outstanding at {port}")
            }
            Violation::TagUnmatched { port, tag } => {
                write!(f, "response with unmatched SrcTag {tag} at {port}")
            }
            Violation::BroadcastLeak { link, dst } => {
                write!(f, "broadcast leaked over TCC link {link} -> {dst}")
            }
            Violation::NonPostedOnTcc { link, packet } => {
                write!(f, "non-posted traffic on TCC link {link}: [{packet}]")
            }
            Violation::AddrMap { node, detail } => {
                write!(f, "address map on node {node}: {detail}")
            }
            Violation::Route {
                from,
                target_node,
                addr,
                detail,
            } => write!(
                f,
                "route walk n{from} -> n{target_node} (addr {addr:#x}): {detail}"
            ),
            Violation::BroadcastRoute { node, link } => {
                write!(
                    f,
                    "broadcast route mask on node {node} includes TCC link l{link}"
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_structured() {
        let v = Violation::OrderingViolation {
            link: PortRef { node: 0, link: 3 },
            earlier: PacketRef {
                opcode: "WrSized",
                vc: VirtualChannel::Posted,
                addr: Some(0x2000),
                seq: 7,
                arrival_ps: 1000,
            },
            later: PacketRef {
                opcode: "RdSized",
                vc: VirtualChannel::NonPosted,
                addr: Some(0x3000),
                seq: 8,
                arrival_ps: 900,
            },
        };
        let s = v.to_string();
        assert!(s.contains("n0.l3"), "{s}");
        assert!(s.contains("#8"), "{s}");
        assert!(s.contains("#7"), "{s}");
    }
}
