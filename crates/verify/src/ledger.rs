//! Credit-conservation auditing.
//!
//! The six-pool invariant (`in_flight + available + pending_return ==
//! initial`, per VC and per cmd/data class) is only observable with both
//! ends of a link in hand: the transmitter's [`TxCredits`], the
//! receiver's [`RxBuffers`], and whatever is in transit on the wire. The
//! [`TransitCounts`] snapshot supplies the wire term; closed-loop
//! harnesses (like the event-driven fabric in `tccluster::engine`) keep
//! it by counting packets scheduled but not yet accepted, and credit
//! returns sent but not yet applied — at quiescence the wire term is
//! zero and a default snapshot suffices.

use crate::diag::{PortRef, Violation};
use tcc_ht::flow::{CreditClass, RxBuffers, TxCredits};
use tcc_ht::VirtualChannel;

/// Credits currently on the wire, from the auditor's point of view.
#[derive(Debug, Clone, Copy, Default)]
pub struct TransitCounts {
    /// Command credits consumed by packets sent but not yet accepted.
    pub cmd: [u32; 3],
    /// Data credits consumed by packets sent but not yet accepted.
    pub data: [u32; 3],
    /// Command credits harvested into NOPs still in flight.
    pub ret_cmd: [u32; 3],
    /// Data credits harvested into NOPs still in flight.
    pub ret_data: [u32; 3],
}

/// Audit all six pools of one link direction. Returns one violation per
/// broken pool; empty means conservation holds.
pub fn check_conservation(
    link: PortRef,
    tx: &TxCredits,
    rx: &RxBuffers,
    transit: &TransitCounts,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for vc in VirtualChannel::ALL {
        let i = vc.index();
        let initial = tx.initial_cmd(vc);
        if rx.initial() != initial {
            out.push(Violation::CreditAccounting {
                link,
                detail: format!(
                    "buffer depth mismatch: tx initial {initial}, rx depth {}",
                    rx.initial()
                ),
            });
        }
        let cmd_accounted = tx.available_cmd(vc) as u32
            + transit.cmd[i]
            + rx.held(vc) as u32
            + rx.pending(vc) as u32
            + transit.ret_cmd[i];
        if cmd_accounted != initial as u32 {
            out.push(Violation::CreditConservation {
                link,
                vc,
                class: CreditClass::Cmd,
                initial,
                accounted: cmd_accounted,
            });
        }
        let initial_data = tx.initial_data(vc);
        let data_accounted = tx.available_data(vc) as u32
            + transit.data[i]
            + rx.held_data(vc) as u32
            + rx.pending_data(vc) as u32
            + transit.ret_data[i];
        if data_accounted != initial_data as u32 {
            out.push(Violation::CreditConservation {
                link,
                vc,
                class: CreditClass::Data,
                initial: initial_data,
                accounted: data_accounted,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use tcc_ht::flow::CreditReturn;
    use tcc_ht::Packet;

    const LINK: PortRef = PortRef { node: 0, link: 3 };

    fn pw() -> Packet {
        Packet::posted_write(0x1000, Bytes::from_static(&[0u8; 64]))
    }

    #[test]
    fn balanced_link_is_conserved_at_every_step() {
        let mut tx = TxCredits::new(4);
        let mut rx = RxBuffers::new(4);
        let mut transit = TransitCounts::default();
        let p = pw();

        // Send two packets (credits in transit while "on the wire").
        for _ in 0..2 {
            tx.consume(&p).unwrap();
            transit.cmd[0] += 1;
            transit.data[0] += 1;
            assert!(check_conservation(LINK, &tx, &rx, &transit).is_empty());
        }
        // They arrive.
        for _ in 0..2 {
            rx.accept(&p).unwrap();
            transit.cmd[0] -= 1;
            transit.data[0] -= 1;
            assert!(check_conservation(LINK, &tx, &rx, &transit).is_empty());
        }
        // Drain one, harvest, fly the NOP back, apply it.
        rx.drain(&p).unwrap();
        let ret = rx.harvest();
        transit.ret_cmd[0] += ret.cmd[0] as u32;
        transit.ret_data[0] += ret.data[0] as u32;
        assert!(check_conservation(LINK, &tx, &rx, &transit).is_empty());
        tx.release(ret).unwrap();
        transit.ret_cmd[0] -= ret.cmd[0] as u32;
        transit.ret_data[0] -= ret.data[0] as u32;
        assert!(check_conservation(LINK, &tx, &rx, &transit).is_empty());
    }

    #[test]
    fn dropped_credit_return_is_flagged_as_leak() {
        let mut tx = TxCredits::new(4);
        let mut rx = RxBuffers::new(4);
        let transit = TransitCounts::default();
        let p = pw();
        tx.consume(&p).unwrap();
        rx.accept(&p).unwrap();
        rx.drain(&p).unwrap();
        // The faulty receiver harvests the credits and *drops* the NOP.
        let _lost: CreditReturn = rx.harvest();
        let vs = check_conservation(LINK, &tx, &rx, &transit);
        assert!(
            vs.iter().any(|v| matches!(
                v,
                Violation::CreditConservation {
                    class: CreditClass::Cmd,
                    accounted: 3,
                    initial: 4,
                    ..
                }
            )),
            "{vs:?}"
        );
    }

    #[test]
    fn depth_mismatch_is_flagged() {
        let tx = TxCredits::new(4);
        let rx = RxBuffers::new(8);
        let vs = check_conservation(LINK, &tx, &rx, &TransitCounts::default());
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::CreditAccounting { .. })));
    }
}
