//! Runtime invariant monitors for the simulated fabric.
//!
//! [`InvariantMonitor`] implements [`tcc_firmware::FabricMonitor`] and
//! attaches to a [`Platform`](tcc_firmware::Platform) via
//! `Platform::with_monitors`. On every delivered packet it checks:
//!
//! * **delivery-order legality** — within one directed link, a packet that
//!   overtakes an earlier-emitted packet (earlier arrival time) must be
//!   allowed to by the HT ch. 6 ordering table ([`tcc_ht::ordering::may_pass`]);
//! * **SrcTag uniqueness** — a tag may not be reissued on a link while a
//!   response for it is outstanding, and a response must match an
//!   outstanding tag;
//! * **TCC link discipline** — no broadcasts and no non-posted/response
//!   traffic ever cross a non-coherent (TCC) link.
//!
//! Violations accumulate in a shared [`Report`] read through the
//! [`MonitorHandle`] the caller keeps. When no monitor is installed the
//! platform hot path pays a single branch (see `Platform::propagate`).

use crate::diag::{PacketRef, PortRef, Violation};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::rc::Rc;
use tcc_firmware::{FabricMonitor, PacketEvent};
use tcc_ht::packet::Command;
use tcc_ht::{Packet, VirtualChannel};

/// How many recent deliveries per directed link the ordering check keeps.
/// A pass can only happen within one serialisation window of the wire, so
/// a small bound loses nothing in practice while bounding memory.
const ORDER_WINDOW: usize = 64;

/// Everything a packet's ordering behaviour depends on — the projection
/// of a [`Packet`] that [`may_pass`](tcc_ht::ordering::may_pass) actually
/// reads. [`key_may_pass`] on two keys agrees with `may_pass` on the
/// packets they were taken from (property-tested in `tests/monitors.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderKey {
    pub vc: VirtualChannel,
    pub is_fence: bool,
    pub pass_pw: bool,
}

impl OrderKey {
    pub fn of(pkt: &Packet) -> Self {
        OrderKey {
            vc: pkt.vc(),
            is_fence: matches!(pkt.cmd, Command::Fence { .. }),
            pass_pw: matches!(
                pkt.cmd,
                Command::WrSized { pass_pw: true, .. } | Command::RdSized { pass_pw: true, .. }
            ),
        }
    }
}

/// The ordering oracle on projected keys; mirrors
/// [`tcc_ht::ordering::may_pass`] exactly.
pub fn key_may_pass(later: OrderKey, earlier: OrderKey) -> bool {
    use VirtualChannel::*;
    if later.vc == earlier.vc {
        return false;
    }
    if earlier.is_fence || later.is_fence {
        return false;
    }
    match (later.vc, earlier.vc) {
        (NonPosted, Posted) | (Response, Posted) => later.pass_pw,
        (Posted, NonPosted) | (Posted, Response) => true,
        (NonPosted, Response) | (Response, NonPosted) => true,
        _ => false,
    }
}

/// Accumulated monitor output.
#[derive(Debug, Default)]
pub struct Report {
    pub violations: Vec<Violation>,
    pub packets_seen: u64,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Caller-side handle onto the report a mounted monitor writes into.
#[derive(Debug, Clone)]
pub struct MonitorHandle(Rc<RefCell<Report>>);

impl MonitorHandle {
    /// Run `f` against the current report.
    pub fn with<R>(&self, f: impl FnOnce(&Report) -> R) -> R {
        f(&self.0.borrow())
    }

    pub fn violations(&self) -> Vec<Violation> {
        self.0.borrow().violations.clone()
    }

    pub fn packets_seen(&self) -> u64 {
        self.0.borrow().packets_seen
    }

    pub fn is_clean(&self) -> bool {
        self.0.borrow().is_clean()
    }
}

#[derive(Debug, Default)]
struct LinkWindow {
    /// Recently delivered packets on this directed link, in emission order.
    recent: VecDeque<(OrderKey, PacketRef)>,
    next_seq: u64,
}

/// The pluggable observer. Build one paired with its handle via
/// [`InvariantMonitor::new`], then hand the box to
/// `Platform::with_monitors`.
#[derive(Debug)]
pub struct InvariantMonitor {
    report: Rc<RefCell<Report>>,
    /// Ordering window per directed link, keyed by the transmitting port.
    windows: BTreeMap<PortRef, LinkWindow>,
    /// Outstanding SrcTags per requesting port (request's source).
    outstanding: BTreeMap<PortRef, BTreeSet<u8>>,
}

impl InvariantMonitor {
    /// A fresh monitor and the handle its report is read through.
    pub fn new() -> (Box<Self>, MonitorHandle) {
        let report = Rc::new(RefCell::new(Report::default()));
        let handle = MonitorHandle(Rc::clone(&report));
        (
            Box::new(InvariantMonitor {
                report,
                windows: BTreeMap::new(),
                outstanding: BTreeMap::new(),
            }),
            handle,
        )
    }

    fn packet_ref(pkt: &Packet, seq: u64, arrival_ps: u64) -> PacketRef {
        PacketRef {
            opcode: match pkt.cmd {
                Command::Nop { .. } => "Nop",
                Command::WrSized { .. } => "WrSized",
                Command::RdSized { .. } => "RdSized",
                Command::RdResponse { .. } => "RdResponse",
                Command::TgtDone { .. } => "TgtDone",
                Command::Broadcast { .. } => "Broadcast",
                Command::Fence { .. } => "Fence",
                Command::Flush { .. } => "Flush",
            },
            vc: pkt.vc(),
            addr: pkt.addr(),
            seq,
            arrival_ps,
        }
    }

    fn check_ordering(&mut self, src: PortRef, pkt: &Packet, arrival_ps: u64) {
        let window = self.windows.entry(src).or_default();
        let seq = window.next_seq;
        window.next_seq += 1;
        let key = OrderKey::of(pkt);
        let me = Self::packet_ref(pkt, seq, arrival_ps);
        for (earlier_key, earlier) in window.recent.iter() {
            // Emitted earlier but arriving later: `me` passed `earlier`.
            if arrival_ps < earlier.arrival_ps && !key_may_pass(key, *earlier_key) {
                self.report
                    .borrow_mut()
                    .violations
                    .push(Violation::OrderingViolation {
                        link: src,
                        earlier: earlier.clone(),
                        later: me.clone(),
                    });
            }
        }
        if window.recent.len() == ORDER_WINDOW {
            window.recent.pop_front();
        }
        window.recent.push_back((key, me));
    }

    fn check_tags(&mut self, src: PortRef, dst: PortRef, pkt: &Packet) {
        match &pkt.cmd {
            cmd if cmd.needs_response() => {
                let tag = match cmd {
                    Command::WrSized { tag: Some(t), .. } => Some(t.0),
                    Command::RdSized { tag, .. } | Command::Flush { tag, .. } => Some(tag.0),
                    _ => None,
                };
                if let Some(tag) = tag {
                    if !self.outstanding.entry(src).or_default().insert(tag) {
                        self.report
                            .borrow_mut()
                            .violations
                            .push(Violation::TagReuse { port: src, tag });
                    }
                }
            }
            // The matching request left through the port this response
            // is arriving at.
            Command::RdResponse { tag, .. } | Command::TgtDone { tag, .. }
                if !self.outstanding.entry(dst).or_default().remove(&tag.0) =>
            {
                self.report
                    .borrow_mut()
                    .violations
                    .push(Violation::TagUnmatched {
                        port: dst,
                        tag: tag.0,
                    });
            }
            _ => {}
        }
    }

    fn check_tcc_discipline(&mut self, src: PortRef, dst: PortRef, pkt: &Packet, seq_hint: u64) {
        if matches!(pkt.cmd, Command::Broadcast { .. }) {
            self.report
                .borrow_mut()
                .violations
                .push(Violation::BroadcastLeak { link: src, dst });
        } else if pkt.vc() != VirtualChannel::Posted {
            let packet = Self::packet_ref(pkt, seq_hint, 0);
            self.report
                .borrow_mut()
                .violations
                .push(Violation::NonPostedOnTcc { link: src, packet });
        }
    }
}

impl FabricMonitor for InvariantMonitor {
    fn on_packet(&mut self, ev: &PacketEvent<'_>) {
        let src = PortRef {
            node: ev.src.0,
            link: ev.src.1 .0,
        };
        let dst = PortRef {
            node: ev.dst.0,
            link: ev.dst.1 .0,
        };
        self.report.borrow_mut().packets_seen += 1;
        let arrival_ps = ev.arrival.0;
        self.check_ordering(src, ev.packet, arrival_ps);
        self.check_tags(src, dst, ev.packet);
        if !ev.coherent {
            let seq = self.windows.get(&src).map_or(0, |w| w.next_seq);
            self.check_tcc_discipline(src, dst, ev.packet, seq);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use tcc_fabric::time::SimTime;
    use tcc_ht::packet::{SrcTag, UnitId};
    use tcc_opteron::regs::LinkId;

    fn ev<'a>(pkt: &'a Packet, arrival_ps: u64, coherent: bool) -> PacketEvent<'a> {
        PacketEvent {
            src: (0, LinkId(3)),
            dst: (1, LinkId(2)),
            coherent,
            packet: pkt,
            arrival: SimTime(arrival_ps),
        }
    }

    #[test]
    fn fifo_posted_stream_is_clean() {
        let (mut mon, handle) = InvariantMonitor::new();
        for i in 0..100u64 {
            let p = Packet::posted_write(i * 64, Bytes::from_static(&[0u8; 64]));
            mon.on_packet(&ev(&p, 1000 + i * 10, false));
        }
        assert!(handle.is_clean(), "{:?}", handle.violations());
        assert_eq!(handle.packets_seen(), 100);
    }

    #[test]
    fn illegal_pass_detected_with_context() {
        let (mut mon, handle) = InvariantMonitor::new();
        // A read (non-posted, pass_pw=0) emitted after a posted write must
        // not arrive earlier.
        let w = Packet::posted_write(0x2000, Bytes::from_static(&[0u8; 64]));
        let r = Packet::control(Command::RdSized {
            unit: UnitId::HOST,
            addr: 0x3000,
            count: 0,
            pass_pw: false,
            seq_id: 0,
            tag: SrcTag::new(1),
        });
        mon.on_packet(&ev(&w, 2000, true));
        mon.on_packet(&ev(&r, 1000, true));
        let vs = handle.violations();
        assert_eq!(vs.len(), 1);
        match &vs[0] {
            Violation::OrderingViolation {
                link,
                earlier,
                later,
            } => {
                assert_eq!(link.node, 0);
                assert_eq!(earlier.opcode, "WrSized");
                assert_eq!(later.opcode, "RdSized");
                assert!(later.arrival_ps < earlier.arrival_ps);
            }
            other => panic!("wrong violation: {other}"),
        }
    }

    #[test]
    fn legal_pass_passes() {
        let (mut mon, handle) = InvariantMonitor::new();
        // pass_pw=1 read may overtake a posted write.
        let w = Packet::posted_write(0x2000, Bytes::from_static(&[0u8; 64]));
        let r = Packet::control(Command::RdSized {
            unit: UnitId::HOST,
            addr: 0x3000,
            count: 0,
            pass_pw: true,
            seq_id: 0,
            tag: SrcTag::new(1),
        });
        mon.on_packet(&ev(&w, 2000, true));
        mon.on_packet(&ev(&r, 1000, true));
        assert!(handle.is_clean(), "{:?}", handle.violations());
    }

    #[test]
    fn tag_reuse_and_unmatched_detected() {
        let (mut mon, handle) = InvariantMonitor::new();
        let rd = |t: u8| {
            Packet::control(Command::RdSized {
                unit: UnitId::HOST,
                addr: 0,
                count: 0,
                pass_pw: false,
                seq_id: 0,
                tag: SrcTag::new(t),
            })
        };
        mon.on_packet(&ev(&rd(4), 100, true));
        mon.on_packet(&ev(&rd(4), 200, true)); // reuse while outstanding
        let vs = handle.violations();
        assert!(
            matches!(vs[0], Violation::TagReuse { tag: 4, .. }),
            "{vs:?}"
        );

        // An unmatched response (tag 9 never requested).
        let resp = Packet::control(Command::TgtDone {
            unit: UnitId::HOST,
            tag: SrcTag::new(9),
            error: false,
        });
        // Response travels the reverse direction: dst is the requester port.
        let rev = PacketEvent {
            src: (1, LinkId(2)),
            dst: (0, LinkId(3)),
            coherent: true,
            packet: &resp,
            arrival: SimTime(300),
        };
        mon.on_packet(&rev);
        let vs = handle.violations();
        assert!(
            vs.iter()
                .any(|v| matches!(v, Violation::TagUnmatched { tag: 9, .. })),
            "{vs:?}"
        );
    }

    #[test]
    fn matched_response_is_clean() {
        let (mut mon, handle) = InvariantMonitor::new();
        let rd = Packet::control(Command::RdSized {
            unit: UnitId::HOST,
            addr: 0,
            count: 0,
            pass_pw: true,
            seq_id: 0,
            tag: SrcTag::new(7),
        });
        mon.on_packet(&ev(&rd, 100, true));
        let resp = Packet::new(
            Command::RdResponse {
                unit: UnitId::HOST,
                tag: SrcTag::new(7),
                error: false,
            },
            Bytes::from_static(&[0u8; 64]),
        );
        let rev = PacketEvent {
            src: (1, LinkId(2)),
            dst: (0, LinkId(3)),
            coherent: true,
            packet: &resp,
            arrival: SimTime(300),
        };
        mon.on_packet(&rev);
        assert!(handle.is_clean(), "{:?}", handle.violations());
    }

    #[test]
    fn tcc_discipline_flags_broadcast_and_nonposted() {
        let (mut mon, handle) = InvariantMonitor::new();
        let b = Packet::control(Command::Broadcast {
            unit: UnitId::HOST,
            addr: 0xFEE0_0000,
        });
        mon.on_packet(&ev(&b, 100, false));
        let rd = Packet::control(Command::RdSized {
            unit: UnitId::HOST,
            addr: 0,
            count: 0,
            pass_pw: false,
            seq_id: 0,
            tag: SrcTag::new(0),
        });
        mon.on_packet(&ev(&rd, 200, false));
        let vs = handle.violations();
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::BroadcastLeak { .. })));
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::NonPostedOnTcc { .. })));
        // Same traffic on a coherent link: no TCC-discipline violations,
        // though the read still registers its tag.
        let (mut mon2, handle2) = InvariantMonitor::new();
        mon2.on_packet(&ev(&b, 100, true));
        mon2.on_packet(&ev(&rd, 200, true));
        assert!(handle2.is_clean(), "{:?}", handle2.violations());
    }
}
