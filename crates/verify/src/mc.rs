//! A bounded model checker for the credit-flow fabric.
//!
//! Explores — exhaustively, by breadth-first search over hashed states —
//! every interleaving of inject / send / deliver-or-forward / return-credits
//! on a small cluster, proving two properties for the chosen configuration:
//!
//! * **credit conservation**: `available + rx_held + pending_return ==
//!   initial` on every link in every reachable state;
//! * **deadlock freedom**: every non-final reachable state has at least
//!   one enabled transition.
//!
//! The abstraction models what the paper's fabric actually carries:
//! posted writes only, one credit pool per directed link, bounded VC
//! queues, NOP credit returns capped at 3 per NOP (the 2-bit wire field).
//! Forwarding at intermediate hops blocks when the next hop's queue is
//! full — exactly the head-of-line coupling that produces routing
//! deadlocks in meshes, which is why X-Y dimension-ordered routing (used
//! by `mesh_bisection` and verified here) matters.
//!
//! Because the search is BFS, the counterexample returned on a property
//! failure is already minimal: no shorter action sequence reaches any
//! violating state.

use std::collections::{HashMap, VecDeque};

/// Hard ceiling on explored states — a misconfigured (too-large) instance
/// fails fast instead of exhausting memory.
const MAX_STATES: usize = 5_000_000;

/// Topologies the checker knows how to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McTopology {
    /// The paper's prototype: two nodes, one cable (a directed link pair).
    Pair,
    /// An x × y mesh with X-Y dimension-ordered routing, as used by the
    /// `mesh_bisection` study.
    Mesh { x: usize, y: usize },
}

/// Deliberate protocol breakages for negative testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The receiver on `link` harvests freed buffers but never sends the
    /// NOP: credits leak, conservation breaks, the fabric starves.
    DropCreditReturn { link: usize },
    /// The transmitter on `link` ignores the credit check and sends into
    /// a full receiver (models the unchecked-arithmetic bug class the
    /// hardened `flow.rs` rejects at runtime).
    SendWithoutCredit { link: usize },
}

/// Which (source, destination) pairs carry traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Traffic {
    /// Every node sends to every other node.
    AllToAll,
    /// Every node sends to its mirror (node `n-1-i`): the bisection-
    /// stressing pattern `mesh_bisection` measures, and — because mirror
    /// routes cross both dimensions — the pattern that exercises X-Y
    /// forwarding and head-of-line coupling hardest per packet.
    Transpose,
}

/// One checker configuration.
#[derive(Debug, Clone, Copy)]
pub struct McConfig {
    pub topology: McTopology,
    /// Initial credits (= receive buffer depth) per directed link.
    pub credits: u8,
    /// Transmit-queue bound per directed link.
    pub tx_cap: usize,
    /// Messages each node sends to each of its destinations.
    pub messages_per_pair: u8,
    /// Source/destination pattern.
    pub traffic: Traffic,
    pub fault: Option<Fault>,
}

impl McConfig {
    /// The paper's two-node prototype with realistic small bounds.
    pub fn paper_pair() -> Self {
        McConfig {
            topology: McTopology::Pair,
            credits: 2,
            tx_cap: 2,
            messages_per_pair: 2,
            traffic: Traffic::AllToAll,
            fault: None,
        }
    }

    /// The `mesh_bisection` mesh, shrunk to a 2×2 exhaustively checkable
    /// instance (same router, same X-Y order) under the bisection-crossing
    /// transpose pattern.
    pub fn mesh_2x2() -> Self {
        McConfig {
            topology: McTopology::Mesh { x: 2, y: 2 },
            credits: 1,
            tx_cap: 1,
            messages_per_pair: 1,
            traffic: Traffic::Transpose,
            fault: None,
        }
    }
}

/// A directed link of the abstract fabric.
#[derive(Debug, Clone)]
struct LinkDef {
    src: usize,
    dst: usize,
}

struct Fabric {
    nodes: usize,
    links: Vec<LinkDef>,
    /// `route[node][dest]` = outgoing link index for a packet at `node`
    /// headed to `dest` (X-Y order for meshes).
    route: Vec<Vec<Option<usize>>>,
}

impl Fabric {
    fn build(topology: McTopology) -> Self {
        match topology {
            McTopology::Pair => {
                let links = vec![LinkDef { src: 0, dst: 1 }, LinkDef { src: 1, dst: 0 }];
                let route = vec![vec![None, Some(0)], vec![Some(1), None]];
                Fabric {
                    nodes: 2,
                    links,
                    route,
                }
            }
            McTopology::Mesh { x, y } => {
                let nodes = x * y;
                let mut links = Vec::new();
                let mut index = HashMap::new();
                let id = |xx: usize, yy: usize| yy * x + xx;
                for yy in 0..y {
                    for xx in 0..x {
                        let here = id(xx, yy);
                        let mut neighbors = Vec::new();
                        if xx + 1 < x {
                            neighbors.push(id(xx + 1, yy));
                        }
                        if xx > 0 {
                            neighbors.push(id(xx - 1, yy));
                        }
                        if yy + 1 < y {
                            neighbors.push(id(xx, yy + 1));
                        }
                        if yy > 0 {
                            neighbors.push(id(xx, yy - 1));
                        }
                        for n in neighbors {
                            index.insert((here, n), links.len());
                            links.push(LinkDef { src: here, dst: n });
                        }
                    }
                }
                // X-Y routing: correct the x coordinate first, then y.
                let mut route = vec![vec![None; nodes]; nodes];
                for (src, row) in route.iter_mut().enumerate() {
                    for (dst, slot) in row.iter_mut().enumerate() {
                        if src == dst {
                            continue;
                        }
                        let (sx, sy) = (src % x, src / x);
                        let (dx, dy) = (dst % x, dst / x);
                        let next = if sx < dx {
                            id(sx + 1, sy)
                        } else if sx > dx {
                            id(sx - 1, sy)
                        } else if sy < dy {
                            id(sx, sy + 1)
                        } else {
                            id(sx, sy - 1)
                        };
                        *slot = Some(index[&(src, next)]);
                    }
                }
                Fabric {
                    nodes,
                    links,
                    route,
                }
            }
        }
    }
}

/// Mutable per-link state: queues are dest-node lists in FIFO order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct LinkState {
    tx: Vec<u8>,
    avail: u8,
    rx: Vec<u8>,
    pending: u8,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    links: Vec<LinkState>,
    /// `inject[node][dest]` = messages still to inject.
    inject: Vec<Vec<u8>>,
}

/// One atomic fabric step (the trace alphabet).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    Inject { node: usize, dest: usize },
    Send { link: usize },
    Deliver { link: usize },
    ReturnCredits { link: usize },
}

/// A minimal failing run: the BFS-shortest action sequence from the
/// initial state into a state violating a property.
#[derive(Debug, Clone)]
pub struct Counterexample {
    pub property: String,
    /// Human-readable steps from the initial state.
    pub trace: Vec<String>,
    /// Description of the violating state.
    pub state: String,
}

impl core::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "property violated: {}", self.property)?;
        writeln!(f, "minimal trace ({} steps):", self.trace.len())?;
        for (i, s) in self.trace.iter().enumerate() {
            writeln!(f, "  {i:>3}. {s}")?;
        }
        write!(f, "violating state: {}", self.state)
    }
}

/// Outcome of one exhaustive exploration.
#[derive(Debug)]
pub struct McResult {
    pub states: usize,
    pub transitions: usize,
    /// `None` = both properties hold on every reachable state.
    pub counterexample: Option<Counterexample>,
}

impl McResult {
    pub fn holds(&self) -> bool {
        self.counterexample.is_none()
    }
}

struct Checker {
    fabric: Fabric,
    config: McConfig,
}

impl Checker {
    fn initial(&self) -> State {
        let links = self
            .fabric
            .links
            .iter()
            .map(|_| LinkState {
                tx: Vec::new(),
                avail: self.config.credits,
                rx: Vec::new(),
                pending: 0,
            })
            .collect();
        let n = self.fabric.nodes;
        let inject = (0..n)
            .map(|src| {
                (0..n)
                    .map(|dst| {
                        let sends = match self.config.traffic {
                            Traffic::AllToAll => src != dst,
                            Traffic::Transpose => dst == n - 1 - src && src != dst,
                        };
                        if sends {
                            self.config.messages_per_pair
                        } else {
                            0
                        }
                    })
                    .collect()
            })
            .collect();
        State { links, inject }
    }

    fn is_goal(&self, s: &State) -> bool {
        s.inject.iter().all(|row| row.iter().all(|&m| m == 0))
            && s.links.iter().all(|l| l.tx.is_empty() && l.rx.is_empty())
    }

    fn enabled(&self, s: &State, out: &mut Vec<Step>) {
        out.clear();
        for (node, row) in s.inject.iter().enumerate() {
            for (dest, &m) in row.iter().enumerate() {
                if m == 0 {
                    continue;
                }
                let link = self.fabric.route[node][dest].expect("routable dest");
                if s.links[link].tx.len() < self.config.tx_cap {
                    out.push(Step::Inject { node, dest });
                }
            }
        }
        for (i, l) in s.links.iter().enumerate() {
            let forced_send = matches!(
                self.config.fault,
                Some(Fault::SendWithoutCredit { link }) if link == i
            );
            if !l.tx.is_empty() && (l.avail > 0 || forced_send) {
                out.push(Step::Send { link: i });
            }
            if let Some(&head) = l.rx.first() {
                let dst_node = self.fabric.links[i].dst;
                if head as usize == dst_node {
                    out.push(Step::Deliver { link: i });
                } else {
                    let next = self.fabric.route[dst_node][head as usize].expect("routable");
                    if s.links[next].tx.len() < self.config.tx_cap {
                        out.push(Step::Deliver { link: i });
                    }
                    // else: head-of-line blocked — deliver disabled.
                }
            }
            if l.pending > 0 {
                out.push(Step::ReturnCredits { link: i });
            }
        }
    }

    fn apply(&self, s: &State, step: Step) -> State {
        let mut n = s.clone();
        match step {
            Step::Inject { node, dest } => {
                n.inject[node][dest] -= 1;
                let link = self.fabric.route[node][dest].expect("routable");
                n.links[link].tx.push(dest as u8);
            }
            Step::Send { link } => {
                let l = &mut n.links[link];
                let dest = l.tx.remove(0);
                l.avail = l.avail.saturating_sub(1);
                l.rx.push(dest);
            }
            Step::Deliver { link } => {
                let dst_node = self.fabric.links[link].dst;
                let dest = n.links[link].rx.remove(0);
                n.links[link].pending += 1;
                if dest as usize != dst_node {
                    let next = self.fabric.route[dst_node][dest as usize].expect("routable");
                    n.links[next].tx.push(dest);
                }
            }
            Step::ReturnCredits { link } => {
                let l = &mut n.links[link];
                let k = l.pending.min(3);
                l.pending -= k;
                let dropped = matches!(
                    self.config.fault,
                    Some(Fault::DropCreditReturn { link: f }) if f == link
                );
                if !dropped {
                    l.avail += k;
                }
            }
        }
        n
    }

    fn describe(&self, step: Step) -> String {
        match step {
            Step::Inject { node, dest } => format!("inject n{node} -> n{dest}"),
            Step::Send { link } => {
                let l = &self.fabric.links[link];
                format!("send on link {link} (n{} -> n{})", l.src, l.dst)
            }
            Step::Deliver { link } => {
                let l = &self.fabric.links[link];
                format!("deliver/forward at n{} (link {link})", l.dst)
            }
            Step::ReturnCredits { link } => {
                let l = &self.fabric.links[link];
                format!("return credits on link {link} (n{} <- n{})", l.src, l.dst)
            }
        }
    }

    fn describe_state(&self, s: &State) -> String {
        let mut parts = Vec::new();
        for (i, l) in s.links.iter().enumerate() {
            let d = &self.fabric.links[i];
            parts.push(format!(
                "link{i}(n{}->n{}): tx={:?} avail={} rx={:?} pending={}",
                d.src, d.dst, l.tx, l.avail, l.rx, l.pending
            ));
        }
        parts.join("; ")
    }

    /// The per-state property check; `Some(reason)` on violation.
    fn violated(&self, s: &State, enabled_empty: bool) -> Option<String> {
        for (i, l) in s.links.iter().enumerate() {
            let accounted = l.avail as u32 + l.rx.len() as u32 + l.pending as u32;
            if accounted != self.config.credits as u32 {
                return Some(format!(
                    "credit conservation on link {i}: avail({}) + rx({}) + pending({}) != \
                     initial({})",
                    l.avail,
                    l.rx.len(),
                    l.pending,
                    self.config.credits
                ));
            }
        }
        if enabled_empty && !self.is_goal(s) {
            return Some("deadlock: non-final state with no enabled transition".to_string());
        }
        None
    }
}

/// Exhaustively explore `config`. Every reachable state is visited once
/// (hashed dedup); the result carries the state/transition counts and, if
/// a property failed, the minimal counterexample.
pub fn check(config: McConfig) -> McResult {
    let checker = Checker {
        fabric: Fabric::build(config.topology),
        config,
    };
    let init = checker.initial();
    let mut ids: HashMap<State, usize> = HashMap::new();
    let mut states: Vec<State> = Vec::new();
    let mut parents: Vec<Option<(usize, Step)>> = Vec::new();
    let mut frontier = VecDeque::new();
    ids.insert(init.clone(), 0);
    states.push(init);
    parents.push(None);
    frontier.push_back(0usize);
    let mut transitions = 0usize;
    let mut steps = Vec::new();

    let build_cex =
        |property: String, id: usize, states: &[State], parents: &[Option<(usize, Step)>]| {
            let mut trace = Vec::new();
            let mut cur = id;
            while let Some((parent, step)) = parents[cur] {
                trace.push(checker.describe(step));
                cur = parent;
            }
            trace.reverse();
            Counterexample {
                property,
                trace,
                state: checker.describe_state(&states[id]),
            }
        };

    while let Some(id) = frontier.pop_front() {
        let state = states[id].clone();
        checker.enabled(&state, &mut steps);
        if let Some(reason) = checker.violated(&state, steps.is_empty()) {
            return McResult {
                states: states.len(),
                transitions,
                counterexample: Some(build_cex(reason, id, &states, &parents)),
            };
        }
        for &step in &steps {
            transitions += 1;
            let next = checker.apply(&state, step);
            if !ids.contains_key(&next) {
                let nid = states.len();
                assert!(
                    nid < MAX_STATES,
                    "state space exceeds {MAX_STATES}: shrink the configuration \
                     (credits/queues/traffic) to keep the check exhaustive"
                );
                ids.insert(next.clone(), nid);
                states.push(next);
                parents.push(Some((id, step)));
                frontier.push_back(nid);
            }
        }
    }

    McResult {
        states: states.len(),
        transitions,
        counterexample: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_pair_is_deadlock_free_and_conserving() {
        let r = check(McConfig::paper_pair());
        assert!(r.holds(), "{}", r.counterexample.unwrap());
        assert!(r.states > 100, "exhaustive: visited {} states", r.states);
    }

    #[test]
    fn mesh_2x2_is_deadlock_free_and_conserving() {
        let r = check(McConfig::mesh_2x2());
        assert!(r.holds(), "{}", r.counterexample.unwrap());
        assert!(r.states > 1000, "exhaustive: visited {} states", r.states);
    }

    #[test]
    fn dropped_credit_returns_yield_minimal_counterexample() {
        let mut cfg = McConfig::paper_pair();
        cfg.fault = Some(Fault::DropCreditReturn { link: 0 });
        let r = check(cfg);
        let cex = r.counterexample.expect("fault must be caught");
        assert!(cex.property.contains("credit conservation"), "{cex}");
        // Minimal: inject, send, deliver, (drop) return — four steps.
        assert_eq!(cex.trace.len(), 4, "{cex}");
        let printed = cex.to_string();
        assert!(printed.contains("minimal trace"), "{printed}");
    }

    #[test]
    fn send_without_credit_breaks_conservation() {
        let mut cfg = McConfig::paper_pair();
        // Three messages against two credits: the faulty transmitter gets
        // a chance to push into a full receiver.
        cfg.messages_per_pair = 3;
        cfg.fault = Some(Fault::SendWithoutCredit { link: 0 });
        let r = check(cfg);
        let cex = r.counterexample.expect("fault must be caught");
        assert!(cex.property.contains("credit conservation"), "{cex}");
    }

    #[test]
    fn bigger_pair_load_still_holds() {
        let cfg = McConfig {
            credits: 3,
            tx_cap: 3,
            messages_per_pair: 3,
            ..McConfig::paper_pair()
        };
        let r = check(cfg);
        assert!(r.holds(), "{}", r.counterexample.unwrap());
    }
}
