//! Build-time platform audits: address-map validity, cross-node route
//! consistency and broadcast containment, checked against a booted
//! [`Platform`] before (or after) traffic runs.
//!
//! These checks walk exactly the structures the hardware would consult —
//! each northbridge's base/limit registers and routing table — so a pass
//! means every global address reaches the node that owns it, in a bounded
//! number of hops, and interrupts can never leave a supernode over a TCC
//! cable.

use crate::diag::Violation;
use tcc_firmware::Platform;
use tcc_ht::VirtualChannel;
use tcc_opteron::addrmap::Target;
use tcc_opteron::regs::LinkId;
use tcc_opteron::route::Route;

/// Run every static audit; returns all violations found.
pub fn audit_platform(platform: &Platform) -> Vec<Violation> {
    let mut out = Vec::new();
    audit_addr_maps(platform, &mut out);
    audit_routes(platform, &mut out);
    audit_broadcast_masks(platform, &mut out);
    out
}

/// Each node's address map must pass its own validation (no DRAM/MMIO
/// overlap) and every MMIO destination link must be wired and trained.
fn audit_addr_maps(platform: &Platform, out: &mut Vec<Violation>) {
    for (i, node) in platform.nodes.iter().enumerate() {
        if let Err(e) = node.nb.addr_map.validate() {
            out.push(Violation::AddrMap {
                node: i,
                detail: e.to_string(),
            });
        }
        for (base, limit, owner, link) in node.nb.addr_map.mmio_ranges() {
            if owner == node.nb.node_id && platform.peer_of(i, link).is_none() {
                out.push(Violation::AddrMap {
                    node: i,
                    detail: format!("MMIO [{base:#x},{limit:#x}) exits unwired link l{}", link.0),
                });
            }
        }
    }
}

/// Replay the two-stage K10 routing decision (address map, then routing
/// table) from every node toward every node's exported memory, following
/// forwards across wires. Detects unmapped holes, dead links, packets
/// landing on the wrong node, and routing loops (hop-bounded).
fn audit_routes(platform: &Platform, out: &mut Vec<Violation>) {
    let spec = &platform.spec;
    let n = platform.nodes.len();
    // One probe address inside each node's exported slice.
    let probes: Vec<u64> = (0..spec.supernode_count())
        .flat_map(|s| (0..spec.supernode.processors).map(move |p| (s, p)))
        .map(|(s, p)| spec.node_base(s, p))
        .collect();
    let hop_limit = n + 4;
    for from in 0..n {
        for (target, &addr) in probes.iter().enumerate() {
            let mut here = from;
            let mut hops = 0;
            loop {
                if hops > hop_limit {
                    out.push(Violation::Route {
                        from,
                        target_node: target,
                        addr,
                        detail: format!("routing loop: no delivery within {hop_limit} hops"),
                    });
                    break;
                }
                match next_hop(platform, here, addr) {
                    Ok(None) => {
                        // Landed: the node accepting the address must be
                        // the one exporting that slice.
                        if here != target {
                            out.push(Violation::Route {
                                from,
                                target_node: target,
                                addr,
                                detail: format!("delivered to n{here} instead"),
                            });
                        }
                        break;
                    }
                    Ok(Some(link)) => match platform.peer_of(here, link) {
                        Some((peer, _)) => {
                            here = peer;
                            hops += 1;
                        }
                        None => {
                            out.push(Violation::Route {
                                from,
                                target_node: target,
                                addr,
                                detail: format!("n{here} forwards out unwired link l{}", link.0),
                            });
                            break;
                        }
                    },
                    Err(detail) => {
                        out.push(Violation::Route {
                            from,
                            target_node: target,
                            addr,
                            detail: format!("at n{here}: {detail}"),
                        });
                        break;
                    }
                }
            }
        }
    }
}

/// One routing step at `node` for a posted write to `addr`: `Ok(None)`
/// accepts locally, `Ok(Some(link))` forwards. Mirrors
/// `Northbridge::dispose` for addressed requests, read-only.
fn next_hop(platform: &Platform, node: usize, addr: u64) -> Result<Option<LinkId>, String> {
    let nb = &platform.nodes[node].nb;
    let target = nb.addr_map.resolve(addr).map_err(|e| e.to_string())?;
    match target {
        Target::Dram { home } if home == nb.node_id => Ok(None),
        Target::Dram { home } => match nb
            .routes
            .request_route(home)
            .ok_or_else(|| format!("no route for home NodeID {}", home.0))?
        {
            Route::SelfRoute => Ok(None),
            Route::Link(l) => Ok(Some(l)),
        },
        Target::Mmio { owner, link } if owner == nb.node_id => Ok(Some(link)),
        Target::Mmio { owner, .. } => match nb
            .routes
            .request_route(owner)
            .ok_or_else(|| format!("no route for MMIO owner NodeID {}", owner.0))?
        {
            Route::SelfRoute => Err("MMIO owned remotely but routed to self".to_string()),
            Route::Link(l) => Ok(Some(l)),
        },
    }
}

/// No broadcast route mask may include a non-coherent (TCC) link — this
/// is the interrupt-containment property the boot sequence must establish.
fn audit_broadcast_masks(platform: &Platform, out: &mut Vec<Violation>) {
    for (i, node) in platform.nodes.iter().enumerate() {
        for l in 0..4u8 {
            let link = LinkId(l);
            if platform.link_coherent(i, link) == Some(false)
                && node.nb.routes.broadcasts_reach(link)
            {
                out.push(Violation::BroadcastRoute { node: i, link: l });
            }
        }
    }
}

/// At quiescence every transmitter must hold its full initial credit
/// complement — a shortfall means credits leaked somewhere in the run.
pub fn audit_quiescent_credits(platform: &Platform) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, node) in platform.nodes.iter().enumerate() {
        for l in 0..4u8 {
            let Some(tx) = node.link(LinkId(l)) else {
                continue;
            };
            let credits = tx.credits();
            for vc in VirtualChannel::ALL {
                for (class, in_flight, initial) in [
                    (
                        tcc_ht::flow::CreditClass::Cmd,
                        credits.in_flight_cmd(vc),
                        credits.initial_cmd(vc),
                    ),
                    (
                        tcc_ht::flow::CreditClass::Data,
                        credits.in_flight_data(vc),
                        credits.initial_data(vc),
                    ),
                ] {
                    if in_flight != 0 {
                        out.push(Violation::CreditConservation {
                            link: crate::diag::PortRef { node: i, link: l },
                            vc,
                            class,
                            initial,
                            accounted: (initial - in_flight) as u32,
                        });
                    }
                }
            }
        }
    }
    out
}
