//! Exhaustive model-checking entry point.
//!
//! Verifies deadlock-freedom and credit conservation for the paper's
//! two-node topology and the `mesh_bisection` mesh, then writes the
//! state counts to `MC_modelcheck.json` (uploaded as a CI artifact next
//! to `BENCH_simspeed.json`). Exits non-zero if any property fails,
//! printing the minimal counterexample trace.
//!
//! Run a deliberately broken configuration with `--negative` to see the
//! counterexample machinery in action (this mode *expects* the failure
//! and exits zero when it is caught).

use std::fmt::Write as _;
use tcc_verify::{check, Fault, McConfig};

struct ConfigRun {
    name: &'static str,
    config: McConfig,
}

fn main() {
    let negative = std::env::args().any(|a| a == "--negative");
    if negative {
        run_negative();
        return;
    }

    let runs = [
        ConfigRun {
            name: "paper_pair",
            config: McConfig::paper_pair(),
        },
        ConfigRun {
            name: "mesh_2x2",
            config: McConfig::mesh_2x2(),
        },
    ];

    let mut json = String::from("{\n  \"configs\": [\n");
    let mut failed = false;
    for (i, run) in runs.iter().enumerate() {
        let result = check(run.config);
        let holds = result.holds();
        println!(
            "{}: {} states, {} transitions — {}",
            run.name,
            result.states,
            result.transitions,
            if holds { "PROVED" } else { "FAILED" }
        );
        if let Some(cex) = &result.counterexample {
            eprintln!("{cex}");
            failed = true;
        }
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"states\": {}, \"transitions\": {}, \"holds\": {}}}{}",
            run.name,
            result.states,
            result.transitions,
            holds,
            if i + 1 < runs.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"properties\": [\"deadlock_freedom\", \"credit_conservation\"]\n}\n");
    std::fs::write("MC_modelcheck.json", &json).expect("write MC_modelcheck.json");
    println!("wrote MC_modelcheck.json");
    if failed {
        std::process::exit(1);
    }
}

/// Negative mode: break the protocol on purpose and demand the checker
/// catches it with a minimal trace.
fn run_negative() {
    let mut cfg = McConfig::paper_pair();
    cfg.fault = Some(Fault::DropCreditReturn { link: 0 });
    let result = check(cfg);
    match result.counterexample {
        Some(cex) => {
            println!("negative check caught the fault as expected:\n{cex}");
        }
        None => {
            eprintln!("negative check FAILED: fault went undetected");
            std::process::exit(1);
        }
    }
}
