//! Integration: monitors on a live simulation, platform audits on booted
//! clusters, and the property/fuzz coverage the ordering and address-map
//! checkers are held to.

use proptest::prelude::*;
use tcc_opteron::addrmap::AddressMap;
use tcc_opteron::regs::{LinkId, NodeId};
use tcc_verify::{
    audit_platform, audit_quiescent_credits, key_may_pass, InvariantMonitor, OrderKey, Violation,
};
use tccluster::TcclusterBuilder;

/// A booted paper-prototype pair with an invariant monitor mounted.
fn monitored_cluster() -> (tccluster::SimCluster, tcc_verify::MonitorHandle) {
    let mut cluster = TcclusterBuilder::new().build_sim();
    let (mon, handle) = InvariantMonitor::new();
    cluster.platform.with_monitors(mon);
    (cluster, handle)
}

#[test]
fn live_pingpong_traffic_is_clean() {
    let (mut cluster, handle) = monitored_cluster();
    let lat = cluster.pingpong(0, 1, 64, 20);
    assert!(lat.nanos() > 0.0);
    assert!(
        handle.packets_seen() > 40,
        "monitor saw {} packets",
        handle.packets_seen()
    );
    assert!(handle.is_clean(), "{:?}", handle.violations());
}

#[test]
fn live_bandwidth_stream_is_clean_and_credits_quiesce() {
    let (mut cluster, handle) = monitored_cluster();
    let bw = cluster.stream_bandwidth(0, 1, 64, tccluster::msglib::SendMode::WeaklyOrdered, 2000);
    assert!(bw > 0.0);
    assert!(handle.is_clean(), "{:?}", handle.violations());
    assert!(handle.packets_seen() >= 2000);
    // Open-loop sim auto-returns credits: the fabric must be whole again.
    let leaks = audit_quiescent_credits(&cluster.platform);
    assert!(leaks.is_empty(), "{leaks:?}");
}

#[test]
fn booted_pair_passes_static_audit() {
    let (cluster, _handle) = monitored_cluster();
    let vs = audit_platform(&cluster.platform);
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn booted_multiprocessor_ring_passes_static_audit() {
    // Two supernodes of two processors each: internal coherent hops plus
    // the TCC cable — exercises the multi-hop route walk.
    let mut cluster = TcclusterBuilder::new()
        .processors_per_supernode(2)
        .build_sim();
    let vs = audit_platform(&cluster.platform);
    assert!(vs.is_empty(), "{vs:?}");
    // And traffic across the full route stays clean under the monitor.
    let (mon, handle) = InvariantMonitor::new();
    cluster.platform.with_monitors(mon);
    cluster.pingpong(0, 3, 64, 10);
    assert!(handle.is_clean(), "{:?}", handle.violations());
}

#[test]
fn sabotaged_route_is_reported_with_context() {
    let (mut cluster, _handle) = monitored_cluster();
    // Point node 0's remote MMIO window at an unwired link.
    let map = &mut cluster.platform.nodes[0].nb.addr_map;
    let ranges: Vec<_> = map.mmio_ranges().collect();
    map.clear();
    for (base, limit, owner, _link) in ranges {
        map.add_mmio(base, limit, owner, LinkId(1)).unwrap();
    }
    let vs = audit_platform(&cluster.platform);
    assert!(
        vs.iter().any(|v| matches!(
            v,
            Violation::AddrMap { node: 0, .. } | Violation::Route { from: 0, .. }
        )),
        "{vs:?}"
    );
}

#[test]
fn broadcast_mask_over_tcc_link_is_reported() {
    let (mut cluster, _handle) = monitored_cluster();
    // Find node 0's TCC link and illegally enable broadcasts across it.
    let tcc = (0..4)
        .map(LinkId)
        .find(|&l| cluster.platform.link_coherent(0, l) == Some(false))
        .expect("pair has a TCC link on node 0");
    let nb = &mut cluster.platform.nodes[0].nb;
    nb.routes.set(
        NodeId(0),
        tcc_opteron::route::NodeRoute {
            request: tcc_opteron::route::Route::SelfRoute,
            response: tcc_opteron::route::Route::SelfRoute,
            broadcast_links: 1 << tcc.0,
        },
    );
    let vs = audit_platform(&cluster.platform);
    assert!(
        vs.iter()
            .any(|v| matches!(v, Violation::BroadcastRoute { node: 0, .. })),
        "{vs:?}"
    );
}

/// The paper's Fig. 3 two-node map (node 0's view).
fn figure3_map() -> AddressMap {
    let mut map = AddressMap::new();
    map.add_dram(0x1000, 0x2000, NodeId(0)).unwrap();
    map.add_mmio(0x2000, 0x7000, NodeId(0), LinkId(2)).unwrap();
    map
}

/// Fuzz-style sweep: every mutation of the Fig. 3 map that drags one
/// range boundary across the other range must be rejected — either at
/// insert (same-class overlap is impossible to express here) or by
/// `validate` (DRAM/MMIO cross overlap).
#[test]
fn every_overlap_mutation_of_figure3_map_is_rejected() {
    figure3_map().validate().expect("baseline map is legal");
    let mut tried = 0u32;
    // Mutate the DRAM limit upward into MMIO, one step at a time.
    for dram_limit in (0x2001..=0x7000u64).step_by(0x3ff) {
        let mut map = AddressMap::new();
        map.add_dram(0x1000, dram_limit, NodeId(0)).unwrap();
        map.add_mmio(0x2000, 0x7000, NodeId(0), LinkId(2)).unwrap();
        assert!(map.validate().is_err(), "limit {dram_limit:#x} accepted");
        tried += 1;
    }
    // Mutate the MMIO base downward into DRAM.
    for mmio_base in (0x1000..0x2000u64).step_by(0xff) {
        let mut map = AddressMap::new();
        map.add_dram(0x1000, 0x2000, NodeId(0)).unwrap();
        map.add_mmio(mmio_base, 0x7000, NodeId(0), LinkId(2))
            .unwrap();
        assert!(map.validate().is_err(), "base {mmio_base:#x} accepted");
        tried += 1;
    }
    // Add a second DRAM range overlapping the first: rejected at insert.
    for base in (0x1000..0x2000u64).step_by(0xff) {
        let mut map = figure3_map();
        assert!(
            map.add_dram(base, base + 0x800, NodeId(1)).is_err() || map.validate().is_err(),
            "second DRAM at {base:#x} accepted"
        );
        tried += 1;
    }
    assert!(tried > 40, "swept {tried} mutants");
}

fn arb_packet() -> impl Strategy<Value = tcc_ht::Packet> {
    use bytes::Bytes;
    use tcc_ht::packet::{Command, Packet, SrcTag, UnitId};
    prop_oneof![
        (any::<u64>(), any::<bool>()).prop_map(|(addr, pass_pw)| {
            Packet::new(
                Command::WrSized {
                    posted: true,
                    unit: UnitId::HOST,
                    addr,
                    count: 15,
                    pass_pw,
                    seq_id: 0,
                    tag: None,
                },
                Bytes::from_static(&[0u8; 64]),
            )
        }),
        (any::<u64>(), any::<bool>(), 0u8..32).prop_map(|(addr, pass_pw, t)| {
            Packet::control(Command::RdSized {
                unit: UnitId::HOST,
                addr,
                count: 0,
                pass_pw,
                seq_id: 0,
                tag: SrcTag::new(t),
            })
        }),
        (0u8..32).prop_map(|t| {
            Packet::control(Command::TgtDone {
                unit: UnitId::HOST,
                tag: SrcTag::new(t),
                error: false,
            })
        }),
        Just(Packet::control(Command::Fence { unit: UnitId::HOST })),
        Just(Packet::control(Command::Flush {
            unit: UnitId::HOST,
            tag: SrcTag::new(0),
        })),
    ]
}

proptest! {
    /// The monitor's projected ordering oracle agrees with the real
    /// `may_pass` on arbitrary packet pairs drawn from random streams.
    #[test]
    fn order_key_oracle_agrees_with_may_pass(
        stream in proptest::collection::vec(arb_packet(), 2..24)
    ) {
        for a in &stream {
            for b in &stream {
                prop_assert_eq!(
                    key_may_pass(OrderKey::of(b), OrderKey::of(a)),
                    tcc_ht::ordering::may_pass(b, a),
                    "later={:?} earlier={:?}", b.cmd, a.cmd
                );
            }
        }
    }
}
