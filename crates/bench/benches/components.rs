//! Criterion benches over the protocol components themselves: wire
//! encode/decode, CRC, write-combining buffers and the link transmit path
//! — the hot inner loops of the simulator.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use tcc_ht::crc::{crc32, Crc32};
use tcc_ht::packet::{Command, Packet, SrcTag, UnitId};
use tcc_ht::wire::{decode, encode};
use tcc_opteron::wc::WcBuffers;

fn bench_wire(c: &mut Criterion) {
    let cmd = Command::WrSized {
        posted: true,
        unit: UnitId::HOST,
        addr: 0x1_2345_6780,
        count: 15,
        pass_pw: false,
        seq_id: 3,
        tag: None,
    };
    c.bench_function("wire/encode_posted_write", |b| {
        b.iter(|| black_box(encode(black_box(&cmd))))
    });
    let bytes = encode(&cmd);
    c.bench_function("wire/decode_posted_write", |b| {
        b.iter(|| black_box(decode(black_box(&bytes)).expect("valid")))
    });
    let resp = Command::TgtDone {
        unit: UnitId::HOST,
        tag: SrcTag::new(7),
        error: false,
    };
    c.bench_function("wire/encode_response", |b| {
        b.iter(|| black_box(encode(black_box(&resp))))
    });
}

fn bench_crc(c: &mut Criterion) {
    let mut g = c.benchmark_group("crc32");
    for size in [64usize, 512, 4096] {
        let data = vec![0xA5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("{size}B"), |b| {
            b.iter(|| black_box(crc32(black_box(&data))))
        });
    }
    g.finish();
    c.bench_function("crc32/incremental_64x8", |b| {
        let chunk = [0x5Au8; 8];
        b.iter(|| {
            let mut crc = Crc32::new();
            for _ in 0..8 {
                crc.update(black_box(&chunk));
            }
            black_box(crc.finish())
        })
    });
}

fn bench_wc(c: &mut Criterion) {
    c.bench_function("wc/fill_line_8x8B", |b| {
        let mut wc = WcBuffers::new(8, 64);
        let data = [0u8; 8];
        let mut addr = 0u64;
        let mut flushes = Vec::new();
        b.iter(|| {
            for i in 0..8u64 {
                wc.store(addr + i * 8, &data, &mut flushes);
            }
            black_box(flushes.len());
            flushes.clear();
            addr = addr.wrapping_add(64);
        })
    });
    c.bench_function("wc/fence_8_partials", |b| {
        let mut wc = WcBuffers::new(8, 64);
        let mut flushes = Vec::new();
        b.iter(|| {
            for i in 0..8u64 {
                wc.store(i * 64, &[1u8; 4], &mut flushes);
            }
            wc.fence(&mut flushes);
            black_box(flushes.len());
            flushes.clear();
        })
    });
}

fn bench_linktx(c: &mut Criterion) {
    use bytes::Bytes;
    use tcc_fabric::time::SimTime;
    use tcc_ht::flow::CreditReturn;
    use tcc_ht::link::{LinkConfig, LinkTx};
    c.bench_function("link/enqueue_pump_64B", |b| {
        let mut tx = LinkTx::new(LinkConfig::PROTOTYPE, 1);
        let mut addr = 0u64;
        b.iter(|| {
            tx.enqueue(Packet::posted_write(addr, Bytes::from_static(&[0u8; 64])));
            addr = addr.wrapping_add(64);
            let out = tx.pump(SimTime::ZERO);
            tx.credit_return(CreditReturn {
                cmd: [1, 0, 0],
                data: [1, 0, 0],
            })
            .unwrap();
            black_box(out)
        })
    });
}

criterion_group!(benches, bench_wire, bench_crc, bench_wc, bench_linktx);
criterion_main!(benches);
