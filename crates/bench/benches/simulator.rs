//! Criterion benches over the packet-level simulator: how fast the model
//! itself evaluates the paper's experiments (host-side performance of the
//! reproduction, useful for regression-tracking the simulator).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tcc_firmware::topology::{ClusterSpec, ClusterTopology, SupernodeSpec};
use tcc_msglib::SendMode;
use tcc_opteron::UarchParams;
use tccluster::SimCluster;

fn prototype() -> SimCluster {
    let spec = ClusterSpec::new(SupernodeSpec::new(1, 1 << 20), ClusterTopology::Pair);
    SimCluster::boot(spec, UarchParams::shanghai())
}

fn bench_boot(c: &mut Criterion) {
    c.bench_function("boot/pair", |b| {
        b.iter(|| {
            let spec = ClusterSpec::new(SupernodeSpec::new(1, 1 << 20), ClusterTopology::Pair);
            black_box(SimCluster::boot(spec, UarchParams::shanghai()))
        })
    });
    c.bench_function("boot/mesh2x2x2", |b| {
        b.iter(|| {
            let spec = ClusterSpec::new(
                SupernodeSpec::new(2, 1 << 20),
                ClusterTopology::Mesh { x: 2, y: 2 },
            );
            black_box(SimCluster::boot(spec, UarchParams::shanghai()))
        })
    });
}

fn bench_pingpong(c: &mut Criterion) {
    let mut cluster = prototype();
    let mut g = c.benchmark_group("sim_pingpong");
    for size in [64usize, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &s| {
            b.iter(|| black_box(cluster.pingpong(0, 1, s, 10)))
        });
    }
    g.finish();
}

fn bench_bandwidth(c: &mut Criterion) {
    let mut cluster = prototype();
    let mut g = c.benchmark_group("sim_bandwidth");
    g.sample_size(10);
    for size in [64usize, 64 << 10] {
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &s| {
            b.iter(|| black_box(cluster.stream_bandwidth(0, 1, s, SendMode::WeaklyOrdered, 2)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(4));
    targets = bench_boot, bench_pingpong, bench_bandwidth
}
criterion_main!(benches);
