//! Criterion benches over the message-library protocols on the threaded
//! shared-memory backend: single-threaded ring cell costs and end-to-end
//! channel throughput with a live consumer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tcc_msglib::channel::{channel, CHANNEL_BYTES, CREDIT_BYTES};
use tcc_msglib::ring::{RingReceiver, RingSender, SendMode, RING_BYTES};
use tcc_msglib::shm::ShmMemory;

fn bench_ring_cell(c: &mut Criterion) {
    let ring = ShmMemory::new(RING_BYTES);
    let credit = ShmMemory::new(8);
    let mut tx = RingSender::new(
        ring.remote(0, RING_BYTES as u64),
        credit.local(0, 8),
        SendMode::WeaklyOrdered,
    );
    let mut rx = RingReceiver::new(ring.local(0, RING_BYTES as u64), credit.remote(0, 8));
    let msg = [0u8; 56];
    c.bench_function("ring/send_recv_56B", |b| {
        b.iter(|| {
            tx.send(black_box(&msg)).expect("fits");
            black_box(rx.recv())
        })
    });
}

fn bench_channel_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("channel_throughput");
    for &size in &[64usize, 1024, 16 << 10, 128 << 10] {
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &s| {
            let data = ShmMemory::new(CHANNEL_BYTES as usize);
            let credits = ShmMemory::new(CREDIT_BYTES as usize);
            let (mut tx, mut rx) = channel(
                data.remote(0, CHANNEL_BYTES),
                credits.local(0, CREDIT_BYTES),
                data.local(0, CHANNEL_BYTES),
                credits.remote(0, CREDIT_BYTES),
                SendMode::WeaklyOrdered,
            );
            let msg = vec![0xA5u8; s];
            b.iter(|| {
                tx.send(black_box(&msg)).expect("fits");
                black_box(rx.recv())
            });
        });
    }
    g.finish();
}

// The bench harness is the legitimate wallclock consumer (clippy.toml).
#[allow(clippy::disallowed_methods)]
fn bench_threaded_pingpong(c: &mut Criterion) {
    // Host-side latency of one real threaded round trip through the
    // protocol (producer thread + this thread).
    c.bench_function("shm/threaded_pingpong_64B", |b| {
        use tccluster::ShmCluster;
        b.iter_custom(|iters| {
            let cluster = ShmCluster::new(2, SendMode::WeaklyOrdered);
            let start = std::time::Instant::now();
            let _ = cluster.run(move |ctx| {
                if ctx.rank == 0 {
                    for _ in 0..iters {
                        ctx.send(1, &[0u8; 64]);
                        black_box(ctx.recv(1));
                    }
                } else {
                    for _ in 0..iters {
                        let m = ctx.recv(0);
                        ctx.send(0, &m);
                    }
                }
            });
            start.elapsed()
        })
    });
}

fn bench_barrier(c: &mut Criterion) {
    use tcc_msglib::barrier::{Barrier, SYNC_BYTES};
    // Single-rank barrier epoch cost (mechanics only).
    let page = ShmMemory::new(SYNC_BYTES as usize);
    let peers: Vec<Option<tcc_msglib::shm::ShmRemote>> = vec![None];
    let mut b1 = Barrier::new(0, 1, peers, page.local(0, SYNC_BYTES));
    c.bench_function("barrier/single_rank_epoch", |b| {
        b.iter(|| {
            b1.wait();
            black_box(b1.epoch())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(4));
    targets = bench_ring_cell, bench_channel_throughput, bench_threaded_pingpong, bench_barrier
}
criterion_main!(benches);
