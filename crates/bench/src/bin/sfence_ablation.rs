//! Ablation: the ordering/bandwidth trade-off behind Figure 6's two
//! series. The paper ships exactly two points — sfence after every cache
//! line (strict, ~2000 MB/s) and no fences (weak, ~2700 MB/s sustained).
//! This sweep fills in the curve between them: fence every 1, 2, 4, …
//! cells and never.

use tcc_bench::prototype;
use tcc_fabric::series::{Figure, Series};

fn main() {
    let mut cluster = prototype();
    const SIZE: usize = 16 << 10; // 16 KB messages, all on the eager path shape
    let intervals: &[usize] = &[1, 2, 4, 8, 16, 32, 0];

    println!("Sfence-interval ablation ({SIZE} B messages)\n");
    println!("{:>18} {:>14}", "fence every", "MB/s");
    let mut fig = Figure::new("Sfence ablation", "cells between fences", "MB/s");
    let mut series = Series::new("bandwidth");
    let mut results = Vec::new();
    for &every in intervals {
        let bw = cluster.bandwidth_fence_interval(0, 1, SIZE, every, 8);
        let label = if every == 0 {
            "never (weak)".to_string()
        } else {
            format!("{every} cells")
        };
        println!("{label:>18} {bw:>14.0}");
        series.push(if every == 0 { 64.0 } else { every as f64 }, bw);
        results.push((every, bw));
    }
    fig.add(series);

    // Claims: strict (every=1) lands near 2000; relaxing monotonically
    // recovers bandwidth; never-fencing is the fastest.
    let strict = results.iter().find(|(e, _)| *e == 1).expect("strict").1;
    let weak = results.iter().find(|(e, _)| *e == 0).expect("weak").1;
    assert!((strict - 2000.0).abs() < 300.0, "strict = {strict:.0}");
    assert!(weak > strict * 1.25, "weak {weak:.0} vs strict {strict:.0}");
    for w in results.windows(2) {
        let ((ea, a), (eb, b)) = (w[0], w[1]);
        if eb != 0 || ea != 0 {
            assert!(
                b >= a * 0.98,
                "non-monotone at {ea}->{eb}: {a:.0} -> {b:.0}"
            );
        }
    }
    println!(
        "\nstrict {strict:.0} MB/s -> weak {weak:.0} MB/s ({:.2}x)",
        weak / strict
    );
    println!("\n{fig}");
    println!("SFENCE ABLATION OK");
}
