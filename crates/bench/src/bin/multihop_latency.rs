//! Regenerates the paper's in-text multi-hop result (§VI): "we measured
//! multi-hop latencies by binding the benchmark process to different
//! processor sockets using numactl … each hop increases the end-to-end
//! latency by less than 50 ns."
//!
//! Setup mirrors the measurement: two supernodes of eight sockets; the
//! ping side binds to sockets progressively farther from the TCC port, so
//! each step adds one coherent-fabric hop to the same cable crossing.

use tcc_fabric::series::{Figure, Series};
use tcc_firmware::topology::{ClusterSpec, ClusterTopology, SupernodeSpec};
use tcc_opteron::UarchParams;
use tccluster::SimCluster;

fn main() {
    const PROCS: usize = 8;
    let spec = ClusterSpec::new(SupernodeSpec::new(PROCS, 1 << 20), ClusterTopology::Pair);
    let mut cluster = SimCluster::boot(spec, UarchParams::shanghai());

    // The East port of supernode 0 is on its last processor; supernode 1
    // is entered at its first processor (West port). Binding the sender to
    // socket (PROCS-1-k) adds k internal hops each way.
    let receiver = PROCS; // supernode 1, processor 0
    let mut fig = Figure::new(
        "Multi-hop latency: 64 B half-RTT vs extra fabric hops",
        "extra hops",
        "ns",
    );
    let mut series = Series::new("TCCluster 64 B half-RTT");
    let mut prev = None;
    let mut deltas = Vec::new();
    for extra in 0..PROCS {
        let sender = PROCS - 1 - extra;
        let lat = cluster.pingpong(sender, receiver, 64, 40).nanos();
        series.push(extra as f64, lat);
        if let Some(p) = prev {
            deltas.push(lat - p);
        }
        prev = Some(lat);
    }
    fig.add(series);
    println!("{fig}");

    println!("Per-hop increments (paper: each hop adds < 50 ns):");
    let mut all_ok = true;
    for (i, d) in deltas.iter().enumerate() {
        let ok = *d > 0.0 && *d < 50.0;
        all_ok &= ok;
        println!(
            "  hop {} -> {}: +{d:.1} ns  {}",
            i,
            i + 1,
            if ok { "OK (<50 ns)" } else { "DEVIATES" }
        );
    }
    let mean = deltas.iter().sum::<f64>() / deltas.len() as f64;
    println!("  mean per-hop increment: {mean:.1} ns");
    assert!(all_ok, "per-hop increment out of the paper's envelope");
    println!("ALL HOPS WITHIN THE PAPER'S <50 ns ENVELOPE");
}
