//! Ablation: write combining on vs off (paper §VI: "Our approach makes
//! intensive use of the write combining capability to generate maximum
//! sized HyperTransport packets which reduce the command overhead").
//!
//! With the remote window mapped uncacheable instead of write-combining,
//! every 64-bit store becomes its own serialised HT packet: 8 bytes of
//! payload behind an 8-byte command header, with no store overlap.

use tcc_bench::prototype;
use tcc_msglib::SendMode;

fn main() {
    let mut cluster = prototype();
    const SIZES: &[usize] = &[1 << 10, 16 << 10, 256 << 10];

    println!("Write-combining ablation\n");
    println!(
        "{:>12} {:>16} {:>16} {:>10}",
        "size", "WC on MB/s", "WC off MB/s", "ratio"
    );
    let mut worst_ratio = f64::MAX;
    for &size in SIZES {
        let with_wc = cluster.stream_bandwidth(0, 1, size, SendMode::WeaklyOrdered, 5);
        let without = cluster.bandwidth_without_wc(0, 1, size, 3);
        let ratio = with_wc / without;
        worst_ratio = worst_ratio.min(ratio);
        println!("{size:>12} {with_wc:>16.0} {without:>16.0} {ratio:>9.1}x");
    }

    // The claim: WC is essential. The wire-efficiency gap alone is
    // 64/72 vs 8/16 (2x); UC stores additionally lose all store-pipeline
    // overlap, so large transfers win ~5x.
    assert!(
        worst_ratio > 2.0,
        "write combining should win everywhere, worst ratio {worst_ratio:.1}"
    );
    println!("\nwrite combining is worth at least {worst_ratio:.1}x — WC ABLATION OK");
}
