//! Extension experiment (paper §IV.F projects *n×n* meshes of supernodes
//! on a backplane; §VII claims scalability to thousands of nodes): what
//! does the TCCluster fabric's *bisection* look like as the mesh grows?
//!
//! For uniform all-to-all traffic under X-Y routing we count how many
//! (src, dst) flows cross each directed link; the most-loaded link bounds
//! the per-node throughput: `BW_node = link_rate * flows_per_node /
//! max_link_load`. The classic result — per-node all-to-all bandwidth
//! falls as 1/n on an n×n mesh — emerges from the model and quantifies
//! the paper's (unevaluated) scaling claim.

use std::collections::HashMap;
use tcc_fabric::series::{Figure, Series};
use tcc_firmware::topology::{ClusterSpec, ClusterTopology, Port, SupernodeSpec};
use tcc_ht::link::LinkConfig;
use tccluster::{EngineKind, TcclusterBuilder, TrafficPattern};

/// Count flows per directed inter-supernode link for uniform all-to-all.
fn link_loads(spec: &ClusterSpec) -> HashMap<(usize, usize), u64> {
    let n = spec.supernode_count();
    let mut loads: HashMap<(usize, usize), u64> = HashMap::new();
    for src in 0..n {
        for dst in 0..n {
            if src == dst {
                continue;
            }
            // Walk the X-Y route hop by hop.
            let mut at = src;
            while at != dst {
                let (r_at, c_at) = spec.topology.position(at);
                let (r_d, c_d) = spec.topology.position(dst);
                let port = if c_at < c_d {
                    Port::East
                } else if c_at > c_d {
                    Port::West
                } else if r_at < r_d {
                    Port::South
                } else {
                    Port::North
                };
                let next = spec
                    .neighbor(at, port)
                    .expect("X-Y route stays on the mesh");
                *loads.entry((at, next)).or_default() += 1;
                at = next;
            }
        }
    }
    loads
}

fn main() {
    let link_rate = LinkConfig::PROTOTYPE.effective_bytes_per_sec() as f64 * 64.0 / 72.0;
    println!("Mesh all-to-all scaling under X-Y routing (HT800 links)\n");
    println!(
        "{:>6} {:>12} {:>16} {:>20} {:>22}",
        "mesh", "supernodes", "max link load", "per-node MB/s", "aggregate GB/s"
    );

    let mut fig = Figure::new(
        "All-to-all per-node bandwidth vs mesh size",
        "supernodes",
        "MB/s per node",
    );
    let mut series = Series::new("per-node all-to-all bandwidth");
    let mut per_node_prev = f64::MAX;
    for side in [2usize, 3, 4, 6, 8] {
        let spec = ClusterSpec::new(
            SupernodeSpec::new(2, 1 << 20),
            ClusterTopology::Mesh { x: side, y: side },
        );
        let loads = link_loads(&spec);
        let n = spec.supernode_count() as f64;
        let max_load = *loads.values().max().expect("some load") as f64;
        // Each node sources n-1 flows; time for everyone to send 1 unit to
        // everyone = max_load units of link time.
        let per_node = link_rate * (n - 1.0) / max_load / 1e6;
        let aggregate = per_node * n / 1e3;
        println!(
            "{:>6} {:>12} {:>16} {:>20.0} {:>22.1}",
            format!("{side}x{side}"),
            spec.supernode_count(),
            max_load,
            per_node,
            aggregate
        );
        series.push(n, per_node);
        assert!(per_node < per_node_prev, "per-node bandwidth must shrink");
        per_node_prev = per_node;
    }
    fig.add(series);
    println!("\n{fig}");

    // ── Measured cross-check ────────────────────────────────────────────
    //
    // The sharded event engine can now *simulate* the meshes the counting
    // model only predicts (8×8 = 64 supernodes, 4032 concurrent flows
    // with real credit flow control). Run uniform all-to-all and compare
    // the measured per-node goodput decay against the analytic curve.
    // Absolute numbers sit below the bound (the model assumes perfect
    // link scheduling; the fabric pays packetisation and credit stalls),
    // but the ~1/side shape must match.
    println!("measured all-to-all on the event engine (2 KB per flow):");
    println!(
        "{:>6} {:>8} {:>18} {:>20} {:>12}",
        "mesh", "flows", "model per-node", "measured per-node", "stalls"
    );
    let mut measured_prev = f64::MAX;
    for side in [2usize, 4, 8] {
        let mut sim = TcclusterBuilder::new()
            .topology(ClusterTopology::Mesh { x: side, y: side })
            .processors_per_supernode(2)
            .engine(EngineKind::EventDriven)
            .event_threads(4)
            .build_sim();
        let r = sim.run_workload(TrafficPattern::AllToAll, 2 << 10);
        assert_eq!(r.lost_packets(), 0, "{side}x{side} lost packets");
        let spec = ClusterSpec::new(
            SupernodeSpec::new(2, 1 << 20),
            ClusterTopology::Mesh { x: side, y: side },
        );
        let loads = link_loads(&spec);
        let n = spec.supernode_count() as f64;
        let max_load = *loads.values().max().expect("some load") as f64;
        let model = link_rate * (n - 1.0) / max_load / 1e6;
        let measured = r.aggregate_goodput_mbps() / n;
        println!(
            "{:>6} {:>8} {:>13.0} MB/s {:>15.0} MB/s {:>12}",
            format!("{side}x{side}"),
            r.flows.len(),
            model,
            measured,
            r.stalls_no_credit
        );
        assert!(
            measured < measured_prev,
            "measured per-node bandwidth must shrink with mesh size"
        );
        assert!(
            measured < model * 1.05,
            "{side}x{side}: measured {measured:.0} MB/s exceeds the counting bound {model:.0}"
        );
        measured_prev = measured;
    }

    println!(
        "shape check: per-node all-to-all bandwidth decays ~1/side — the\n\
         scaling cost the paper's outlook leaves unmeasured. Point-to-point\n\
         latency/bandwidth (Figs 6-7) are unaffected; dense global traffic\n\
         pays the mesh bisection like any direct network."
    );
    println!("MESH BISECTION EXTENSION OK");
}
