//! Regenerates the paper's **motivation argument** (§§I, III): cache
//! coherency limits shared-memory scaling because every transaction probes
//! every node and completes only on the last response, while TCCluster's
//! non-coherent stores pay a flat cost per hop.
//!
//! Prints probe latency, probe bandwidth overhead and effective per-node
//! write throughput for coherent domains of 2..=64 nodes, against the
//! (constant) TCCluster message cost.

use tcc_fabric::series::{Figure, Series};
use tcc_opteron::coherence::{CoherentDomain, Topology};
use tcc_opteron::UarchParams;

fn main() {
    let params = UarchParams::shanghai();
    let link_bps = tcc_ht::link::LinkConfig::PROTOTYPE.effective_bytes_per_sec();

    println!("Coherent shared memory vs TCCluster (why the paper drops coherency)\n");
    println!(
        "{:>6} {:>14} {:>18} {:>20} {:>22}",
        "nodes", "topology", "probe latency", "probe B/transaction", "eff. write MB/s/node"
    );

    let mut fig = Figure::new(
        "Coherency scaling",
        "nodes",
        "effective write MB/s per node",
    );
    let mut coherent = Series::new("coherent (MESI probes)");
    let mut tcc = Series::new("TCCluster (non-coherent)");

    for &n in &[2usize, 4, 8, 16, 32, 64] {
        let topo = if n <= 8 {
            Topology::FullyConnected
        } else {
            Topology::Mesh2D
        };
        let d = CoherentDomain::new(n, topo, params.clone());
        let eff = d.effective_write_bandwidth(link_bps) / 1e6;
        println!(
            "{:>6} {:>14} {:>18} {:>20} {:>22.0}",
            n,
            format!("{topo:?}"),
            format!("{}", d.probe_latency()),
            d.probe_bytes_per_txn(),
            eff
        );
        coherent.push(n as f64, eff);
        // TCCluster: no probes — a 64 B store costs 72 wire bytes, flat.
        tcc.push(n as f64, link_bps as f64 * 64.0 / 72.0 / 1e6);
    }
    fig.add(coherent);
    fig.add(tcc);
    println!("\n{fig}");

    // The paper's claims, as assertions:
    // (a) 8 nodes is where glueless coherent Opterons stop (probe cost
    //     already dominates), (b) beyond ~32 nodes effective bandwidth
    //     collapses by an order of magnitude.
    let c = fig.get("coherent (MESI probes)").expect("series");
    let t = fig.get("TCCluster (non-coherent)").expect("series");
    let at2 = c.at(2.0).unwrap();
    let at64 = c.at(64.0).unwrap();
    assert!(at2 / at64 > 10.0, "collapse {:.1}x", at2 / at64);
    assert!(t.at(64.0).unwrap() > 10.0 * at64, "TCC flat advantage");
    println!(
        "coherent 2->64 node effective-bandwidth collapse: {:.0}x",
        at2 / at64
    );
    println!("ALL SCALING CLAIMS OK");
}
