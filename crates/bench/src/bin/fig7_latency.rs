//! Regenerates **Figure 7** — TCCluster half-round-trip latency vs
//! message size, against the InfiniBand reference.
//!
//! Paper anchors (§VI): 227 ns for 64 B packets; below 1 µs at 1 KB;
//! InfiniBand around 1.4 µs for minimal packets — a ~4–6× advantage.

use tcc_bench::{check_anchor, fig7_sizes, figure7_par};

fn main() {
    // Points are independent; sweep them in parallel (cluster per worker).
    let fig = figure7_par(&fig7_sizes());
    println!("{fig}");

    let tcc = fig.get("TCCluster").expect("series");
    let ib = fig.get("InfiniBand ConnectX").expect("series");
    println!("Paper-vs-measured anchors:");
    let mut ok = true;
    ok &= check_anchor(
        "TCC half-RTT @64 B (ns)",
        227.0,
        tcc.at(64.0).unwrap(),
        0.12,
    );
    ok &= check_anchor(
        "TCC half-RTT @1 KB (ns, < 1000)",
        610.0,
        tcc.at(1024.0).unwrap(),
        0.25,
    );
    ok &= check_anchor("IB one-way @64 B (ns)", 1400.0, ib.at(64.0).unwrap(), 0.10);
    let advantage = ib.at(64.0).unwrap() / tcc.at(64.0).unwrap();
    println!("  TCC advantage at 64 B: {advantage:.1}x (paper: ~4-6x)");
    assert!(
        tcc.at(1024.0).unwrap() < 1000.0,
        "1 KB must stay under 1 us"
    );
    println!(
        "{}",
        if ok {
            "ALL ANCHORS OK"
        } else {
            "SOME ANCHORS DEVIATE"
        }
    );
    println!("\n--- CSV ---\n{}", fig.to_csv());
}
