//! Regenerates the paper's **endpoint-scaling claim** (§IV.A): "each node
//! has to allocate a 4 KB ring buffer for each endpoint it wants to
//! communicate with. While this limitation prohibits unlimited scalability
//! the approach is sufficient to support hundreds of endpoints."
//!
//! Reports per-endpoint memory, total footprint, and the receive-side
//! poll sweep cost as the endpoint count grows — plus a live threaded
//! all-to-all on the shared-memory backend to show the protocol actually
//! runs at those endpoint counts.

use tcc_fabric::series::{Figure, Series};
use tcc_msglib::{SendMode, CHANNEL_BYTES, CREDIT_BYTES, RING_BYTES};
use tcc_opteron::UarchParams;
use tccluster::ShmCluster;

fn main() {
    let params = UarchParams::shanghai();
    println!("Endpoint scaling (4 KB ring per endpoint, paper §IV.A)\n");
    println!(
        "{:>10} {:>16} {:>16} {:>18}",
        "endpoints", "ring memory", "full channels", "poll sweep (us)"
    );
    let mut fig = Figure::new("Endpoint scaling", "endpoints", "KB and us");
    let mut mem = Series::new("ring KB");
    let mut poll = Series::new("poll sweep us");
    for &n in &[2usize, 8, 32, 64, 128, 256, 512] {
        let rings = n as u64 * RING_BYTES as u64;
        let channels = n as u64 * (CHANNEL_BYTES + CREDIT_BYTES);
        // A full poll sweep issues one UC read per endpoint ring head.
        let sweep_us = n as f64 * params.uc_read.micros();
        println!(
            "{:>10} {:>13} KB {:>13} KB {:>18.2}",
            n,
            rings / 1024,
            channels / 1024,
            sweep_us
        );
        mem.push(n as f64, (rings / 1024) as f64);
        poll.push(n as f64, sweep_us);
    }
    fig.add(mem);
    fig.add(poll);

    // "Hundreds of endpoints" fit comfortably in one node's exported
    // window: 512 rings are just 2 MB...
    const { assert!(512 * RING_BYTES <= 2 << 20) };
    // ...while a full 512-endpoint poll sweep stays under 40 us.
    assert!(512.0 * params.uc_read.micros() < 40.0);

    // Live check: a 12-rank threaded cluster (12x11 = 132 live channels)
    // runs an all-to-all without losing a message.
    const RANKS: usize = 12;
    let results = ShmCluster::new(RANKS, SendMode::WeaklyOrdered).run(|ctx| {
        for p in 0..ctx.n {
            if p != ctx.rank {
                ctx.send(p, &(ctx.rank as u64).to_le_bytes());
            }
        }
        let mut sum = 0u64;
        for p in 0..ctx.n {
            if p != ctx.rank {
                sum += u64::from_le_bytes(ctx.recv(p).try_into().expect("8B"));
            }
        }
        ctx.barrier();
        sum
    });
    let expect: u64 = (0..RANKS as u64).sum();
    for (r, &s) in results.iter().enumerate() {
        assert_eq!(s + r as u64, expect, "rank {r}");
    }
    println!(
        "\nlive all-to-all across {RANKS} ranks ({} channels): OK",
        RANKS * (RANKS - 1)
    );
    println!("\n{fig}");
    println!("ENDPOINT-SCALING CLAIMS OK");
}
