//! Regenerates **Figure 6** — TCCluster bandwidth vs message size, with
//! the paper's two send mechanisms and the InfiniBand reference.
//!
//! Paper anchors (§VI): weakly ordered sustains ~2700 MB/s with an
//! apparent peak of ~5300 MB/s at 256 KB (sender-side buffering artifact,
//! per the paper's own explanation); strictly ordered plateaus at
//! ~2000 MB/s; 64 B messages reach ~2500 MB/s; ConnectX reaches 200 /
//! 1500 / 2500 MB/s at 64 B / 1 KB / 1 MB.

use tcc_bench::{check_anchor, fig6_sizes, figure6_par};
use tcc_msglib::SendMode;

fn main() {
    // Sweep points are independent (each resets the sim timebase), so
    // they run in parallel — one booted cluster per worker thread.
    let fig = figure6_par(&fig6_sizes());
    println!("{fig}");

    println!("Paper-vs-measured anchors:");
    let weak = fig.get("TCC weakly ordered").expect("series");
    let strict = fig.get("TCC strictly ordered").expect("series");
    let ib = fig.get("InfiniBand ConnectX").expect("series");
    let mut ok = true;
    ok &= check_anchor("weak @64 B (MB/s)", 2500.0, weak.at(64.0).unwrap(), 0.15);
    ok &= check_anchor(
        "weak peak @256 KB (MB/s)",
        5300.0,
        weak.at((256 << 10) as f64).unwrap(),
        0.15,
    );
    ok &= check_anchor(
        "weak sustained @4 MB (MB/s)",
        2700.0,
        weak.at((4 << 20) as f64).unwrap(),
        0.15,
    );
    ok &= check_anchor(
        "strict plateau @4 KB (MB/s)",
        2000.0,
        strict.at(4096.0).unwrap(),
        0.15,
    );
    ok &= check_anchor("IB @64 B (MB/s)", 200.0, ib.at(64.0).unwrap(), 0.15);
    ok &= check_anchor("IB @1 KB (MB/s)", 1500.0, ib.at(1024.0).unwrap(), 0.15);
    ok &= check_anchor(
        "IB @1 MB (MB/s)",
        2500.0,
        ib.at((1 << 20) as f64).unwrap(),
        0.15,
    );
    println!(
        "\npeak location: {} B (paper: 262144 B)",
        weak.argmax().unwrap()
    );
    println!(
        "{}",
        if ok {
            "ALL ANCHORS OK"
        } else {
            "SOME ANCHORS DEVIATE"
        }
    );

    // Also emit machine-readable data.
    println!("\n--- CSV ---\n{}", fig.to_csv());

    // Sanity check usable from scripts: exit nonzero if the shape broke.
    let strict_flat = strict.at(4096.0).unwrap();
    assert!(strict_flat < weak.at(4096.0).unwrap());
    let _ = SendMode::WeaklyOrdered;
}
