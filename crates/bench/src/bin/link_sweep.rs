//! Regenerates the paper's **link-speed claims** (§III and §V): HT links
//! run from 200 MHz/8 bit at boot (400 MB/s) through the prototype's
//! HT800/16 bit (1.6 Gbit/s/lane) up to HT3 at 2.6–3.2 GHz
//! (up to 12.8 GB/s unidirectional), and the boot sequence raises the
//! TCC link from 400 to 4800 Mbit/s.
//!
//! The sweep boots a fresh two-node cluster per configuration and reports
//! raw/effective link bandwidth plus measured end-to-end numbers.

use rayon::prelude::*;
use tcc_fabric::series::{Figure, Series};
use tcc_fabric::time::Duration;
use tcc_firmware::topology::{ClusterSpec, ClusterTopology, SupernodeSpec};
use tcc_ht::link::LinkConfig;
use tcc_msglib::SendMode;
use tcc_opteron::UarchParams;
use tccluster::SimCluster;

fn main() {
    let configs: Vec<(&str, LinkConfig)> = vec![
        ("HT200/8 (boot)", LinkConfig::BOOT),
        (
            "HT400/16",
            LinkConfig {
                clock_mhz: 400,
                width_bits: 16,
                hop_latency: Duration::from_nanos(50),
            },
        ),
        ("HT800/16 (prototype)", LinkConfig::PROTOTYPE),
        (
            "HT1200/16",
            LinkConfig {
                clock_mhz: 1200,
                width_bits: 16,
                hop_latency: Duration::from_nanos(50),
            },
        ),
        ("HT2600/16 (HT3)", LinkConfig::HT3_FULL),
        (
            "HT3200/16 (HT3.1 max)",
            LinkConfig {
                clock_mhz: 3200,
                width_bits: 16,
                hop_latency: Duration::from_nanos(50),
            },
        ),
    ];

    println!("Link configuration sweep (paper §III: up to 12.8 GB/s/link, ~50 ns/hop)\n");
    println!(
        "{:<24} {:>12} {:>12} {:>14} {:>14} {:>12}",
        "config", "Gbit/lane", "raw GB/s", "eff GB/s", "4MB weak MB/s", "64B ns"
    );

    let mut fig = Figure::new("Link sweep", "clock MHz", "measured 4MB MB/s");
    let mut series = Series::new("weak @4MB");
    // Each configuration boots its own cluster, so the sweep points are
    // fully independent: measure them in parallel, print in order.
    let measured: Vec<(f64, f64)> = configs
        .par_iter()
        .map(|&(_, cfg)| {
            let spec = ClusterSpec::new(SupernodeSpec::new(1, 1 << 20), ClusterTopology::Pair);
            let mut cluster = SimCluster::boot_with(spec, UarchParams::shanghai(), cfg);
            let bw = cluster.stream_bandwidth(0, 1, 4 << 20, SendMode::WeaklyOrdered, 2);
            let lat = cluster.pingpong(0, 1, 64, 30).nanos();
            (bw, lat)
        })
        .collect();
    for ((name, cfg), &(bw, lat)) in configs.iter().zip(&measured) {
        println!(
            "{:<24} {:>12.1} {:>12.2} {:>14.2} {:>14.0} {:>12.1}",
            name,
            cfg.gbit_per_lane(),
            cfg.raw_bytes_per_sec() as f64 / 1e9,
            cfg.effective_bytes_per_sec() as f64 / 1e9,
            bw,
            lat
        );
        series.push(cfg.clock_mhz as f64, bw);
    }
    fig.add(series);

    // Paper claims to verify.
    let boot = LinkConfig::BOOT;
    assert_eq!(boot.raw_bytes_per_sec(), 400_000_000, "400 Mbit/s x8 boot");
    let proto = LinkConfig::PROTOTYPE;
    assert!(
        (proto.gbit_per_lane() - 1.6).abs() < 1e-9,
        "1.6 Gbit/s/lane"
    );
    let max = configs.last().expect("configs").1;
    assert_eq!(max.raw_bytes_per_sec(), 12_800_000_000, "12.8 GB/s/link");
    // Boot sequence speed jump: 400 -> 4800 Mbit/s total (§V): 8 lanes at
    // 400 Mbit vs 16 lanes going from that to 4.8 Gbit aggregate ratio.
    println!(
        "\nboot-to-TCC link speed-up: {:.0}x (paper: 400 -> 4800 Mbit/s per §V)",
        proto.raw_bytes_per_sec() as f64 / boot.raw_bytes_per_sec() as f64
    );
    println!("\n--- CSV ---\n{}", fig.to_csv());
    println!("ALL LINK CLAIMS OK");
}
