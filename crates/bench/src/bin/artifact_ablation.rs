//! Ablation of the Fig. 6 measurement artifact: the paper attributes the
//! 5300 MB/s point at 256 KB to "caching structures within the Opteron"
//! absorbing weakly-ordered bursts faster than the link drains them, and
//! explicitly says it "does not reflect the bandwidth performance of the
//! TCCluster link". Our model realises that as a bounded absorption stage
//! (`UarchParams::absorb_capacity_bytes` / `absorb_bytes_per_sec`).
//!
//! This harness varies the absorption capacity and shows the peak move
//! with it — demonstrating the artifact is a modelled *measurement*
//! effect, while the sustained (large-message) bandwidth stays pinned to
//! the link.

use tcc_fabric::series::{Figure, Series};
use tcc_firmware::topology::{ClusterSpec, ClusterTopology, SupernodeSpec};
use tcc_msglib::SendMode;
use tcc_opteron::UarchParams;
use tccluster::SimCluster;

fn main() {
    let sizes: Vec<usize> = (12..=22).map(|p| 1usize << p).collect();
    // The absorbed-backlog grows at (absorb - wire) rate, so the apparent
    // peak sits near 2x the window capacity.
    let capacities: &[(u64, &str)] = &[
        (64 << 10, "64 KB window"),
        (128 << 10, "128 KB window (paper)"),
        (512 << 10, "512 KB window"),
    ];

    let mut fig = Figure::new(
        "Absorption-window ablation: weakly ordered bandwidth (MB/s)",
        "bytes",
        "MB/s",
    );
    let mut peaks = Vec::new();
    for &(cap, label) in capacities {
        let mut params = UarchParams::shanghai();
        params.absorb_capacity_bytes = cap;
        let spec = ClusterSpec::new(SupernodeSpec::new(1, 4 << 20), ClusterTopology::Pair);
        let mut cluster = SimCluster::boot(spec, params);
        let mut series = Series::new(label);
        for &s in &sizes {
            let bw = cluster.stream_bandwidth(0, 1, s, SendMode::WeaklyOrdered, 3);
            series.push(s as f64, bw);
        }
        peaks.push((cap, series.argmax().expect("points")));
        fig.add(series);
    }
    println!("{fig}");

    println!("peak location vs absorption capacity:");
    for &(cap, at) in &peaks {
        println!(
            "  window {:>8} KB -> peak at {:>8} KB",
            cap / 1024,
            at as u64 / 1024
        );
    }
    // The peak tracks the window at ~2x capacity: the paper's 128 KB
    // window puts it at 256 KB, exactly where Fig. 6 shows it.
    assert_eq!(peaks[0].1 as u64, 128 << 10, "small window moves the peak");
    assert_eq!(peaks[1].1 as u64, 256 << 10, "paper window -> paper peak");
    assert_eq!(peaks[2].1 as u64, 1 << 20, "large window pushes it out");
    // Sustained large-message bandwidth is window-independent (the link).
    let big = (4 << 20) as f64;
    let at_big: Vec<f64> = fig
        .series
        .iter()
        .map(|s| s.at(big).expect("4MB point"))
        .collect();
    let spread = (at_big.iter().cloned().fold(f64::MIN, f64::max)
        - at_big.iter().cloned().fold(f64::MAX, f64::min))
        / at_big[0];
    println!(
        "\n4 MB sustained spread across windows: {:.1}%",
        spread * 100.0
    );
    assert!(
        spread < 0.35,
        "sustained bandwidth should be link-dominated"
    );
    println!("ARTIFACT ABLATION OK — the peak is a measurement effect, the link is the truth");
}
