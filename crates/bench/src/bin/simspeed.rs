//! Simulator-speed harness: how fast the *host* executes the reproduction.
//!
//! The paper's figures measure simulated time; this binary measures
//! wallclock — the packets-per-second engine behind every sweep. It times
//! the Fig. 6 + Fig. 7 reproductions (parallel sweeps), a ShmCluster
//! ping-pong storm, the raw store-issue path, counts heap allocations per
//! message, and scales the sharded event engine across worker threads,
//! queue backends and mailbox kinds on an 8×8 mesh — including a
//! per-stage attribution run (queue ops vs mailbox handoff vs event
//! execution) — then writes `BENCH_simspeed.json` next to the workspace
//! root so future perf PRs can regress against it. See docs/hot-path.md
//! for the schema.
//!
//! Modes:
//!
//! * default — full run, writes `BENCH_simspeed.json`.
//! * `--smoke` — fast CI subset: runs the event engine across queue
//!   backends × mailbox kinds × {1, 4} worker threads on a 4×4 mesh,
//!   asserts the reports are byte-identical (the determinism contract)
//!   and that single-thread throughput clears a recorded floor (a
//!   generous fraction of the tuned rate, so noisy runners pass but a
//!   regression to the pre-optimization engine fails), then exits
//!   without touching the JSON.
//! * `--check` — full run plus host-aware regression guards (exit 1 on
//!   violation). Guards that depend on host parallelism (the shm storm,
//!   the 8-thread scaling target) are skipped — loudly — on hosts without
//!   the cores to express them.

// The speed harness is the legitimate wallclock consumer (clippy.toml).
#![allow(clippy::disallowed_methods)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use tcc_bench::{fig6_sizes, fig7_sizes, figure6_par, figure7_par, prototype};
use tcc_msglib::channel::{channel, CHANNEL_BYTES, CREDIT_BYTES};
use tcc_msglib::shm::ShmMemory;
use tcc_msglib::SendMode;
use tccluster::firmware::topology::ClusterTopology;
use tccluster::{
    EngineKind, MailboxKind, QueueBackend, ShmCluster, StageProfile, TcclusterBuilder,
    TrafficPattern, WorkloadReport,
};

/// Counting allocator: every heap allocation in the process bumps a
/// counter, so steady-state loops can assert/report allocations per
/// operation.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Monotonic nanosecond clock injected into the engine for stage
/// attribution (the engine itself is wallclock-free; the bench is the
/// legitimate clock owner).
fn mono_ns() -> u64 {
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Wallclock of the pre-change harness on the reference dev host, recorded
/// immediately before the zero-allocation refactor landed (same sweep, same
/// binary). The ≥3x acceptance criterion compares against these.
const PRE_CHANGE_FIG6_MS: f64 = 695.8;
const PRE_CHANGE_FIG7_MS: f64 = 9.6;
const PRE_CHANGE_STORE_NS: f64 = 578.8;
const PRE_CHANGE_STORE_ALLOCS: f64 = 15.0;
const PRE_CHANGE_SHM_MESSAGE_NS: f64 = 167.1;
const PRE_CHANGE_SHM_ALLOCS: f64 = 4.0;
/// Recorded on a multi-core reference host. The storm is a 2-thread
/// ping-pong: on a single-CPU host every message leg forces a scheduler
/// switch, capping throughput near 1/(2·context-switch) regardless of
/// code quality — see docs/hot-path.md ("shm storm and host topology").
const PRE_CHANGE_STORM_MSGS_PER_SEC: f64 = 591_846.0;
/// 8×8 all-to-all single-thread rate of the pre-optimization engine
/// (mutex mailboxes, owned-event calendar queue, unclipped flow wake
/// fan-out), best backend (BinaryHeap), recorded on this PR's dev host
/// immediately before the mailbox/arena/ladder work landed.
const PRE_CHANGE_MESH8_T1_EPS: f64 = 2_530_000.0;
/// Best 8×8 t1 rate recorded by the previous perf PR (ring mailboxes,
/// arena events, ladder queue) on its dev host — the floor the flattened
/// exec path must not regress below. Like every cross-host wallclock
/// guard, `--check` applies [`MESH8_T1_SPEEDUP_FLOOR`] as margin; the
/// raw value is recorded in the JSON for same-host comparisons.
const MESH8_T1_FLOOR_EPS: f64 = 2_754_695.0;

/// 8×8 all-to-all flow size: 4 KB per flow × 4032 flows keeps the run in
/// the millions-of-events regime without dominating the harness.
const MESH8_FLOW_BYTES: u64 = 4 << 10;

/// Single-thread floor for the `--smoke` perf-sanity gate, in events/sec
/// on the 4×4 smoke workload (release build). Recorded at roughly a
/// quarter of the tuned engine's rate on the slowest CI-class host we
/// target: generous enough for noisy shared runners, low enough that
/// backsliding to the pre-optimization engine (which ran well below it)
/// fails loudly.
const SMOKE_T1_FLOOR_EPS: f64 = 3_000_000.0;

/// The tentpole target the optimization campaign drives toward: 8×8
/// single-thread events/sec. Recorded in the JSON and asserted by
/// `--check` on dev-class (>= 8 CPU) hosts. Stage attribution shows
/// event *execution* (routing + credit machinery, ~170 ns/event) now
/// dominates at 66% — reaching this target is model-exec work, tracked
/// in ROADMAP.md; the queue/mailbox share is down to a third.
const MESH8_T1_TARGET_EPS: f64 = 20_000_000.0;
/// `--check` floor on any host for t1 vs the recorded pre-change rate.
/// The baseline was recorded on one specific host, so this guard — like
/// the fig6 and storm guards — carries a generous cross-host margin and
/// only catches catastrophic regressions (an accidental O(n^2) path, a
/// debug-mode queue). The host-independent comparisons are the hold
/// model and the same-run ladder-vs-heap band, which need no margin for
/// host speed. Measured 1.13-1.22x on the recording host.
const MESH8_T1_SPEEDUP_FLOOR: f64 = 0.6;

fn time_ms(f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64() * 1e3
}

/// Repetitions per benchmark; the best run is reported. Wallclock on a
/// shared host is contaminated by scheduler interference in one
/// direction only, so the minimum is the standard estimator of the
/// code's actual speed.
const REPS: usize = 3;

fn best_of(mut f: impl FnMut() -> f64) -> f64 {
    (0..REPS).map(|_| f()).fold(f64::INFINITY, f64::min)
}

/// Best-of for (time, allocs) pairs: allocation counts are deterministic,
/// so pairs are ranked by time.
fn best_of2(mut f: impl FnMut() -> (f64, f64)) -> (f64, f64) {
    (0..REPS)
        .map(|_| f())
        .fold((f64::INFINITY, f64::INFINITY), |best, x| {
            if x.0 < best.0 {
                x
            } else {
                best
            }
        })
}

/// Fig. 6 sweep (full size range, both orderings + IB reference,
/// parallel sweep points).
fn bench_fig6() -> f64 {
    let sizes = fig6_sizes();
    time_ms(|| {
        let fig = figure6_par(&sizes);
        assert_eq!(fig.series.len(), 3);
    })
}

/// Fig. 7 sweep (latency curve, parallel sweep points).
fn bench_fig7() -> f64 {
    let sizes = fig7_sizes();
    time_ms(|| {
        let fig = figure7_par(&sizes);
        assert_eq!(fig.series.len(), 2);
    })
}

/// Raw store-issue path: stream 64 B WC stores through one node and
/// propagate each batch, like the bandwidth kernels do. Returns
/// (ns/store, allocations/store).
fn bench_store_path() -> (f64, f64) {
    let mut cluster = prototype();
    cluster.reset_timebase();
    let dst = cluster.spec().node_base(1, 0);
    const N: u64 = 200_000;
    // Warm the pipeline + pool before counting.
    run_store_loop(&mut cluster, dst, 10_000);
    cluster.reset_timebase();
    let a0 = allocs();
    let t0 = Instant::now();
    run_store_loop(&mut cluster, dst, N);
    let dt = t0.elapsed();
    let da = allocs() - a0;
    (dt.as_nanos() as f64 / N as f64, da as f64 / N as f64)
}

fn run_store_loop(cluster: &mut tccluster::SimCluster, dst: u64, n: u64) {
    use tccluster::fabric::time::SimTime;
    let mut now = SimTime::ZERO;
    let mut sink = tcc_opteron::ActionSink::new();
    let mut commits = Vec::new();
    for i in 0..n {
        let addr = dst + (i * 64) % (256 << 10);
        let out = cluster.platform.nodes[0].store(now, addr, &[0u8; 64], &mut sink);
        now = out.issued;
        commits.clear();
        cluster.platform.propagate(0, &mut sink, &mut commits);
    }
}

/// Steady-state eager messages over the shm channel path, single-threaded
/// (deterministic allocation counting). Returns (ns/message,
/// allocations/message).
fn bench_shm_channel() -> (f64, f64) {
    let data = ShmMemory::new(CHANNEL_BYTES as usize);
    let credits = ShmMemory::new(CREDIT_BYTES as usize);
    let (mut tx, mut rx) = channel(
        data.remote(0, CHANNEL_BYTES),
        credits.local(0, CREDIT_BYTES),
        data.local(0, CHANNEL_BYTES),
        credits.remote(0, CREDIT_BYTES),
        SendMode::WeaklyOrdered,
    );
    let msg = [0xA5u8; 64];
    let mut buf = Vec::new();
    // Warm up past ring-capacity growth.
    for _ in 0..1_000 {
        tx.send(&msg).expect("fits");
        assert_eq!(rx.recv_into(&mut buf), 64);
    }
    const N: u64 = 100_000;
    let a0 = allocs();
    let t0 = Instant::now();
    for _ in 0..N {
        tx.send(&msg).expect("fits");
        assert_eq!(rx.recv_into(&mut buf), 64);
    }
    let dt = t0.elapsed();
    let da = allocs() - a0;
    (dt.as_nanos() as f64 / N as f64, da as f64 / N as f64)
}

/// Pure queue-op microbenchmark: the classic hold model — pop the
/// minimum, reschedule it a pseudo-random delta ahead — over a steady
/// population the size of a loaded shard queue. End-to-end rates are
/// exec-dominated (see the stage attribution), so this is where the
/// backend comparison actually resolves. Returns ns per hold
/// (pop + schedule).
fn bench_queue_hold(backend: QueueBackend) -> f64 {
    bench_queue_hold_at(backend, 192)
}

/// [`bench_queue_hold`] at an explicit steady population, for the
/// population sweep that guards the ladder against density inversions.
fn bench_queue_hold_at(backend: QueueBackend, population: u64) -> f64 {
    use tccluster::fabric::event::EventQueue;
    use tccluster::fabric::time::SimTime;
    const OPS: u64 = 2_000_000;
    let mut q: EventQueue<u32> = EventQueue::with_backend(backend);
    let mut x = 0x9E3779B97F4A7C15u64;
    let mut step = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x % 4096) + 1
    };
    for i in 0..population {
        let d = step();
        q.schedule_at(SimTime(d), i as u32);
    }
    // Warm the structures through one full population turnover.
    for _ in 0..population * 4 {
        let (t, v) = q.pop().expect("population is steady");
        let d = step();
        q.schedule_at(SimTime(t.0 + d), v);
    }
    let t0 = Instant::now();
    for _ in 0..OPS {
        let (t, v) = q.pop().expect("population is steady");
        let d = step();
        q.schedule_at(SimTime(t.0 + d), v);
    }
    t0.elapsed().as_nanos() as f64 / OPS as f64
}

/// Event-driven fabric engine, small scale: concurrent all-to-all on a
/// 2×2 mesh of two-socket supernodes (12 flows, real credit flow
/// control). Returns host events/sec — the sweep-rate currency of every
/// congestion study. Kept from schema v2 for baseline continuity.
fn bench_event_fabric() -> f64 {
    let mut cluster = TcclusterBuilder::new()
        .topology(ClusterTopology::Mesh { x: 2, y: 2 })
        .processors_per_supernode(2)
        .engine(EngineKind::EventDriven)
        .build_sim();
    let t0 = Instant::now();
    let report = cluster.run_workload(TrafficPattern::AllToAll, 256 << 10);
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(report.lost_packets(), 0, "event fabric lost packets");
    report.events as f64 / dt
}

/// One 8×8 all-to-all run (4032 flows) at a given worker-thread count,
/// queue backend and mailbox kind. Returns (events/sec, report) — the
/// report so the caller can assert cross-configuration determinism.
fn bench_mesh8(
    threads: usize,
    backend: QueueBackend,
    mailbox: MailboxKind,
) -> (f64, WorkloadReport) {
    bench_mesh8_lane(threads, backend, mailbox, true)
}

/// [`bench_mesh8`] with the flat fast lane switchable, for the A/B rows.
fn bench_mesh8_lane(
    threads: usize,
    backend: QueueBackend,
    mailbox: MailboxKind,
    flat_lane: bool,
) -> (f64, WorkloadReport) {
    let mut cluster = TcclusterBuilder::new()
        .topology(ClusterTopology::Mesh { x: 8, y: 8 })
        .processors_per_supernode(2)
        .engine(EngineKind::EventDriven)
        .event_threads(threads)
        .event_queue(backend)
        .event_mailbox(mailbox)
        .event_flat_lane(flat_lane)
        .build_sim();
    let t0 = Instant::now();
    let report = cluster.run_workload(TrafficPattern::AllToAll, MESH8_FLOW_BYTES);
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(report.lost_packets(), 0, "8x8 all-to-all lost packets");
    (report.events as f64 / dt, report)
}

/// The 8×8 workload once more with the stage-attribution clock injected:
/// splits the epoch loop's wallclock into queue ops, mailbox handoff and
/// event execution. Instrumentation costs two clock reads per event, so
/// this run's absolute rate is NOT comparable to the headline numbers —
/// only the per-stage split is the point.
fn bench_mesh8_attribution(threads: usize) -> StageProfile {
    let mut cluster = TcclusterBuilder::new()
        .topology(ClusterTopology::Mesh { x: 8, y: 8 })
        .processors_per_supernode(2)
        .engine(EngineKind::EventDriven)
        .event_threads(threads)
        .event_profile_clock(mono_ns)
        .build_sim();
    let report = cluster.run_workload(TrafficPattern::AllToAll, MESH8_FLOW_BYTES);
    assert_eq!(report.lost_packets(), 0, "attribution run lost packets");
    cluster
        .event_engine()
        .expect("event engine")
        .stage_profile()
}

/// Threaded ShmCluster ping-pong storm. Returns messages/sec (both
/// directions counted).
fn bench_shm_storm() -> f64 {
    const ROUND_TRIPS: u64 = 100_000;
    let cluster = ShmCluster::new(2, SendMode::WeaklyOrdered);
    let t0 = Instant::now();
    let _ = cluster.run(move |ctx| {
        let mut buf = Vec::new();
        if ctx.rank == 0 {
            for _ in 0..ROUND_TRIPS {
                ctx.send(1, &[0u8; 64]);
                assert_eq!(ctx.recv_into(1, &mut buf), 64);
            }
        } else {
            for _ in 0..ROUND_TRIPS {
                ctx.recv_into(0, &mut buf);
                ctx.send(0, &buf);
            }
        }
    });
    let dt = t0.elapsed().as_secs_f64();
    (2 * ROUND_TRIPS) as f64 / dt
}

/// CI smoke: the event engine across {queue backend} × {mailbox kind} ×
/// {1, 4 threads} on a 4×4 mesh must produce byte-identical reports, and
/// single-thread throughput must clear [`SMOKE_T1_FLOOR_EPS`] so a perf
/// regression to the pre-optimization engine cannot land silently.
/// Prints rates, exits nonzero via assert on violation.
fn smoke() {
    println!("simspeed --smoke: determinism + perf floor (4x4 all-to-all)\n");
    let run = |threads: usize, backend: QueueBackend, mailbox: MailboxKind| {
        let mut cluster = TcclusterBuilder::new()
            .topology(ClusterTopology::Mesh { x: 4, y: 4 })
            .processors_per_supernode(2)
            .engine(EngineKind::EventDriven)
            .event_threads(threads)
            .event_queue(backend)
            .event_mailbox(mailbox)
            .build_sim();
        let t0 = Instant::now();
        let report = cluster.run_workload(TrafficPattern::AllToAll, 2 << 10);
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(report.lost_packets(), 0, "smoke lost packets");
        let eps = report.events as f64 / dt;
        println!(
            "  {:>11} x {:>5} x{threads} threads: {eps:>12.0} events/sec",
            backend.name(),
            mailbox.name(),
        );
        (eps, report)
    };
    let (_, baseline) = run(1, QueueBackend::default(), MailboxKind::default());
    let mut best_t1 = 0.0f64;
    for backend in QueueBackend::ALL {
        for mailbox in MailboxKind::ALL {
            for threads in [1usize, 4] {
                let (eps, got) = run(threads, backend, mailbox);
                assert_eq!(
                    got, baseline,
                    "{backend:?} x {mailbox:?} x{threads} threads diverged"
                );
                if threads == 1 {
                    best_t1 = best_t1.max(eps);
                }
            }
        }
    }
    assert!(
        best_t1 >= SMOKE_T1_FLOOR_EPS,
        "single-thread smoke rate {best_t1:.0} events/sec is below the \
         {SMOKE_T1_FLOOR_EPS:.0} floor — the event-engine fast paths have regressed"
    );
    println!(
        "\nsmoke OK: all configurations byte-identical; best t1 rate \
         {best_t1:.0} events/sec clears the {SMOKE_T1_FLOOR_EPS:.0} floor"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    // Dev-iteration modes: run only one benchmark family, skip the JSON.
    if args.iter().any(|a| a == "--hold") {
        const POPS: [u64; 6] = [24, 48, 96, 192, 384, 768];
        println!("queue hold model (pop + schedule), ns/hold by steady population:");
        print!("  {:>11}", "population");
        for pop in POPS {
            print!("  {pop:>7}");
        }
        println!();
        for backend in QueueBackend::ALL {
            print!("  {:>11}", backend.name());
            for pop in POPS {
                let ns = best_of(|| bench_queue_hold_at(backend, pop));
                print!("  {ns:>7.1}");
            }
            println!();
        }
        return;
    }
    if args.iter().any(|a| a == "--mesh8-once") {
        let mut best = 0.0f64;
        for _ in 0..5 {
            let (eps, _) = bench_mesh8(1, QueueBackend::Ladder, MailboxKind::Ring);
            println!("ladder x1  {eps:.0} events/sec");
            best = best.max(eps);
        }
        println!("best       {best:.0} events/sec");
        return;
    }
    if args.iter().any(|a| a == "--attr") {
        let prof = bench_mesh8_attribution(1);
        let per_sampled = |ns: u64| ns as f64 / prof.sampled_events.max(1) as f64;
        let per_epoch_event = |ns: u64| ns as f64 / prof.profiled_events.max(1) as f64;
        println!(
            "stage attribution, t1 (sampled 1/{}):",
            tccluster::engine::PROFILE_SAMPLE_EVERY
        );
        println!(
            "  events {}  sampled {}  visits {}",
            prof.profiled_events, prof.sampled_events, prof.epochs
        );
        println!(
            "  queue    {:>8.1} ns/event (sampled)",
            per_sampled(prof.queue_ns)
        );
        println!(
            "  exec     {:>8.1} ns/event (sampled)",
            per_sampled(prof.exec_ns)
        );
        println!("    credit  {:>8.1} ns/event", per_sampled(prof.credit_ns));
        println!("    route   {:>8.1} ns/event", per_sampled(prof.route_ns));
        println!("    deliver {:>8.1} ns/event", per_sampled(prof.deliver_ns));
        println!(
            "  mailbox  {:>8.1} ns/event (all epochs)",
            per_epoch_event(prof.mailbox_ns)
        );
        return;
    }
    if args.iter().any(|a| a == "--mesh8") {
        println!("event fabric 8x8 all-to-all ({MESH8_FLOW_BYTES} B x 4032 flows), t1:");
        for backend in QueueBackend::ALL {
            for flat in [true, false] {
                let mut eps = 0.0f64;
                for _ in 0..REPS {
                    let (e, _) = bench_mesh8_lane(1, backend, MailboxKind::Ring, flat);
                    eps = eps.max(e);
                }
                println!(
                    "  {:>11} x1 threads  flat={:<5}  {eps:>12.0} events/sec",
                    backend.name(),
                    flat
                );
            }
        }
        return;
    }
    let check = args.iter().any(|a| a == "--check");
    let cpus = host_cpus();
    println!("simspeed: wallclock of the reproduction's hot paths (host_cpus={cpus})\n");

    let fig6_ms = best_of(bench_fig6);
    println!("fig6 sweep (parallel)      {fig6_ms:>12.1} ms");
    let fig7_ms = best_of(bench_fig7);
    println!("fig7 sweep (parallel)      {fig7_ms:>12.1} ms");
    let (store_ns, store_allocs) = best_of2(bench_store_path);
    println!(
        "sim store path             {store_ns:>12.1} ns/store   {store_allocs:.2} allocs/store"
    );
    let (shm_ns, shm_allocs) = best_of2(bench_shm_channel);
    println!("shm channel (1 thread)     {shm_ns:>12.1} ns/msg     {shm_allocs:.2} allocs/msg");
    let storm = -best_of(|| -bench_shm_storm());
    println!("shm storm (2 threads)      {storm:>12.0} msgs/sec");
    let event_eps = -best_of(|| -bench_event_fabric());
    println!("event fabric (2x2 mesh)    {event_eps:>12.0} events/sec");

    // Pure queue-op hold model: the backend comparison that end-to-end
    // rates (exec-dominated) cannot resolve above host noise.
    println!("\nqueue hold model (pop + schedule, population 192):");
    let mut hold = [0.0f64; 4];
    for (i, backend) in QueueBackend::ALL.into_iter().enumerate() {
        hold[i] = best_of(|| bench_queue_hold(backend));
        println!("  {:>11}  {:>8.1} ns/hold", backend.name(), hold[i]);
    }
    let (hold_ladder, hold_calendar, hold_heap, hold_auto) = (hold[0], hold[1], hold[2], hold[3]);

    // ── 8×8 full backend × thread matrix (ring mailboxes). Single run
    // per cell except the t1 row (best-of-REPS: the t1 cells anchor the
    // regression guards and the scaling denominator, so they get the
    // noise suppression); the determinism assert makes every run double
    // as a correctness check. ─────────────────────────────────────────
    println!("\nevent fabric 8x8 all-to-all ({MESH8_FLOW_BYTES} B x 4032 flows):");
    let mut matrix: Vec<(QueueBackend, [f64; 4])> = Vec::new();
    let mut baseline: Option<WorkloadReport> = None;
    for backend in QueueBackend::ALL {
        let mut row = [0.0f64; 4];
        for (i, threads) in [1usize, 2, 4, 8].into_iter().enumerate() {
            let mut eps = 0.0f64;
            let reps = if threads == 1 { REPS } else { 1 };
            for _ in 0..reps {
                let (e, report) = bench_mesh8(threads, backend, MailboxKind::Ring);
                eps = eps.max(e);
                if let Some(b) = &baseline {
                    assert_eq!(&report, b, "8x8 {backend:?} x{threads} diverged");
                } else {
                    baseline = Some(report);
                }
            }
            println!(
                "  {:>11} x{threads} threads  {eps:>12.0} events/sec",
                backend.name()
            );
            row[i] = eps;
        }
        matrix.push((backend, row));
    }
    // Mutex-mailbox reference at t1: the differential slow path stays
    // benchmarked so the handoff win is visible in the record.
    let (mutex_t1, mutex_report) = bench_mesh8(1, QueueBackend::default(), MailboxKind::Mutex);
    println!("  mutex mailbox x1 thread {mutex_t1:>12.0} events/sec");
    assert_eq!(
        &mutex_report,
        baseline.as_ref().expect("baseline run"),
        "8x8 mutex mailbox diverged from ring"
    );
    let mesh8_events = baseline.as_ref().map_or(0, |r| r.events);
    // Flat-lane A/B at t1 (default backend, ring mailboxes): the lane-on
    // rate is the default-backend t1 row above; lane-off is measured here
    // so the fast lane's end-to-end worth stays in the record.
    let mut flat_off_t1 = 0.0f64;
    for _ in 0..REPS {
        let (e, report) = bench_mesh8_lane(1, QueueBackend::default(), MailboxKind::Ring, false);
        flat_off_t1 = flat_off_t1.max(e);
        assert_eq!(
            &report,
            baseline.as_ref().expect("baseline run"),
            "8x8 flat lane off diverged"
        );
    }
    println!("  flat lane off x1 thread {flat_off_t1:>12.0} events/sec");

    // speedup_t8_vs_t1 against the BEST t1 backend, not the slowest.
    let (best_t1_backend, best_t1) = matrix.iter().map(|&(b, row)| (b, row[0])).fold(
        (QueueBackend::default(), 0.0f64),
        |best, x| {
            if x.1 > best.1 {
                x
            } else {
                best
            }
        },
    );
    let best_t8 = matrix.iter().map(|&(_, row)| row[3]).fold(0.0f64, f64::max);
    let speedup8 = best_t8 / best_t1;
    let t1_speedup = best_t1 / PRE_CHANGE_MESH8_T1_EPS;
    println!(
        "  t8/t1 scaling: {speedup8:.2}x of best t1 ({}, host has {cpus} CPUs)",
        best_t1_backend.name()
    );
    println!("  t1 vs pre-change engine: {t1_speedup:.2}x ({best_t1:.0} vs {PRE_CHANGE_MESH8_T1_EPS:.0})");

    // ── Per-stage attribution (instrumented run; split, not rate).
    // Queue and exec are timed on sampled events (1 in
    // PROFILE_SAMPLE_EVERY); the mailbox/outbox handoff is timed on every
    // shard visit. Normalising each to ns/event first makes the shares
    // comparable. ─────────────────────────────────────────────────────
    let prof = bench_mesh8_attribution(1);
    let per_sampled = |ns: u64| ns as f64 / prof.sampled_events.max(1) as f64;
    let queue_pe = per_sampled(prof.queue_ns);
    let exec_pe = per_sampled(prof.exec_ns);
    let mailbox_pe = prof.mailbox_ns as f64 / prof.profiled_events.max(1) as f64;
    let stage_total_pe = (queue_pe + exec_pe + mailbox_pe).max(f64::MIN_POSITIVE);
    let pct = |pe: f64| pe * 100.0 / stage_total_pe;
    let events_per_visit = prof.profiled_events as f64 / prof.epochs.max(1) as f64;
    println!(
        "\nstage attribution (t1, sampled 1/{}): queue {:.1}% ({:.1} ns/ev), \
         mailbox {:.1}% ({:.1} ns/ev), exec {:.1}% ({:.1} ns/ev: credit {:.1} / \
         route {:.1} / deliver {:.1}), {} visits ({:.1} events/visit)",
        tccluster::engine::PROFILE_SAMPLE_EVERY,
        pct(queue_pe),
        queue_pe,
        pct(mailbox_pe),
        mailbox_pe,
        pct(exec_pe),
        exec_pe,
        per_sampled(prof.credit_ns),
        per_sampled(prof.route_ns),
        per_sampled(prof.deliver_ns),
        prof.epochs,
        events_per_visit,
    );

    let speedup6 = if PRE_CHANGE_FIG6_MS > 0.0 {
        PRE_CHANGE_FIG6_MS / fig6_ms
    } else {
        0.0
    };
    let speedup7 = if PRE_CHANGE_FIG7_MS > 0.0 {
        PRE_CHANGE_FIG7_MS / fig7_ms
    } else {
        0.0
    };
    if speedup6 > 0.0 {
        println!("\nvs pre-change baseline: fig6 {speedup6:.1}x, fig7 {speedup7:.1}x");
    }

    let row = |b: QueueBackend| {
        matrix
            .iter()
            .find(|&&(mb, _)| mb == b)
            .map(|&(_, r)| r)
            .expect("matrix covers all backends")
    };
    let lad = row(QueueBackend::Ladder);
    let cal = row(QueueBackend::Calendar);
    let heap = row(QueueBackend::BinaryHeap);
    let auto = row(QueueBackend::Auto);
    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"tcc-simspeed-v5\",\n",
            "  \"host_cpus\": {cpus},\n",
            "  \"pre_change\": {{\n",
            "    \"fig6_sweep_ms\": {f6:.1},\n",
            "    \"fig7_sweep_ms\": {f7:.1},\n",
            "    \"sim_store_ns\": {sns:.1},\n",
            "    \"sim_store_allocs\": {sal:.3},\n",
            "    \"shm_message_ns\": {mns:.1},\n",
            "    \"shm_allocs_per_message\": {mal:.3},\n",
            "    \"shm_storm_msgs_per_sec\": {storm0:.0},\n",
            "    \"mesh8_t1_events_per_sec\": {m8t1:.0}\n",
            "  }},\n",
            "  \"measured\": {{\n",
            "    \"fig6_sweep_ms\": {fig6:.1},\n",
            "    \"fig7_sweep_ms\": {fig7:.1},\n",
            "    \"fig6_speedup\": {sp6:.2},\n",
            "    \"fig7_speedup\": {sp7:.2},\n",
            "    \"sim_store_ns\": {store:.1},\n",
            "    \"sim_store_allocs\": {storea:.3},\n",
            "    \"shm_message_ns\": {shm:.1},\n",
            "    \"shm_allocs_per_message\": {shma:.3},\n",
            "    \"shm_storm_msgs_per_sec\": {storm:.0},\n",
            "    \"event_fabric_events_per_sec\": {ev:.0}\n",
            "  }},\n",
            "  \"queue_hold_ns\": {{\n",
            "    \"population\": 192,\n",
            "    \"ladder\": {hl:.1},\n",
            "    \"calendar\": {hc:.1},\n",
            "    \"binary_heap\": {hh:.1},\n",
            "    \"auto\": {ha:.1}\n",
            "  }},\n",
            "  \"event_fabric_8x8\": {{\n",
            "    \"flow_bytes\": {fb},\n",
            "    \"flows\": 4032,\n",
            "    \"events\": {evn},\n",
            "    \"events_per_sec\": {{\n",
            "      \"ladder\":      {{ \"t1\": {l1:.0}, \"t2\": {l2:.0}, \"t4\": {l4:.0}, \"t8\": {l8:.0} }},\n",
            "      \"calendar\":    {{ \"t1\": {c1:.0}, \"t2\": {c2:.0}, \"t4\": {c4:.0}, \"t8\": {c8:.0} }},\n",
            "      \"binary_heap\": {{ \"t1\": {h1:.0}, \"t2\": {h2:.0}, \"t4\": {h4:.0}, \"t8\": {h8:.0} }},\n",
            "      \"auto\":        {{ \"t1\": {a1:.0}, \"t2\": {a2:.0}, \"t4\": {a4:.0}, \"t8\": {a8:.0} }}\n",
            "    }},\n",
            "    \"mutex_mailbox_t1_events_per_sec\": {mx1:.0},\n",
            "    \"flat_lane_t1_events_per_sec\": {{ \"on\": {fl1:.0}, \"off\": {fl0:.0} }},\n",
            "    \"best_t1_backend\": \"{bb}\",\n",
            "    \"t1_speedup_vs_pre_change\": {t1sp:.2},\n",
            "    \"t1_floor_events_per_sec\": {floor:.0},\n",
            "    \"single_thread_target_events_per_sec\": {target:.0},\n",
            "    \"speedup_t8_vs_t1\": {sp8:.2},\n",
            "    \"deterministic_across_threads_and_backends\": true,\n",
            "    \"stage_attribution_t1\": {{\n",
            "      \"profiled_events\": {pe},\n",
            "      \"sampled_events\": {se},\n",
            "      \"sample_every\": {sev},\n",
            "      \"shard_visits\": {pep},\n",
            "      \"events_per_visit\": {epv:.1},\n",
            "      \"queue_pct\": {qp:.1},\n",
            "      \"mailbox_pct\": {mp:.1},\n",
            "      \"exec_pct\": {xp:.1},\n",
            "      \"queue_ns_per_event\": {qn:.1},\n",
            "      \"mailbox_ns_per_event\": {mn:.1},\n",
            "      \"exec_ns_per_event\": {xn:.1},\n",
            "      \"exec_split_ns_per_event\": {{ \"credit\": {cr:.1}, \"route\": {rt:.1}, \"deliver\": {dl:.1} }}\n",
            "    }}\n",
            "  }},\n",
            "  \"notes\": {{\n",
            "    \"shm_storm\": \"2-thread ping-pong; context-switch bound on single-CPU hosts (pre_change was a multi-core host). Guarded only when host_cpus >= 2.\",\n",
            "    \"event_fabric_8x8\": \"thread scaling requires host cores; the t8/t1 target is asserted by --check only when host_cpus >= 8. The t1 guard is relative: best t1 must clear the recorded floor times the cross-host margin. t1 runs the sequential merged executive (one queue scan per shard visit, direct outbox handoff, no mailboxes); t2+ run the epoch algorithm.\",\n",
            "    \"queue_hold\": \"auto is the default backend: ladder while the population stays small, migrating to a width-retuned calendar when it sustains above the crossover. The 192-population inversion from v4 is closed by the calendar width retune.\",\n",
            "    \"stage_attribution\": \"queue/exec (and the credit/route/deliver split of exec) are timed on 1 in sample_every events; mailbox covers every visit. Shares are normalised to ns/event before computing pcts. shard_visits counts productive visits (>= 1 event).\"\n",
            "  }}\n",
            "}}\n"
        ),
        cpus = cpus,
        f6 = PRE_CHANGE_FIG6_MS,
        f7 = PRE_CHANGE_FIG7_MS,
        sns = PRE_CHANGE_STORE_NS,
        sal = PRE_CHANGE_STORE_ALLOCS,
        mns = PRE_CHANGE_SHM_MESSAGE_NS,
        mal = PRE_CHANGE_SHM_ALLOCS,
        storm0 = PRE_CHANGE_STORM_MSGS_PER_SEC,
        m8t1 = PRE_CHANGE_MESH8_T1_EPS,
        fig6 = fig6_ms,
        fig7 = fig7_ms,
        sp6 = speedup6,
        sp7 = speedup7,
        store = store_ns,
        storea = store_allocs,
        shm = shm_ns,
        shma = shm_allocs,
        storm = storm,
        ev = event_eps,
        hl = hold_ladder,
        hc = hold_calendar,
        hh = hold_heap,
        ha = hold_auto,
        fb = MESH8_FLOW_BYTES,
        evn = mesh8_events,
        l1 = lad[0], l2 = lad[1], l4 = lad[2], l8 = lad[3],
        c1 = cal[0], c2 = cal[1], c4 = cal[2], c8 = cal[3],
        h1 = heap[0], h2 = heap[1], h4 = heap[2], h8 = heap[3],
        a1 = auto[0], a2 = auto[1], a4 = auto[2], a8 = auto[3],
        mx1 = mutex_t1,
        fl1 = auto[0],
        fl0 = flat_off_t1,
        bb = best_t1_backend.name(),
        t1sp = t1_speedup,
        floor = MESH8_T1_FLOOR_EPS,
        target = MESH8_T1_TARGET_EPS,
        sp8 = speedup8,
        pe = prof.profiled_events,
        se = prof.sampled_events,
        sev = tccluster::engine::PROFILE_SAMPLE_EVERY,
        pep = prof.epochs,
        epv = events_per_visit,
        qp = pct(queue_pe),
        mp = pct(mailbox_pe),
        xp = pct(exec_pe),
        qn = queue_pe,
        mn = mailbox_pe,
        xn = exec_pe,
        cr = per_sampled(prof.credit_ns),
        rt = per_sampled(prof.route_ns),
        dl = per_sampled(prof.deliver_ns),
    );
    std::fs::write("BENCH_simspeed.json", &json).expect("write BENCH_simspeed.json");
    println!("\nwrote BENCH_simspeed.json");

    if check {
        let mut failed = false;
        let mut guard = |name: &str, ok: bool, detail: String| {
            if ok {
                println!("check: {name:<38} OK   {detail}");
            } else {
                println!("check: {name:<38} FAIL {detail}");
                failed = true;
            }
        };
        guard(
            "sim_store_allocs == 0",
            store_allocs < 0.005,
            format!("({store_allocs:.3}/store)"),
        );
        guard(
            "shm_allocs_per_message == 0",
            shm_allocs < 0.005,
            format!("({shm_allocs:.3}/msg)"),
        );
        guard(
            "fig6 not slower than pre-change",
            fig6_ms <= PRE_CHANGE_FIG6_MS,
            format!("({fig6_ms:.1} ms vs {PRE_CHANGE_FIG6_MS:.1})"),
        );
        // The backend comparison: resolved by the hold model (pure queue
        // ops), where backend cost isn't drowned by the exec share. The
        // guards follow the *default* backend (auto): at the 192 guard
        // population the pure ladder legitimately loses to the calendar
        // (its refill sweep is linear in the top tier) — the adaptive
        // default is what must beat the binary-heap reference. All
        // same-run ratios, immune to host speed.
        guard(
            "queue hold: auto <= binary heap",
            hold_auto <= hold_heap,
            format!("({hold_auto:.1} vs {hold_heap:.1} ns/hold)"),
        );
        guard(
            "queue hold: auto tracks best pure backend",
            hold_auto <= hold_ladder.min(hold_calendar) * 1.3,
            format!(
                "({hold_auto:.1} vs best {:.1} ns/hold)",
                hold_ladder.min(hold_calendar)
            ),
        );
        guard(
            "8x8 auto t1 within 5% of best backend",
            auto[0] >= best_t1 * 0.95,
            format!("({:.0} vs {:.0} events/sec)", auto[0], best_t1),
        );
        guard(
            &format!("8x8 t1 >= {MESH8_T1_SPEEDUP_FLOOR:.1}x pre-change engine"),
            t1_speedup >= MESH8_T1_SPEEDUP_FLOOR,
            format!("({t1_speedup:.2}x, {best_t1:.0} events/sec)"),
        );
        guard(
            &format!("8x8 t1 >= {MESH8_T1_SPEEDUP_FLOOR:.1}x recorded floor"),
            best_t1 >= MESH8_T1_FLOOR_EPS * MESH8_T1_SPEEDUP_FLOOR,
            format!("({best_t1:.0} vs floor {MESH8_T1_FLOOR_EPS:.0} events/sec)"),
        );
        if cpus >= 2 {
            guard(
                "shm_storm within 2x of pre-change",
                storm >= PRE_CHANGE_STORM_MSGS_PER_SEC / 2.0,
                format!("({storm:.0} vs {PRE_CHANGE_STORM_MSGS_PER_SEC:.0} msgs/sec)"),
            );
        } else {
            println!(
                "check: shm_storm                              SKIP single-CPU host \
                 (context-switch bound; measured {storm:.0})"
            );
        }
        if cpus >= 8 {
            guard(
                "8x8 t8/t1 scaling >= 3x",
                speedup8 >= 3.0,
                format!("({speedup8:.2}x)"),
            );
            guard(
                &format!("8x8 t1 >= {MESH8_T1_TARGET_EPS:.0} events/sec"),
                best_t1 >= MESH8_T1_TARGET_EPS,
                format!("({best_t1:.0})"),
            );
        } else {
            println!(
                "check: 8x8 t8/t1 scaling                      SKIP host has {cpus} CPUs \
                 (needs >= 8; measured {speedup8:.2}x)"
            );
            println!(
                "check: 8x8 t1 absolute target                 SKIP host has {cpus} CPUs \
                 (dev-class target {MESH8_T1_TARGET_EPS:.0}; measured {best_t1:.0}, \
                 guarded relatively above)"
            );
        }
        if failed {
            std::process::exit(1);
        }
        println!("\nall checks passed");
    }
}
