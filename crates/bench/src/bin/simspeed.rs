//! Simulator-speed harness: how fast the *host* executes the reproduction.
//!
//! The paper's figures measure simulated time; this binary measures
//! wallclock — the packets-per-second engine behind every sweep. It times
//! the Fig. 6 + Fig. 7 reproductions, a ShmCluster ping-pong storm, the
//! raw store-issue path, and counts heap allocations per message, then
//! writes `BENCH_simspeed.json` next to the workspace root so future perf
//! PRs can regress against it. See docs/hot-path.md for the schema.

// The speed harness is the legitimate wallclock consumer (clippy.toml).
#![allow(clippy::disallowed_methods)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use tcc_bench::{fig6_sizes, fig7_sizes, figure6, figure7, prototype};
use tcc_msglib::channel::{channel, CHANNEL_BYTES, CREDIT_BYTES};
use tcc_msglib::shm::ShmMemory;
use tcc_msglib::SendMode;
use tccluster::ShmCluster;

/// Counting allocator: every heap allocation in the process bumps a
/// counter, so steady-state loops can assert/report allocations per
/// operation.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Wallclock of the pre-change harness on the reference dev host, recorded
/// immediately before the zero-allocation refactor landed (same sweep, same
/// binary). The ≥3x acceptance criterion compares against these.
const PRE_CHANGE_FIG6_MS: f64 = 695.8;
const PRE_CHANGE_FIG7_MS: f64 = 9.6;
const PRE_CHANGE_STORE_NS: f64 = 578.8;
const PRE_CHANGE_STORE_ALLOCS: f64 = 15.0;
const PRE_CHANGE_SHM_MESSAGE_NS: f64 = 167.1;
const PRE_CHANGE_SHM_ALLOCS: f64 = 4.0;
const PRE_CHANGE_STORM_MSGS_PER_SEC: f64 = 591_846.0;

fn time_ms(f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64() * 1e3
}

/// Repetitions per benchmark; the best run is reported. Wallclock on a
/// shared host is contaminated by scheduler interference in one
/// direction only, so the minimum is the standard estimator of the
/// code's actual speed.
const REPS: usize = 3;

fn best_of(mut f: impl FnMut() -> f64) -> f64 {
    (0..REPS).map(|_| f()).fold(f64::INFINITY, f64::min)
}

/// Best-of for (time, allocs) pairs: allocation counts are deterministic,
/// so pairs are ranked by time.
fn best_of2(mut f: impl FnMut() -> (f64, f64)) -> (f64, f64) {
    (0..REPS)
        .map(|_| f())
        .fold((f64::INFINITY, f64::INFINITY), |best, x| {
            if x.0 < best.0 {
                x
            } else {
                best
            }
        })
}

/// Fig. 6 sweep (full size range, both orderings + IB reference).
fn bench_fig6() -> f64 {
    let mut cluster = prototype();
    let sizes = fig6_sizes();
    time_ms(|| {
        let fig = figure6(&mut cluster, &sizes);
        assert_eq!(fig.series.len(), 3);
    })
}

/// Fig. 7 sweep (latency curve).
fn bench_fig7() -> f64 {
    let mut cluster = prototype();
    let sizes = fig7_sizes();
    time_ms(|| {
        let fig = figure7(&mut cluster, &sizes);
        assert_eq!(fig.series.len(), 2);
    })
}

/// Raw store-issue path: stream 64 B WC stores through one node and
/// propagate each batch, like the bandwidth kernels do. Returns
/// (ns/store, allocations/store).
fn bench_store_path() -> (f64, f64) {
    let mut cluster = prototype();
    cluster.reset_timebase();
    let dst = cluster.spec().node_base(1, 0);
    const N: u64 = 200_000;
    // Warm the pipeline + pool before counting.
    run_store_loop(&mut cluster, dst, 10_000);
    cluster.reset_timebase();
    let a0 = allocs();
    let t0 = Instant::now();
    run_store_loop(&mut cluster, dst, N);
    let dt = t0.elapsed();
    let da = allocs() - a0;
    (dt.as_nanos() as f64 / N as f64, da as f64 / N as f64)
}

fn run_store_loop(cluster: &mut tccluster::SimCluster, dst: u64, n: u64) {
    use tccluster::fabric::time::SimTime;
    let mut now = SimTime::ZERO;
    let mut sink = tcc_opteron::ActionSink::new();
    let mut commits = Vec::new();
    for i in 0..n {
        let addr = dst + (i * 64) % (256 << 10);
        let out = cluster.platform.nodes[0].store(now, addr, &[0u8; 64], &mut sink);
        now = out.issued;
        commits.clear();
        cluster.platform.propagate(0, &mut sink, &mut commits);
    }
}

/// Steady-state eager messages over the shm channel path, single-threaded
/// (deterministic allocation counting). Returns (ns/message,
/// allocations/message).
fn bench_shm_channel() -> (f64, f64) {
    let data = ShmMemory::new(CHANNEL_BYTES as usize);
    let credits = ShmMemory::new(CREDIT_BYTES as usize);
    let (mut tx, mut rx) = channel(
        data.remote(0, CHANNEL_BYTES),
        credits.local(0, CREDIT_BYTES),
        data.local(0, CHANNEL_BYTES),
        credits.remote(0, CREDIT_BYTES),
        SendMode::WeaklyOrdered,
    );
    let msg = [0xA5u8; 64];
    let mut buf = Vec::new();
    // Warm up past ring-capacity growth.
    for _ in 0..1_000 {
        tx.send(&msg).expect("fits");
        assert_eq!(rx.recv_into(&mut buf), 64);
    }
    const N: u64 = 100_000;
    let a0 = allocs();
    let t0 = Instant::now();
    for _ in 0..N {
        tx.send(&msg).expect("fits");
        assert_eq!(rx.recv_into(&mut buf), 64);
    }
    let dt = t0.elapsed();
    let da = allocs() - a0;
    (dt.as_nanos() as f64 / N as f64, da as f64 / N as f64)
}

/// Event-driven fabric engine: concurrent all-to-all on a 2×2 mesh of
/// two-socket supernodes (12 flows, real credit flow control). Returns
/// host events/sec — the sweep-rate currency of every congestion study.
fn bench_event_fabric() -> f64 {
    use tccluster::firmware::topology::ClusterTopology;
    use tccluster::{EngineKind, TcclusterBuilder, TrafficPattern};
    let mut cluster = TcclusterBuilder::new()
        .topology(ClusterTopology::Mesh { x: 2, y: 2 })
        .processors_per_supernode(2)
        .engine(EngineKind::EventDriven)
        .build_sim();
    let t0 = Instant::now();
    let report = cluster.run_workload(TrafficPattern::AllToAll, 256 << 10);
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(report.lost_packets(), 0, "event fabric lost packets");
    report.events as f64 / dt
}

/// Threaded ShmCluster ping-pong storm. Returns messages/sec (both
/// directions counted).
fn bench_shm_storm() -> f64 {
    const ROUND_TRIPS: u64 = 100_000;
    let cluster = ShmCluster::new(2, SendMode::WeaklyOrdered);
    let t0 = Instant::now();
    let _ = cluster.run(move |ctx| {
        let mut buf = Vec::new();
        if ctx.rank == 0 {
            for _ in 0..ROUND_TRIPS {
                ctx.send(1, &[0u8; 64]);
                assert_eq!(ctx.recv_into(1, &mut buf), 64);
            }
        } else {
            for _ in 0..ROUND_TRIPS {
                ctx.recv_into(0, &mut buf);
                ctx.send(0, &buf);
            }
        }
    });
    let dt = t0.elapsed().as_secs_f64();
    (2 * ROUND_TRIPS) as f64 / dt
}

fn main() {
    println!("simspeed: wallclock of the reproduction's hot paths\n");

    let fig6_ms = best_of(bench_fig6);
    println!("fig6 sweep                 {fig6_ms:>12.1} ms");
    let fig7_ms = best_of(bench_fig7);
    println!("fig7 sweep                 {fig7_ms:>12.1} ms");
    let (store_ns, store_allocs) = best_of2(bench_store_path);
    println!(
        "sim store path             {store_ns:>12.1} ns/store   {store_allocs:.2} allocs/store"
    );
    let (shm_ns, shm_allocs) = best_of2(bench_shm_channel);
    println!("shm channel (1 thread)     {shm_ns:>12.1} ns/msg     {shm_allocs:.2} allocs/msg");
    let storm = -best_of(|| -bench_shm_storm());
    println!("shm storm (2 threads)      {storm:>12.0} msgs/sec");
    let event_eps = -best_of(|| -bench_event_fabric());
    println!("event fabric (2x2 mesh)    {event_eps:>12.0} events/sec");

    let speedup6 = if PRE_CHANGE_FIG6_MS > 0.0 {
        PRE_CHANGE_FIG6_MS / fig6_ms
    } else {
        0.0
    };
    let speedup7 = if PRE_CHANGE_FIG7_MS > 0.0 {
        PRE_CHANGE_FIG7_MS / fig7_ms
    } else {
        0.0
    };
    if speedup6 > 0.0 {
        println!("\nvs pre-change baseline: fig6 {speedup6:.1}x, fig7 {speedup7:.1}x");
    }

    let json = format!(
        "{{\n  \"schema\": \"tcc-simspeed-v2\",\n  \"pre_change\": {{\n    \"fig6_sweep_ms\": {PRE_CHANGE_FIG6_MS:.1},\n    \"fig7_sweep_ms\": {PRE_CHANGE_FIG7_MS:.1},\n    \"sim_store_ns\": {PRE_CHANGE_STORE_NS:.1},\n    \"sim_store_allocs\": {PRE_CHANGE_STORE_ALLOCS:.3},\n    \"shm_message_ns\": {PRE_CHANGE_SHM_MESSAGE_NS:.1},\n    \"shm_allocs_per_message\": {PRE_CHANGE_SHM_ALLOCS:.3},\n    \"shm_storm_msgs_per_sec\": {PRE_CHANGE_STORM_MSGS_PER_SEC:.0}\n  }},\n  \"measured\": {{\n    \"fig6_sweep_ms\": {fig6_ms:.1},\n    \"fig7_sweep_ms\": {fig7_ms:.1},\n    \"fig6_speedup\": {speedup6:.2},\n    \"fig7_speedup\": {speedup7:.2},\n    \"sim_store_ns\": {store_ns:.1},\n    \"sim_store_allocs\": {store_allocs:.3},\n    \"shm_message_ns\": {shm_ns:.1},\n    \"shm_allocs_per_message\": {shm_allocs:.3},\n    \"shm_storm_msgs_per_sec\": {storm:.0},\n    \"event_fabric_events_per_sec\": {event_eps:.0}\n  }}\n}}\n"
    );
    std::fs::write("BENCH_simspeed.json", &json).expect("write BENCH_simspeed.json");
    println!("\nwrote BENCH_simspeed.json");
}
