//! Simulator-speed harness: how fast the *host* executes the reproduction.
//!
//! The paper's figures measure simulated time; this binary measures
//! wallclock — the packets-per-second engine behind every sweep. It times
//! the Fig. 6 + Fig. 7 reproductions (parallel sweeps), a ShmCluster
//! ping-pong storm, the raw store-issue path, counts heap allocations per
//! message, and scales the sharded event engine across worker threads and
//! queue backends on an 8×8 mesh, then writes `BENCH_simspeed.json` next
//! to the workspace root so future perf PRs can regress against it. See
//! docs/hot-path.md for the schema.
//!
//! Modes:
//!
//! * default — full run, writes `BENCH_simspeed.json`.
//! * `--smoke` — fast CI subset: runs the event engine at 1 and 4 worker
//!   threads on a 4×4 mesh and asserts the reports are byte-identical
//!   (the determinism contract), then exits without touching the JSON.
//! * `--check` — full run plus host-aware regression guards (exit 1 on
//!   violation). Guards that depend on host parallelism (the shm storm,
//!   the 8-thread scaling target) are skipped — loudly — on hosts without
//!   the cores to express them.

// The speed harness is the legitimate wallclock consumer (clippy.toml).
#![allow(clippy::disallowed_methods)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use tcc_bench::{fig6_sizes, fig7_sizes, figure6_par, figure7_par, prototype};
use tcc_msglib::channel::{channel, CHANNEL_BYTES, CREDIT_BYTES};
use tcc_msglib::shm::ShmMemory;
use tcc_msglib::SendMode;
use tccluster::firmware::topology::ClusterTopology;
use tccluster::{
    EngineKind, QueueBackend, ShmCluster, TcclusterBuilder, TrafficPattern, WorkloadReport,
};

/// Counting allocator: every heap allocation in the process bumps a
/// counter, so steady-state loops can assert/report allocations per
/// operation.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Wallclock of the pre-change harness on the reference dev host, recorded
/// immediately before the zero-allocation refactor landed (same sweep, same
/// binary). The ≥3x acceptance criterion compares against these.
const PRE_CHANGE_FIG6_MS: f64 = 695.8;
const PRE_CHANGE_FIG7_MS: f64 = 9.6;
const PRE_CHANGE_STORE_NS: f64 = 578.8;
const PRE_CHANGE_STORE_ALLOCS: f64 = 15.0;
const PRE_CHANGE_SHM_MESSAGE_NS: f64 = 167.1;
const PRE_CHANGE_SHM_ALLOCS: f64 = 4.0;
/// Recorded on a multi-core reference host. The storm is a 2-thread
/// ping-pong: on a single-CPU host every message leg forces a scheduler
/// switch, capping throughput near 1/(2·context-switch) regardless of
/// code quality — see docs/hot-path.md ("shm storm and host topology").
const PRE_CHANGE_STORM_MSGS_PER_SEC: f64 = 591_846.0;

/// 8×8 all-to-all flow size: 4 KB per flow × 4032 flows keeps the run in
/// the millions-of-events regime without dominating the harness.
const MESH8_FLOW_BYTES: u64 = 4 << 10;

fn time_ms(f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64() * 1e3
}

/// Repetitions per benchmark; the best run is reported. Wallclock on a
/// shared host is contaminated by scheduler interference in one
/// direction only, so the minimum is the standard estimator of the
/// code's actual speed.
const REPS: usize = 3;

fn best_of(mut f: impl FnMut() -> f64) -> f64 {
    (0..REPS).map(|_| f()).fold(f64::INFINITY, f64::min)
}

/// Best-of for (time, allocs) pairs: allocation counts are deterministic,
/// so pairs are ranked by time.
fn best_of2(mut f: impl FnMut() -> (f64, f64)) -> (f64, f64) {
    (0..REPS)
        .map(|_| f())
        .fold((f64::INFINITY, f64::INFINITY), |best, x| {
            if x.0 < best.0 {
                x
            } else {
                best
            }
        })
}

/// Fig. 6 sweep (full size range, both orderings + IB reference,
/// parallel sweep points).
fn bench_fig6() -> f64 {
    let sizes = fig6_sizes();
    time_ms(|| {
        let fig = figure6_par(&sizes);
        assert_eq!(fig.series.len(), 3);
    })
}

/// Fig. 7 sweep (latency curve, parallel sweep points).
fn bench_fig7() -> f64 {
    let sizes = fig7_sizes();
    time_ms(|| {
        let fig = figure7_par(&sizes);
        assert_eq!(fig.series.len(), 2);
    })
}

/// Raw store-issue path: stream 64 B WC stores through one node and
/// propagate each batch, like the bandwidth kernels do. Returns
/// (ns/store, allocations/store).
fn bench_store_path() -> (f64, f64) {
    let mut cluster = prototype();
    cluster.reset_timebase();
    let dst = cluster.spec().node_base(1, 0);
    const N: u64 = 200_000;
    // Warm the pipeline + pool before counting.
    run_store_loop(&mut cluster, dst, 10_000);
    cluster.reset_timebase();
    let a0 = allocs();
    let t0 = Instant::now();
    run_store_loop(&mut cluster, dst, N);
    let dt = t0.elapsed();
    let da = allocs() - a0;
    (dt.as_nanos() as f64 / N as f64, da as f64 / N as f64)
}

fn run_store_loop(cluster: &mut tccluster::SimCluster, dst: u64, n: u64) {
    use tccluster::fabric::time::SimTime;
    let mut now = SimTime::ZERO;
    let mut sink = tcc_opteron::ActionSink::new();
    let mut commits = Vec::new();
    for i in 0..n {
        let addr = dst + (i * 64) % (256 << 10);
        let out = cluster.platform.nodes[0].store(now, addr, &[0u8; 64], &mut sink);
        now = out.issued;
        commits.clear();
        cluster.platform.propagate(0, &mut sink, &mut commits);
    }
}

/// Steady-state eager messages over the shm channel path, single-threaded
/// (deterministic allocation counting). Returns (ns/message,
/// allocations/message).
fn bench_shm_channel() -> (f64, f64) {
    let data = ShmMemory::new(CHANNEL_BYTES as usize);
    let credits = ShmMemory::new(CREDIT_BYTES as usize);
    let (mut tx, mut rx) = channel(
        data.remote(0, CHANNEL_BYTES),
        credits.local(0, CREDIT_BYTES),
        data.local(0, CHANNEL_BYTES),
        credits.remote(0, CREDIT_BYTES),
        SendMode::WeaklyOrdered,
    );
    let msg = [0xA5u8; 64];
    let mut buf = Vec::new();
    // Warm up past ring-capacity growth.
    for _ in 0..1_000 {
        tx.send(&msg).expect("fits");
        assert_eq!(rx.recv_into(&mut buf), 64);
    }
    const N: u64 = 100_000;
    let a0 = allocs();
    let t0 = Instant::now();
    for _ in 0..N {
        tx.send(&msg).expect("fits");
        assert_eq!(rx.recv_into(&mut buf), 64);
    }
    let dt = t0.elapsed();
    let da = allocs() - a0;
    (dt.as_nanos() as f64 / N as f64, da as f64 / N as f64)
}

/// Event-driven fabric engine, small scale: concurrent all-to-all on a
/// 2×2 mesh of two-socket supernodes (12 flows, real credit flow
/// control). Returns host events/sec — the sweep-rate currency of every
/// congestion study. Kept from schema v2 for baseline continuity.
fn bench_event_fabric() -> f64 {
    let mut cluster = TcclusterBuilder::new()
        .topology(ClusterTopology::Mesh { x: 2, y: 2 })
        .processors_per_supernode(2)
        .engine(EngineKind::EventDriven)
        .build_sim();
    let t0 = Instant::now();
    let report = cluster.run_workload(TrafficPattern::AllToAll, 256 << 10);
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(report.lost_packets(), 0, "event fabric lost packets");
    report.events as f64 / dt
}

/// One 8×8 all-to-all run (4032 flows) at a given worker-thread count and
/// queue backend. Returns (events/sec, report) — the report so the caller
/// can assert cross-configuration determinism.
fn bench_mesh8(threads: usize, backend: QueueBackend) -> (f64, WorkloadReport) {
    let mut cluster = TcclusterBuilder::new()
        .topology(ClusterTopology::Mesh { x: 8, y: 8 })
        .processors_per_supernode(2)
        .engine(EngineKind::EventDriven)
        .event_threads(threads)
        .event_queue(backend)
        .build_sim();
    let t0 = Instant::now();
    let report = cluster.run_workload(TrafficPattern::AllToAll, MESH8_FLOW_BYTES);
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(report.lost_packets(), 0, "8x8 all-to-all lost packets");
    (report.events as f64 / dt, report)
}

/// Threaded ShmCluster ping-pong storm. Returns messages/sec (both
/// directions counted).
fn bench_shm_storm() -> f64 {
    const ROUND_TRIPS: u64 = 100_000;
    let cluster = ShmCluster::new(2, SendMode::WeaklyOrdered);
    let t0 = Instant::now();
    let _ = cluster.run(move |ctx| {
        let mut buf = Vec::new();
        if ctx.rank == 0 {
            for _ in 0..ROUND_TRIPS {
                ctx.send(1, &[0u8; 64]);
                assert_eq!(ctx.recv_into(1, &mut buf), 64);
            }
        } else {
            for _ in 0..ROUND_TRIPS {
                ctx.recv_into(0, &mut buf);
                ctx.send(0, &buf);
            }
        }
    });
    let dt = t0.elapsed().as_secs_f64();
    (2 * ROUND_TRIPS) as f64 / dt
}

/// CI smoke: the event engine at 1 and 4 worker threads on a 4×4 mesh
/// must produce byte-identical reports, on both queue backends. Prints
/// rates, exits nonzero via assert on divergence.
fn smoke() {
    println!("simspeed --smoke: thread-scaling determinism check (4x4 all-to-all)\n");
    let run = |threads: usize, backend: QueueBackend| {
        let mut cluster = TcclusterBuilder::new()
            .topology(ClusterTopology::Mesh { x: 4, y: 4 })
            .processors_per_supernode(2)
            .engine(EngineKind::EventDriven)
            .event_threads(threads)
            .event_queue(backend)
            .build_sim();
        let t0 = Instant::now();
        let report = cluster.run_workload(TrafficPattern::AllToAll, 2 << 10);
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(report.lost_packets(), 0, "smoke lost packets");
        println!(
            "  {:>10?} x{threads} threads: {:>12.0} events/sec",
            backend,
            report.events as f64 / dt
        );
        report
    };
    let baseline = run(1, QueueBackend::Calendar);
    for backend in [QueueBackend::Calendar, QueueBackend::BinaryHeap] {
        for threads in [1usize, 4] {
            let got = run(threads, backend);
            assert_eq!(
                got, baseline,
                "{backend:?} x{threads} threads diverged from sequential calendar"
            );
        }
    }
    println!("\nsmoke OK: all thread counts and backends byte-identical");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let check = args.iter().any(|a| a == "--check");
    let cpus = host_cpus();
    println!("simspeed: wallclock of the reproduction's hot paths (host_cpus={cpus})\n");

    let fig6_ms = best_of(bench_fig6);
    println!("fig6 sweep (parallel)      {fig6_ms:>12.1} ms");
    let fig7_ms = best_of(bench_fig7);
    println!("fig7 sweep (parallel)      {fig7_ms:>12.1} ms");
    let (store_ns, store_allocs) = best_of2(bench_store_path);
    println!(
        "sim store path             {store_ns:>12.1} ns/store   {store_allocs:.2} allocs/store"
    );
    let (shm_ns, shm_allocs) = best_of2(bench_shm_channel);
    println!("shm channel (1 thread)     {shm_ns:>12.1} ns/msg     {shm_allocs:.2} allocs/msg");
    let storm = -best_of(|| -bench_shm_storm());
    println!("shm storm (2 threads)      {storm:>12.0} msgs/sec");
    let event_eps = -best_of(|| -bench_event_fabric());
    println!("event fabric (2x2 mesh)    {event_eps:>12.0} events/sec");

    // ── 8×8 thread/backend scaling (single run each: minutes-long loop
    // territory otherwise, and the determinism assert means every run is
    // also a correctness check). ──────────────────────────────────────
    println!("\nevent fabric 8x8 all-to-all ({MESH8_FLOW_BYTES} B x 4032 flows):");
    let mut cal = Vec::new();
    let mut baseline: Option<WorkloadReport> = None;
    for threads in [1usize, 2, 4, 8] {
        let (eps, report) = bench_mesh8(threads, QueueBackend::Calendar);
        println!("  calendar    x{threads} threads  {eps:>12.0} events/sec");
        if let Some(b) = &baseline {
            assert_eq!(&report, b, "8x8 calendar x{threads} diverged");
        } else {
            baseline = Some(report);
        }
        cal.push(eps);
    }
    let (heap_t1, heap_report) = bench_mesh8(1, QueueBackend::BinaryHeap);
    println!("  binary heap x1 threads  {heap_t1:>12.0} events/sec");
    assert_eq!(
        &heap_report,
        baseline.as_ref().expect("baseline run"),
        "8x8 heap diverged from calendar"
    );
    let mesh8_events = baseline.as_ref().map_or(0, |r| r.events);
    let speedup8 = cal[3] / cal[0];
    println!("  t8/t1 scaling: {speedup8:.2}x (host has {cpus} CPUs)");

    let speedup6 = if PRE_CHANGE_FIG6_MS > 0.0 {
        PRE_CHANGE_FIG6_MS / fig6_ms
    } else {
        0.0
    };
    let speedup7 = if PRE_CHANGE_FIG7_MS > 0.0 {
        PRE_CHANGE_FIG7_MS / fig7_ms
    } else {
        0.0
    };
    if speedup6 > 0.0 {
        println!("\nvs pre-change baseline: fig6 {speedup6:.1}x, fig7 {speedup7:.1}x");
    }

    let json = format!(
        "{{\n  \"schema\": \"tcc-simspeed-v3\",\n  \"host_cpus\": {cpus},\n  \"pre_change\": {{\n    \"fig6_sweep_ms\": {PRE_CHANGE_FIG6_MS:.1},\n    \"fig7_sweep_ms\": {PRE_CHANGE_FIG7_MS:.1},\n    \"sim_store_ns\": {PRE_CHANGE_STORE_NS:.1},\n    \"sim_store_allocs\": {PRE_CHANGE_STORE_ALLOCS:.3},\n    \"shm_message_ns\": {PRE_CHANGE_SHM_MESSAGE_NS:.1},\n    \"shm_allocs_per_message\": {PRE_CHANGE_SHM_ALLOCS:.3},\n    \"shm_storm_msgs_per_sec\": {PRE_CHANGE_STORM_MSGS_PER_SEC:.0}\n  }},\n  \"measured\": {{\n    \"fig6_sweep_ms\": {fig6_ms:.1},\n    \"fig7_sweep_ms\": {fig7_ms:.1},\n    \"fig6_speedup\": {speedup6:.2},\n    \"fig7_speedup\": {speedup7:.2},\n    \"sim_store_ns\": {store_ns:.1},\n    \"sim_store_allocs\": {store_allocs:.3},\n    \"shm_message_ns\": {shm_ns:.1},\n    \"shm_allocs_per_message\": {shm_allocs:.3},\n    \"shm_storm_msgs_per_sec\": {storm:.0},\n    \"event_fabric_events_per_sec\": {event_eps:.0}\n  }},\n  \"event_fabric_8x8\": {{\n    \"flow_bytes\": {MESH8_FLOW_BYTES},\n    \"flows\": 4032,\n    \"events\": {mesh8_events},\n    \"calendar_events_per_sec\": {{\n      \"t1\": {t1:.0},\n      \"t2\": {t2:.0},\n      \"t4\": {t4:.0},\n      \"t8\": {t8:.0}\n    }},\n    \"binary_heap_t1_events_per_sec\": {heap_t1:.0},\n    \"speedup_t8_vs_t1\": {speedup8:.2},\n    \"deterministic_across_threads_and_backends\": true\n  }},\n  \"notes\": {{\n    \"shm_storm\": \"2-thread ping-pong; context-switch bound on single-CPU hosts (pre_change was a multi-core host). Guarded only when host_cpus >= 2.\",\n    \"event_fabric_8x8\": \"thread scaling requires host cores; the t8/t1 target (>= 3x) is asserted by --check only when host_cpus >= 8.\"\n  }}\n}}\n",
        t1 = cal[0],
        t2 = cal[1],
        t4 = cal[2],
        t8 = cal[3],
    );
    std::fs::write("BENCH_simspeed.json", &json).expect("write BENCH_simspeed.json");
    println!("\nwrote BENCH_simspeed.json");

    if check {
        let mut failed = false;
        let mut guard = |name: &str, ok: bool, detail: String| {
            if ok {
                println!("check: {name:<38} OK   {detail}");
            } else {
                println!("check: {name:<38} FAIL {detail}");
                failed = true;
            }
        };
        guard(
            "sim_store_allocs == 0",
            store_allocs < 0.005,
            format!("({store_allocs:.3}/store)"),
        );
        guard(
            "shm_allocs_per_message == 0",
            shm_allocs < 0.005,
            format!("({shm_allocs:.3}/msg)"),
        );
        guard(
            "fig6 not slower than pre-change",
            fig6_ms <= PRE_CHANGE_FIG6_MS,
            format!("({fig6_ms:.1} ms vs {PRE_CHANGE_FIG6_MS:.1})"),
        );
        if cpus >= 2 {
            guard(
                "shm_storm within 2x of pre-change",
                storm >= PRE_CHANGE_STORM_MSGS_PER_SEC / 2.0,
                format!("({storm:.0} vs {PRE_CHANGE_STORM_MSGS_PER_SEC:.0} msgs/sec)"),
            );
        } else {
            println!(
                "check: shm_storm                              SKIP single-CPU host \
                 (context-switch bound; measured {storm:.0})"
            );
        }
        if cpus >= 8 {
            guard(
                "8x8 t8/t1 scaling >= 3x",
                speedup8 >= 3.0,
                format!("({speedup8:.2}x)"),
            );
        } else {
            println!(
                "check: 8x8 t8/t1 scaling                      SKIP host has {cpus} CPUs \
                 (needs >= 8; measured {speedup8:.2}x)"
            );
        }
        if failed {
            std::process::exit(1);
        }
        println!("\nall checks passed");
    }
}
