//! Regenerates the paper's **headline numbers** (abstract & §VII):
//! "a sustained bandwidth of up to 2500 MB/s for messages as small as
//! 64 Byte and a communication latency of 227 ns between two nodes,
//! outperforming other high performance networks by an order of
//! magnitude."

use tcc_baseline::{Ethernet, IbNic};
use tcc_bench::{check_anchor, prototype};
use tcc_msglib::SendMode;

fn main() {
    let mut cluster = prototype();
    println!("TCCluster headline reproduction (2-node HT800 prototype)\n");

    let lat = cluster.pingpong(0, 1, 64, 100).nanos();
    let bw64 = cluster.stream_bandwidth(0, 1, 64, SendMode::WeaklyOrdered, 50);

    let mut ok = true;
    ok &= check_anchor("half-round-trip latency, 64 B (ns)", 227.0, lat, 0.10);
    ok &= check_anchor("bandwidth, 64 B messages (MB/s)", 2500.0, bw64, 0.10);

    let ib = IbNic::connectx();
    let eth = Ethernet::tengig();
    println!("\nOrder-of-magnitude comparison at 64 B:");
    println!(
        "  {:<24} {:>12} {:>16}",
        "interconnect", "latency", "stream MB/s"
    );
    println!(
        "  {:<24} {:>9.0} ns {:>16.0}",
        "TCCluster (this work)", lat, bw64
    );
    println!(
        "  {:<24} {:>9.0} ns {:>16.0}",
        "InfiniBand ConnectX",
        ib.latency(64).nanos(),
        ib.bandwidth_mb_s(64)
    );
    println!(
        "  {:<24} {:>9.0} ns {:>16.0}",
        "10G Ethernet (TCP)",
        eth.latency(64).nanos(),
        eth.bandwidth_mb_s(64)
    );

    let lat_adv = ib.latency(64).nanos() / lat;
    let bw_adv = bw64 / ib.bandwidth_mb_s(64);
    println!("\n  latency advantage vs IB:   {lat_adv:.1}x");
    println!("  bandwidth advantage vs IB: {bw_adv:.1}x (64 B messages)");
    assert!(lat_adv > 4.0 && bw_adv > 10.0);
    println!(
        "\n{}",
        if ok {
            "ALL ANCHORS OK"
        } else {
            "SOME ANCHORS DEVIATE"
        }
    );
}
