//! # tcc-bench — experiment harnesses
//!
//! One binary per paper figure/table (see DESIGN.md's experiment index)
//! plus Criterion microbenchmarks. This library holds the shared sweep
//! and reporting helpers so every binary prints through the same
//! [`tcc_fabric::series::Figure`] machinery that the tests assert on.

use rayon::prelude::*;
use tcc_baseline::IbNic;
use tcc_fabric::series::{Figure, Series};
use tcc_firmware::topology::{ClusterSpec, ClusterTopology, SupernodeSpec};
use tcc_msglib::SendMode;
use tcc_opteron::UarchParams;
use tccluster::SimCluster;

/// DRAM per simulated node used by all experiments (1 MiB of exported
/// window is plenty for rings + rendezvous zones).
pub const DRAM: u64 = 1 << 20;

/// The paper's prototype: two single-socket supernodes, one HT800 cable.
pub fn prototype() -> SimCluster {
    let spec = ClusterSpec::new(SupernodeSpec::new(1, DRAM), ClusterTopology::Pair);
    SimCluster::boot(spec, UarchParams::shanghai())
}

/// Message-size sweep of Figure 6 (64 B … 4 MB, powers of two).
pub fn fig6_sizes() -> Vec<usize> {
    (6..=22).map(|p| 1usize << p).collect()
}

/// Message-size sweep of Figure 7 (64 B … 4 KB).
pub fn fig7_sizes() -> Vec<usize> {
    (6..=12).map(|p| 1usize << p).collect()
}

/// Iterations per point, scaled down for large messages so the sweep
/// stays fast.
pub fn iters_for(size: usize) -> u32 {
    match size {
        0..=4096 => 20,
        4097..=262_144 => 8,
        _ => 3,
    }
}

/// Build the Figure 6 dataset: weakly ordered, strictly ordered, and the
/// ConnectX reference, over `sizes`.
pub fn figure6(cluster: &mut SimCluster, sizes: &[usize]) -> Figure {
    let mut fig = Figure::new(
        "Figure 6 — TCCluster bandwidth (MB/s) vs message size (B)",
        "bytes",
        "MB/s",
    );
    let mut weak = Series::new("TCC weakly ordered");
    let mut strict = Series::new("TCC strictly ordered");
    let mut ib = Series::new("InfiniBand ConnectX");
    let nic = IbNic::connectx();
    for &s in sizes {
        let it = iters_for(s);
        weak.push(
            s as f64,
            cluster.stream_bandwidth(0, 1, s, SendMode::WeaklyOrdered, it),
        );
        strict.push(
            s as f64,
            cluster.stream_bandwidth(0, 1, s, SendMode::StrictlyOrdered, it),
        );
        ib.push(s as f64, nic.bandwidth_mb_s(s));
    }
    fig.add(weak);
    fig.add(strict);
    fig.add(ib);
    fig
}

/// Build the Figure 7 dataset: TCCluster half-round-trip latency plus the
/// ConnectX one-way reference, in nanoseconds.
pub fn figure7(cluster: &mut SimCluster, sizes: &[usize]) -> Figure {
    let mut fig = Figure::new(
        "Figure 7 — TCCluster half-round-trip latency (ns) vs message size (B)",
        "bytes",
        "ns",
    );
    let mut tcc = Series::new("TCCluster");
    let mut ib = Series::new("InfiniBand ConnectX");
    let nic = IbNic::connectx();
    for &s in sizes {
        tcc.push(s as f64, cluster.pingpong(0, 1, s, 50).nanos());
        ib.push(s as f64, nic.latency(s).nanos());
    }
    fig.add(tcc);
    fig.add(ib);
    fig
}

/// [`figure6`] with the sweep points computed in parallel: each worker
/// boots its own prototype cluster and sweeps a contiguous chunk of
/// `sizes`. Every measurement resets the simulated timebase first, so
/// the points are independent and the dataset is bit-identical to the
/// sequential sweep — parallelism trades wall clock only.
pub fn figure6_par(sizes: &[usize]) -> Figure {
    let pts: Vec<(f64, f64, f64)> = sizes
        .par_iter()
        .map_init(prototype, |cluster, &s| {
            let it = iters_for(s);
            (
                s as f64,
                cluster.stream_bandwidth(0, 1, s, SendMode::WeaklyOrdered, it),
                cluster.stream_bandwidth(0, 1, s, SendMode::StrictlyOrdered, it),
            )
        })
        .collect();
    let mut fig = Figure::new(
        "Figure 6 — TCCluster bandwidth (MB/s) vs message size (B)",
        "bytes",
        "MB/s",
    );
    let mut weak = Series::new("TCC weakly ordered");
    let mut strict = Series::new("TCC strictly ordered");
    let mut ib = Series::new("InfiniBand ConnectX");
    let nic = IbNic::connectx();
    for (x, w, st) in pts {
        weak.push(x, w);
        strict.push(x, st);
        ib.push(x, nic.bandwidth_mb_s(x as usize));
    }
    fig.add(weak);
    fig.add(strict);
    fig.add(ib);
    fig
}

/// [`figure7`] with parallel sweep points; bit-identical to the
/// sequential dataset (see [`figure6_par`] for why).
pub fn figure7_par(sizes: &[usize]) -> Figure {
    let pts: Vec<(f64, f64)> = sizes
        .par_iter()
        .map_init(prototype, |cluster, &s| {
            (s as f64, cluster.pingpong(0, 1, s, 50).nanos())
        })
        .collect();
    let mut fig = Figure::new(
        "Figure 7 — TCCluster half-round-trip latency (ns) vs message size (B)",
        "bytes",
        "ns",
    );
    let mut tcc = Series::new("TCCluster");
    let mut ib = Series::new("InfiniBand ConnectX");
    let nic = IbNic::connectx();
    for (x, ns) in pts {
        tcc.push(x, ns);
        ib.push(x, nic.latency(x as usize).nanos());
    }
    fig.add(tcc);
    fig.add(ib);
    fig
}

/// Print a paper-vs-measured anchor line and return whether it is within
/// `tol_frac` of the paper's value.
pub fn check_anchor(name: &str, paper: f64, measured: f64, tol_frac: f64) -> bool {
    let ok = (measured - paper).abs() <= paper * tol_frac;
    println!(
        "  {:<44} paper {:>9.1}   measured {:>9.1}   {}",
        name,
        paper,
        measured,
        if ok { "OK" } else { "DEVIATES" }
    );
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_dataset_reproduces_paper_shape() {
        let mut c = prototype();
        let sizes = vec![64, 1024, 256 << 10, 4 << 20];
        let fig = figure6(&mut c, &sizes);
        let weak = fig.get("TCC weakly ordered").unwrap();
        let strict = fig.get("TCC strictly ordered").unwrap();
        let ib = fig.get("InfiniBand ConnectX").unwrap();

        // Who wins: TCC beats IB everywhere, by >10x at 64 B.
        for &(x, y) in &weak.points {
            assert!(y > ib.at(x).unwrap(), "weak < IB at {x}");
        }
        assert!(weak.at(64.0).unwrap() / ib.at(64.0).unwrap() > 10.0);
        // The artifact peak sits at 256 KB.
        assert_eq!(weak.argmax(), Some((256 << 10) as f64));
        // Strict plateaus near 2000 and stays below weak.
        for &(x, y) in &strict.points {
            assert!(y <= weak.at(x).unwrap() * 1.05, "strict above weak at {x}");
        }
    }

    #[test]
    fn parallel_sweeps_match_sequential_bitwise() {
        // The parallel sweep boots a cluster per worker; every point
        // resets the simulated timebase, so the numbers must be exactly
        // the sequential ones.
        let sizes = vec![64usize, 1024, 64 << 10];
        let mut c = prototype();
        let seq6 = figure6(&mut c, &sizes);
        let par6 = figure6_par(&sizes);
        for name in ["TCC weakly ordered", "TCC strictly ordered"] {
            let a = &seq6.get(name).unwrap().points;
            let b = &par6.get(name).unwrap().points;
            assert_eq!(a, b, "{name} diverged");
        }
        let lat_sizes = vec![64usize, 512];
        let seq7 = figure7(&mut c, &lat_sizes);
        let par7 = figure7_par(&lat_sizes);
        assert_eq!(
            seq7.get("TCCluster").unwrap().points,
            par7.get("TCCluster").unwrap().points
        );
    }

    #[test]
    fn fig7_dataset_reproduces_paper_shape() {
        let mut c = prototype();
        let sizes = vec![64, 1024];
        let fig = figure7(&mut c, &sizes);
        let tcc = fig.get("TCCluster").unwrap();
        let ib = fig.get("InfiniBand ConnectX").unwrap();
        // ~4-6x advantage at minimal size (paper: 227 ns vs ~1.4 us).
        let ratio = ib.at(64.0).unwrap() / tcc.at(64.0).unwrap();
        assert!(ratio > 4.0, "advantage only {ratio:.1}x");
        // 1 KB still below 1 us.
        assert!(tcc.at(1024.0).unwrap() < 1000.0);
    }
}
