//! Property-based tests for the HyperTransport protocol model.

use bytes::Bytes;
use proptest::prelude::*;
use tcc_ht::flow::{RxBuffers, TxCredits};
use tcc_ht::packet::{Command, Packet, SrcTag, UnitId, VirtualChannel};
use tcc_ht::wire::{decode, encode};

/// Strategy producing arbitrary valid commands.
fn arb_command() -> impl Strategy<Value = Command> {
    let unit = (0u8..32).prop_map(UnitId);
    let tag = (0u8..32).prop_map(SrcTag::new);
    // Addresses are dword-aligned 40-bit.
    let addr = (0u64..(1u64 << 38)).prop_map(|a| a << 2);
    prop_oneof![
        (unit.clone(), addr.clone(), 0u8..16, any::<bool>(), 0u8..16).prop_map(
            |(unit, addr, count, pass_pw, seq_id)| Command::WrSized {
                posted: true,
                unit,
                addr,
                count,
                pass_pw,
                seq_id,
                tag: None,
            }
        ),
        (
            unit.clone(),
            addr.clone(),
            0u8..16,
            any::<bool>(),
            0u8..16,
            tag.clone()
        )
            .prop_map(|(unit, addr, count, pass_pw, seq_id, tag)| {
                Command::WrSized {
                    posted: false,
                    unit,
                    addr,
                    count,
                    pass_pw,
                    seq_id,
                    tag: Some(tag),
                }
            }),
        (
            unit.clone(),
            addr.clone(),
            0u8..16,
            any::<bool>(),
            0u8..16,
            tag.clone()
        )
            .prop_map(|(unit, addr, count, pass_pw, seq_id, tag)| {
                Command::RdSized {
                    unit,
                    addr,
                    count,
                    pass_pw,
                    seq_id,
                    tag,
                }
            }),
        (unit.clone(), tag.clone(), any::<bool>())
            .prop_map(|(unit, tag, error)| Command::RdResponse { unit, tag, error }),
        (unit.clone(), tag.clone(), any::<bool>())
            .prop_map(|(unit, tag, error)| Command::TgtDone { unit, tag, error }),
        (unit.clone(), addr).prop_map(|(unit, addr)| Command::Broadcast { unit, addr }),
        unit.clone().prop_map(|unit| Command::Fence { unit }),
        (unit, tag).prop_map(|(unit, tag)| Command::Flush { unit, tag }),
        (0u8..4, 0u8..4, 0u8..4, 0u8..4, 0u8..4, 0u8..4).prop_map(|(a, b, c, d, e, f)| {
            Command::Nop {
                posted_cmd: a,
                posted_data: b,
                nonposted_cmd: c,
                nonposted_data: d,
                response_cmd: e,
                response_data: f,
            }
        }),
    ]
}

proptest! {
    /// encode → decode is the identity on every valid command.
    #[test]
    fn wire_round_trip(cmd in arb_command()) {
        let bytes = encode(&cmd);
        prop_assert_eq!(bytes.len() as u64, cmd.header_bytes());
        let (back, used) = decode(&bytes).expect("decodes");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(back, cmd);
    }

    /// Decoding arbitrary bytes either fails cleanly or yields a command
    /// that re-encodes to the same opcode class (no panics, no UB).
    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..16)) {
        let _ = decode(&bytes);
    }

    /// Credit conservation under arbitrary interleavings of send / drain /
    /// harvest+release: available + held + pending == initial, and no
    /// operation sequence can create credit out of thin air.
    #[test]
    fn credit_conservation(ops in proptest::collection::vec(0u8..3, 1..500), initial in 1u8..16) {
        let mut tx = TxCredits::new(initial);
        let mut rx = RxBuffers::new(initial);
        let pkt = Packet::posted_write(0x1000, Bytes::from_static(&[0u8; 64]));
        let mut at_receiver: u32 = 0;

        for op in ops {
            match op {
                0 => {
                    if tx.can_send(&pkt) {
                        tx.consume(&pkt).unwrap();
                        rx.accept(&pkt).unwrap();
                        at_receiver += 1;
                    } else {
                        prop_assert_eq!(tx.available_cmd(VirtualChannel::Posted), 0);
                    }
                }
                1 => {
                    if at_receiver > 0 {
                        rx.drain(&pkt).unwrap();
                        at_receiver -= 1;
                    }
                }
                _ => {
                    let ret = rx.harvest();
                    // errors on over-return — the property
                    prop_assert!(tx.release(ret).is_ok());
                }
            }
            prop_assert!(tx.available_cmd(VirtualChannel::Posted) <= initial);
        }
    }

    /// A posted write stream through LinkTx is delivered in FIFO order with
    /// monotonically increasing arrival times.
    #[test]
    fn link_delivery_fifo(n in 1usize..64) {
        use tcc_fabric::time::SimTime;
        use tcc_ht::link::{LinkConfig, LinkTx};
        use tcc_ht::flow::CreditReturn;

        let mut tx = LinkTx::new(LinkConfig::PROTOTYPE, 42);
        let mut arrivals = Vec::new();
        for i in 0..n {
            tx.enqueue(Packet::posted_write((i as u64) << 6, Bytes::from_static(&[0u8; 64])));
            for d in tx.pump(SimTime::ZERO) {
                arrivals.push((d.packet.addr().unwrap(), d.arrival));
            }
            tx.credit_return(CreditReturn { cmd: [1,0,0], data: [1,0,0] }).unwrap();
        }
        for d in tx.pump(SimTime::ZERO) {
            arrivals.push((d.packet.addr().unwrap(), d.arrival));
        }
        prop_assert_eq!(arrivals.len(), n);
        for (i, w) in arrivals.windows(2).enumerate() {
            prop_assert!(w[0].0 < w[1].0, "addr order at {i}");
            prop_assert!(w[0].1 <= w[1].1, "time order at {i}");
        }
    }
}
