//! Link-level CRC.
//!
//! HyperTransport protects each lane with a periodic CRC computed over
//! 512-bit-time windows and transmitted during 4 dedicated bit times, an
//! overhead of 4/516 of the raw wire rate. The polynomial is the IEEE 802.3
//! CRC-32. We implement the CRC table-driven (no external crates) and expose
//! the window overhead constant the link layer folds into its effective
//! bandwidth.

/// Bit times per CRC window (data portion).
pub const WINDOW_BIT_TIMES: u64 = 512;
/// Bit times the CRC itself occupies per window.
pub const CRC_BIT_TIMES: u64 = 4;

/// Multiply a raw wire rate by this to get the post-CRC effective rate.
pub fn crc_efficiency() -> f64 {
    WINDOW_BIT_TIMES as f64 / (WINDOW_BIT_TIMES + CRC_BIT_TIMES) as f64
}

/// Scale `raw` bytes/sec down by the CRC window overhead (integer math).
pub fn derate_bandwidth(raw: u64) -> u64 {
    (raw as u128 * WINDOW_BIT_TIMES as u128 / (WINDOW_BIT_TIMES + CRC_BIT_TIMES) as u128) as u64
}

const POLY: u32 = 0xEDB8_8320; // reflected IEEE 802.3

fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *e = crc;
        }
        t
    })
}

/// CRC-32 (IEEE 802.3, reflected) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ t[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Incremental CRC state for streaming a window.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = (self.state >> 8) ^ t[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    pub fn finish(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"The quick brown fox jumps over the lazy dog";
        let mut inc = Crc32::new();
        inc.update(&data[..10]);
        inc.update(&data[10..]);
        assert_eq!(inc.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0xA5u8; 64];
        let good = crc32(&data);
        for byte in 0..64 {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), good, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn window_overhead() {
        assert!((crc_efficiency() - 512.0 / 516.0).abs() < 1e-12);
        // 3.2 GB/s raw derates to ~3.175 GB/s.
        let eff = derate_bandwidth(3_200_000_000);
        assert_eq!(eff, 3_175_193_798);
    }
}
