//! The protocol-violation funnel: one reviewed place where "this cannot
//! happen unless a protocol invariant is already broken" turns into an
//! abort of the simulation.
//!
//! Hot-path code is `#[cfg_attr(lint, tcc_no_panic)]` — the analyzer's
//! panic-freedom pass fails the build if an `unwrap`/`expect`/`panic!`
//! is reachable from it. Genuine can't-happen branches (a routed packet
//! with no route, a decode of a frame the ready-check just validated)
//! still need *somewhere* to go; that somewhere is here. Funnelling them
//! through one `tcc_panic_ok` function keeps the escape hatch count at
//! one per crate layer instead of one per call site, and gives every
//! violation the same greppable prefix.

use core::fmt;

/// Abort on a broken protocol invariant. Never returns.
///
/// Call through [`protocol_violation!`] so the message is formatted
/// lazily at the site. Deliberate panic, reviewed: by the time this is
/// reached, simulator state is inconsistent (a routing table disagrees
/// with the fabric, a frame fails to decode after its ready flag was
/// observed) and continuing would corrupt results silently.
#[cold]
#[inline(never)]
#[cfg_attr(lint, tcc_panic_ok)]
pub fn protocol_violation(args: fmt::Arguments<'_>) -> ! {
    panic!("protocol violation: {args}");
}

/// Format-and-abort sugar over [`fatal::protocol_violation`][self::protocol_violation].
#[macro_export]
macro_rules! protocol_violation {
    ($($arg:tt)*) => {
        $crate::fatal::protocol_violation(core::format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    #[test]
    #[should_panic(expected = "protocol violation: route miss for node 7")]
    fn funnel_formats_the_site_message() {
        protocol_violation!("route miss for node {}", 7);
    }
}
