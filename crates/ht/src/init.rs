//! Link initialisation: the state machine TCCluster subverts.
//!
//! After a cold reset both endpoints drive training patterns at 200 MHz /
//! 8 bit, detect each other, and *identify* as coherent or non-coherent
//! devices. Two Opterons normally identify as coherent. TCCluster's trick
//! (paper §IV.B): after coherent enumeration the BSP sets a debug register
//! that forces the link to identify as **non-coherent** — but the change
//! only takes effect at the next **warm reset**, when low-level link
//! initialisation re-runs with the programmed identity, width and frequency.
//!
//! This module models that FSM per link endpoint, including the negotiation
//! rules (width = min of both, clock = min of both, link is coherent only
//! if *both* sides identify coherent).

use crate::link::LinkConfig;
use tcc_fabric::time::Duration;

/// What an endpoint announces during the identification phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Identity {
    /// A processor in its default state.
    Coherent,
    /// An I/O device — or a processor with the force-ncHT debug bit set.
    NonCoherent,
}

/// Per-endpoint programmable link registers (survive warm reset, cleared by
/// cold reset).
#[derive(Debug, Clone, Copy)]
pub struct LinkRegs {
    /// Programmed link clock for the next initialisation.
    pub freq_mhz: u32,
    /// Programmed width for the next initialisation.
    pub width_bits: u8,
    /// The undocumented debug bit: identify as non-coherent after the next
    /// warm reset.
    pub force_noncoherent: bool,
    /// Whether this endpoint is a processor (true) or an I/O device.
    pub is_processor: bool,
}

impl LinkRegs {
    pub fn processor_default() -> Self {
        LinkRegs {
            freq_mhz: LinkConfig::BOOT.clock_mhz,
            width_bits: LinkConfig::BOOT.width_bits,
            force_noncoherent: false,
            is_processor: true,
        }
    }

    pub fn io_device() -> Self {
        LinkRegs {
            is_processor: false,
            ..Self::processor_default()
        }
    }

    fn identity(&self) -> Identity {
        if !self.is_processor || self.force_noncoherent {
            Identity::NonCoherent
        } else {
            Identity::Coherent
        }
    }
}

/// The per-endpoint initialisation state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkState {
    /// Powered down / in reset.
    Reset,
    /// Driving training patterns, waiting for the partner.
    Training,
    /// Link up; parameters fixed until the next reset.
    Active(ActiveLink),
    /// No partner detected (unconnected link).
    Disconnected,
}

/// Parameters of an established link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActiveLink {
    pub coherent: bool,
    pub config: LinkConfig,
}

/// One endpoint of a link undergoing initialisation.
#[derive(Debug, Clone)]
pub struct LinkEndpoint {
    pub regs: LinkRegs,
    pub state: LinkState,
}

/// Time a low-level link initialisation takes (training sequence at
/// 200 MHz; order of microseconds — exact value only affects boot-time
/// reporting, not any experiment).
pub const TRAINING_TIME: Duration = Duration(2_000_000); // 2 us

impl LinkEndpoint {
    pub fn new(regs: LinkRegs) -> Self {
        LinkEndpoint {
            regs,
            state: LinkState::Reset,
        }
    }

    /// Cold reset: clears programmed registers back to defaults (but keeps
    /// the device kind) and drops the link.
    pub fn cold_reset(&mut self) {
        let is_processor = self.regs.is_processor;
        self.regs = if is_processor {
            LinkRegs::processor_default()
        } else {
            LinkRegs::io_device()
        };
        self.state = LinkState::Reset;
    }

    /// Warm reset: drops the link but **keeps** programmed registers —
    /// this is the hook that makes force-ncHT effective.
    pub fn warm_reset(&mut self) {
        self.state = LinkState::Reset;
    }

    pub fn begin_training(&mut self) {
        self.state = LinkState::Training;
    }

    pub fn is_active(&self) -> bool {
        matches!(self.state, LinkState::Active(_))
    }

    pub fn active(&self) -> Option<ActiveLink> {
        match self.state {
            LinkState::Active(a) => Some(a),
            _ => None,
        }
    }
}

/// Negotiate a link between two endpoints that are both in `Training`.
///
/// Returns the agreed parameters and moves both endpoints to `Active`.
/// Negotiation rules (HT spec): width and clock are the minimum of the two
/// sides' programmed values; the link is coherent only if **both** sides
/// identify as coherent. The first post-cold-reset training always runs at
/// 200 MHz / 8 bit regardless of programmed values — programmed values take
/// effect from the next warm reset (`first_training = false`).
pub fn negotiate(
    a: &mut LinkEndpoint,
    b: &mut LinkEndpoint,
    hop_latency: Duration,
    first_training: bool,
) -> ActiveLink {
    assert_eq!(a.state, LinkState::Training, "endpoint A not training");
    assert_eq!(b.state, LinkState::Training, "endpoint B not training");

    let coherent =
        a.regs.identity() == Identity::Coherent && b.regs.identity() == Identity::Coherent;
    let config = if first_training {
        LinkConfig {
            hop_latency,
            ..LinkConfig::BOOT
        }
    } else {
        LinkConfig {
            clock_mhz: a.regs.freq_mhz.min(b.regs.freq_mhz),
            width_bits: a.regs.width_bits.min(b.regs.width_bits),
            hop_latency,
        }
    };
    let link = ActiveLink { coherent, config };
    a.state = LinkState::Active(link);
    b.state = LinkState::Active(link);
    link
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lat() -> Duration {
        Duration::from_nanos(50)
    }

    #[test]
    fn two_processors_come_up_coherent() {
        let mut a = LinkEndpoint::new(LinkRegs::processor_default());
        let mut b = LinkEndpoint::new(LinkRegs::processor_default());
        a.begin_training();
        b.begin_training();
        let l = negotiate(&mut a, &mut b, lat(), true);
        assert!(l.coherent);
        assert_eq!(l.config.clock_mhz, 200);
        assert_eq!(l.config.width_bits, 8);
        assert!(a.is_active() && b.is_active());
    }

    #[test]
    fn processor_to_io_device_is_noncoherent() {
        let mut cpu = LinkEndpoint::new(LinkRegs::processor_default());
        let mut sb = LinkEndpoint::new(LinkRegs::io_device());
        cpu.begin_training();
        sb.begin_training();
        let l = negotiate(&mut cpu, &mut sb, lat(), true);
        assert!(!l.coherent, "southbridge link is always non-coherent");
    }

    #[test]
    fn tccluster_sequence_forces_noncoherent_cpu_link() {
        // The paper's §IV.B sequence in miniature.
        let mut a = LinkEndpoint::new(LinkRegs::processor_default());
        let mut b = LinkEndpoint::new(LinkRegs::processor_default());

        // 1. Cold reset → first training: link is coherent.
        a.begin_training();
        b.begin_training();
        let first = negotiate(&mut a, &mut b, lat(), true);
        assert!(first.coherent);

        // 2. Over the (still coherent) link, firmware sets the debug bit on
        //    both sides and programs the target speed.
        for ep in [&mut a, &mut b] {
            ep.regs.force_noncoherent = true;
            ep.regs.freq_mhz = 800;
            ep.regs.width_bits = 16;
        }
        // The change is NOT live yet.
        assert!(matches!(a.state, LinkState::Active(l) if l.coherent));

        // 3. Warm reset → retrain: the programmed identity takes effect.
        a.warm_reset();
        b.warm_reset();
        a.begin_training();
        b.begin_training();
        let second = negotiate(&mut a, &mut b, lat(), false);
        assert!(!second.coherent, "link now identifies non-coherent");
        assert_eq!(second.config.clock_mhz, 800);
        assert_eq!(second.config.width_bits, 16);
    }

    #[test]
    fn cold_reset_clears_the_debug_bit() {
        let mut a = LinkEndpoint::new(LinkRegs::processor_default());
        a.regs.force_noncoherent = true;
        a.regs.freq_mhz = 800;
        a.cold_reset();
        assert!(!a.regs.force_noncoherent);
        assert_eq!(a.regs.freq_mhz, 200);
        assert_eq!(a.state, LinkState::Reset);
    }

    #[test]
    fn warm_reset_preserves_programmed_registers() {
        let mut a = LinkEndpoint::new(LinkRegs::processor_default());
        a.regs.freq_mhz = 2600;
        a.warm_reset();
        assert_eq!(a.regs.freq_mhz, 2600);
    }

    #[test]
    fn negotiation_takes_minimum_of_both_sides() {
        let mut a = LinkEndpoint::new(LinkRegs::processor_default());
        let mut b = LinkEndpoint::new(LinkRegs::processor_default());
        a.regs.freq_mhz = 2600;
        a.regs.width_bits = 16;
        b.regs.freq_mhz = 800;
        b.regs.width_bits = 8;
        a.begin_training();
        b.begin_training();
        let l = negotiate(&mut a, &mut b, lat(), false);
        assert_eq!(l.config.clock_mhz, 800);
        assert_eq!(l.config.width_bits, 8);
    }

    #[test]
    #[should_panic(expected = "not training")]
    fn negotiate_requires_training_state() {
        let mut a = LinkEndpoint::new(LinkRegs::processor_default());
        let mut b = LinkEndpoint::new(LinkRegs::processor_default());
        a.begin_training();
        negotiate(&mut a, &mut b, lat(), true);
    }

    #[test]
    fn one_sided_force_still_kills_coherence() {
        // Even if only one side has the debug bit, the link cannot be
        // coherent (both must identify coherent).
        let mut a = LinkEndpoint::new(LinkRegs::processor_default());
        let mut b = LinkEndpoint::new(LinkRegs::processor_default());
        a.regs.force_noncoherent = true;
        a.begin_training();
        b.begin_training();
        let l = negotiate(&mut a, &mut b, lat(), false);
        assert!(!l.coherent);
    }
}
