//! HT3 link-level retry.
//!
//! Gen3 HyperTransport links (the paper's links run Gen1-compatible at
//! HT800, but the architecture targets HT3 speeds where bit errors are a
//! fact of life) protect each packet with a per-packet CRC and a sequence
//! number. The receiver acks good packets cumulatively; on a CRC error it
//! drops the packet and naks with the sequence it expected, and the
//! transmitter replays everything from that point out of its retry
//! buffer. The result is exactly-once, in-order delivery over a lossy
//! wire — the property the posted-write fabric above assumes.

use crate::crc::crc32;
use crate::packet::Packet;
use crate::wire::encode;
use std::collections::VecDeque;

/// Sequence numbers are 8 bits on the wire (wrap-around window).
pub type Seq = u8;

/// Window size: the transmitter may have at most this many unacked
/// packets (half the sequence space, the classic Go-Back-N bound).
pub const WINDOW: usize = 128;

/// A packet framed for a retry-mode link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Framed {
    pub seq: Seq,
    pub packet: Packet,
    /// CRC over header bytes + payload (what the wire would carry).
    pub crc: u32,
}

impl Framed {
    fn new(seq: Seq, packet: Packet) -> Self {
        let crc = frame_crc(seq, &packet);
        Framed { seq, packet, crc }
    }

    /// Does the frame verify?
    pub fn good(&self) -> bool {
        self.crc == frame_crc(self.seq, &self.packet)
    }

    /// Corrupt the frame in place (test/error-injection hook).
    pub fn corrupt(&mut self) {
        self.crc ^= 0xDEAD_BEEF;
    }
}

fn frame_crc(seq: Seq, packet: &Packet) -> u32 {
    let mut bytes = encode(&packet.cmd);
    bytes.push(seq);
    bytes.extend_from_slice(&packet.data);
    crc32(&bytes)
}

/// Control traffic flowing back from receiver to transmitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ack {
    /// Everything up to and including `seq` arrived intact.
    Good { up_to: Seq },
    /// A frame failed CRC; retransmit starting at `expected`.
    Nak { expected: Seq },
}

/// Transmitter-side retry state.
#[derive(Debug, Default)]
pub struct RetryTx {
    next_seq: Seq,
    /// Unacked frames, oldest first.
    buffer: VecDeque<Framed>,
    pub replays: u64,
    pub sent: u64,
}

/// Errors from the retry layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryError {
    /// Retry buffer full — caller must wait for acks.
    WindowFull,
    /// A nak named a sequence outside the outstanding window (link
    /// protocol violation — real hardware would retrain the link).
    NakOutOfWindow(Seq),
}

impl RetryTx {
    pub fn new() -> Self {
        Self::default()
    }

    /// Frame a packet for transmission; buffers it until acked.
    pub fn send(&mut self, packet: Packet) -> Result<Framed, RetryError> {
        if self.buffer.len() >= WINDOW {
            return Err(RetryError::WindowFull);
        }
        let framed = Framed::new(self.next_seq, packet);
        self.next_seq = self.next_seq.wrapping_add(1);
        self.buffer.push_back(framed.clone());
        self.sent += 1;
        Ok(framed)
    }

    /// Handle receiver feedback. For a nak, returns the frames to replay
    /// (in order).
    pub fn feedback(&mut self, ack: Ack) -> Result<Vec<Framed>, RetryError> {
        match ack {
            Ack::Good { up_to } => {
                while let Some(front) = self.buffer.front() {
                    // `up_to` acks front if front.seq <= up_to in wrapping
                    // window arithmetic.
                    let delta = up_to.wrapping_sub(front.seq);
                    if (delta as usize) < WINDOW {
                        self.buffer.pop_front();
                    } else {
                        break;
                    }
                }
                Ok(Vec::new())
            }
            Ack::Nak { expected } => {
                // Validate the nak points inside the outstanding window.
                let Some(front) = self.buffer.front() else {
                    return Err(RetryError::NakOutOfWindow(expected));
                };
                let offset = expected.wrapping_sub(front.seq) as usize;
                if offset >= self.buffer.len() {
                    return Err(RetryError::NakOutOfWindow(expected));
                }
                // Ack everything before `expected`, replay the rest.
                for _ in 0..offset {
                    self.buffer.pop_front();
                }
                let replay: Vec<Framed> = self.buffer.iter().cloned().collect();
                self.replays += replay.len() as u64;
                Ok(replay)
            }
        }
    }

    pub fn outstanding(&self) -> usize {
        self.buffer.len()
    }

    /// Timeout retransmit: replay every unacked frame. The recovery path
    /// when feedback was lost or the nak'd replacement was itself
    /// corrupted (the receiver naks only once per gap).
    pub fn timeout_replay(&mut self) -> Vec<Framed> {
        let replay: Vec<Framed> = self.buffer.iter().cloned().collect();
        self.replays += replay.len() as u64;
        replay
    }
}

/// Receiver-side retry state.
#[derive(Debug, Default)]
pub struct RetryRx {
    expected: Seq,
    /// One-shot nak latch: a nak for the current `expected` has already
    /// been sent. Without this, every stale frame behind a loss triggers
    /// another nak, each nak replays the whole window, and the link
    /// drowns in replays (the classic unthrottled Go-Back-N avalanche).
    nak_pending: bool,
    pub delivered: u64,
    pub crc_drops: u64,
    pub dup_drops: u64,
}

/// What the receiver does with an incoming frame. `None` feedback means
/// nothing needs to be sent (nak suppressed / silent drop).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RxResult {
    /// Deliver the packet upward and ack.
    Deliver(Packet, Ack),
    /// Frame dropped (bad CRC or a gap); nak carried at most once per gap.
    Dropped(Option<Ack>),
    /// Duplicate of an already-delivered frame (replay overshoot): drop
    /// silently, re-ack.
    Duplicate(Ack),
}

impl RetryRx {
    pub fn new() -> Self {
        Self::default()
    }

    fn nak_once(&mut self) -> Option<Ack> {
        if self.nak_pending {
            None
        } else {
            self.nak_pending = true;
            Some(Ack::Nak {
                expected: self.expected,
            })
        }
    }

    pub fn receive(&mut self, framed: Framed) -> RxResult {
        if !framed.good() {
            self.crc_drops += 1;
            let nak = self.nak_once();
            return RxResult::Dropped(nak);
        }
        if framed.seq == self.expected {
            self.expected = self.expected.wrapping_add(1);
            self.nak_pending = false; // progress clears the latch
            self.delivered += 1;
            return RxResult::Deliver(framed.packet, Ack::Good { up_to: framed.seq });
        }
        // Out of order: either an old duplicate (already delivered) or a
        // gap (a dropped frame ahead of us).
        let behind = self.expected.wrapping_sub(framed.seq) as usize;
        if behind > 0 && behind <= WINDOW {
            self.dup_drops += 1;
            RxResult::Duplicate(Ack::Good {
                up_to: self.expected.wrapping_sub(1),
            })
        } else {
            let nak = self.nak_once();
            RxResult::Dropped(nak)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn pw(i: u64) -> Packet {
        Packet::posted_write(i * 64, Bytes::from(vec![i as u8; 8]))
    }

    #[test]
    fn clean_link_delivers_and_acks() {
        let mut tx = RetryTx::new();
        let mut rx = RetryRx::new();
        for i in 0..10 {
            let f = tx.send(pw(i)).unwrap();
            match rx.receive(f) {
                RxResult::Deliver(p, ack) => {
                    assert_eq!(p.data[0], i as u8);
                    tx.feedback(ack).unwrap();
                }
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(tx.outstanding(), 0);
        assert_eq!(rx.delivered, 10);
    }

    #[test]
    fn corrupted_frame_naks_and_replays() {
        let mut tx = RetryTx::new();
        let mut rx = RetryRx::new();
        let f0 = tx.send(pw(0)).unwrap();
        let mut f1 = tx.send(pw(1)).unwrap();
        let f2 = tx.send(pw(2)).unwrap();

        // 0 arrives fine.
        let RxResult::Deliver(_, ack0) = rx.receive(f0) else {
            panic!()
        };
        tx.feedback(ack0).unwrap();
        // 1 is corrupted on the wire.
        f1.corrupt();
        let RxResult::Dropped(Some(nak)) = rx.receive(f1) else {
            panic!()
        };
        // 2 arrives but the receiver expects 1: dropped as a gap, and the
        // nak for this gap was already sent — suppressed.
        let RxResult::Dropped(None) = rx.receive(f2) else {
            panic!()
        };
        // The nak triggers replay of 1 and 2.
        let replay = tx.feedback(nak).unwrap();
        assert_eq!(replay.len(), 2);
        assert_eq!(replay[0].seq, 1);
        for f in replay {
            match rx.receive(f) {
                RxResult::Deliver(_, ack) => {
                    tx.feedback(ack).unwrap();
                }
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(rx.delivered, 3);
        assert_eq!(rx.crc_drops, 1);
        assert_eq!(tx.outstanding(), 0);
        assert!(tx.replays >= 2);
    }

    #[test]
    fn duplicate_replay_is_dropped_silently() {
        let mut tx = RetryTx::new();
        let mut rx = RetryRx::new();
        let f = tx.send(pw(0)).unwrap();
        let RxResult::Deliver(_, _ack) = rx.receive(f.clone()) else {
            panic!()
        };
        // The same frame again (ack lost, tx replayed).
        match rx.receive(f) {
            RxResult::Duplicate(Ack::Good { up_to }) => assert_eq!(up_to, 0),
            other => panic!("{other:?}"),
        }
        assert_eq!(rx.delivered, 1, "no double delivery");
        assert_eq!(rx.dup_drops, 1);
    }

    #[test]
    fn window_fills_without_acks() {
        let mut tx = RetryTx::new();
        for i in 0..WINDOW as u64 {
            tx.send(pw(i)).unwrap();
        }
        assert_eq!(tx.send(pw(999)), Err(RetryError::WindowFull));
        // Cumulative ack frees the window.
        tx.feedback(Ack::Good {
            up_to: (WINDOW - 1) as Seq,
        })
        .unwrap();
        assert_eq!(tx.outstanding(), 0);
        assert!(tx.send(pw(999)).is_ok());
    }

    #[test]
    fn bogus_nak_detected() {
        let mut tx = RetryTx::new();
        tx.send(pw(0)).unwrap();
        assert_eq!(
            tx.feedback(Ack::Nak { expected: 200 }),
            Err(RetryError::NakOutOfWindow(200))
        );
    }

    #[test]
    fn lossy_link_eventually_delivers_everything_in_order() {
        use tcc_fabric::rng::Xoshiro256;
        let mut tx = RetryTx::new();
        let mut rx = RetryRx::new();
        let mut rng = Xoshiro256::seeded(2024);
        const N: u64 = 2_000;

        let mut to_send: VecDeque<u64> = (0..N).collect();
        let mut wire: VecDeque<Framed> = VecDeque::new();
        let mut delivered: Vec<u64> = Vec::new();
        let mut feedbacks: VecDeque<Ack> = VecDeque::new();

        let mut steps = 0u64;
        while (delivered.len() as u64) < N {
            steps += 1;
            assert!(steps < 200_000, "retry protocol did not converge");
            // Transmit what fits in the window.
            while let Some(&i) = to_send.front() {
                match tx.send(pw(i)) {
                    Ok(mut f) => {
                        to_send.pop_front();
                        // 10% of frames corrupted in flight.
                        if rng.chance(0.10) {
                            f.corrupt();
                        }
                        wire.push_back(f);
                    }
                    Err(RetryError::WindowFull) => break,
                    Err(e) => panic!("{e:?}"),
                }
            }
            // Deliver one frame.
            if let Some(f) = wire.pop_front() {
                match rx.receive(f) {
                    RxResult::Deliver(p, ack) => {
                        delivered.push(p.addr().unwrap() / 64);
                        feedbacks.push_back(ack);
                    }
                    RxResult::Dropped(Some(nak)) => feedbacks.push_back(nak),
                    RxResult::Dropped(None) => {}
                    RxResult::Duplicate(ack) => feedbacks.push_back(ack),
                }
            } else if feedbacks.is_empty() && tx.outstanding() > 0 {
                // Link idle with unacked frames: timeout retransmit (the
                // nak'd replacement may itself have been corrupted).
                for mut f in tx.timeout_replay() {
                    if rng.chance(0.10) {
                        f.corrupt();
                    }
                    wire.push_back(f);
                }
            }
            // Process one feedback; naks replay onto the wire (replays may
            // be corrupted again).
            if let Some(ack) = feedbacks.pop_front() {
                match tx.feedback(ack) {
                    Ok(replays) => {
                        for mut f in replays {
                            if rng.chance(0.10) {
                                f.corrupt();
                            }
                            wire.push_back(f);
                        }
                    }
                    // A nak can go stale after a later cumulative ack or a
                    // previous replay already moved the window; ignore.
                    Err(RetryError::NakOutOfWindow(_)) => {}
                    Err(e) => panic!("{e:?}"),
                }
            }
        }
        assert_eq!(
            delivered,
            (0..N).collect::<Vec<_>>(),
            "in order, exactly once"
        );
        assert!(
            rx.crc_drops > 100,
            "loss actually happened: {}",
            rx.crc_drops
        );
        assert!(tx.replays > 100);
    }
}
