//! Credit-based link-level flow control.
//!
//! Each direction of an HT link carries six independent credit pools:
//! command and data credits for each of the three virtual channels. A
//! transmitter may only send a packet when it holds a command credit (and a
//! data credit, if the packet carries data) for the packet's VC; the
//! receiver returns credits in NOP packets as it drains its buffers.
//!
//! The invariant the property tests lean on: **credits are conserved** —
//! `in_flight + available + pending_return == initial` for every pool, at
//! all times.

use crate::packet::{Packet, VirtualChannel};

/// Credits for one (VC × command/data) pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    pub initial: u8,
    pub available: u8,
}

impl Pool {
    fn new(initial: u8) -> Self {
        Pool {
            initial,
            available: initial,
        }
    }
}

/// Transmitter-side credit state for one link direction.
#[derive(Debug, Clone)]
pub struct TxCredits {
    cmd: [Pool; 3],
    data: [Pool; 3],
}

/// Receiver-side buffer state: consumed credits awaiting return.
#[derive(Debug, Clone, Default)]
pub struct RxBuffers {
    /// Packets held per VC (command buffer occupancy).
    held_cmd: [u8; 3],
    /// Data buffers held per VC.
    held_data: [u8; 3],
    /// Credits freed but not yet sent back in a NOP.
    pending_cmd: [u8; 3],
    pending_data: [u8; 3],
}

/// Default buffer depth per pool. The K10 northbridge provides buffers in
/// this range; the exact depth only shifts where backpressure kicks in.
pub const DEFAULT_CREDITS: u8 = 8;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowError {
    /// No command credit available for the packet's VC.
    NoCmdCredit(VirtualChannel),
    /// No data credit available for the packet's VC.
    NoDataCredit(VirtualChannel),
}

impl TxCredits {
    pub fn new(per_pool: u8) -> Self {
        TxCredits {
            cmd: [Pool::new(per_pool); 3],
            data: [Pool::new(per_pool); 3],
        }
    }

    pub fn available_cmd(&self, vc: VirtualChannel) -> u8 {
        self.cmd[vc.index()].available
    }

    pub fn available_data(&self, vc: VirtualChannel) -> u8 {
        self.data[vc.index()].available
    }

    /// Whether `pkt` could be sent right now.
    pub fn can_send(&self, pkt: &Packet) -> bool {
        let vc = pkt.vc();
        if self.cmd[vc.index()].available == 0 {
            return false;
        }
        if !pkt.data.is_empty() && self.data[vc.index()].available == 0 {
            return false;
        }
        true
    }

    /// Consume credits for sending `pkt`.
    pub fn consume(&mut self, pkt: &Packet) -> Result<(), FlowError> {
        let vc = pkt.vc();
        let i = vc.index();
        if self.cmd[i].available == 0 {
            return Err(FlowError::NoCmdCredit(vc));
        }
        if !pkt.data.is_empty() && self.data[i].available == 0 {
            return Err(FlowError::NoDataCredit(vc));
        }
        self.cmd[i].available -= 1;
        if !pkt.data.is_empty() {
            self.data[i].available -= 1;
        }
        Ok(())
    }

    /// Apply a credit return carried by a received NOP.
    pub fn release(&mut self, ret: CreditReturn) {
        for i in 0..3 {
            let c = &mut self.cmd[i];
            c.available = c
                .available
                .checked_add(ret.cmd[i])
                .filter(|&v| v <= c.initial)
                .expect("command credit overflow: more returned than consumed");
            let d = &mut self.data[i];
            d.available = d
                .available
                .checked_add(ret.data[i])
                .filter(|&v| v <= d.initial)
                .expect("data credit overflow: more returned than consumed");
        }
    }

    /// Credits currently in flight (consumed, not yet returned).
    pub fn in_flight_cmd(&self, vc: VirtualChannel) -> u8 {
        let p = self.cmd[vc.index()];
        p.initial - p.available
    }
}

/// Credits being returned in one NOP (each field limited to 2 bits on the
/// wire, so at most 3 per class per NOP).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CreditReturn {
    pub cmd: [u8; 3],
    pub data: [u8; 3],
}

impl CreditReturn {
    pub fn is_empty(&self) -> bool {
        self.cmd.iter().all(|&c| c == 0) && self.data.iter().all(|&d| d == 0)
    }
}

impl RxBuffers {
    pub fn new() -> Self {
        Self::default()
    }

    /// Account for an arriving packet occupying buffers.
    pub fn accept(&mut self, pkt: &Packet) {
        let i = pkt.vc().index();
        self.held_cmd[i] += 1;
        if !pkt.data.is_empty() {
            self.held_data[i] += 1;
        }
    }

    /// The receiver finished processing a packet: its buffers become
    /// returnable credits.
    pub fn drain(&mut self, pkt: &Packet) {
        let i = pkt.vc().index();
        assert!(self.held_cmd[i] > 0, "draining more than accepted");
        self.held_cmd[i] -= 1;
        self.pending_cmd[i] += 1;
        if !pkt.data.is_empty() {
            assert!(self.held_data[i] > 0);
            self.held_data[i] -= 1;
            self.pending_data[i] += 1;
        }
    }

    /// Whether any credits await return.
    pub fn has_pending(&self) -> bool {
        self.pending_cmd.iter().any(|&c| c > 0) || self.pending_data.iter().any(|&d| d > 0)
    }

    /// Harvest up to 3 credits per class into a NOP's credit-return fields.
    pub fn harvest(&mut self) -> CreditReturn {
        let mut ret = CreditReturn::default();
        for i in 0..3 {
            ret.cmd[i] = self.pending_cmd[i].min(3);
            self.pending_cmd[i] -= ret.cmd[i];
            ret.data[i] = self.pending_data[i].min(3);
            self.pending_data[i] -= ret.data[i];
        }
        ret
    }

    pub fn held(&self, vc: VirtualChannel) -> u8 {
        self.held_cmd[vc.index()]
    }
}

/// Build the NOP command carrying a [`CreditReturn`].
pub fn nop_for(ret: CreditReturn) -> crate::packet::Command {
    crate::packet::Command::Nop {
        posted_cmd: ret.cmd[VirtualChannel::Posted.index()],
        posted_data: ret.data[VirtualChannel::Posted.index()],
        nonposted_cmd: ret.cmd[VirtualChannel::NonPosted.index()],
        nonposted_data: ret.data[VirtualChannel::NonPosted.index()],
        response_cmd: ret.cmd[VirtualChannel::Response.index()],
        response_data: ret.data[VirtualChannel::Response.index()],
    }
}

/// Extract the [`CreditReturn`] carried by a received NOP.
pub fn return_from_nop(cmd: &crate::packet::Command) -> Option<CreditReturn> {
    match cmd {
        crate::packet::Command::Nop {
            posted_cmd,
            posted_data,
            nonposted_cmd,
            nonposted_data,
            response_cmd,
            response_data,
        } => {
            let mut ret = CreditReturn::default();
            ret.cmd[VirtualChannel::Posted.index()] = *posted_cmd;
            ret.data[VirtualChannel::Posted.index()] = *posted_data;
            ret.cmd[VirtualChannel::NonPosted.index()] = *nonposted_cmd;
            ret.data[VirtualChannel::NonPosted.index()] = *nonposted_data;
            ret.cmd[VirtualChannel::Response.index()] = *response_cmd;
            ret.data[VirtualChannel::Response.index()] = *response_data;
            Some(ret)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn pw() -> Packet {
        Packet::posted_write(0x1000, Bytes::from_static(&[0u8; 64]))
    }

    #[test]
    fn consume_and_release_round_trip() {
        let mut tx = TxCredits::new(2);
        let mut rx = RxBuffers::new();
        let p = pw();
        assert!(tx.can_send(&p));
        tx.consume(&p).unwrap();
        rx.accept(&p);
        tx.consume(&p).unwrap();
        rx.accept(&p);
        assert!(!tx.can_send(&p), "credits exhausted");
        assert_eq!(
            tx.consume(&p),
            Err(FlowError::NoCmdCredit(VirtualChannel::Posted))
        );
        assert_eq!(rx.held(VirtualChannel::Posted), 2);

        rx.drain(&p);
        let ret = rx.harvest();
        assert_eq!(ret.cmd[VirtualChannel::Posted.index()], 1);
        tx.release(ret);
        assert!(tx.can_send(&p));
    }

    #[test]
    fn data_credit_independent_of_cmd_credit() {
        let mut tx = TxCredits::new(2);
        // A control-only fence consumes a posted command credit but no data.
        let fence = Packet::control(crate::packet::Command::Fence {
            unit: crate::packet::UnitId::HOST,
        });
        tx.consume(&fence).unwrap();
        tx.consume(&fence).unwrap();
        assert_eq!(tx.available_data(VirtualChannel::Posted), 2);
        assert_eq!(tx.available_cmd(VirtualChannel::Posted), 0);
        assert!(!tx.can_send(&pw()));
    }

    #[test]
    fn vcs_do_not_share_credits() {
        let mut tx = TxCredits::new(1);
        tx.consume(&pw()).unwrap();
        // Posted exhausted; a read (non-posted VC) must still pass.
        let rd = Packet::control(crate::packet::Command::RdSized {
            unit: crate::packet::UnitId::HOST,
            addr: 0,
            count: 0,
            pass_pw: false,
            seq_id: 0,
            tag: crate::packet::SrcTag::new(0),
        });
        assert!(tx.can_send(&rd));
        tx.consume(&rd).unwrap();
    }

    #[test]
    #[should_panic(expected = "credit overflow")]
    fn over_return_caught() {
        let mut tx = TxCredits::new(1);
        let mut ret = CreditReturn::default();
        ret.cmd[0] = 1; // returning a credit that was never consumed
        tx.release(ret);
    }

    #[test]
    fn harvest_caps_at_three_per_nop() {
        let mut rx = RxBuffers::new();
        let p = pw();
        for _ in 0..5 {
            rx.accept(&p);
            rx.drain(&p);
        }
        let first = rx.harvest();
        assert_eq!(first.cmd[0], 3, "NOP carries at most 3 per class");
        assert_eq!(first.data[0], 3);
        assert!(rx.has_pending());
        let second = rx.harvest();
        assert_eq!(second.cmd[0], 2);
        assert!(!rx.has_pending());
    }

    #[test]
    fn nop_encoding_carries_credits() {
        let ret = CreditReturn {
            cmd: [1, 2, 3],
            data: [3, 0, 1],
        };
        let cmd = nop_for(ret);
        let bytes = crate::wire::encode(&cmd);
        let (decoded, _) = crate::wire::decode(&bytes).unwrap();
        assert_eq!(return_from_nop(&decoded), Some(ret));
    }

    #[test]
    fn credit_conservation_under_random_traffic() {
        use tcc_fabric::rng::Xoshiro256;
        let initial = DEFAULT_CREDITS;
        let mut tx = TxCredits::new(initial);
        let mut rx = RxBuffers::new();
        let mut rng = Xoshiro256::seeded(99);
        let p = pw();
        let mut in_receiver: Vec<Packet> = Vec::new();
        for _ in 0..10_000 {
            match rng.below(3) {
                0 => {
                    if tx.consume(&p).is_ok() {
                        rx.accept(&p);
                        in_receiver.push(p.clone());
                    }
                }
                1 => {
                    if let Some(q) = in_receiver.pop() {
                        rx.drain(&q);
                    }
                }
                _ => {
                    let ret = rx.harvest();
                    tx.release(ret);
                }
            }
            // Conservation: available + held + pending == initial.
            let avail = tx.available_cmd(VirtualChannel::Posted);
            let held = rx.held(VirtualChannel::Posted);
            let pending = {
                // peek by harvesting into a copy
                let mut probe = rx.clone();
                let mut total = 0u8;
                loop {
                    let r = probe.harvest();
                    if r.is_empty() {
                        break;
                    }
                    total += r.cmd[0];
                }
                total
            };
            assert_eq!(avail + held + pending, initial);
        }
    }
}
