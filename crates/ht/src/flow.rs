//! Credit-based link-level flow control.
//!
//! Each direction of an HT link carries six independent credit pools:
//! command and data credits for each of the three virtual channels. A
//! transmitter may only send a packet when it holds a command credit (and a
//! data credit, if the packet carries data) for the packet's VC; the
//! receiver returns credits in NOP packets as it drains its buffers.
//!
//! The invariant everything else leans on: **credits are conserved** —
//! `in_flight + available + pending_return == initial` for every pool, at
//! all times. All arithmetic on pool counters is checked: an increment or
//! decrement that would break conservation surfaces as a typed
//! [`CreditError`] instead of silently wrapping, and the runtime monitors
//! in `tcc-verify` turn those errors into structured diagnostics.

use crate::packet::{Packet, VirtualChannel};

/// Which of the two credit classes of a VC a failure concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CreditClass {
    /// Command credits (one per packet).
    Cmd,
    /// Data credits (one per packet carrying payload).
    Data,
}

impl core::fmt::Display for CreditClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            CreditClass::Cmd => "cmd",
            CreditClass::Data => "data",
        })
    }
}

/// Typed credit-accounting failures. Every variant is a protocol
/// violation by one side of the link — none of these occur on a correct
/// fabric, so callers on known-good paths may `expect` them, while the
/// verification layer reports them with full context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CreditError {
    /// No command credit available for the packet's VC.
    NoCmdCredit(VirtualChannel),
    /// No data credit available for the packet's VC.
    NoDataCredit(VirtualChannel),
    /// A NOP returned more credits than were ever consumed.
    OverReturn {
        vc: VirtualChannel,
        class: CreditClass,
        returned: u8,
        outstanding: u8,
    },
    /// A packet arrived with no free receive buffer — the transmitter
    /// sent without holding a credit.
    BufferOverrun {
        vc: VirtualChannel,
        class: CreditClass,
    },
    /// A buffer was drained that was never occupied.
    DrainUnderflow {
        vc: VirtualChannel,
        class: CreditClass,
    },
}

impl core::fmt::Display for CreditError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CreditError::NoCmdCredit(vc) => write!(f, "no {vc} command credit"),
            CreditError::NoDataCredit(vc) => write!(f, "no {vc} data credit"),
            CreditError::OverReturn {
                vc,
                class,
                returned,
                outstanding,
            } => write!(
                f,
                "credit overflow: {returned} {vc} {class} credits returned with only \
                 {outstanding} outstanding"
            ),
            CreditError::BufferOverrun { vc, class } => {
                write!(
                    f,
                    "receive {vc} {class} buffer overrun: sent without credit"
                )
            }
            CreditError::DrainUnderflow { vc, class } => {
                write!(f, "draining {vc} {class} buffer that was never accepted")
            }
        }
    }
}

impl std::error::Error for CreditError {}

/// Credits for one (VC × command/data) pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    pub initial: u8,
    pub available: u8,
}

impl Pool {
    fn new(initial: u8) -> Self {
        Pool {
            initial,
            available: initial,
        }
    }
}

/// Transmitter-side credit state for one link direction.
#[derive(Debug, Clone)]
pub struct TxCredits {
    cmd: [Pool; 3],
    data: [Pool; 3],
}

/// Receiver-side buffer state: consumed credits awaiting return.
///
/// Constructed only via [`RxBuffers::new`] with an explicit buffer depth
/// — a zero-depth receiver is unrepresentable by accident, because every
/// arriving packet would be a [`CreditError::BufferOverrun`].
#[derive(Debug, Clone)]
pub struct RxBuffers {
    /// Buffer depth per pool; mirrors the transmitter's initial credits.
    initial: u8,
    /// Packets held per VC (command buffer occupancy).
    held_cmd: [u8; 3],
    /// Data buffers held per VC.
    held_data: [u8; 3],
    /// Credits freed but not yet sent back in a NOP.
    pending_cmd: [u8; 3],
    pending_data: [u8; 3],
}

/// Default buffer depth per pool. The K10 northbridge provides buffers in
/// this range; the exact depth only shifts where backpressure kicks in.
pub const DEFAULT_CREDITS: u8 = 8;

impl TxCredits {
    pub fn new(per_pool: u8) -> Self {
        TxCredits {
            cmd: [Pool::new(per_pool); 3],
            data: [Pool::new(per_pool); 3],
        }
    }

    pub fn available_cmd(&self, vc: VirtualChannel) -> u8 {
        self.cmd[vc.index()].available
    }

    pub fn available_data(&self, vc: VirtualChannel) -> u8 {
        self.data[vc.index()].available
    }

    pub fn initial_cmd(&self, vc: VirtualChannel) -> u8 {
        self.cmd[vc.index()].initial
    }

    pub fn initial_data(&self, vc: VirtualChannel) -> u8 {
        self.data[vc.index()].initial
    }

    /// Whether `pkt` could be sent right now.
    pub fn can_send(&self, pkt: &Packet) -> bool {
        let vc = pkt.vc();
        if self.cmd[vc.index()].available == 0 {
            return false;
        }
        if !pkt.data.is_empty() && self.data[vc.index()].available == 0 {
            return false;
        }
        true
    }

    /// Consume credits for sending `pkt`. On failure nothing is
    /// consumed: both pools are validated before either is touched, so
    /// the decrements below cannot underflow.
    #[cfg_attr(lint, tcc_acquires(credit))]
    pub fn consume(&mut self, pkt: &Packet) -> Result<(), CreditError> {
        let vc = pkt.vc();
        let i = vc.index();
        let needs_data = !pkt.data.is_empty();
        if self.cmd[i].available == 0 {
            return Err(CreditError::NoCmdCredit(vc));
        }
        if needs_data && self.data[i].available == 0 {
            return Err(CreditError::NoDataCredit(vc));
        }
        self.cmd[i].available -= 1;
        if needs_data {
            self.data[i].available -= 1;
        }
        Ok(())
    }

    /// Apply a credit return carried by a received NOP. Fails with
    /// [`CreditError::OverReturn`] when the far side returns credits that
    /// were never consumed; the transmitter state is left untouched in
    /// that case (the return is rejected whole).
    #[cfg_attr(lint, tcc_releases(credit))]
    pub fn release(&mut self, ret: CreditReturn) -> Result<(), CreditError> {
        // Validate before mutating so a rejected return has no effect.
        for (i, &vc) in VirtualChannel::ALL.iter().enumerate() {
            let c = self.cmd[i];
            if ret.cmd[i] > c.initial - c.available {
                return Err(CreditError::OverReturn {
                    vc,
                    class: CreditClass::Cmd,
                    returned: ret.cmd[i],
                    outstanding: c.initial - c.available,
                });
            }
            let d = self.data[i];
            if ret.data[i] > d.initial - d.available {
                return Err(CreditError::OverReturn {
                    vc,
                    class: CreditClass::Data,
                    returned: ret.data[i],
                    outstanding: d.initial - d.available,
                });
            }
        }
        // Every return fits below `initial` (validated above), so the
        // adds cannot overflow the pools.
        for i in 0..3 {
            self.cmd[i].available += ret.cmd[i];
            self.data[i].available += ret.data[i];
        }
        Ok(())
    }

    /// Credits currently in flight (consumed, not yet returned).
    pub fn in_flight_cmd(&self, vc: VirtualChannel) -> u8 {
        let p = self.cmd[vc.index()];
        p.initial - p.available
    }

    /// Data credits currently in flight.
    pub fn in_flight_data(&self, vc: VirtualChannel) -> u8 {
        let p = self.data[vc.index()];
        p.initial - p.available
    }
}

/// Credits being returned in one NOP (each field limited to 2 bits on the
/// wire, so at most 3 per class per NOP).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CreditReturn {
    pub cmd: [u8; 3],
    pub data: [u8; 3],
}

impl CreditReturn {
    pub fn is_empty(&self) -> bool {
        self.cmd.iter().all(|&c| c == 0) && self.data.iter().all(|&d| d == 0)
    }

    /// Total credits carried (both classes, all VCs).
    pub fn total(&self) -> u32 {
        self.cmd.iter().map(|&c| c as u32).sum::<u32>()
            + self.data.iter().map(|&d| d as u32).sum::<u32>()
    }
}

impl RxBuffers {
    /// A receiver with `initial` buffers per pool (matching the credits
    /// the paired transmitter starts with).
    pub fn new(initial: u8) -> Self {
        assert!(initial > 0, "a zero-buffer receiver can accept nothing");
        RxBuffers {
            initial,
            held_cmd: [0; 3],
            held_data: [0; 3],
            pending_cmd: [0; 3],
            pending_data: [0; 3],
        }
    }

    /// Buffer depth per pool.
    pub fn initial(&self) -> u8 {
        self.initial
    }

    /// Account for an arriving packet occupying buffers. Fails with
    /// [`CreditError::BufferOverrun`] when the packet arrives with every
    /// buffer of its pool occupied or pending return — i.e. the far-side
    /// transmitter sent without holding a credit.
    #[cfg_attr(lint, tcc_acquires(rxbuf))]
    pub fn accept(&mut self, pkt: &Packet) -> Result<(), CreditError> {
        let vc = pkt.vc();
        let i = vc.index();
        if self.held_cmd[i] + self.pending_cmd[i] >= self.initial {
            return Err(CreditError::BufferOverrun {
                vc,
                class: CreditClass::Cmd,
            });
        }
        if !pkt.data.is_empty() && self.held_data[i] + self.pending_data[i] >= self.initial {
            return Err(CreditError::BufferOverrun {
                vc,
                class: CreditClass::Data,
            });
        }
        self.held_cmd[i] += 1;
        if !pkt.data.is_empty() {
            self.held_data[i] += 1;
        }
        Ok(())
    }

    /// Fast-lane variant of [`accept`](Self::accept) for the flat wire
    /// shape — a posted packet known to carry data. Identical accounting,
    /// no command inspection or VC dispatch.
    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic, tcc_acquires(rxbuf))]
    pub fn accept_posted_data(&mut self) -> Result<(), CreditError> {
        const P: usize = 0; // VirtualChannel::Posted.index()
        if self.held_cmd[P] + self.pending_cmd[P] >= self.initial {
            return Err(CreditError::BufferOverrun {
                vc: VirtualChannel::Posted,
                class: CreditClass::Cmd,
            });
        }
        if self.held_data[P] + self.pending_data[P] >= self.initial {
            return Err(CreditError::BufferOverrun {
                vc: VirtualChannel::Posted,
                class: CreditClass::Data,
            });
        }
        self.held_cmd[P] += 1;
        self.held_data[P] += 1;
        Ok(())
    }

    /// The receiver finished processing a packet: its buffers become
    /// returnable credits. Fails with [`CreditError::DrainUnderflow`] on
    /// a drain without a matching accept.
    #[cfg_attr(lint, tcc_releases(rxbuf))]
    pub fn drain(&mut self, pkt: &Packet) -> Result<(), CreditError> {
        self.drain_parts(pkt.vc(), !pkt.data.is_empty())
    }

    /// Like [`drain`](Self::drain), but keyed on the packet's (VC, carries
    /// data) shape instead of the packet itself. Event-driven receivers
    /// hand the packet on to the northbridge *before* its buffers free up,
    /// so at drain time only the shape is still around.
    #[cfg_attr(lint, tcc_releases(rxbuf))]
    pub fn drain_parts(&mut self, vc: VirtualChannel, has_data: bool) -> Result<(), CreditError> {
        let i = vc.index();
        self.held_cmd[i] = self.held_cmd[i]
            .checked_sub(1)
            .ok_or(CreditError::DrainUnderflow {
                vc,
                class: CreditClass::Cmd,
            })?;
        self.pending_cmd[i] += 1;
        if has_data {
            self.held_data[i] =
                self.held_data[i]
                    .checked_sub(1)
                    .ok_or(CreditError::DrainUnderflow {
                        vc,
                        class: CreditClass::Data,
                    })?;
            self.pending_data[i] += 1;
        }
        Ok(())
    }

    /// Whether any credits await return.
    pub fn has_pending(&self) -> bool {
        self.pending_cmd.iter().any(|&c| c > 0) || self.pending_data.iter().any(|&d| d > 0)
    }

    /// Harvest up to 3 credits per class into a NOP's credit-return fields.
    pub fn harvest(&mut self) -> CreditReturn {
        let mut ret = CreditReturn::default();
        for i in 0..3 {
            ret.cmd[i] = self.pending_cmd[i].min(3);
            self.pending_cmd[i] -= ret.cmd[i];
            ret.data[i] = self.pending_data[i].min(3);
            self.pending_data[i] -= ret.data[i];
        }
        ret
    }

    pub fn held(&self, vc: VirtualChannel) -> u8 {
        self.held_cmd[vc.index()]
    }

    pub fn held_data(&self, vc: VirtualChannel) -> u8 {
        self.held_data[vc.index()]
    }

    /// Command credits freed but not yet harvested into a NOP.
    pub fn pending(&self, vc: VirtualChannel) -> u8 {
        self.pending_cmd[vc.index()]
    }

    /// Data credits freed but not yet harvested into a NOP.
    pub fn pending_data(&self, vc: VirtualChannel) -> u8 {
        self.pending_data[vc.index()]
    }
}

/// Build the NOP command carrying a [`CreditReturn`].
pub fn nop_for(ret: CreditReturn) -> crate::packet::Command {
    crate::packet::Command::Nop {
        posted_cmd: ret.cmd[VirtualChannel::Posted.index()],
        posted_data: ret.data[VirtualChannel::Posted.index()],
        nonposted_cmd: ret.cmd[VirtualChannel::NonPosted.index()],
        nonposted_data: ret.data[VirtualChannel::NonPosted.index()],
        response_cmd: ret.cmd[VirtualChannel::Response.index()],
        response_data: ret.data[VirtualChannel::Response.index()],
    }
}

/// Extract the [`CreditReturn`] carried by a received NOP.
pub fn return_from_nop(cmd: &crate::packet::Command) -> Option<CreditReturn> {
    match cmd {
        crate::packet::Command::Nop {
            posted_cmd,
            posted_data,
            nonposted_cmd,
            nonposted_data,
            response_cmd,
            response_data,
        } => {
            let mut ret = CreditReturn::default();
            ret.cmd[VirtualChannel::Posted.index()] = *posted_cmd;
            ret.data[VirtualChannel::Posted.index()] = *posted_data;
            ret.cmd[VirtualChannel::NonPosted.index()] = *nonposted_cmd;
            ret.data[VirtualChannel::NonPosted.index()] = *nonposted_data;
            ret.cmd[VirtualChannel::Response.index()] = *response_cmd;
            ret.data[VirtualChannel::Response.index()] = *response_data;
            Some(ret)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn pw() -> Packet {
        Packet::posted_write(0x1000, Bytes::from_static(&[0u8; 64]))
    }

    #[test]
    fn consume_and_release_round_trip() {
        let mut tx = TxCredits::new(2);
        let mut rx = RxBuffers::new(2);
        let p = pw();
        assert!(tx.can_send(&p));
        tx.consume(&p).unwrap();
        rx.accept(&p).unwrap();
        tx.consume(&p).unwrap();
        rx.accept(&p).unwrap();
        assert!(!tx.can_send(&p), "credits exhausted");
        assert_eq!(
            tx.consume(&p),
            Err(CreditError::NoCmdCredit(VirtualChannel::Posted))
        );
        assert_eq!(rx.held(VirtualChannel::Posted), 2);

        rx.drain(&p).unwrap();
        let ret = rx.harvest();
        assert_eq!(ret.cmd[VirtualChannel::Posted.index()], 1);
        tx.release(ret).unwrap();
        assert!(tx.can_send(&p));
    }

    #[test]
    fn data_credit_independent_of_cmd_credit() {
        let mut tx = TxCredits::new(2);
        // A control-only fence consumes a posted command credit but no data.
        let fence = Packet::control(crate::packet::Command::Fence {
            unit: crate::packet::UnitId::HOST,
        });
        tx.consume(&fence).unwrap();
        tx.consume(&fence).unwrap();
        assert_eq!(tx.available_data(VirtualChannel::Posted), 2);
        assert_eq!(tx.available_cmd(VirtualChannel::Posted), 0);
        assert!(!tx.can_send(&pw()));
    }

    #[test]
    fn vcs_do_not_share_credits() {
        let mut tx = TxCredits::new(1);
        tx.consume(&pw()).unwrap();
        // Posted exhausted; a read (non-posted VC) must still pass.
        let rd = Packet::control(crate::packet::Command::RdSized {
            unit: crate::packet::UnitId::HOST,
            addr: 0,
            count: 0,
            pass_pw: false,
            seq_id: 0,
            tag: crate::packet::SrcTag::new(0),
        });
        assert!(tx.can_send(&rd));
        tx.consume(&rd).unwrap();
    }

    #[test]
    fn over_return_rejected_without_effect() {
        let mut tx = TxCredits::new(1);
        let mut ret = CreditReturn::default();
        ret.cmd[0] = 1; // returning a credit that was never consumed
        assert_eq!(
            tx.release(ret),
            Err(CreditError::OverReturn {
                vc: VirtualChannel::Posted,
                class: CreditClass::Cmd,
                returned: 1,
                outstanding: 0,
            })
        );
        // Rejected whole: the pool is unchanged.
        assert_eq!(tx.available_cmd(VirtualChannel::Posted), 1);
    }

    #[test]
    fn partial_over_return_leaves_state_untouched() {
        // cmd return is legal, data return is not: nothing may be applied.
        let mut tx = TxCredits::new(2);
        tx.consume(&pw()).unwrap();
        let mut ret = CreditReturn::default();
        ret.cmd[0] = 1;
        ret.data[0] = 2; // only 1 outstanding
        assert!(matches!(
            tx.release(ret),
            Err(CreditError::OverReturn {
                class: CreditClass::Data,
                ..
            })
        ));
        assert_eq!(tx.available_cmd(VirtualChannel::Posted), 1, "not applied");
    }

    #[test]
    fn buffer_overrun_detected() {
        let mut rx = RxBuffers::new(1);
        let p = pw();
        rx.accept(&p).unwrap();
        assert_eq!(
            rx.accept(&p),
            Err(CreditError::BufferOverrun {
                vc: VirtualChannel::Posted,
                class: CreditClass::Cmd,
            })
        );
        // Still overrun while the credit is pending return (not yet in a NOP).
        rx.drain(&p).unwrap();
        assert!(rx.accept(&p).is_err());
        let _ = rx.harvest();
        assert!(rx.accept(&p).is_ok(), "space after harvest");
    }

    #[test]
    fn drain_underflow_detected() {
        let mut rx = RxBuffers::new(2);
        assert_eq!(
            rx.drain(&pw()),
            Err(CreditError::DrainUnderflow {
                vc: VirtualChannel::Posted,
                class: CreditClass::Cmd,
            })
        );
    }

    #[test]
    fn harvest_caps_at_three_per_nop() {
        let mut rx = RxBuffers::new(8);
        let p = pw();
        for _ in 0..5 {
            rx.accept(&p).unwrap();
            rx.drain(&p).unwrap();
        }
        let first = rx.harvest();
        assert_eq!(first.cmd[0], 3, "NOP carries at most 3 per class");
        assert_eq!(first.data[0], 3);
        assert!(rx.has_pending());
        let second = rx.harvest();
        assert_eq!(second.cmd[0], 2);
        assert!(!rx.has_pending());
    }

    #[test]
    fn nop_encoding_carries_credits() {
        let ret = CreditReturn {
            cmd: [1, 2, 3],
            data: [3, 0, 1],
        };
        let cmd = nop_for(ret);
        let bytes = crate::wire::encode(&cmd);
        let (decoded, _) = crate::wire::decode(&bytes).unwrap();
        assert_eq!(return_from_nop(&decoded), Some(ret));
    }

    #[test]
    fn credit_conservation_under_random_traffic() {
        use tcc_fabric::rng::Xoshiro256;
        let initial = DEFAULT_CREDITS;
        let mut tx = TxCredits::new(initial);
        let mut rx = RxBuffers::new(initial);
        let mut rng = Xoshiro256::seeded(99);
        let p = pw();
        let mut in_receiver: Vec<Packet> = Vec::new();
        for _ in 0..10_000 {
            match rng.below(3) {
                0 => {
                    if tx.consume(&p).is_ok() {
                        rx.accept(&p).unwrap();
                        in_receiver.push(p.clone());
                    }
                }
                1 => {
                    if let Some(q) = in_receiver.pop() {
                        rx.drain(&q).unwrap();
                    }
                }
                _ => {
                    let ret = rx.harvest();
                    tx.release(ret).unwrap();
                }
            }
            // Conservation: available + held + pending == initial.
            let vc = VirtualChannel::Posted;
            assert_eq!(tx.available_cmd(vc) + rx.held(vc) + rx.pending(vc), initial);
            assert_eq!(
                tx.available_data(vc) + rx.held_data(vc) + rx.pending_data(vc),
                initial
            );
        }
    }
}
