//! HyperTransport packet model.
//!
//! Packets follow the HyperTransport I/O Link Specification rev 3.10
//! control-packet formats closely enough that every field the TCCluster
//! mechanism depends on (command class, UnitID, SrcTag, SeqID, PassPW,
//! 40-bit address, dword count) is encoded at its real position and width.
//! Control packets are 4 or 8 bytes; a data packet of 4..=64 bytes follows
//! sized writes and read responses.

use bytes::Bytes;
use core::fmt;

/// 6-bit HT command opcodes (HT I/O Link Spec rev 3.10, command table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    Nop = 0x00,
    Flush = 0x02,
    /// Sized write; low bits select posted/dword variants at encode time.
    WrSized = 0x08,
    /// Sized read.
    RdSized = 0x10,
    RdResponse = 0x30,
    TgtDone = 0x33,
    Broadcast = 0x3A,
    Fence = 0x3C,
    Atomic = 0x3D,
}

/// The three HyperTransport virtual channels.
///
/// Deadlock freedom of the fabric rests on keeping these independent: a
/// blocked response must never prevent a posted write from making progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VirtualChannel {
    Posted,
    NonPosted,
    Response,
}

impl VirtualChannel {
    pub const ALL: [VirtualChannel; 3] = [
        VirtualChannel::Posted,
        VirtualChannel::NonPosted,
        VirtualChannel::Response,
    ];

    pub fn index(self) -> usize {
        match self {
            VirtualChannel::Posted => 0,
            VirtualChannel::NonPosted => 1,
            VirtualChannel::Response => 2,
        }
    }
}

impl fmt::Display for VirtualChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VirtualChannel::Posted => "PC",
            VirtualChannel::NonPosted => "NPC",
            VirtualChannel::Response => "RC",
        };
        f.write_str(s)
    }
}

/// 5-bit transaction tag used to match responses to outstanding non-posted
/// requests. The table holding these is per-NodeID in the northbridge —
/// which is exactly why TCCluster cannot route responses between nodes and
/// must restrict itself to posted writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SrcTag(pub u8);

impl SrcTag {
    /// The response-matching table holds 32 tags (5 bits).
    pub const LIMIT: u8 = 32;

    pub fn new(v: u8) -> Self {
        assert!(v < Self::LIMIT, "SrcTag out of range: {v}");
        SrcTag(v)
    }
}

/// 5-bit unit identifier on a non-coherent chain (0 = host bridge).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct UnitId(pub u8);

impl UnitId {
    pub const HOST: UnitId = UnitId(0);
}

/// A decoded HyperTransport command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Flow-control NOP carrying per-VC credit returns (2 bits each).
    Nop {
        posted_cmd: u8,
        posted_data: u8,
        nonposted_cmd: u8,
        nonposted_data: u8,
        response_cmd: u8,
        response_data: u8,
    },
    /// Sized write request. `posted` selects the posted channel — the only
    /// request kind a TCCluster link can carry.
    WrSized {
        posted: bool,
        unit: UnitId,
        addr: u64,
        /// Number of dwords - 1 (0..=15, so 4..=64 bytes).
        count: u8,
        pass_pw: bool,
        seq_id: u8,
        /// SrcTag (non-posted writes only; posted writes carry none).
        tag: Option<SrcTag>,
    },
    /// Sized read request — always non-posted, always needs a tag.
    RdSized {
        unit: UnitId,
        addr: u64,
        count: u8,
        pass_pw: bool,
        seq_id: u8,
        tag: SrcTag,
    },
    /// Read response carrying data, matched by tag.
    RdResponse {
        unit: UnitId,
        tag: SrcTag,
        error: bool,
    },
    /// Target-done response completing a non-posted write.
    TgtDone {
        unit: UnitId,
        tag: SrcTag,
        error: bool,
    },
    /// Broadcast (used for interrupts/system management — must be filtered
    /// off TCCluster links).
    Broadcast { unit: UnitId, addr: u64 },
    /// Fence — orders posted writes in the posted channel.
    Fence { unit: UnitId },
    /// Flush — pushes posted writes to destination (non-posted).
    Flush { unit: UnitId, tag: SrcTag },
}

impl Command {
    pub fn opcode(&self) -> Opcode {
        match self {
            Command::Nop { .. } => Opcode::Nop,
            Command::WrSized { .. } => Opcode::WrSized,
            Command::RdSized { .. } => Opcode::RdSized,
            Command::RdResponse { .. } => Opcode::RdResponse,
            Command::TgtDone { .. } => Opcode::TgtDone,
            Command::Broadcast { .. } => Opcode::Broadcast,
            Command::Fence { .. } => Opcode::Fence,
            Command::Flush { .. } => Opcode::Flush,
        }
    }

    /// Which virtual channel the command travels in.
    pub fn vc(&self) -> VirtualChannel {
        match self {
            Command::Nop { .. } => VirtualChannel::Posted, // info packet, uses no credit
            Command::WrSized { posted: true, .. } => VirtualChannel::Posted,
            Command::WrSized { posted: false, .. } => VirtualChannel::NonPosted,
            Command::RdSized { .. } => VirtualChannel::NonPosted,
            Command::RdResponse { .. } | Command::TgtDone { .. } => VirtualChannel::Response,
            Command::Broadcast { .. } => VirtualChannel::Posted,
            Command::Fence { .. } => VirtualChannel::Posted,
            Command::Flush { .. } => VirtualChannel::NonPosted,
        }
    }

    /// Whether the command expects a response.
    pub fn needs_response(&self) -> bool {
        matches!(
            self,
            Command::WrSized { posted: false, .. }
                | Command::RdSized { .. }
                | Command::Flush { .. }
        )
    }

    /// Control-packet size on the wire in bytes (4 for short commands,
    /// 8 for addressed requests).
    pub fn header_bytes(&self) -> u64 {
        match self {
            Command::Nop { .. }
            | Command::RdResponse { .. }
            | Command::TgtDone { .. }
            | Command::Fence { .. }
            | Command::Flush { .. } => 4,
            _ => 8,
        }
    }
}

/// A full packet: command plus optional data payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    pub cmd: Command,
    pub data: Bytes,
}

/// Maximum data payload of one HT packet.
pub const MAX_DATA: usize = 64;

impl Packet {
    pub fn new(cmd: Command, data: Bytes) -> Self {
        match &cmd {
            Command::WrSized { count, .. } => {
                assert!(data.len() <= MAX_DATA, "data exceeds 64B");
                assert!(!data.is_empty(), "sized write without data");
                // A sized-byte/dword write's count field must cover the data.
                let dwords = data.len().div_ceil(4);
                assert_eq!(
                    *count as usize + 1,
                    dwords,
                    "count field does not match payload dwords"
                );
            }
            Command::RdResponse { .. } => {
                assert!(!data.is_empty() && data.len() <= MAX_DATA);
            }
            _ => assert!(data.is_empty(), "command carries no data"),
        }
        Packet { cmd, data }
    }

    pub fn control(cmd: Command) -> Self {
        Packet::new(cmd, Bytes::new())
    }

    /// Posted write helper: the bread-and-butter TCCluster packet.
    pub fn posted_write(addr: u64, data: Bytes) -> Self {
        let count = (data.len().div_ceil(4) - 1) as u8;
        Packet::new(
            Command::WrSized {
                posted: true,
                unit: UnitId::HOST,
                addr,
                count,
                pass_pw: false,
                seq_id: 0,
                tag: None,
            },
            data,
        )
    }

    /// Total wire footprint: header + data (CRC is accounted per-window by
    /// the link layer, not per-packet).
    pub fn wire_bytes(&self) -> u64 {
        self.cmd.header_bytes() + self.data.len() as u64
    }

    pub fn vc(&self) -> VirtualChannel {
        self.cmd.vc()
    }

    /// Target address for routable commands.
    pub fn addr(&self) -> Option<u64> {
        match &self.cmd {
            Command::WrSized { addr, .. }
            | Command::RdSized { addr, .. }
            | Command::Broadcast { addr, .. } => Some(*addr),
            _ => None,
        }
    }
}

/// HT addresses are 40 bits on the link (the K10 northbridge extends them
/// to 48 internally; the wire format carries `addr[39:2]`).
pub const ADDR_BITS: u32 = 40;
pub const ADDR_MASK: u64 = (1 << ADDR_BITS) - 1;

/// The dominant TCCluster packet in fixed shape: a full-cacheline posted
/// write from the host bridge, payload inline. Every field a general
/// [`Packet`] would carry for this shape is a constant here — command
/// class, UnitID, dword count, PassPW, SeqID — so the fast lane never
/// pattern-matches a [`Command`] or chases a [`Bytes`] refcount. The two
/// forms convert losslessly at the boundaries; retry/CRC/ordering and the
/// monitors keep operating on the general form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlatWire {
    pub addr: u64,
    pub data: [u8; FlatWire::DATA_BYTES],
}

impl FlatWire {
    /// Full cacheline payload — the only size the fast lane carries.
    pub const DATA_BYTES: usize = 64;
    /// Addressed request header (same as the general form's 8 bytes).
    pub const HEADER_BYTES: u64 = 8;
    /// Total wire footprint: header + data.
    pub const WIRE_BYTES: u64 = Self::HEADER_BYTES + Self::DATA_BYTES as u64;
    /// Dword count field (16 dwords - 1).
    pub const COUNT: u8 = 15;
    /// A posted write travels in the posted channel, always.
    pub const VC: VirtualChannel = VirtualChannel::Posted;

    pub fn new(addr: u64, data: [u8; Self::DATA_BYTES]) -> Self {
        FlatWire { addr, data }
    }

    /// Lossless narrowing: `Some` exactly when the packet is the flat
    /// shape ([`Packet::flat_addr`] on the same packet returns `Some`).
    pub fn from_packet(pkt: &Packet) -> Option<FlatWire> {
        let addr = pkt.flat_addr()?;
        let mut data = [0u8; Self::DATA_BYTES];
        data.copy_from_slice(&pkt.data);
        Some(FlatWire { addr, data })
    }

    /// Lossless widening back to the general form. Allocates a fresh
    /// payload; boundary crossings that own a [`PayloadPool`] should
    /// prefer its recycled variant.
    pub fn to_packet(&self) -> Packet {
        Packet::posted_write(self.addr, Bytes::copy_from_slice(&self.data))
    }
}

impl Packet {
    /// Cheap fast-lane classifier: `Some(addr)` iff this packet is
    /// exactly the [`FlatWire`] shape — a 64 B host-bridge posted write
    /// with default ordering fields. One comparison chain, no clone.
    pub fn flat_addr(&self) -> Option<u64> {
        match self.cmd {
            Command::WrSized {
                posted: true,
                unit: UnitId::HOST,
                addr,
                count: FlatWire::COUNT,
                pass_pw: false,
                seq_id: 0,
                tag: None,
            } if self.data.len() == FlatWire::DATA_BYTES => Some(addr),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vc_assignment_matches_spec() {
        let pw = Packet::posted_write(0x1000, Bytes::from_static(&[0u8; 64]));
        assert_eq!(pw.vc(), VirtualChannel::Posted);
        assert!(!pw.cmd.needs_response());

        let rd = Command::RdSized {
            unit: UnitId::HOST,
            addr: 0x2000,
            count: 0,
            pass_pw: false,
            seq_id: 0,
            tag: SrcTag::new(3),
        };
        assert_eq!(rd.vc(), VirtualChannel::NonPosted);
        assert!(rd.needs_response());

        let resp = Command::RdResponse {
            unit: UnitId::HOST,
            tag: SrcTag::new(3),
            error: false,
        };
        assert_eq!(resp.vc(), VirtualChannel::Response);
    }

    #[test]
    fn header_sizes() {
        assert_eq!(Command::Fence { unit: UnitId::HOST }.header_bytes(), 4);
        let pw = Packet::posted_write(0x0, Bytes::from_static(&[0u8; 8]));
        assert_eq!(pw.cmd.header_bytes(), 8);
        assert_eq!(pw.wire_bytes(), 16);
    }

    #[test]
    fn wire_bytes_for_full_cacheline() {
        let pw = Packet::posted_write(0x0, Bytes::from_static(&[0xAA; 64]));
        assert_eq!(pw.wire_bytes(), 72, "8B command + 64B data");
    }

    #[test]
    #[should_panic(expected = "data exceeds 64B")]
    fn oversized_payload_rejected() {
        Packet::new(
            Command::WrSized {
                posted: true,
                unit: UnitId::HOST,
                addr: 0,
                count: 15,
                pass_pw: false,
                seq_id: 0,
                tag: None,
            },
            Bytes::from(vec![0u8; 65]),
        );
    }

    #[test]
    #[should_panic(expected = "count field")]
    fn count_mismatch_rejected() {
        Packet::new(
            Command::WrSized {
                posted: true,
                unit: UnitId::HOST,
                addr: 0,
                count: 3,
                pass_pw: false,
                seq_id: 0,
                tag: None,
            },
            Bytes::from(vec![0u8; 64]),
        );
    }

    #[test]
    #[should_panic(expected = "SrcTag out of range")]
    fn srctag_range_enforced() {
        SrcTag::new(32);
    }

    #[test]
    fn flatwire_roundtrip_is_lossless() {
        let mut payload = [0u8; 64];
        for (i, b) in payload.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37).wrapping_add(11);
        }
        let pkt = Packet::posted_write(0x1_2345_67C0, Bytes::copy_from_slice(&payload));
        let flat = FlatWire::from_packet(&pkt).expect("64B posted write is flat");
        assert_eq!(flat.addr, 0x1_2345_67C0);
        assert_eq!(flat.data, payload);
        let back = flat.to_packet();
        assert_eq!(back, pkt, "widening must reproduce the packet exactly");
        assert_eq!(back.wire_bytes(), FlatWire::WIRE_BYTES);
        assert_eq!(back.vc(), FlatWire::VC);
    }

    #[test]
    fn flat_classifier_rejects_every_non_flat_shape() {
        // Short posted write: right command, wrong size.
        let short = Packet::posted_write(0x1000, Bytes::from_static(&[0u8; 8]));
        assert_eq!(short.flat_addr(), None);
        // Non-posted 64B write.
        let nonposted = Packet::new(
            Command::WrSized {
                posted: false,
                unit: UnitId::HOST,
                addr: 0x1000,
                count: 15,
                pass_pw: false,
                seq_id: 0,
                tag: Some(SrcTag::new(1)),
            },
            Bytes::from_static(&[0u8; 64]),
        );
        assert_eq!(nonposted.flat_addr(), None);
        // PassPW set: ordering semantics differ, must take the slow path.
        let pass_pw = Packet::new(
            Command::WrSized {
                posted: true,
                unit: UnitId::HOST,
                addr: 0x1000,
                count: 15,
                pass_pw: true,
                seq_id: 0,
                tag: None,
            },
            Bytes::from_static(&[0u8; 64]),
        );
        assert_eq!(pass_pw.flat_addr(), None);
        // Non-host UnitID.
        let devwrite = Packet::new(
            Command::WrSized {
                posted: true,
                unit: UnitId(3),
                addr: 0x1000,
                count: 15,
                pass_pw: false,
                seq_id: 0,
                tag: None,
            },
            Bytes::from_static(&[0u8; 64]),
        );
        assert_eq!(devwrite.flat_addr(), None);
        // Control packets carry no address at all.
        let fence = Packet::control(Command::Fence { unit: UnitId::HOST });
        assert_eq!(fence.flat_addr(), None);
        // The canonical storm packet IS flat.
        let flat = Packet::posted_write(0x2000, Bytes::from_static(&[0u8; 64]));
        assert_eq!(flat.flat_addr(), Some(0x2000));
        assert!(FlatWire::from_packet(&flat).is_some());
    }

    #[test]
    fn nonposted_write_needs_response() {
        let cmd = Command::WrSized {
            posted: false,
            unit: UnitId::HOST,
            addr: 0,
            count: 0,
            pass_pw: false,
            seq_id: 0,
            tag: Some(SrcTag::new(0)),
        };
        assert!(cmd.needs_response());
        assert_eq!(cmd.vc(), VirtualChannel::NonPosted);
    }
}
