//! # tcc-ht — HyperTransport protocol model
//!
//! Everything TCCluster needs from the HyperTransport I/O Link Specification
//! rev 3.10, built from scratch:
//!
//! * [`packet`] — commands, virtual channels, SrcTags, packet wire sizes.
//! * [`wire`] — binary encode/decode of 4- and 8-byte control packets.
//! * [`flow`] — per-VC credit-based flow control with NOP credit returns.
//! * [`link`] — physical-layer configs (HT200…HT3), serialisation, VC
//!   arbitration, CRC error injection and link-level retry.
//! * [`init`] — the link-initialisation FSM, including the force-ncHT debug
//!   register whose abuse is the heart of the TCCluster mechanism.
//! * [`crc`] — the per-window CRC-32 and its bandwidth derate.
//! * [`ordering`] — the I/O ordering rules (PassPW, Fence) and a FIFO
//!   delivery checker.
//! * [`retry`] — the HT3 link-level retry protocol: per-frame CRC +
//!   sequence numbers, cumulative acks, nak-triggered Go-Back-N replay.
//! * [`fatal`] — the reviewed protocol-violation funnel the hot path
//!   aborts through (see the `panic-freedom` pass in tcc-analyze).

#![forbid(unsafe_code)]

pub mod crc;
pub mod fatal;
pub mod flow;
pub mod init;
pub mod link;
pub mod ordering;
pub mod packet;
pub mod retry;
pub mod wire;

pub use flow::{CreditClass, CreditError, CreditReturn, RxBuffers, TxCredits};
pub use init::{ActiveLink, Identity, LinkEndpoint, LinkRegs, LinkState};
pub use link::{Delivery, LinkConfig, LinkRx, LinkStats, LinkTx};
pub use packet::{Command, Opcode, Packet, SrcTag, UnitId, VirtualChannel, MAX_DATA};
