//! The physical link: width, frequency, serialisation and the transmit
//! machinery combining virtual-channel queues, credits and CRC/retry.
//!
//! A [`LinkConfig`] captures what the paper calls "HT800 / 16 bit": the link
//! clock in MHz (data moves on both edges, so bit rate per lane is twice the
//! clock) and the lane count per direction.

use crate::crc;
use crate::flow::{
    nop_for, return_from_nop, CreditError, CreditReturn, RxBuffers, TxCredits, DEFAULT_CREDITS,
};
use crate::packet::{Packet, VirtualChannel};
use std::collections::VecDeque;
use tcc_fabric::channel::Channel;
use tcc_fabric::time::{Duration, SimTime};
use tcc_fabric::Xoshiro256;

/// Physical-layer configuration of one HT link direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkConfig {
    /// Link clock in MHz; "HT800" means 800 MHz (1.6 Gbit/s per lane DDR).
    pub clock_mhz: u32,
    /// Lane count per direction (8, 16 or 32).
    pub width_bits: u8,
    /// One-hop propagation + forwarding latency. The paper measures
    /// ~50 ns per hop on the Opteron fabric.
    pub hop_latency: Duration,
}

impl LinkConfig {
    /// The 200 MHz / 8-bit state every link powers up in after cold reset
    /// (HT spec: links always train at 200 MHz, 8 bits wide).
    pub const BOOT: LinkConfig = LinkConfig {
        clock_mhz: 200,
        width_bits: 8,
        hop_latency: Duration(50_000),
    };

    /// The paper's prototype: HT800 over the HTX cable, 16 bits wide
    /// (1.6 Gbit/s/lane; cable signal integrity barred higher rates).
    pub const PROTOTYPE: LinkConfig = LinkConfig {
        clock_mhz: 800,
        width_bits: 16,
        hop_latency: Duration(50_000),
    };

    /// Full-speed on-board HT3: 2.6 GHz, 16 bit (5.2 Gbit/s/lane,
    /// 10.4 GB/s raw per direction).
    pub const HT3_FULL: LinkConfig = LinkConfig {
        clock_mhz: 2600,
        width_bits: 16,
        hop_latency: Duration(50_000),
    };

    /// Raw unidirectional bandwidth in bytes per second (DDR: two transfers
    /// per clock).
    pub fn raw_bytes_per_sec(&self) -> u64 {
        self.clock_mhz as u64 * 1_000_000 * 2 * self.width_bits as u64 / 8
    }

    /// Effective bandwidth after the periodic CRC windows.
    pub fn effective_bytes_per_sec(&self) -> u64 {
        crc::derate_bandwidth(self.raw_bytes_per_sec())
    }

    /// Per-lane bit rate in Gbit/s (the unit the paper quotes).
    pub fn gbit_per_lane(&self) -> f64 {
        self.clock_mhz as f64 * 2.0 / 1000.0
    }

    /// Build the serialisation channel for this configuration.
    pub fn channel(&self) -> Channel {
        Channel::new(self.hop_latency, self.effective_bytes_per_sec())
    }
}

/// Statistics of one link direction.
#[derive(Debug, Default, Clone)]
pub struct LinkStats {
    pub packets_sent: u64,
    pub data_bytes_sent: u64,
    pub wire_bytes_sent: u64,
    pub nops_sent: u64,
    pub crc_errors: u64,
    pub retries: u64,
    pub stalls_no_credit: u64,
}

/// One direction of a link: VC queues in front of credits in front of the
/// serialising channel.
#[derive(Debug)]
pub struct LinkTx {
    pub config: LinkConfig,
    channel: Channel,
    credits: TxCredits,
    queues: [VecDeque<Packet>; 3],
    /// Error injection: probability a transmitted packet's CRC window is
    /// corrupted (retry mode resends it).
    pub crc_error_rate: f64,
    rng: Xoshiro256,
    pub stats: LinkStats,
}

/// A packet delivered out of a [`LinkTx`], with its arrival time.
#[derive(Debug, Clone)]
pub struct Delivery {
    pub packet: Packet,
    pub arrival: SimTime,
}

impl LinkTx {
    pub fn new(config: LinkConfig, seed: u64) -> Self {
        LinkTx {
            config,
            channel: config.channel(),
            credits: TxCredits::new(DEFAULT_CREDITS),
            queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            crc_error_rate: 0.0,
            rng: Xoshiro256::seeded(seed),
            stats: LinkStats::default(),
        }
    }

    /// Reconfigure the physical layer (warm reset applies new parameters).
    /// Queued packets and in-flight state are dropped — a warm reset
    /// reinitialises the link.
    pub fn warm_reset(&mut self, config: LinkConfig) {
        self.config = config;
        self.channel = config.channel();
        self.credits = TxCredits::new(DEFAULT_CREDITS);
        for q in &mut self.queues {
            q.clear();
        }
    }

    /// Queue a packet for transmission.
    pub fn enqueue(&mut self, pkt: Packet) {
        self.queues[pkt.vc().index()].push_back(pkt);
    }

    pub fn queued(&self, vc: VirtualChannel) -> usize {
        self.queues[vc.index()].len()
    }

    /// Nothing waiting on any VC: a pump would transmit nothing and (with
    /// no fronts to stall) record nothing, so callers may skip it.
    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]
    pub fn is_idle(&self) -> bool {
        self.queues.iter().all(|q| q.is_empty())
    }

    pub fn credits(&self) -> &TxCredits {
        &self.credits
    }

    /// Apply a credit return received from the far side. Fails when the
    /// far side returns credits that were never consumed — a protocol
    /// violation by the receiver.
    #[cfg_attr(lint, tcc_linear(credit), tcc_releases(credit))]
    pub fn credit_return(&mut self, ret: CreditReturn) -> Result<(), CreditError> {
        self.credits.release(ret)
    }

    /// Try to transmit queued packets at `now`. Returns the deliveries that
    /// entered the wire; each carries its arrival time at the far side.
    ///
    /// Arbitration is round-robin across VCs, but a packet blocked on
    /// credits only blocks its own VC — that independence is what keeps the
    /// fabric deadlock-free.
    pub fn pump(&mut self, now: SimTime) -> Vec<Delivery> {
        let mut out = Vec::new();
        self.pump_into(now, &mut out);
        out
    }

    /// Enqueue one packet and pump — the per-flush hot path. When every
    /// VC queue is empty and credits admit the packet, it goes straight
    /// to the wire without the queue round-trip; the transfer order (and
    /// therefore all timing) is identical to `enqueue` + `pump_into`.
    // tcc_transfer_ok: a consumed credit stays held while the packet is
    // on the wire; the far side hands it back through `credit_return`.
    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]
    #[cfg_attr(lint, tcc_linear(credit), tcc_transfer_ok)]
    pub fn send_into(&mut self, now: SimTime, pkt: Packet, out: &mut Vec<Delivery>) {
        if self.queues.iter().all(|q| q.is_empty()) && self.credits.consume(&pkt).is_ok() {
            out.push(self.put_on_wire(now, pkt));
            return;
        }
        self.enqueue(pkt);
        self.pump_into(now, out);
    }

    /// Like [`pump`](Self::pump), but appends into a caller-provided
    /// scratch vector — the store-issue hot path reuses one per node so
    /// pumping allocates nothing in steady state.
    // tcc_transfer_ok: every credit consumed here rides out with a
    // transmitted packet and returns via the far side's NOPs.
    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]
    #[cfg_attr(lint, tcc_linear(credit), tcc_transfer_ok)]
    pub fn pump_into(&mut self, now: SimTime, out: &mut Vec<Delivery>) {
        loop {
            let mut sent_any = false;
            for vc in VirtualChannel::ALL {
                let q = &mut self.queues[vc.index()];
                let Some(front) = q.front() else { continue };
                if self.credits.consume(front).is_err() {
                    self.stats.stalls_no_credit += 1;
                    continue;
                }
                // Credits are consumed; the front must leave the queue.
                let Some(pkt) = q.pop_front() else { break };
                out.push(self.put_on_wire(now, pkt));
                sent_any = true;
            }
            if !sent_any {
                break;
            }
        }
    }

    /// Transmit a NOP carrying `ret` (NOPs bypass credit checks — they are
    /// info packets and always admissible).
    pub fn send_nop(&mut self, now: SimTime, ret: CreditReturn) -> Delivery {
        let pkt = Packet::control(nop_for(ret));
        self.stats.nops_sent += 1;
        self.put_on_wire(now, pkt)
    }

    fn put_on_wire(&mut self, now: SimTime, pkt: Packet) -> Delivery {
        let mut wire = pkt.wire_bytes();
        // Error injection with link-level retry: a corrupted window costs
        // one full resend of the packet plus a resynchronisation gap.
        while self.crc_error_rate > 0.0 && self.rng.chance(self.crc_error_rate) {
            self.stats.crc_errors += 1;
            self.stats.retries += 1;
            self.channel.transfer(now, wire);
            wire = pkt.wire_bytes();
        }
        let t = self.channel.transfer(now, wire);
        self.stats.packets_sent += 1;
        self.stats.data_bytes_sent += pkt.data.len() as u64;
        self.stats.wire_bytes_sent += wire;
        Delivery {
            packet: pkt,
            arrival: t.arrival,
        }
    }

    /// Earliest time the wire is free (for schedulers).
    pub fn next_free(&self) -> SimTime {
        self.channel.next_free()
    }
}

/// Receiver side of a link direction: buffer accounting + credit harvesting.
#[derive(Debug)]
pub struct LinkRx {
    buffers: RxBuffers,
    pub packets_received: u64,
    pub bytes_received: u64,
}

impl LinkRx {
    /// A receiver matching [`DEFAULT_CREDITS`]-deep transmitters.
    pub fn new() -> Self {
        Self::with_depth(DEFAULT_CREDITS)
    }

    /// A receiver with an explicit buffer depth per pool; must match the
    /// initial credits of the paired [`LinkTx`].
    pub fn with_depth(initial: u8) -> Self {
        LinkRx {
            buffers: RxBuffers::new(initial),
            packets_received: 0,
            bytes_received: 0,
        }
    }

    /// Accept an arriving packet. If it is a NOP, the carried credit return
    /// is extracted and handed back for the *transmit* side of this node to
    /// apply; NOPs occupy no buffers. A non-NOP arriving with every buffer
    /// of its pool occupied means the far side sent without a credit.
    // tcc_transfer_ok: an accepted packet occupies its buffer until the
    // consumer drains it — the hold outlives this call by design.
    #[cfg_attr(lint, tcc_linear(rxbuf), tcc_transfer_ok, tcc_acquires(rxbuf))]
    pub fn accept(&mut self, pkt: &Packet) -> Result<Option<CreditReturn>, CreditError> {
        if let Some(ret) = return_from_nop(&pkt.cmd) {
            return Ok(Some(ret));
        }
        self.buffers.accept(pkt)?;
        self.packets_received += 1;
        self.bytes_received += pkt.data.len() as u64;
        Ok(None)
    }

    /// Fast-lane accept for a flat (64 B posted-write) packet the caller
    /// already classified via [`Packet::flat_addr`]: skips the NOP probe
    /// and the command/VC dispatch. Accounting is byte-identical to
    /// [`accept`](Self::accept) on the same packet.
    // tcc_transfer_ok: same hold discipline as `accept` — the buffer is
    // released later by `drain_parts` once the packet is consumed.
    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]
    #[cfg_attr(lint, tcc_linear(rxbuf), tcc_transfer_ok, tcc_acquires(rxbuf))]
    pub fn accept_flat(&mut self) -> Result<(), CreditError> {
        self.buffers.accept_posted_data()?;
        self.packets_received += 1;
        self.bytes_received += crate::packet::FlatWire::DATA_BYTES as u64;
        Ok(())
    }

    /// Mark a packet processed; its buffers become returnable credits.
    #[cfg_attr(lint, tcc_linear(rxbuf), tcc_releases(rxbuf))]
    pub fn drain(&mut self, pkt: &Packet) -> Result<(), CreditError> {
        self.buffers.drain(pkt)
    }

    /// Like [`drain`](Self::drain), keyed on the packet's (VC, carries
    /// data) shape — for receivers that consumed the packet before its
    /// buffers were released.
    #[cfg_attr(lint, tcc_linear(rxbuf), tcc_releases(rxbuf))]
    pub fn drain_parts(&mut self, vc: VirtualChannel, has_data: bool) -> Result<(), CreditError> {
        self.buffers.drain_parts(vc, has_data)
    }

    /// Harvest pending credits for the next outbound NOP.
    pub fn harvest(&mut self) -> CreditReturn {
        self.buffers.harvest()
    }

    pub fn has_pending_credits(&self) -> bool {
        self.buffers.has_pending()
    }

    /// Buffer-occupancy state, for conservation audits.
    pub fn buffers(&self) -> &RxBuffers {
        &self.buffers
    }
}

impl Default for LinkRx {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn pw64(addr: u64) -> Packet {
        Packet::posted_write(addr, Bytes::from_static(&[0u8; 64]))
    }

    #[test]
    fn bandwidth_of_paper_configs() {
        // Boot: 200 MHz DDR × 8 bit = 400 MB/s raw.
        assert_eq!(LinkConfig::BOOT.raw_bytes_per_sec(), 400_000_000);
        // Prototype: 800 MHz DDR × 16 bit = 3.2 GB/s raw; 1.6 Gbit/lane.
        assert_eq!(LinkConfig::PROTOTYPE.raw_bytes_per_sec(), 3_200_000_000);
        assert!((LinkConfig::PROTOTYPE.gbit_per_lane() - 1.6).abs() < 1e-9);
        // Full HT3: 10.4 GB/s raw per direction.
        assert_eq!(LinkConfig::HT3_FULL.raw_bytes_per_sec(), 10_400_000_000);
        assert!((LinkConfig::HT3_FULL.gbit_per_lane() - 5.2).abs() < 1e-9);
    }

    #[test]
    fn effective_includes_crc_derate() {
        let eff = LinkConfig::PROTOTYPE.effective_bytes_per_sec();
        assert!(eff < 3_200_000_000);
        assert!(eff > 3_170_000_000);
    }

    #[test]
    fn transmit_and_deliver() {
        let mut tx = LinkTx::new(LinkConfig::PROTOTYPE, 1);
        tx.enqueue(pw64(0x1000));
        let out = tx.pump(SimTime::ZERO);
        assert_eq!(out.len(), 1);
        // 72 wire bytes at ~3.175 GB/s ≈ 22.7 ns + 50 ns hop.
        let ns = out[0].arrival.nanos();
        assert!((ns - 72.7).abs() < 0.5, "arrival = {ns} ns");
    }

    #[test]
    fn credits_stall_fourth_packet_then_recover() {
        let mut tx = LinkTx::new(LinkConfig::PROTOTYPE, 2);
        let mut rx = LinkRx::new();
        for i in 0..(DEFAULT_CREDITS as u64 + 4) {
            tx.enqueue(pw64(0x1000 + i * 64));
        }
        let sent = tx.pump(SimTime::ZERO);
        assert_eq!(sent.len(), DEFAULT_CREDITS as usize, "credit-limited");
        assert!(tx.stats.stalls_no_credit > 0);
        // Receiver drains everything and returns credits.
        for d in &sent {
            assert!(rx.accept(&d.packet).unwrap().is_none());
            rx.drain(&d.packet).unwrap();
        }
        while rx.has_pending_credits() {
            tx.credit_return(rx.harvest()).unwrap();
        }
        let rest = tx.pump(SimTime(10_000_000));
        assert_eq!(rest.len(), 4);
    }

    #[test]
    fn accept_flat_matches_general_accept() {
        let mut general = LinkRx::new();
        let mut flat = LinkRx::new();
        let pkt = pw64(0x40);
        assert!(general.accept(&pkt).unwrap().is_none());
        flat.accept_flat().unwrap();
        assert_eq!(general.packets_received, flat.packets_received);
        assert_eq!(general.bytes_received, flat.bytes_received);
        assert_eq!(
            format!("{:?}", general.buffers()),
            format!("{:?}", flat.buffers()),
            "identical buffer accounting"
        );
        general.drain(&pkt).unwrap();
        flat.drain_parts(VirtualChannel::Posted, true).unwrap();
        assert_eq!(general.harvest(), flat.harvest());
        // Overrun behaves identically: exhaust the posted pool.
        for _ in 0..DEFAULT_CREDITS {
            general.accept(&pkt).unwrap();
            flat.accept_flat().unwrap();
        }
        assert_eq!(
            general.accept(&pkt).unwrap_err(),
            flat.accept_flat().unwrap_err()
        );
    }

    #[test]
    fn nop_round_trip_returns_credits() {
        let mut a_tx = LinkTx::new(LinkConfig::PROTOTYPE, 3);
        let mut b_rx = LinkRx::new();
        let mut b_tx = LinkTx::new(LinkConfig::PROTOTYPE, 4);

        a_tx.enqueue(pw64(0));
        let d = a_tx.pump(SimTime::ZERO).remove(0);
        assert!(b_rx.accept(&d.packet).unwrap().is_none());
        b_rx.drain(&d.packet).unwrap();
        let nop = b_tx.send_nop(d.arrival, b_rx.harvest());
        // Back at A: extract the credit return.
        let mut a_rx = LinkRx::new();
        let ret = a_rx
            .accept(&nop.packet)
            .unwrap()
            .expect("NOP carries credits");
        a_tx.credit_return(ret).unwrap();
        assert_eq!(
            a_tx.credits().available_cmd(VirtualChannel::Posted),
            DEFAULT_CREDITS
        );
    }

    #[test]
    fn blocked_posted_does_not_block_response() {
        let mut tx = LinkTx::new(LinkConfig::PROTOTYPE, 5);
        // Exhaust posted credits.
        for i in 0..DEFAULT_CREDITS as u64 + 1 {
            tx.enqueue(pw64(i * 64));
        }
        tx.pump(SimTime::ZERO);
        assert_eq!(tx.queued(VirtualChannel::Posted), 1);
        // A response must still go through.
        tx.enqueue(Packet::control(crate::packet::Command::TgtDone {
            unit: crate::packet::UnitId::HOST,
            tag: crate::packet::SrcTag::new(1),
            error: false,
        }));
        let out = tx.pump(SimTime(1_000_000));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].packet.vc(), VirtualChannel::Response);
    }

    #[test]
    fn warm_reset_applies_new_speed() {
        let mut tx = LinkTx::new(LinkConfig::BOOT, 6);
        tx.enqueue(pw64(0));
        tx.pump(SimTime::ZERO);
        tx.warm_reset(LinkConfig::PROTOTYPE);
        assert_eq!(tx.config.clock_mhz, 800);
        assert_eq!(tx.queued(VirtualChannel::Posted), 0, "queues dropped");
        // Speed visibly changed: a 64B packet serialises 8x faster.
        tx.enqueue(pw64(0));
        let d = tx.pump(SimTime::ZERO).remove(0);
        assert!(d.arrival.nanos() < 80.0);
    }

    #[test]
    fn crc_errors_cost_retries_but_deliver() {
        let mut tx = LinkTx::new(LinkConfig::PROTOTYPE, 7);
        tx.crc_error_rate = 0.3;
        let mut deliveries = 0;
        for i in 0..200u64 {
            tx.enqueue(pw64(i * 64));
            deliveries += tx.pump(SimTime::ZERO).len();
            // Drain credits so the next packet can go.
            tx.credit_return(CreditReturn {
                cmd: [1, 0, 0],
                data: [1, 0, 0],
            })
            .unwrap();
        }
        assert_eq!(deliveries, 200, "every packet eventually delivered");
        assert!(tx.stats.retries > 20, "retries = {}", tx.stats.retries);
        assert_eq!(tx.stats.crc_errors, tx.stats.retries);
    }

    #[test]
    fn sustained_rate_is_wire_limited() {
        let mut tx = LinkTx::new(LinkConfig::PROTOTYPE, 8);
        let n = 1000u64;
        let mut last = SimTime::ZERO;
        for i in 0..n {
            tx.enqueue(pw64(i * 64));
            for d in tx.pump(SimTime::ZERO) {
                last = last.max(d.arrival);
            }
            tx.credit_return(CreditReturn {
                cmd: [1, 0, 0],
                data: [1, 0, 0],
            })
            .unwrap();
        }
        // Goodput = 64B per 72 wire bytes at ~3.175 GB/s ≈ 2.82 GB/s.
        let goodput = (n * 64) as f64 / ((last.picos() - 50_000) as f64 / 1e12) / 1e6;
        assert!(
            (goodput - 2822.0).abs() < 30.0,
            "goodput = {goodput:.0} MB/s"
        );
    }
}
