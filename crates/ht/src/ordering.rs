//! HyperTransport ordering rules.
//!
//! The fabric guarantees in-order delivery of packets within one virtual
//! channel on one path; across channels the I/O ordering rules apply
//! (HT spec ch. 6). TCCluster's message library leans on exactly two
//! guarantees, both checked here and property-tested in the fabric tests:
//!
//! 1. posted writes on one path are observed in issue order, and
//! 2. a Fence orders all earlier posted writes before all later ones.

use crate::packet::{Command, Packet, VirtualChannel};

/// May packet `b` (issued later) pass packet `a` (issued earlier) inside
/// the fabric? Implements the subset of the HT I/O ordering table the
/// simulator enforces.
pub fn may_pass(later: &Packet, earlier: &Packet) -> bool {
    use VirtualChannel::*;
    match (later.vc(), earlier.vc()) {
        // Same channel: strictly ordered, never passes.
        (a, b) if a == b => false,
        // Nothing passes a Fence in the posted channel; a fence also may
        // not pass anything (it seals the channel).
        _ if matches!(earlier.cmd, Command::Fence { .. }) => false,
        _ if matches!(later.cmd, Command::Fence { .. }) => false,
        // Non-posted requests and responses may not pass posted writes
        // unless their PassPW bit is set (we model PassPW=0 defaults).
        (NonPosted, Posted) | (Response, Posted) => pass_pw(later),
        // Posted writes may pass non-posted requests and responses — this
        // is what makes the posted channel deadlock-free.
        (Posted, NonPosted) | (Posted, Response) => true,
        // Non-posted vs response: unordered; allow.
        (NonPosted, Response) | (Response, NonPosted) => true,
        _ => false,
    }
}

fn pass_pw(p: &Packet) -> bool {
    match &p.cmd {
        Command::WrSized { pass_pw, .. } | Command::RdSized { pass_pw, .. } => *pass_pw,
        _ => false,
    }
}

/// An order-checking observer: feed it packets in delivery order and it
/// verifies per-VC FIFO against issue order. Used by tests and by the
/// fabric's debug assertions.
#[derive(Debug, Default)]
pub struct OrderChecker {
    next_expected: [u64; 3],
}

impl OrderChecker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record delivery of the packet carrying issue-sequence `seq` in `vc`.
    /// Panics if delivery within the VC is out of order.
    pub fn observe(&mut self, vc: VirtualChannel, seq: u64) {
        let slot = &mut self.next_expected[vc.index()];
        assert!(
            seq >= *slot,
            "VC {vc} delivered seq {seq} after expecting >= {slot}"
        );
        *slot = seq + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{SrcTag, UnitId};
    use bytes::Bytes;

    fn posted() -> Packet {
        Packet::posted_write(0, Bytes::from_static(&[0u8; 4]))
    }

    fn read(pass: bool) -> Packet {
        Packet::control(Command::RdSized {
            unit: UnitId::HOST,
            addr: 0,
            count: 0,
            pass_pw: pass,
            seq_id: 0,
            tag: SrcTag::new(0),
        })
    }

    fn response() -> Packet {
        Packet::control(Command::TgtDone {
            unit: UnitId::HOST,
            tag: SrcTag::new(0),
            error: false,
        })
    }

    fn fence() -> Packet {
        Packet::control(Command::Fence { unit: UnitId::HOST })
    }

    #[test]
    fn same_vc_never_passes() {
        assert!(!may_pass(&posted(), &posted()));
        assert!(!may_pass(&read(true), &read(false)));
        assert!(!may_pass(&response(), &response()));
    }

    #[test]
    fn nothing_passes_a_fence() {
        assert!(!may_pass(&posted(), &fence()));
        assert!(!may_pass(&read(true), &fence()));
        assert!(!may_pass(&response(), &fence()));
        assert!(!may_pass(&fence(), &posted()));
    }

    #[test]
    fn reads_blocked_behind_posted_unless_passpw() {
        assert!(!may_pass(&read(false), &posted()));
        assert!(may_pass(&read(true), &posted()));
    }

    #[test]
    fn posted_passes_nonposted_and_responses() {
        assert!(may_pass(&posted(), &read(false)));
        assert!(may_pass(&posted(), &response()));
    }

    #[test]
    fn order_checker_accepts_fifo() {
        let mut oc = OrderChecker::new();
        for i in 0..10 {
            oc.observe(VirtualChannel::Posted, i);
        }
        // Other VCs independent.
        oc.observe(VirtualChannel::Response, 0);
    }

    #[test]
    #[should_panic(expected = "delivered seq")]
    fn order_checker_catches_reordering() {
        let mut oc = OrderChecker::new();
        oc.observe(VirtualChannel::Posted, 1);
        oc.observe(VirtualChannel::Posted, 0);
    }
}
