//! Binary encoding of HT control packets.
//!
//! Layout (addressed 8-byte request, HT spec rev 3.10 request format):
//!
//! ```text
//! byte 0: cmd[5:0] | seqid[3:2] << 6
//! byte 1: unitid[4:0] | seqid[1:0] << 5 | passpw << 7
//! byte 2: srctag[4:0] (non-posted) / reserved | compat << 5 | count[1:0] << 6
//! byte 3: count[3:2] | addr[7:2] << 2
//! byte 4..8: addr[39:8]
//! ```
//!
//! 4-byte packets (NOP, responses, Fence) use the first four bytes with
//! command-specific fields in bytes 2–3.

use crate::packet::{Command, Opcode, SrcTag, UnitId, ADDR_MASK};

/// Error produced when decoding malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    Truncated { need: usize, got: usize },
    UnknownOpcode(u8),
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeError::Truncated { need, got } => {
                write!(f, "truncated control packet: need {need} bytes, got {got}")
            }
            DecodeError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encode a command into its wire bytes (4 or 8).
pub fn encode(cmd: &Command) -> Vec<u8> {
    match cmd {
        Command::Nop {
            posted_cmd,
            posted_data,
            nonposted_cmd,
            nonposted_data,
            response_cmd,
            response_data,
        } => {
            // NOP: credits packed two bits per class into bytes 1-2.
            let b1 = (posted_cmd & 3)
                | ((posted_data & 3) << 2)
                | ((response_cmd & 3) << 4)
                | ((response_data & 3) << 6);
            let b2 = (nonposted_cmd & 3) | ((nonposted_data & 3) << 2);
            vec![Opcode::Nop as u8, b1, b2, 0]
        }
        Command::WrSized {
            posted,
            unit,
            addr,
            count,
            pass_pw,
            seq_id,
            tag,
        } => {
            // Posted-ness rides in cmd bit 5 of the sized-write group.
            let op = Opcode::WrSized as u8 | if *posted { 0x20 } else { 0 };
            encode_request(
                op,
                *unit,
                *addr,
                *count,
                *pass_pw,
                *seq_id,
                tag.map(|t| t.0).unwrap_or(0),
            )
        }
        Command::RdSized {
            unit,
            addr,
            count,
            pass_pw,
            seq_id,
            tag,
        } => encode_request(
            Opcode::RdSized as u8,
            *unit,
            *addr,
            *count,
            *pass_pw,
            *seq_id,
            tag.0,
        ),
        Command::RdResponse { unit, tag, error } => {
            encode_response(Opcode::RdResponse as u8, *unit, *tag, *error)
        }
        Command::TgtDone { unit, tag, error } => {
            encode_response(Opcode::TgtDone as u8, *unit, *tag, *error)
        }
        Command::Broadcast { unit, addr } => {
            encode_request(Opcode::Broadcast as u8, *unit, *addr, 0, false, 0, 0)
        }
        Command::Fence { unit } => vec![Opcode::Fence as u8, unit.0 & 0x1F, 0, 0],
        Command::Flush { unit, tag } => {
            let mut v = vec![Opcode::Flush as u8, unit.0 & 0x1F, tag.0 & 0x1F, 0];
            v.truncate(4);
            v
        }
    }
}

fn encode_request(
    op: u8,
    unit: UnitId,
    addr: u64,
    count: u8,
    pass_pw: bool,
    seq_id: u8,
    tag: u8,
) -> Vec<u8> {
    let addr = addr & ADDR_MASK;
    let b0 = (op & 0x3F) | ((seq_id & 0x0C) << 4);
    let b1 = (unit.0 & 0x1F) | ((seq_id & 0x03) << 5) | ((pass_pw as u8) << 7);
    let b2 = (tag & 0x1F) | ((count & 0x03) << 6);
    let b3 = ((count & 0x0C) >> 2) | (((addr >> 2) & 0x3F) as u8) << 2;
    let mut out = vec![b0, b1, b2, b3];
    out.extend_from_slice(&(((addr >> 8) & 0xFFFF_FFFF) as u32).to_le_bytes());
    out
}

fn encode_response(op: u8, unit: UnitId, tag: SrcTag, error: bool) -> Vec<u8> {
    let b0 = op & 0x3F;
    let b1 = unit.0 & 0x1F;
    let b2 = (tag.0 & 0x1F) | ((error as u8) << 5);
    vec![b0, b1, b2, 0]
}

/// Decode wire bytes back into a command. Returns the command and the number
/// of bytes consumed.
pub fn decode(bytes: &[u8]) -> Result<(Command, usize), DecodeError> {
    if bytes.len() < 4 {
        return Err(DecodeError::Truncated {
            need: 4,
            got: bytes.len(),
        });
    }
    let op6 = bytes[0] & 0x3F;
    match op6 {
        x if x == Opcode::Nop as u8 => {
            let b1 = bytes[1];
            let b2 = bytes[2];
            Ok((
                Command::Nop {
                    posted_cmd: b1 & 3,
                    posted_data: (b1 >> 2) & 3,
                    response_cmd: (b1 >> 4) & 3,
                    response_data: (b1 >> 6) & 3,
                    nonposted_cmd: b2 & 3,
                    nonposted_data: (b2 >> 2) & 3,
                },
                4,
            ))
        }
        x if x & !0x20 == Opcode::WrSized as u8 => {
            let posted = x & 0x20 != 0;
            let (unit, addr, count, pass_pw, seq_id, tag) = decode_request(bytes)?;
            Ok((
                Command::WrSized {
                    posted,
                    unit,
                    addr,
                    count,
                    pass_pw,
                    seq_id,
                    tag: if posted { None } else { Some(SrcTag::new(tag)) },
                },
                8,
            ))
        }
        x if x == Opcode::RdSized as u8 => {
            let (unit, addr, count, pass_pw, seq_id, tag) = decode_request(bytes)?;
            Ok((
                Command::RdSized {
                    unit,
                    addr,
                    count,
                    pass_pw,
                    seq_id,
                    tag: SrcTag::new(tag),
                },
                8,
            ))
        }
        x if x == Opcode::RdResponse as u8 => {
            let (unit, tag, error) = decode_response(bytes);
            Ok((Command::RdResponse { unit, tag, error }, 4))
        }
        x if x == Opcode::TgtDone as u8 => {
            let (unit, tag, error) = decode_response(bytes);
            Ok((Command::TgtDone { unit, tag, error }, 4))
        }
        x if x == Opcode::Broadcast as u8 => {
            let (unit, addr, ..) = decode_request(bytes)?;
            Ok((Command::Broadcast { unit, addr }, 8))
        }
        x if x == Opcode::Fence as u8 => Ok((
            Command::Fence {
                unit: UnitId(bytes[1] & 0x1F),
            },
            4,
        )),
        x if x == Opcode::Flush as u8 => Ok((
            Command::Flush {
                unit: UnitId(bytes[1] & 0x1F),
                tag: SrcTag::new(bytes[2] & 0x1F),
            },
            4,
        )),
        other => Err(DecodeError::UnknownOpcode(other)),
    }
}

#[allow(clippy::type_complexity)]
fn decode_request(bytes: &[u8]) -> Result<(UnitId, u64, u8, bool, u8, u8), DecodeError> {
    if bytes.len() < 8 {
        return Err(DecodeError::Truncated {
            need: 8,
            got: bytes.len(),
        });
    }
    let seq_hi = (bytes[0] >> 4) & 0x0C;
    let unit = UnitId(bytes[1] & 0x1F);
    let seq_lo = (bytes[1] >> 5) & 0x03;
    let pass_pw = bytes[1] & 0x80 != 0;
    let tag = bytes[2] & 0x1F;
    let count_lo = (bytes[2] >> 6) & 0x03;
    let count_hi = (bytes[3] & 0x03) << 2;
    let addr_lo = ((bytes[3] >> 2) as u64) << 2;
    let addr_hi = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) as u64;
    let addr = (addr_hi << 8) | addr_lo;
    Ok((
        unit,
        addr,
        count_hi | count_lo,
        pass_pw,
        seq_hi | seq_lo,
        tag,
    ))
}

fn decode_response(bytes: &[u8]) -> (UnitId, SrcTag, bool) {
    (
        UnitId(bytes[1] & 0x1F),
        SrcTag::new(bytes[2] & 0x1F),
        bytes[2] & 0x20 != 0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(cmd: Command) {
        let bytes = encode(&cmd);
        assert_eq!(bytes.len() as u64, cmd.header_bytes());
        let (decoded, used) = decode(&bytes).expect("decodes");
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, cmd);
    }

    #[test]
    fn posted_write_round_trips() {
        round_trip(Command::WrSized {
            posted: true,
            unit: UnitId(5),
            addr: 0x12_3456_7890 & !3,
            count: 15,
            pass_pw: true,
            seq_id: 9,
            tag: None,
        });
    }

    #[test]
    fn nonposted_write_round_trips() {
        round_trip(Command::WrSized {
            posted: false,
            unit: UnitId(31),
            addr: 0xFF_FFFF_FFFC,
            count: 0,
            pass_pw: false,
            seq_id: 0,
            tag: Some(SrcTag::new(17)),
        });
    }

    #[test]
    fn read_round_trips() {
        round_trip(Command::RdSized {
            unit: UnitId(1),
            addr: 0x1000,
            count: 7,
            pass_pw: false,
            seq_id: 3,
            tag: SrcTag::new(31),
        });
    }

    #[test]
    fn responses_round_trip() {
        round_trip(Command::RdResponse {
            unit: UnitId(2),
            tag: SrcTag::new(30),
            error: true,
        });
        round_trip(Command::TgtDone {
            unit: UnitId(0),
            tag: SrcTag::new(0),
            error: false,
        });
    }

    #[test]
    fn infrastructure_round_trips() {
        round_trip(Command::Nop {
            posted_cmd: 2,
            posted_data: 1,
            nonposted_cmd: 3,
            nonposted_data: 0,
            response_cmd: 1,
            response_data: 2,
        });
        round_trip(Command::Fence { unit: UnitId(4) });
        round_trip(Command::Flush {
            unit: UnitId(3),
            tag: SrcTag::new(12),
        });
        round_trip(Command::Broadcast {
            unit: UnitId(0),
            addr: 0xFEE0_0000, // interrupt range
        });
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            decode(&[0x28, 0, 0]),
            Err(DecodeError::Truncated { need: 4, got: 3 })
        );
        // Addressed request needs 8 bytes.
        let full = encode(&Command::Broadcast {
            unit: UnitId(0),
            addr: 0,
        });
        assert!(matches!(
            decode(&full[..5]),
            Err(DecodeError::Truncated { need: 8, got: 5 })
        ));
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert_eq!(
            decode(&[0x3F, 0, 0, 0]),
            Err(DecodeError::UnknownOpcode(0x3F))
        );
    }

    #[test]
    fn address_40bit_masked() {
        // Encoding masks to 40 bits; bits above must not survive.
        let cmd = Command::WrSized {
            posted: true,
            unit: UnitId(0),
            addr: 0xFFFF_FF12_3456_7890 & !3,
            count: 0,
            pass_pw: false,
            seq_id: 0,
            tag: None,
        };
        let bytes = encode(&cmd);
        let (decoded, _) = decode(&bytes).unwrap();
        match decoded {
            Command::WrSized { addr, .. } => {
                assert_eq!(addr, 0x12_3456_7890 & ADDR_MASK & !3);
            }
            _ => panic!("wrong command"),
        }
    }
}
