//! # tcc-middleware — MPI-like and PGAS layers over the message library
//!
//! The paper's outlook (§VII): "port a middleware software layer like MPI
//! or GASNet on top of our simple message library". This crate does both:
//!
//! * [`mpi`] — tagged point-to-point with unexpected-message queues, plus
//!   broadcast (binomial tree), allreduce (recursive doubling), gather and
//!   personalised all-to-all.
//! * [`pgas`] — a block-distributed global array: remote `put` is one
//!   remote store; remote `get` is two-sided under the hood because the
//!   interconnect cannot route responses (paper §IV.A).
//! * [`am`] — GASNet-style active messages with a registered handler
//!   table, the substrate PGAS runtimes build on.

#![forbid(unsafe_code)]

pub mod am;
pub mod mpi;
pub mod pgas;

pub use am::AmEngine;
pub use mpi::{Comm, ReduceOp};
pub use pgas::GlobalArray;
