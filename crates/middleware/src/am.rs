//! Active messages — the GASNet-style core the paper's PGAS outlook
//! implies. A handler table is registered identically on every rank; a
//! message names its handler by index and carries a payload; polling
//! dispatches handlers against rank-local state.

use tccluster::NodeCtx;

/// Handler signature: (local state, source rank, payload).
pub type Handler<S> = Box<dyn Fn(&mut S, usize, &[u8]) + Send + Sync>;

/// An active-message engine over one rank's communication context.
pub struct AmEngine<S> {
    handlers: Vec<Handler<S>>,
    /// Loopback queue: messages a rank sends to itself (GASNet supports
    /// self-targeted AMs; there is no self-channel in the fabric).
    loopback: std::collections::VecDeque<Vec<u8>>,
    pub delivered: u64,
}

impl<S> Default for AmEngine<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> AmEngine<S> {
    pub fn new() -> Self {
        AmEngine {
            handlers: Vec::new(),
            loopback: Default::default(),
            delivered: 0,
        }
    }

    /// Register a handler; returns its index. Registration order must be
    /// identical on all ranks (as in GASNet).
    pub fn register(&mut self, h: Handler<S>) -> u16 {
        self.handlers.push(h);
        (self.handlers.len() - 1) as u16
    }

    /// Send an active message invoking `handler` at `to` with `payload`.
    /// Self-sends are queued locally and dispatched by the next poll.
    pub fn send(&mut self, ctx: &mut NodeCtx, to: usize, handler: u16, payload: &[u8]) {
        assert!((handler as usize) < self.handlers.len(), "unknown handler");
        let mut msg = Vec::with_capacity(2 + payload.len());
        msg.extend_from_slice(&handler.to_le_bytes());
        msg.extend_from_slice(payload);
        if to == ctx.rank {
            self.loopback.push_back(msg);
        } else {
            ctx.send(to, &msg);
        }
    }

    /// Poll and dispatch everything pending; returns handlers run.
    pub fn poll(&mut self, ctx: &mut NodeCtx, state: &mut S) -> usize {
        let mut ran = 0;
        while let Some(msg) = self.loopback.pop_front() {
            ran += self.dispatch(ctx.rank, &msg, state);
        }
        while let Some((src, msg)) = ctx.try_recv_any() {
            ran += self.dispatch(src, &msg, state);
        }
        ran
    }

    fn dispatch(&mut self, src: usize, msg: &[u8], state: &mut S) -> usize {
        assert!(msg.len() >= 2, "short AM frame");
        let id = u16::from_le_bytes(msg[..2].try_into().expect("2B")) as usize;
        let h = self
            .handlers
            .get(id)
            .expect("handler registered everywhere");
        h(state, src, &msg[2..]);
        self.delivered += 1;
        1
    }

    /// Poll until `pred(state)` holds.
    pub fn poll_until(&mut self, ctx: &mut NodeCtx, state: &mut S, pred: impl Fn(&S) -> bool) {
        let mut backoff = tcc_msglib::window::Backoff::new();
        while !pred(state) {
            if self.poll(ctx, state) == 0 {
                backoff.snooze();
            } else {
                backoff.reset();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_msglib::SendMode;
    use tccluster::ShmCluster;

    #[test]
    fn counter_handler_fires_per_message() {
        const N: usize = 4;
        let results = ShmCluster::new(N, SendMode::WeaklyOrdered).run(|ctx| {
            let mut am: AmEngine<(u64, Vec<u8>)> = AmEngine::new();
            let add = am.register(Box::new(|s, _src, p| {
                s.0 += u64::from_le_bytes(p.try_into().expect("8B"));
            }));
            let note = am.register(Box::new(|s, src, p| {
                s.1.push(src as u8);
                s.1.extend_from_slice(p);
            }));
            let mut state = (0u64, Vec::new());
            // Everyone sends "rank+1" to rank 0 via handler `add`, and a
            // note to rank (me+1)%n via handler `note`.
            am.send(ctx, 0, add, &((ctx.rank as u64 + 1).to_le_bytes()));
            am.send(ctx, (ctx.rank + 1) % ctx.n, note, b"hi");
            if ctx.rank == 0 {
                am.poll_until(ctx, &mut state, |s| {
                    s.0 >= (1..=N as u64).sum::<u64>() && !s.1.is_empty()
                });
            } else {
                am.poll_until(ctx, &mut state, |s| !s.1.is_empty());
            }
            ctx.barrier();
            // Drain any stragglers before exit.
            am.poll(ctx, &mut state);
            state.0
        });
        assert_eq!(results[0], (1..=N as u64).sum::<u64>());
    }

    #[test]
    #[should_panic]
    fn unknown_handler_rejected_at_send() {
        let _ = ShmCluster::new(2, SendMode::WeaklyOrdered).run(|ctx| {
            let mut am: AmEngine<()> = AmEngine::new();
            if ctx.rank == 0 {
                am.send(ctx, 1, 3, b"");
            }
        });
    }
}
