//! A PGAS (partitioned global address space) layer — the paper's second
//! supported programming model (§IV.A: "TCCluster is compatible with PGAS
//! implementations like UPC over GASNet").
//!
//! A [`GlobalArray`] of `f64` is block-distributed across ranks. Remote
//! `put` maps directly onto TCCluster's strength — a remote store. Remote
//! `get` cannot be a remote *load* (the interconnect routes no responses),
//! so it is two-sided under the hood: a request message to the owner, who
//! replies with the value — exactly how GASNet cores implement gets over
//! put-only transports. A progress engine services incoming requests while
//! waiting, so concurrent gets between ranks cannot deadlock.

use tccluster::NodeCtx;

const OP_PUT: u8 = 1;
const OP_GET: u8 = 2;
const OP_REPLY: u8 = 3;
const OP_ACC: u8 = 4;
const OP_PUT_SLICE: u8 = 5;
const OP_FENCE: u8 = 6;

/// A block-distributed global array of `f64`.
pub struct GlobalArray {
    /// Global length.
    len: usize,
    /// This rank's block.
    local: Vec<f64>,
    /// Block size (all ranks but possibly the last hold exactly this).
    block: usize,
    rank: usize,
    n: usize,
    next_token: u64,
    /// Fence markers received from each peer (cumulative per peer).
    fence_seen: Vec<u64>,
    /// Completed fence epochs.
    fence_epoch: u64,
}

impl GlobalArray {
    /// Create the array collectively (every rank calls with the same
    /// `len`); contents start at zero.
    pub fn new(ctx: &NodeCtx, len: usize) -> Self {
        let n = ctx.n;
        let block = len.div_ceil(n);
        let mine = len.saturating_sub(ctx.rank * block).min(block);
        GlobalArray {
            len,
            local: vec![0.0; mine],
            block,
            rank: ctx.rank,
            n,
            next_token: 1,
            fence_seen: vec![0; n],
            fence_epoch: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Which rank owns global index `i`.
    pub fn owner(&self, i: usize) -> usize {
        assert!(i < self.len, "index {i} out of bounds {}", self.len);
        let o = i / self.block;
        debug_assert!(o < self.n);
        o
    }

    /// Local offset of global index `i` (must be owned by some rank).
    fn offset(&self, i: usize) -> usize {
        i % self.block
    }

    /// The indices this rank owns, as a range.
    pub fn local_range(&self) -> std::ops::Range<usize> {
        let start = self.rank * self.block;
        start..(start + self.local.len())
    }

    /// Direct access to the local block.
    pub fn local(&self) -> &[f64] {
        &self.local
    }

    pub fn local_mut(&mut self) -> &mut [f64] {
        &mut self.local
    }

    /// Relaxed put: returns immediately after issuing the remote store.
    pub fn put(&mut self, ctx: &mut NodeCtx, i: usize, value: f64) {
        let o = self.owner(i);
        if o == self.rank {
            let off = self.offset(i);
            self.local[off] = value;
            return;
        }
        let mut msg = vec![OP_PUT];
        msg.extend_from_slice(&(self.offset(i) as u64).to_le_bytes());
        msg.extend_from_slice(&value.to_le_bytes());
        ctx.send(o, &msg);
    }

    /// Remote accumulate (`+=`) — shows one-sided ops beyond plain put.
    pub fn accumulate(&mut self, ctx: &mut NodeCtx, i: usize, delta: f64) {
        let o = self.owner(i);
        if o == self.rank {
            let off = self.offset(i);
            self.local[off] += delta;
            return;
        }
        let mut msg = vec![OP_ACC];
        msg.extend_from_slice(&(self.offset(i) as u64).to_le_bytes());
        msg.extend_from_slice(&delta.to_le_bytes());
        ctx.send(o, &msg);
    }

    /// Blocking get. Services incoming requests while waiting (progress),
    /// so symmetric gets across ranks cannot deadlock.
    pub fn get(&mut self, ctx: &mut NodeCtx, i: usize) -> f64 {
        let o = self.owner(i);
        if o == self.rank {
            return self.local[self.offset(i)];
        }
        let token = self.next_token;
        self.next_token += 1;
        let mut msg = vec![OP_GET];
        msg.extend_from_slice(&(self.offset(i) as u64).to_le_bytes());
        msg.extend_from_slice(&token.to_le_bytes());
        ctx.send(o, &msg);
        let mut backoff = tcc_msglib::window::Backoff::new();
        loop {
            if let Some((src, m)) = ctx.try_recv_any() {
                if let Some(v) = self.dispatch(ctx, src, m, Some((o, token))) {
                    return v;
                }
                backoff.reset();
            } else {
                backoff.snooze();
            }
        }
    }

    /// Bulk put: store a contiguous span of values starting at global
    /// index `start`, splitting at ownership boundaries.
    pub fn put_slice(&mut self, ctx: &mut NodeCtx, start: usize, values: &[f64]) {
        let mut i = start;
        let mut vals = values;
        while !vals.is_empty() {
            let o = self.owner(i);
            // How many consecutive indices share this owner?
            let block_end = (o + 1) * self.block;
            let n = vals.len().min(block_end - i);
            if o == self.rank {
                let off = self.offset(i);
                self.local[off..off + n].copy_from_slice(&vals[..n]);
            } else {
                // One message per owner-run: opcode PUT_SLICE.
                let mut msg = vec![OP_PUT_SLICE];
                msg.extend_from_slice(&(self.offset(i) as u64).to_le_bytes());
                for v in &vals[..n] {
                    msg.extend_from_slice(&v.to_le_bytes());
                }
                ctx.send(o, &msg);
            }
            i += n;
            vals = &vals[n..];
        }
    }

    /// Bulk get: read `len` values starting at global index `start`.
    /// Local spans are copied directly; remote spans are fetched one
    /// owner-run at a time (two-sided underneath, like `get`).
    pub fn get_slice(&mut self, ctx: &mut NodeCtx, start: usize, len: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(len);
        let mut i = start;
        while out.len() < len {
            let o = self.owner(i);
            let block_end = (o + 1) * self.block;
            let n = (len - out.len()).min(block_end - i);
            if o == self.rank {
                let off = self.offset(i);
                out.extend_from_slice(&self.local[off..off + n]);
            } else {
                for k in 0..n {
                    out.push(self.get(ctx, i + k));
                }
            }
            i += n;
        }
        out
    }

    /// `upc_forall`-style iteration: apply `f` to every (global index,
    /// &mut value) this rank owns — affinity-based work distribution.
    pub fn for_each_local(&mut self, mut f: impl FnMut(usize, &mut f64)) {
        let start = self.rank * self.block;
        for (k, v) in self.local.iter_mut().enumerate() {
            f(start + k, v);
        }
    }

    /// Drain pending one-sided traffic (call in idle loops and before
    /// synchronisation).
    pub fn progress(&mut self, ctx: &mut NodeCtx) {
        while let Some((src, m)) = ctx.try_recv_any() {
            let r = self.dispatch(ctx, src, m, None);
            debug_assert!(r.is_none(), "unexpected get reply in progress()");
        }
    }

    /// The PGAS "strict" synchronisation point: after `fence` returns on
    /// every rank, every put/accumulate issued before the fence is
    /// globally applied.
    ///
    /// Implemented as a marker-based quiesce, **not** a blocking barrier:
    /// each rank sends a FENCE marker down every channel and then keeps
    /// *servicing* incoming one-sided traffic until it has collected the
    /// markers of all peers. In-order channel delivery guarantees every
    /// pre-fence operation is applied before the sender's marker is seen.
    /// A blocking barrier here would deadlock: a rank parked in the
    /// barrier stops answering GET requests other ranks are blocked on.
    /// GETs consumed during the drain are pre-fence by construction (they
    /// precede their sender's marker in order) and are answered
    /// immediately; post-fence GETs sit *behind* the marker and are never
    /// touched by the drain, so they always observe the fenced state.
    pub fn fence(&mut self, ctx: &mut NodeCtx) {
        for p in 0..self.n {
            if p != self.rank {
                ctx.send(p, &[OP_FENCE]);
            }
        }
        self.fence_epoch += 1;
        // Drain each peer's channel up to (and including) its marker for
        // this epoch — and no further: bytes past the marker belong to
        // the next epoch (or to another layer, e.g. an MPI phase that
        // starts right after the fence on a faster rank).
        let mut backoff = tcc_msglib::window::Backoff::new();
        loop {
            let mut all_in = true;
            for p in 0..self.n {
                if p == self.rank || self.fence_seen[p] >= self.fence_epoch {
                    continue;
                }
                all_in = false;
                if let Some(m) = ctx.try_recv(p) {
                    let r = self.dispatch(ctx, p, m, None);
                    debug_assert!(r.is_none(), "unexpected get reply during fence");
                    backoff.reset();
                }
            }
            if all_in {
                break;
            }
            backoff.snooze();
        }
    }

    fn reply_get(&mut self, ctx: &mut NodeCtx, src: usize, off: usize, token: u64) {
        let mut reply = vec![OP_REPLY];
        reply.extend_from_slice(&token.to_le_bytes());
        reply.extend_from_slice(&self.local[off].to_le_bytes());
        ctx.send(src, &reply);
    }

    fn dispatch(
        &mut self,
        ctx: &mut NodeCtx,
        src: usize,
        m: Vec<u8>,
        waiting: Option<(usize, u64)>,
    ) -> Option<f64> {
        match m[0] {
            OP_PUT => {
                let off = u64::from_le_bytes(m[1..9].try_into().expect("8B")) as usize;
                let v = f64::from_le_bytes(m[9..17].try_into().expect("8B"));
                self.local[off] = v;
                None
            }
            OP_ACC => {
                let off = u64::from_le_bytes(m[1..9].try_into().expect("8B")) as usize;
                let v = f64::from_le_bytes(m[9..17].try_into().expect("8B"));
                self.local[off] += v;
                None
            }
            OP_PUT_SLICE => {
                let off = u64::from_le_bytes(m[1..9].try_into().expect("8B")) as usize;
                for (k, c) in m[9..].chunks_exact(8).enumerate() {
                    self.local[off + k] = f64::from_le_bytes(c.try_into().expect("8B"));
                }
                None
            }
            OP_GET => {
                let off = u64::from_le_bytes(m[1..9].try_into().expect("8B")) as usize;
                let token = u64::from_le_bytes(m[9..17].try_into().expect("8B"));
                self.reply_get(ctx, src, off, token);
                None
            }
            OP_FENCE => {
                self.fence_seen[src] += 1;
                None
            }
            OP_REPLY => {
                let token = u64::from_le_bytes(m[1..9].try_into().expect("8B"));
                let v = f64::from_le_bytes(m[9..17].try_into().expect("8B"));
                match waiting {
                    Some((owner, want)) if owner == src && want == token => Some(v),
                    _ => panic!("orphan get reply (token {token} from {src})"),
                }
            }
            other => panic!("corrupt PGAS opcode {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_msglib::SendMode;
    use tccluster::ShmCluster;

    fn run<T: Send + 'static>(
        n: usize,
        f: impl Fn(&mut NodeCtx) -> T + Send + Sync + 'static,
    ) -> Vec<T> {
        ShmCluster::new(n, SendMode::WeaklyOrdered).run(f)
    }

    #[test]
    fn ownership_layout() {
        let results = run(4, |ctx| {
            let ga = GlobalArray::new(ctx, 10);
            // block = 3: ranks own [0..3), [3..6), [6..9), [9..10).
            assert_eq!(ga.owner(0), 0);
            assert_eq!(ga.owner(5), 1);
            assert_eq!(ga.owner(9), 3);
            ga.local_range().len()
        });
        assert_eq!(results, vec![3, 3, 3, 1]);
    }

    #[test]
    fn put_then_fence_then_get() {
        let results = run(3, |ctx| {
            let mut ga = GlobalArray::new(ctx, 12);
            // Every rank writes the slots congruent to its rank.
            let me = ctx.rank;
            for i in (me..12).step_by(3) {
                ga.put(ctx, i, (i * 10) as f64);
            }
            ga.fence(ctx);
            // Every rank reads everything.
            let mut sum = 0.0;
            for i in 0..12 {
                sum += ga.get(ctx, i);
            }
            ga.fence(ctx);
            sum
        });
        let expect: f64 = (0..12).map(|i| (i * 10) as f64).sum();
        assert_eq!(results, vec![expect; 3]);
    }

    #[test]
    fn symmetric_gets_do_not_deadlock() {
        let results = run(2, |ctx| {
            let mut ga = GlobalArray::new(ctx, 2);
            let me = ctx.rank;
            ga.put(ctx, me, me as f64 + 1.0);
            ga.fence(ctx);
            // Both ranks simultaneously get from each other.
            let other = ga.get(ctx, 1 - me);
            ga.fence(ctx);
            other
        });
        assert_eq!(results, vec![2.0, 1.0]);
    }

    #[test]
    fn accumulate_sums_remote_contributions() {
        const N: usize = 4;
        let results = run(N, |ctx| {
            let mut ga = GlobalArray::new(ctx, 1);
            ga.accumulate(ctx, 0, (ctx.rank + 1) as f64);
            ga.fence(ctx);
            let v = ga.get(ctx, 0);
            ga.fence(ctx);
            v
        });
        let expect = (1..=N).sum::<usize>() as f64;
        assert_eq!(results, vec![expect; N]);
    }

    #[test]
    fn slice_ops_cross_ownership_boundaries() {
        let results = run(3, |ctx| {
            let mut ga = GlobalArray::new(ctx, 12); // blocks of 4
            if ctx.rank == 0 {
                // One put_slice spanning all three owners.
                let vals: Vec<f64> = (0..12).map(|i| i as f64 * 1.5).collect();
                ga.put_slice(ctx, 0, &vals);
            }
            ga.fence(ctx);
            let got = ga.get_slice(ctx, 2, 8); // indices 2..10, 3 owners
            ga.fence(ctx);
            got.iter().sum::<f64>()
        });
        let expect: f64 = (2..10).map(|i| i as f64 * 1.5).sum();
        assert_eq!(results, vec![expect; 3]);
    }

    #[test]
    fn for_each_local_has_affinity() {
        let results = run(4, |ctx| {
            let mut ga = GlobalArray::new(ctx, 16);
            let mut seen = Vec::new();
            ga.for_each_local(|i, v| {
                *v = i as f64;
                seen.push(i);
            });
            // Each rank touches exactly its own block.
            assert_eq!(seen, ga.local_range().collect::<Vec<_>>());
            ga.fence(ctx);
            let all = ga.get_slice(ctx, 0, 16);
            ga.fence(ctx);
            all.iter().sum::<f64>()
        });
        let expect: f64 = (0..16).map(|i| i as f64).sum();
        assert_eq!(results, vec![expect; 4]);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_checked() {
        let _ = run(2, |ctx| {
            let ga = GlobalArray::new(ctx, 4);
            ga.owner(4);
        });
    }
}
