//! An MPI-like layer over the TCCluster message library — the middleware
//! the paper names as the next step ("port a middleware software layer
//! like MPI … on top of our simple message library", §VII).
//!
//! Point-to-point with tag matching plus the classic collectives, all
//! implemented with nothing but remote-store messaging and the barrier.

use std::collections::{HashMap, VecDeque};
use tccluster::NodeCtx;

/// Reduction operators over `f64` vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Min,
    Max,
}

impl ReduceOp {
    fn apply(self, acc: &mut [f64], other: &[f64]) {
        assert_eq!(acc.len(), other.len());
        for (a, &b) in acc.iter_mut().zip(other) {
            *a = match self {
                ReduceOp::Sum => *a + b,
                ReduceOp::Min => a.min(b),
                ReduceOp::Max => a.max(b),
            };
        }
    }
}

/// A communicator: tagged point-to-point and collectives.
pub struct Comm<'a> {
    ctx: &'a mut NodeCtx,
    /// Messages that arrived while looking for a different (src, tag).
    unexpected: HashMap<(usize, u64), VecDeque<Vec<u8>>>,
}

fn frame(tag: u64, data: &[u8]) -> Vec<u8> {
    let mut f = Vec::with_capacity(8 + data.len());
    f.extend_from_slice(&tag.to_le_bytes());
    f.extend_from_slice(data);
    f
}

fn deframe(mut f: Vec<u8>) -> (u64, Vec<u8>) {
    assert!(f.len() >= 8, "short MPI frame");
    let tag = u64::from_le_bytes(f[..8].try_into().expect("8B"));
    f.drain(..8);
    (tag, f)
}

impl<'a> Comm<'a> {
    pub fn new(ctx: &'a mut NodeCtx) -> Self {
        Comm {
            ctx,
            unexpected: HashMap::new(),
        }
    }

    pub fn rank(&self) -> usize {
        self.ctx.rank
    }

    pub fn size(&self) -> usize {
        self.ctx.n
    }

    /// Tagged send.
    pub fn send(&mut self, to: usize, tag: u64, data: &[u8]) {
        self.ctx.send(to, &frame(tag, data));
    }

    /// Tagged receive: blocks until a message with (from, tag) arrives;
    /// other messages from `from` are queued as unexpected.
    pub fn recv(&mut self, from: usize, tag: u64) -> Vec<u8> {
        if let Some(q) = self.unexpected.get_mut(&(from, tag)) {
            if let Some(m) = q.pop_front() {
                return m;
            }
        }
        loop {
            let raw = self.ctx.recv(from);
            let (t, body) = deframe(raw);
            if t == tag {
                return body;
            }
            self.unexpected
                .entry((from, t))
                .or_default()
                .push_back(body);
        }
    }

    /// Non-blocking probe-receive.
    pub fn try_recv(&mut self, from: usize, tag: u64) -> Option<Vec<u8>> {
        if let Some(q) = self.unexpected.get_mut(&(from, tag)) {
            if let Some(m) = q.pop_front() {
                return Some(m);
            }
        }
        while let Some(raw) = self.ctx.try_recv(from) {
            let (t, body) = deframe(raw);
            if t == tag {
                return Some(body);
            }
            self.unexpected
                .entry((from, t))
                .or_default()
                .push_back(body);
        }
        None
    }

    pub fn barrier(&mut self) {
        self.ctx.barrier();
    }

    /// Binomial-tree broadcast from `root`.
    pub fn bcast(&mut self, root: usize, data: &mut Vec<u8>) {
        const TAG: u64 = u64::MAX - 1;
        let n = self.size();
        let me = (self.rank() + n - root) % n; // virtual rank, root = 0
        let mut mask = 1usize;
        // Receive phase: find our parent.
        while mask < n {
            if me & mask != 0 {
                let parent = (me - mask + root) % n;
                *data = self.recv(parent, TAG);
                break;
            }
            mask <<= 1;
        }
        // Send phase: forward to children below our lowest set bit.
        let limit = mask;
        let mut m = limit >> 1;
        let mut children = Vec::new();
        while m > 0 {
            let child = me + m;
            if child < n {
                children.push((child + root) % n);
            }
            m >>= 1;
        }
        // Highest-distance child first (classic binomial order).
        let payload = data.clone();
        for c in children {
            self.send(c, TAG, &payload);
        }
    }

    /// Recursive-doubling allreduce over `f64` vectors (power-of-two ranks
    /// use pure doubling; stragglers fold into a partner first).
    pub fn allreduce(&mut self, op: ReduceOp, data: &mut [f64]) {
        const TAG: u64 = u64::MAX - 2;
        let n = self.size();
        let me = self.rank();
        let pow2 = n.next_power_of_two() / if n.is_power_of_two() { 1 } else { 2 };
        let rem = n - pow2;
        // Fold the remainder: ranks >= pow2 send to (rank - pow2).
        let bytes = |d: &[f64]| {
            let mut v = Vec::with_capacity(d.len() * 8);
            for x in d {
                v.extend_from_slice(&x.to_le_bytes());
            }
            v
        };
        let floats = |v: &[u8]| {
            v.chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("8B")))
                .collect::<Vec<f64>>()
        };
        if me >= pow2 {
            self.send(me - pow2, TAG, &bytes(data));
            // Wait for the final result.
            let res = self.recv(me - pow2, TAG);
            data.copy_from_slice(&floats(&res));
            return;
        }
        if me < rem {
            let other = self.recv(me + pow2, TAG);
            op.apply(data, &floats(&other));
        }
        // Recursive doubling among the pow2 group.
        let mut mask = 1usize;
        while mask < pow2 {
            let partner = me ^ mask;
            self.send(partner, TAG, &bytes(data));
            let other = self.recv(partner, TAG);
            op.apply(data, &floats(&other));
            mask <<= 1;
        }
        if me < rem {
            self.send(me + pow2, TAG, &bytes(data));
        }
    }

    /// Gather fixed-size contributions at `root`; returns rank-ordered
    /// concatenation on the root, `None` elsewhere.
    pub fn gather(&mut self, root: usize, mine: &[u8]) -> Option<Vec<Vec<u8>>> {
        const TAG: u64 = u64::MAX - 3;
        if self.rank() == root {
            let mut all = vec![Vec::new(); self.size()];
            all[root] = mine.to_vec();
            for _ in 0..self.size() - 1 {
                // Collect in arrival order; store by source.
                for p in (0..self.size()).filter(|&p| p != root) {
                    if all[p].is_empty() {
                        if let Some(m) = self.try_recv(p, TAG) {
                            all[p] = m;
                        }
                    }
                }
                if all
                    .iter()
                    .enumerate()
                    .all(|(i, v)| i == root || !v.is_empty())
                {
                    break;
                }
            }
            // Blocking pass for anything still missing.
            for (p, slot) in all.iter_mut().enumerate() {
                if p != root && slot.is_empty() {
                    *slot = self.recv(p, TAG);
                }
            }
            Some(all)
        } else {
            self.send(root, TAG, mine);
            None
        }
    }

    /// Reduce to `root` (rank order applied, so floating-point results
    /// are deterministic). Returns the result on the root, `None` elsewhere.
    pub fn reduce(&mut self, root: usize, op: ReduceOp, data: &[f64]) -> Option<Vec<f64>> {
        const TAG: u64 = u64::MAX - 5;
        let bytes = |d: &[f64]| {
            let mut v = Vec::with_capacity(d.len() * 8);
            for x in d {
                v.extend_from_slice(&x.to_le_bytes());
            }
            v
        };
        if self.rank() == root {
            let mut acc = data.to_vec();
            for p in 0..self.size() {
                if p == root {
                    continue;
                }
                let m = self.recv(p, TAG);
                let other: Vec<f64> = m
                    .chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().expect("8B")))
                    .collect();
                op.apply(&mut acc, &other);
            }
            Some(acc)
        } else {
            self.send(root, TAG, &bytes(data));
            None
        }
    }

    /// Scatter: the root sends `parts[i]` to rank `i`; everyone returns
    /// their part.
    pub fn scatter(&mut self, root: usize, parts: Option<&[Vec<u8>]>) -> Vec<u8> {
        const TAG: u64 = u64::MAX - 6;
        if self.rank() == root {
            let parts = parts.expect("root provides the parts");
            assert_eq!(parts.len(), self.size());
            for (p, part) in parts.iter().enumerate() {
                if p != root {
                    self.send(p, TAG, part);
                }
            }
            parts[root].clone()
        } else {
            self.recv(root, TAG)
        }
    }

    /// Allgather: everyone contributes `mine`; everyone receives all
    /// contributions in rank order (ring algorithm, n-1 steps).
    pub fn allgather(&mut self, mine: &[u8]) -> Vec<Vec<u8>> {
        const TAG: u64 = u64::MAX - 7;
        let n = self.size();
        let me = self.rank();
        let mut all = vec![Vec::new(); n];
        all[me] = mine.to_vec();
        let next = (me + 1) % n;
        let prev = (me + n - 1) % n;
        // Step k: forward the piece that originated k hops back.
        let mut carry = mine.to_vec();
        for k in 0..n - 1 {
            self.send(next, TAG + k as u64, &carry);
            carry = self.recv(prev, TAG + k as u64);
            let origin = (me + n - 1 - k) % n;
            all[origin] = carry.clone();
        }
        all
    }

    /// Exclusive prefix scan (sum) over one f64 per rank: rank r receives
    /// the sum of values at ranks 0..r (0.0 at rank 0).
    pub fn exscan_sum(&mut self, mine: f64) -> f64 {
        const TAG: u64 = u64::MAX - 8;
        // Linear pipeline: simple and deterministic.
        let me = self.rank();
        let prefix = if me == 0 {
            0.0
        } else {
            let m = self.recv(me - 1, TAG);
            f64::from_le_bytes(m.try_into().expect("8B"))
        };
        if me + 1 < self.size() {
            let up = prefix + mine;
            self.send(me + 1, TAG, &up.to_le_bytes());
        }
        prefix
    }

    /// Personalised all-to-all: `send[i]` goes to rank `i`; returns what
    /// each rank sent us, in rank order.
    pub fn alltoall(&mut self, send: &[Vec<u8>]) -> Vec<Vec<u8>> {
        const TAG: u64 = u64::MAX - 4;
        assert_eq!(send.len(), self.size());
        let n = self.size();
        let me = self.rank();
        let mut out = vec![Vec::new(); n];
        out[me] = send[me].clone();
        // Pairwise exchange in n-1 rounds (rank rotation works for any n):
        // round r sends to (me + r) and receives from (me - r). Send and
        // receive are interleaved non-blockingly so large payloads cannot
        // deadlock on rendezvous-zone credit.
        for r in 1..n {
            let to = (me + r) % n;
            let from = (me + n - r) % n;
            let f = frame(TAG + r as u64, &send[to]);
            let mut sent = false;
            let mut got: Option<Vec<u8>> = None;
            let mut backoff = tcc_msglib::window::Backoff::new();
            while !sent || got.is_none() {
                if !sent && self.ctx.try_send(to, &f).is_ok() {
                    sent = true;
                    backoff.reset();
                }
                if got.is_none() {
                    got = self.try_recv(from, TAG + r as u64);
                    if got.is_some() {
                        backoff.reset();
                    }
                }
                if !sent || got.is_none() {
                    backoff.snooze();
                }
            }
            out[from] = got.expect("received");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_msglib::SendMode;
    use tccluster::ShmCluster;

    fn run<T: Send + 'static>(
        n: usize,
        f: impl Fn(&mut Comm) -> T + Send + Sync + 'static,
    ) -> Vec<T> {
        ShmCluster::new(n, SendMode::WeaklyOrdered).run(move |ctx| {
            let mut comm = Comm::new(ctx);
            f(&mut comm)
        })
    }

    #[test]
    fn tagged_out_of_order_matching() {
        let results = run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 7, b"seven");
                c.send(1, 8, b"eight");
                0
            } else {
                // Ask for tag 8 first: tag 7 must be queued, not lost.
                let e = c.recv(0, 8);
                let s = c.recv(0, 7);
                assert_eq!(e, b"eight");
                assert_eq!(s, b"seven");
                1
            }
        });
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn bcast_from_every_root() {
        for n in [2usize, 3, 5, 8] {
            let results = run(n, move |c| {
                let mut acc = 0u64;
                for root in 0..c.size() {
                    let mut data = if c.rank() == root {
                        vec![root as u8; 33]
                    } else {
                        Vec::new()
                    };
                    c.bcast(root, &mut data);
                    assert_eq!(data, vec![root as u8; 33]);
                    acc += data[0] as u64;
                    c.barrier();
                }
                acc
            });
            let expect: u64 = (0..n as u64).sum();
            assert!(results.iter().all(|&r| r == expect), "n={n}");
        }
    }

    #[test]
    fn allreduce_sum_min_max() {
        for n in [2usize, 4, 6, 7] {
            let results = run(n, move |c| {
                let me = c.rank() as f64;
                let mut v = vec![me, -me, me * me];
                c.allreduce(ReduceOp::Sum, &mut v);
                let n = c.size() as f64;
                let sum: f64 = (0..c.size()).map(|r| r as f64).sum();
                assert_eq!(v[0], sum);
                assert_eq!(v[1], -sum);

                let mut w = vec![me];
                c.allreduce(ReduceOp::Max, &mut w);
                assert_eq!(w[0], n - 1.0);
                let mut u = vec![me];
                c.allreduce(ReduceOp::Min, &mut u);
                assert_eq!(u[0], 0.0);
                1u8
            });
            assert_eq!(results.len(), n, "n={n}");
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let results = run(4, |c| {
            let mine = vec![c.rank() as u8 + 10; c.rank() + 1];
            match c.gather(2, &mine) {
                Some(all) => {
                    for (r, v) in all.iter().enumerate() {
                        assert_eq!(v, &vec![r as u8 + 10; r + 1]);
                    }
                    1u8
                }
                None => 0,
            }
        });
        assert_eq!(results, vec![0, 0, 1, 0]);
    }

    #[test]
    fn reduce_to_root_ordered() {
        let results = run(5, |c| {
            let me = c.rank() as f64;
            match c.reduce(3, ReduceOp::Sum, &[me, me * 2.0]) {
                Some(acc) => {
                    assert_eq!(acc, vec![10.0, 20.0]);
                    1u8
                }
                None => 0,
            }
        });
        assert_eq!(results, vec![0, 0, 0, 1, 0]);
    }

    #[test]
    fn scatter_distributes_parts() {
        let results = run(4, |c| {
            let parts: Option<Vec<Vec<u8>>> =
                (c.rank() == 1).then(|| (0..4).map(|p| vec![p as u8 * 3; p + 1]).collect());
            let part = c.scatter(1, parts.as_deref());
            assert_eq!(part, vec![c.rank() as u8 * 3; c.rank() + 1]);
            part.len()
        });
        assert_eq!(results, vec![1, 2, 3, 4]);
    }

    #[test]
    fn allgather_ring() {
        for n in [2usize, 3, 6] {
            let results = run(n, |c| {
                let mine = vec![c.rank() as u8 + 1; 5];
                let all = c.allgather(&mine);
                for (r, v) in all.iter().enumerate() {
                    assert_eq!(v, &vec![r as u8 + 1; 5], "piece from {r}");
                }
                all.len()
            });
            assert!(results.iter().all(|&l| l == n), "n={n}");
        }
    }

    #[test]
    fn exscan_prefix_sums() {
        let results = run(6, |c| c.exscan_sum((c.rank() + 1) as f64));
        // Exclusive prefix of 1,2,3,4,5,6.
        assert_eq!(results, vec![0.0, 1.0, 3.0, 6.0, 10.0, 15.0]);
    }

    #[test]
    fn alltoall_permutes() {
        let results = run(5, |c| {
            let me = c.rank();
            let send: Vec<Vec<u8>> = (0..c.size())
                .map(|to| vec![(me * 16 + to) as u8; 4])
                .collect();
            let got = c.alltoall(&send);
            for (from, v) in got.iter().enumerate() {
                assert_eq!(v, &vec![(from * 16 + me) as u8; 4]);
            }
            1u8
        });
        assert_eq!(results, vec![1; 5]);
    }
}
