//! Property-based tests for the Opteron node model.

use proptest::prelude::*;
use tcc_opteron::addrmap::{AddressMap, Target};
use tcc_opteron::mtrr::{MemType, Mtrrs};
use tcc_opteron::regs::{LinkId, NodeId};
use tcc_opteron::wc::WcBuffers;

proptest! {
    /// WC buffers never lose, duplicate or reorder bytes: replaying all
    /// flushes of any store schedule reconstructs exactly the last-written
    /// value at every address.
    #[test]
    fn wc_preserves_memory_image(
        stores in proptest::collection::vec(
            (0u64..1024, 1usize..32, any::<u8>()),
            1..200
        )
    ) {
        let mut wc = WcBuffers::new(8, 64);
        let mut image = vec![None::<u8>; 2048];
        let mut replay = vec![None::<u8>; 2048];
        let apply = |flushes: &mut Vec<tcc_opteron::wc::Flush>, replay: &mut Vec<Option<u8>>| {
            for f in flushes.drain(..) {
                for (off, bytes) in f.runs() {
                    for (i, b) in bytes.iter().enumerate() {
                        replay[f.line_addr as usize + off + i] = Some(*b);
                    }
                }
            }
        };
        let mut fl = Vec::new();
        for (addr, len, val) in stores {
            let data = vec![val; len];
            for i in 0..len {
                image[addr as usize + i] = Some(val);
            }
            wc.store(addr, &data, &mut fl);
            apply(&mut fl, &mut replay);
        }
        wc.fence(&mut fl);
        apply(&mut fl, &mut replay);
        prop_assert_eq!(image, replay);
    }

    /// Every address in a well-formed (boot-style) map resolves to exactly
    /// one target, and resolution is consistent with interval containment.
    #[test]
    fn addrmap_resolution_total(
        slices in proptest::collection::vec(64u64..512, 2..6),
        probe_frac in 0.0f64..1.0,
    ) {
        // Build a contiguous layout: slice i is DRAM of node i (max 8),
        // then one MMIO range covering the space above.
        let mut map = AddressMap::new();
        let mut base = 0x1000u64;
        let mut bounds = Vec::new();
        for (i, s) in slices.iter().enumerate().take(8) {
            let limit = base + s * 64;
            map.add_dram(base, limit, NodeId(i as u8)).unwrap();
            bounds.push((base, limit, i));
            base = limit;
        }
        let mmio_end = base + 0x10_000;
        map.add_mmio(base, mmio_end, NodeId(0), LinkId(2)).unwrap();
        map.validate().unwrap();

        let addr = 0x1000 + ((mmio_end - 0x1000) as f64 * probe_frac) as u64;
        let addr = addr.min(mmio_end - 1);
        match map.resolve(addr).unwrap() {
            Target::Dram { home } => {
                let (b, l, i) = bounds.iter().copied()
                    .find(|&(b, l, _)| addr >= b && addr < l)
                    .expect("addr inside a DRAM slice");
                prop_assert_eq!(home, NodeId(i as u8), "addr {:#x} in [{:#x},{:#x})", addr, b, l);
            }
            Target::Mmio { owner, link } => {
                prop_assert!(addr >= base, "MMIO only above DRAM");
                prop_assert_eq!(owner, NodeId(0));
                prop_assert_eq!(link, LinkId(2));
            }
        }
    }

    /// MTRR resolution returns the programmed type inside ranges and the
    /// WB default outside, for arbitrary disjoint programs.
    #[test]
    fn mtrr_resolution_respects_ranges(
        lens in proptest::collection::vec(1u64..64, 1..8),
        gap in 1u64..32,
        probe in 0u64..8192,
    ) {
        let mut m = Mtrrs::new();
        let mut base = 0u64;
        let mut ranges = Vec::new();
        for (i, l) in lens.iter().enumerate() {
            let limit = base + l * 64;
            let ty = if i % 2 == 0 { MemType::Uncacheable } else { MemType::WriteCombining };
            m.program(base, limit, ty);
            ranges.push((base, limit, ty));
            base = limit + gap * 64;
        }
        let got = m.resolve(probe);
        let expect = ranges
            .iter()
            .find(|&&(b, l, _)| probe >= b && probe < l)
            .map(|&(_, _, t)| t)
            .unwrap_or(MemType::WriteBack);
        prop_assert_eq!(got, expect);
    }

    /// The store pipeline is causal and monotone: a later store never
    /// retires before an earlier one, and retire never precedes issue.
    #[test]
    fn node_store_times_monotone(
        sizes in proptest::collection::vec(8usize..64, 1..100)
    ) {
        use tcc_fabric::time::SimTime;
        use tcc_ht::link::LinkConfig;
        use tcc_opteron::{Node, UarchParams};
        use tcc_opteron::route::{symmetric, Route};

        let mut n = Node::new(NodeId(0), 1 << 20, UarchParams::shanghai());
        n.nb.addr_map.add_dram(0x1_0000, 0x2_0000, NodeId(0)).unwrap();
        n.nb.addr_map.add_mmio(0x2_0000, 0x10_0000, NodeId(0), LinkId(2)).unwrap();
        n.nb.routes.set(NodeId(0), symmetric(Route::SelfRoute));
        n.mtrrs.program(0x2_0000, 0x10_0000, MemType::WriteCombining);
        n.attach_link(LinkId(2), LinkConfig::PROTOTYPE, 3);

        let mut now = SimTime::ZERO;
        let mut prev_retire = SimTime::ZERO;
        let mut addr = 0x2_0000u64;
        let mut sink = tcc_opteron::ActionSink::new();
        for s in sizes {
            sink.clear();
            let out = n.store(now, addr, &vec![0u8; s], &mut sink);
            prop_assert!(out.issued >= now, "issue precedes request");
            prop_assert!(out.retire >= prev_retire.min(out.issued));
            for a in sink.as_slice() {
                if let tcc_opteron::Action::PacketOut { arrival, .. } = a {
                    prop_assert!(*arrival >= out.issued);
                }
            }
            prev_retire = prev_retire.max(out.retire);
            now = out.issued;
            addr += s as u64;
        }
    }
}
