//! Microarchitectural timing parameters of the simulated Opteron node.
//!
//! All calibration constants live here, in one place, so EXPERIMENTS.md can
//! point at them. Defaults model the paper's testbed: a quad-core K10
//! "Shanghai" at 2.8 GHz with 4 MB L3, DDR2 memory, and the HTX-cable
//! TCCluster link at HT800 / 16 bit.
//!
//! Calibration anchors (paper §VI):
//! * 227 ns half-round-trip for 64 B messages,
//! * ~2500 MB/s streaming for 64 B messages (weakly ordered),
//! * ~2700 MB/s sustained / ~2000 MB/s strictly ordered,
//! * ~5300 MB/s apparent peak at 256 KB (sender-side buffering artifact),
//! * <50 ns additional latency per hop.

use tcc_fabric::time::Duration;

/// Timing/shape parameters of one Opteron node model.
#[derive(Debug, Clone)]
pub struct UarchParams {
    /// Core clock. 2.8 GHz Shanghai.
    pub core_ghz: f64,

    // ---- store path ----
    /// Number of write-combining buffers per core (K10 has 8).
    pub wc_buffers: usize,
    /// Write-combining buffer size = cache line = 64 B.
    pub wc_buffer_bytes: usize,
    /// Latency from a store retiring to its WC flush entering the system
    /// request queue (buffer-full flush).
    pub wc_flush: Duration,
    /// Extra serialisation cost of an `sfence` (drain store queue + WC
    /// buffers and wait for acceptance by the SRQ).
    pub sfence_drain: Duration,
    /// Peak rate the core can issue stores into WC space (bounded by the
    /// load side of the copy loop reading the source buffer from cache).
    pub store_issue_bytes_per_sec: u64,

    // ---- northbridge ----
    /// System request queue + crossbar traversal on the transmit side.
    pub nb_tx: Duration,
    /// IO bridge (ncHT→cHT conversion) + crossbar on the receive side.
    pub nb_rx: Duration,
    /// Crossbar-only forwarding for routed-through packets (multi-hop).
    pub xbar_forward: Duration,
    /// Depth of the system request queue in 64 B entries.
    pub srq_entries: usize,

    // ---- memory ----
    /// DRAM write commit latency (posted write becomes visible to a
    /// subsequent read).
    pub dram_write: Duration,
    /// Uncached (UC) read round-trip from the core to DRAM — the cost of
    /// one poll iteration on the receive side.
    pub uc_read: Duration,
    /// DRAM channel bandwidth (DDR2-800, two channels).
    pub dram_bytes_per_sec: u64,

    // ---- sender-side burst absorption (the Fig. 6 peak artifact) ----
    /// Effective on-chip + memory-subsystem burst capacity that absorbs
    /// weakly-ordered WC traffic faster than the link drains it. The paper
    /// attributes the 5300 MB/s point at 256 KB to "caching structures
    /// within the Opteron"; we model it as this bounded absorption stage.
    pub absorb_capacity_bytes: u64,
    /// Rate at which the absorption stage accepts data.
    pub absorb_bytes_per_sec: u64,

    // ---- coherent domain ----
    /// Probe (snoop) round-trip to one peer in a coherent fabric.
    pub probe_latency: Duration,
    /// Per-probe bandwidth cost on each coherent link (probe + response).
    pub probe_wire_bytes: u64,

    // ---- caches ----
    pub l1_bytes: usize,
    pub l2_bytes: usize,
    pub l3_bytes: usize,
    pub line_bytes: usize,
    pub l1_latency: Duration,
    pub l2_latency: Duration,
    pub l3_latency: Duration,
    pub dram_read: Duration,
}

impl UarchParams {
    /// The paper's prototype node ("Shanghai" @ 2.8 GHz, DDR2, HTX cable).
    pub fn shanghai() -> Self {
        UarchParams {
            core_ghz: 2.8,

            wc_buffers: 8,
            wc_buffer_bytes: 64,
            wc_flush: Duration::from_picos(5_000), // 5 ns
            // ~26 core cycles at 2.8 GHz; calibrated so strictly-ordered
            // streaming plateaus near 2000 MB/s (Fig. 6).
            sfence_drain: Duration::from_picos(9_300),
            // Copy-loop issue rate with the source in cache.
            store_issue_bytes_per_sec: 12_800_000_000,

            nb_tx: Duration::from_picos(20_000), // 20 ns
            nb_rx: Duration::from_picos(20_000), // 20 ns
            xbar_forward: Duration::from_picos(8_000),
            srq_entries: 24,

            dram_write: Duration::from_picos(10_000), // 10 ns commit
            // Uncached read round trip; calibrated with the fixed pipeline
            // so the 64 B ping-pong lands at ~227 ns (Fig. 7).
            uc_read: Duration::from_picos(70_000),
            dram_bytes_per_sec: 10_600_000_000, // dual-channel DDR2-667

            // The absorbed-but-not-on-wire backlog grows at
            // (absorb − wire) rate, so a burst stays fully absorbed until
            // roughly 2× this capacity — 128 KB puts the apparent
            // bandwidth peak at the paper's 256 KB.
            absorb_capacity_bytes: 128 * 1024,
            absorb_bytes_per_sec: 5_500_000_000,

            probe_latency: Duration::from_picos(50_000),
            probe_wire_bytes: 12, // probe command + response

            l1_bytes: 64 * 1024,
            l2_bytes: 512 * 1024,
            l3_bytes: 4 * 1024 * 1024, // the paper's parts: 4 MB shared L3
            line_bytes: 64,
            l1_latency: Duration::from_picos(1_100), // 3 cycles
            l2_latency: Duration::from_picos(5_400), // 15 cycles
            l3_latency: Duration::from_picos(17_000), // ~48 cycles
            dram_read: Duration::from_picos(60_000),
        }
    }

    /// Core cycles expressed as a duration.
    pub fn cycles(&self, n: u64) -> Duration {
        Duration::from_picos((n as f64 * 1000.0 / self.core_ghz) as u64)
    }
}

impl Default for UarchParams {
    fn default() -> Self {
        Self::shanghai()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shanghai_defaults_sane() {
        let p = UarchParams::shanghai();
        assert_eq!(p.wc_buffers, 8);
        assert_eq!(p.wc_buffer_bytes, 64);
        assert_eq!(p.l3_bytes, 4 << 20);
        assert!(
            p.uc_read > p.dram_read,
            "UC read bypasses caches and pays NB overhead"
        );
    }

    #[test]
    fn cycles_at_2_8_ghz() {
        let p = UarchParams::shanghai();
        // 28 cycles at 2.8 GHz = 10 ns.
        assert_eq!(p.cycles(28).picos(), 10_000);
    }

    #[test]
    fn one_way_fixed_path_supports_227ns_anchor() {
        // The fixed (non-serialisation) portion of the 64 B ping-pong:
        // wc_flush + nb_tx + hop(50) + nb_rx + dram_write ≈ 105 ns,
        // leaving room for wire serialisation (~28 ns) and poll detection
        // (~94 ns) to land at ~227 ns. This test pins the budget so that a
        // parameter change that breaks the anchor fails loudly here first.
        let p = UarchParams::shanghai();
        let fixed = p.wc_flush + p.nb_tx + Duration::from_nanos(50) + p.nb_rx + p.dram_write;
        assert_eq!(fixed.picos(), 105_000);
    }
}
