//! The northbridge routing table: NodeID → destination.
//!
//! Stage two of K10 routing (paper §IV.C): once the address map yields a
//! home NodeID, this table says where packets for that node go — to an
//! outgoing link, or to this node's own memory controller / IO bridge.
//! The hardware keeps separate routes for requests, responses and
//! broadcasts; we model all three because the broadcast route is what the
//! firmware must *sever* on TCCluster links to keep interrupts inside the
//! node.

use crate::regs::{LinkId, NodeId, LINKS_PER_NODE};

/// Where a routed packet goes next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Accept locally (this node is the destination).
    SelfRoute,
    /// Forward out a link.
    Link(LinkId),
}

/// Routes for one destination NodeID.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRoute {
    pub request: Route,
    pub response: Route,
    /// Links a broadcast to this "destination" fans out on (bitmask).
    pub broadcast_links: u8,
}

/// The per-node routing table, indexed by NodeID (8 entries).
#[derive(Debug, Clone)]
pub struct RoutingTable {
    entries: [Option<NodeRoute>; 8],
}

impl Default for RoutingTable {
    fn default() -> Self {
        Self::new()
    }
}

impl RoutingTable {
    pub fn new() -> Self {
        RoutingTable { entries: [None; 8] }
    }

    pub fn set(&mut self, node: NodeId, route: NodeRoute) {
        self.entries[node.0 as usize] = Some(route);
    }

    pub fn get(&self, node: NodeId) -> Option<NodeRoute> {
        self.entries[node.0 as usize]
    }

    pub fn request_route(&self, node: NodeId) -> Option<Route> {
        self.get(node).map(|r| r.request)
    }

    pub fn response_route(&self, node: NodeId) -> Option<Route> {
        self.get(node).map(|r| r.response)
    }

    /// Links on which a broadcast fans out (e.g. interrupts). TCCluster
    /// firmware must exclude TCC links from every mask.
    pub fn broadcast_links(&self, node: NodeId) -> Vec<LinkId> {
        let Some(r) = self.get(node) else {
            return Vec::new();
        };
        (0..LINKS_PER_NODE as u8)
            .filter(|l| r.broadcast_links & (1 << l) != 0)
            .map(LinkId)
            .collect()
    }

    /// True if any broadcast mask includes `link` — used by firmware
    /// verification to prove interrupts cannot leave over a TCC link.
    pub fn broadcasts_reach(&self, link: LinkId) -> bool {
        self.entries
            .iter()
            .flatten()
            .any(|r| r.broadcast_links & (1 << link.0) != 0)
    }

    pub fn clear(&mut self) {
        self.entries = [None; 8];
    }
}

/// Convenience: a route where requests and responses take the same path and
/// broadcasts fan out nowhere.
pub fn symmetric(route: Route) -> NodeRoute {
    NodeRoute {
        request: route,
        response: route,
        broadcast_links: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_route_for_own_node() {
        let mut t = RoutingTable::new();
        t.set(NodeId(0), symmetric(Route::SelfRoute));
        assert_eq!(t.request_route(NodeId(0)), Some(Route::SelfRoute));
        assert_eq!(t.request_route(NodeId(1)), None, "unprogrammed");
    }

    #[test]
    fn link_routes() {
        let mut t = RoutingTable::new();
        t.set(NodeId(1), symmetric(Route::Link(LinkId(3))));
        assert_eq!(t.request_route(NodeId(1)), Some(Route::Link(LinkId(3))));
        assert_eq!(t.response_route(NodeId(1)), Some(Route::Link(LinkId(3))));
    }

    #[test]
    fn broadcast_masks() {
        let mut t = RoutingTable::new();
        t.set(
            NodeId(0),
            NodeRoute {
                request: Route::SelfRoute,
                response: Route::SelfRoute,
                broadcast_links: 0b0101, // links 0 and 2
            },
        );
        assert_eq!(t.broadcast_links(NodeId(0)), vec![LinkId(0), LinkId(2)]);
        assert!(t.broadcasts_reach(LinkId(2)));
        assert!(!t.broadcasts_reach(LinkId(1)));
    }

    #[test]
    fn tccluster_severs_broadcast_to_tcc_link() {
        // Firmware programs broadcasts to fan out only on coherent links;
        // the TCC link (say link 2) must not appear in any mask.
        let mut t = RoutingTable::new();
        t.set(
            NodeId(0),
            NodeRoute {
                request: Route::SelfRoute,
                response: Route::SelfRoute,
                broadcast_links: 0b0010, // only link 1 (coherent peer)
            },
        );
        assert!(!t.broadcasts_reach(LinkId(2)));
    }

    #[test]
    fn clear_unprograms() {
        let mut t = RoutingTable::new();
        t.set(NodeId(3), symmetric(Route::SelfRoute));
        t.clear();
        assert_eq!(t.get(NodeId(3)), None);
    }
}
