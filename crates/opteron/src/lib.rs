//! # tcc-opteron — AMD Opteron K10 node model
//!
//! A timed functional model of the paper's hardware substrate, built from
//! scratch:
//!
//! * [`params`] — every calibration constant, documented against the
//!   paper's measured anchors.
//! * [`regs`] — NodeID, per-link debug registers, reset semantics.
//! * [`mtrr`] — memory-type range registers (WB / UC / WC).
//! * [`wc`] — the eight 64 B write-combining buffers.
//! * [`addrmap`] — DRAM/MMIO base-limit registers (interval routing).
//! * [`route`] — the NodeID-indexed routing table with broadcast masks.
//! * [`tags`] — the 32-entry response-matching table (why remote reads are
//!   impossible over a TCCluster link).
//! * [`nb`] — the northbridge: request disposition, IO bridge, filtering.
//! * [`mem`] — memory controller + DRAM backing store (real bytes).
//! * [`cache`] — MESI caches, for coherence experiments and the stale-read
//!   hazard that forces UC receive buffers.
//! * [`coherence`] — probe-broadcast cost model (why ccNUMA stops scaling).
//! * [`node`] — the assembled package: store path, receive path, polling.

#![forbid(unsafe_code)]

pub mod addrmap;
pub mod cache;
pub mod coherence;
pub mod mem;
pub mod mtrr;
pub mod nb;
pub mod node;
pub mod params;
pub mod pool;
pub mod regs;
pub mod route;
pub mod tags;
pub mod wc;

pub use addrmap::{AddressMap, MapError, Target};
pub use mtrr::{MemType, Mtrrs};
pub use nb::{Disposition, NbError, Northbridge, Source};
pub use node::{Action, ActionSink, BurstPattern, Node, StoreOutcome};
pub use params::UarchParams;
pub use pool::PayloadPool;
pub use regs::{LinkId, NodeId, NodeRegs, LINKS_PER_NODE};
pub use route::{symmetric, NodeRoute, Route, RoutingTable};
pub use tags::{Pending, TagError, TagTable};
