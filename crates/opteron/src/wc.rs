//! Write-combining buffers.
//!
//! A K10 core has eight 64-byte write-combining buffers. Stores to WC
//! memory land in a buffer for their cache line and coalesce; a buffer
//! drains to the system request queue when it fills completely, when the
//! core runs out of buffers, or when a serialising instruction (`sfence`)
//! forces all of them out. Full-line flushes become single 64 B sized
//! writes on the HT link — this coalescing is what gives TCCluster its
//! packet efficiency (paper §VI: "intensive use of the write combining
//! capability to generate maximum sized HyperTransport packets").
//!
//! `Flush` is a fixed-size value (the line image plus its valid bitmap)
//! and `store`/`fence` append into a caller-provided scratch vector, so
//! the store-issue hot path performs no heap allocation in steady state.

/// Bitmask covering bytes `[off, off + len)` of a 64 B line.
#[inline]
fn span_mask(off: usize, len: usize) -> u64 {
    debug_assert!(off + len <= 64);
    if len == 0 {
        return 0;
    }
    (u64::MAX >> (64 - len)) << off
}

/// One drained buffer: the 64 B line image plus which bytes were written.
/// Contiguous valid spans are exposed as runs via [`Flush::runs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flush {
    /// Line-aligned base address of the buffer.
    pub line_addr: u64,
    /// Bit `i` set means byte `i` of the line was written.
    valid: u64,
    data: [u8; 64],
}

impl Flush {
    /// A flush holding a single contiguous run (the uncacheable-store
    /// path, which bypasses the WC buffers entirely).
    pub fn single_run(line_addr: u64, off: usize, bytes: &[u8]) -> Flush {
        let mut f = Flush {
            line_addr,
            valid: span_mask(off, bytes.len()),
            data: [0; 64],
        };
        f.data[off..off + bytes.len()].copy_from_slice(bytes);
        f
    }

    /// Iterate the contiguous runs of (offset-in-line, bytes) written.
    pub fn runs(&self) -> Runs<'_> {
        Runs {
            flush: self,
            rem: self.valid,
        }
    }

    /// Whether the whole 64 B line was written (single max-size packet).
    pub fn is_full_line(&self, line_bytes: usize) -> bool {
        line_bytes == 64 && self.valid == u64::MAX
    }

    /// Total payload bytes.
    pub fn payload_bytes(&self) -> usize {
        self.valid.count_ones() as usize
    }
}

/// Iterator over the contiguous valid spans of a [`Flush`].
#[derive(Clone)]
pub struct Runs<'a> {
    flush: &'a Flush,
    /// Valid bits not yet yielded.
    rem: u64,
}

impl<'a> Iterator for Runs<'a> {
    type Item = (usize, &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.rem == 0 {
            return None;
        }
        let start = self.rem.trailing_zeros() as usize;
        let len = (self.rem >> start).trailing_ones() as usize;
        self.rem &= !span_mask(start, len);
        Some((start, &self.flush.data[start..start + len]))
    }
}

#[derive(Debug, Clone)]
struct Buffer {
    line_addr: u64,
    valid: u64,
    data: [u8; 64],
    /// Allocation order for FIFO eviction.
    age: u64,
}

impl Buffer {
    fn flush(&self) -> Flush {
        Flush {
            line_addr: self.line_addr,
            valid: self.valid,
            data: self.data,
        }
    }

    fn is_full(&self) -> bool {
        self.valid == u64::MAX
    }
}

/// The write-combining buffer file of one core.
#[derive(Debug)]
pub struct WcBuffers {
    buffers: Vec<Buffer>,
    capacity: usize,
    line_bytes: usize,
    next_age: u64,
    /// Statistics.
    pub stores: u64,
    pub flushes_full: u64,
    pub flushes_evict: u64,
    pub flushes_fence: u64,
}

impl WcBuffers {
    pub fn new(capacity: usize, line_bytes: usize) -> Self {
        assert_eq!(line_bytes, 64, "model is specialised to 64 B lines");
        WcBuffers {
            buffers: Vec::with_capacity(capacity),
            capacity,
            line_bytes,
            next_age: 0,
            stores: 0,
            flushes_full: 0,
            flushes_evict: 0,
            flushes_fence: 0,
        }
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr & !(self.line_bytes as u64 - 1)
    }

    /// Apply one store, appending any buffers drained as a consequence
    /// (a filled buffer, or an eviction to make room) to `out`.
    pub fn store(&mut self, addr: u64, data: &[u8], out: &mut Vec<Flush>) {
        assert!(!data.is_empty());
        let mut addr = addr;
        let mut data = data;
        self.stores += 1;
        // Split stores that straddle a line boundary.
        while !data.is_empty() {
            let line = self.line_of(addr);
            let off = (addr - line) as usize;
            let n = data.len().min(self.line_bytes - off);
            self.store_within_line(line, off, &data[..n], out);
            addr += n as u64;
            data = &data[n..];
        }
    }

    fn store_within_line(&mut self, line: u64, off: usize, data: &[u8], out: &mut Vec<Flush>) {
        let idx = match self.buffers.iter().position(|b| b.line_addr == line) {
            Some(i) => i,
            None => {
                if self.buffers.len() == self.capacity {
                    // Evict the oldest buffer (the full set has one).
                    if let Some((oldest, _)) =
                        self.buffers.iter().enumerate().min_by_key(|&(_, b)| b.age)
                    {
                        let b = self.buffers.swap_remove(oldest);
                        self.flushes_evict += 1;
                        out.push(b.flush());
                    }
                }
                self.buffers.push(Buffer {
                    line_addr: line,
                    valid: 0,
                    data: [0; 64],
                    age: self.next_age,
                });
                self.next_age += 1;
                self.buffers.len() - 1
            }
        };
        let b = &mut self.buffers[idx];
        b.data[off..off + data.len()].copy_from_slice(data);
        b.valid |= span_mask(off, data.len());
        if b.is_full() {
            let b = self.buffers.swap_remove(idx);
            self.flushes_full += 1;
            out.push(b.flush());
        }
    }

    /// Serialising flush (`sfence`): drain every buffer, oldest first,
    /// appending to `out`.
    pub fn fence(&mut self, out: &mut Vec<Flush>) {
        // Ages are unique, so an unstable sort is deterministic (and
        // allocation-free, unlike the stable sort).
        self.buffers.sort_unstable_by_key(|b| b.age);
        for b in &self.buffers {
            out.push(b.flush());
            self.flushes_fence += 1;
        }
        self.buffers.clear();
    }

    pub fn occupied(&self) -> usize {
        self.buffers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wc() -> WcBuffers {
        WcBuffers::new(8, 64)
    }

    fn runs_of(f: &Flush) -> Vec<(usize, Vec<u8>)> {
        f.runs().map(|(off, b)| (off, b.to_vec())).collect()
    }

    #[test]
    fn full_line_flushes_immediately() {
        let mut w = wc();
        let mut flushes = Vec::new();
        // Eight 8-byte stores fill one line.
        for i in 0..8u64 {
            w.store(0x1000 + i * 8, &[i as u8; 8], &mut flushes);
        }
        assert_eq!(flushes.len(), 1);
        let f = &flushes[0];
        assert_eq!(f.line_addr, 0x1000);
        assert!(f.is_full_line(64));
        assert_eq!(f.payload_bytes(), 64);
        let runs = runs_of(f);
        assert_eq!(runs[0].1[0], 0);
        assert_eq!(runs[0].1[63], 7);
        assert_eq!(w.occupied(), 0);
        assert_eq!(w.flushes_full, 1);
    }

    #[test]
    fn partial_line_waits_for_fence() {
        let mut w = wc();
        let mut flushes = Vec::new();
        w.store(0x2000, &[1, 2, 3, 4], &mut flushes);
        assert!(flushes.is_empty());
        assert_eq!(w.occupied(), 1);
        let mut drained = Vec::new();
        w.fence(&mut drained);
        assert_eq!(drained.len(), 1);
        assert_eq!(runs_of(&drained[0]), vec![(0, vec![1, 2, 3, 4])]);
        assert_eq!(w.occupied(), 0);
    }

    #[test]
    fn sparse_writes_become_multiple_runs() {
        let mut w = wc();
        let mut sink = Vec::new();
        w.store(0x3000, &[0xAA; 8], &mut sink);
        w.store(0x3000 + 32, &[0xBB; 8], &mut sink);
        let mut drained = Vec::new();
        w.fence(&mut drained);
        let runs = runs_of(&drained[0]);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0], (0, vec![0xAA; 8]));
        assert_eq!(runs[1], (32, vec![0xBB; 8]));
    }

    #[test]
    fn ninth_line_evicts_oldest() {
        let mut w = wc();
        let mut sink = Vec::new();
        for i in 0..8u64 {
            w.store(0x1000 + i * 64, &[i as u8], &mut sink); // 8 partial buffers
        }
        assert!(sink.is_empty());
        assert_eq!(w.occupied(), 8);
        let mut flushed = Vec::new();
        w.store(0x1000 + 8 * 64, &[8], &mut flushed);
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].line_addr, 0x1000, "oldest (first) evicted");
        assert_eq!(w.occupied(), 8);
        assert_eq!(w.flushes_evict, 1);
    }

    #[test]
    fn straddling_store_splits_lines() {
        let mut w = wc();
        let mut sink = Vec::new();
        // 16 bytes starting 8 before a line boundary.
        w.store(0x1000 + 56, &[0xCC; 16], &mut sink);
        let mut drained = Vec::new();
        w.fence(&mut drained);
        assert_eq!(drained.len(), 2);
        let mut lines: Vec<u64> = drained.iter().map(|f| f.line_addr).collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![0x1000, 0x1040]);
        assert_eq!(drained.iter().map(Flush::payload_bytes).sum::<usize>(), 16);
    }

    #[test]
    fn overwrite_within_buffer_keeps_latest() {
        let mut w = wc();
        let mut sink = Vec::new();
        w.store(0x4000, &[1, 1, 1, 1], &mut sink);
        w.store(0x4000, &[9, 9], &mut sink);
        let mut drained = Vec::new();
        w.fence(&mut drained);
        assert_eq!(runs_of(&drained[0]), vec![(0, vec![9, 9, 1, 1])]);
    }

    #[test]
    fn fence_drains_in_allocation_order() {
        let mut w = wc();
        let mut sink = Vec::new();
        w.store(0x9000, &[1], &mut sink);
        w.store(0x5000, &[2], &mut sink);
        w.store(0x7000, &[3], &mut sink);
        let mut drained = Vec::new();
        w.fence(&mut drained);
        let lines: Vec<u64> = drained.iter().map(|f| f.line_addr).collect();
        assert_eq!(lines, vec![0x9000, 0x5000, 0x7000], "FIFO order");
    }

    #[test]
    fn single_run_flush_reports_span() {
        let f = Flush::single_run(0x6000, 8, &[0xEE; 4]);
        assert_eq!(runs_of(&f), vec![(8, vec![0xEE; 4])]);
        assert_eq!(f.payload_bytes(), 4);
        assert!(!f.is_full_line(64));
    }

    #[test]
    fn contiguous_stream_yields_one_flush_per_line() {
        // The bandwidth path: a 4 KB contiguous WC stream must produce
        // exactly 64 full-line flushes and nothing else.
        let mut w = wc();
        let mut flushes = Vec::new();
        for i in 0..512u64 {
            w.store(0x8000 + i * 8, &[0u8; 8], &mut flushes);
        }
        assert_eq!(flushes.len(), 64);
        assert!(flushes.iter().all(|f| f.is_full_line(64)));
        assert_eq!(w.flushes_evict, 0, "no partial evictions in a dense stream");
    }
}
