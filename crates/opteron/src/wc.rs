//! Write-combining buffers.
//!
//! A K10 core has eight 64-byte write-combining buffers. Stores to WC
//! memory land in a buffer for their cache line and coalesce; a buffer
//! drains to the system request queue when it fills completely, when the
//! core runs out of buffers, or when a serialising instruction (`sfence`)
//! forces all of them out. Full-line flushes become single 64 B sized
//! writes on the HT link — this coalescing is what gives TCCluster its
//! packet efficiency (paper §VI: "intensive use of the write combining
//! capability to generate maximum sized HyperTransport packets").

/// One drained buffer: a run of bytes to be turned into HT packet(s).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flush {
    /// Line-aligned base address of the buffer.
    pub line_addr: u64,
    /// Contiguous runs of (offset-in-line, bytes) that were written.
    pub runs: Vec<(usize, Vec<u8>)>,
}

impl Flush {
    /// Whether the whole 64 B line was written (single max-size packet).
    pub fn is_full_line(&self, line_bytes: usize) -> bool {
        self.runs.len() == 1 && self.runs[0].0 == 0 && self.runs[0].1.len() == line_bytes
    }

    /// Total payload bytes.
    pub fn payload_bytes(&self) -> usize {
        self.runs.iter().map(|(_, d)| d.len()).sum()
    }
}

#[derive(Debug, Clone)]
struct Buffer {
    line_addr: u64,
    valid: [bool; 64],
    data: [u8; 64],
    /// Allocation order for FIFO eviction.
    age: u64,
}

impl Buffer {
    fn flush(&self) -> Flush {
        let mut runs: Vec<(usize, Vec<u8>)> = Vec::new();
        let mut i = 0;
        while i < 64 {
            if self.valid[i] {
                let start = i;
                let mut bytes = Vec::new();
                while i < 64 && self.valid[i] {
                    bytes.push(self.data[i]);
                    i += 1;
                }
                runs.push((start, bytes));
            } else {
                i += 1;
            }
        }
        Flush {
            line_addr: self.line_addr,
            runs,
        }
    }

    fn is_full(&self) -> bool {
        self.valid.iter().all(|&v| v)
    }
}

/// The write-combining buffer file of one core.
#[derive(Debug)]
pub struct WcBuffers {
    buffers: Vec<Buffer>,
    capacity: usize,
    line_bytes: usize,
    next_age: u64,
    /// Statistics.
    pub stores: u64,
    pub flushes_full: u64,
    pub flushes_evict: u64,
    pub flushes_fence: u64,
}

impl WcBuffers {
    pub fn new(capacity: usize, line_bytes: usize) -> Self {
        assert_eq!(line_bytes, 64, "model is specialised to 64 B lines");
        WcBuffers {
            buffers: Vec::with_capacity(capacity),
            capacity,
            line_bytes,
            next_age: 0,
            stores: 0,
            flushes_full: 0,
            flushes_evict: 0,
            flushes_fence: 0,
        }
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr & !(self.line_bytes as u64 - 1)
    }

    /// Apply one store. Returns any buffers drained as a consequence
    /// (a filled buffer, or an eviction to make room).
    pub fn store(&mut self, addr: u64, data: &[u8]) -> Vec<Flush> {
        assert!(!data.is_empty());
        let mut out = Vec::new();
        let mut addr = addr;
        let mut data = data;
        self.stores += 1;
        // Split stores that straddle a line boundary.
        while !data.is_empty() {
            let line = self.line_of(addr);
            let off = (addr - line) as usize;
            let n = data.len().min(self.line_bytes - off);
            out.extend(self.store_within_line(line, off, &data[..n]));
            addr += n as u64;
            data = &data[n..];
        }
        out
    }

    fn store_within_line(&mut self, line: u64, off: usize, data: &[u8]) -> Vec<Flush> {
        let mut out = Vec::new();
        let idx = match self.buffers.iter().position(|b| b.line_addr == line) {
            Some(i) => i,
            None => {
                if self.buffers.len() == self.capacity {
                    // Evict the oldest buffer.
                    let oldest = self
                        .buffers
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, b)| b.age)
                        .map(|(i, _)| i)
                        .expect("capacity > 0");
                    let b = self.buffers.swap_remove(oldest);
                    self.flushes_evict += 1;
                    out.push(b.flush());
                }
                self.buffers.push(Buffer {
                    line_addr: line,
                    valid: [false; 64],
                    data: [0; 64],
                    age: self.next_age,
                });
                self.next_age += 1;
                self.buffers.len() - 1
            }
        };
        let b = &mut self.buffers[idx];
        b.data[off..off + data.len()].copy_from_slice(data);
        for v in &mut b.valid[off..off + data.len()] {
            *v = true;
        }
        if b.is_full() {
            let b = self.buffers.swap_remove(idx);
            self.flushes_full += 1;
            out.push(b.flush());
        }
        out
    }

    /// Serialising flush (`sfence`): drain every buffer, oldest first.
    pub fn fence(&mut self) -> Vec<Flush> {
        self.buffers.sort_by_key(|b| b.age);
        let drained: Vec<Flush> = self.buffers.iter().map(Buffer::flush).collect();
        self.flushes_fence += drained.len() as u64;
        self.buffers.clear();
        drained
    }

    pub fn occupied(&self) -> usize {
        self.buffers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wc() -> WcBuffers {
        WcBuffers::new(8, 64)
    }

    #[test]
    fn full_line_flushes_immediately() {
        let mut w = wc();
        let mut flushes = Vec::new();
        // Eight 8-byte stores fill one line.
        for i in 0..8u64 {
            flushes.extend(w.store(0x1000 + i * 8, &[i as u8; 8]));
        }
        assert_eq!(flushes.len(), 1);
        let f = &flushes[0];
        assert_eq!(f.line_addr, 0x1000);
        assert!(f.is_full_line(64));
        assert_eq!(f.payload_bytes(), 64);
        assert_eq!(f.runs[0].1[0], 0);
        assert_eq!(f.runs[0].1[63], 7);
        assert_eq!(w.occupied(), 0);
        assert_eq!(w.flushes_full, 1);
    }

    #[test]
    fn partial_line_waits_for_fence() {
        let mut w = wc();
        assert!(w.store(0x2000, &[1, 2, 3, 4]).is_empty());
        assert_eq!(w.occupied(), 1);
        let drained = w.fence();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].runs, vec![(0, vec![1, 2, 3, 4])]);
        assert_eq!(w.occupied(), 0);
    }

    #[test]
    fn sparse_writes_become_multiple_runs() {
        let mut w = wc();
        w.store(0x3000, &[0xAA; 8]);
        w.store(0x3000 + 32, &[0xBB; 8]);
        let drained = w.fence();
        assert_eq!(drained[0].runs.len(), 2);
        assert_eq!(drained[0].runs[0], (0, vec![0xAA; 8]));
        assert_eq!(drained[0].runs[1], (32, vec![0xBB; 8]));
    }

    #[test]
    fn ninth_line_evicts_oldest() {
        let mut w = wc();
        for i in 0..8u64 {
            w.store(0x1000 + i * 64, &[i as u8]); // 8 partial buffers
        }
        assert_eq!(w.occupied(), 8);
        let flushed = w.store(0x1000 + 8 * 64, &[8]);
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].line_addr, 0x1000, "oldest (first) evicted");
        assert_eq!(w.occupied(), 8);
        assert_eq!(w.flushes_evict, 1);
    }

    #[test]
    fn straddling_store_splits_lines() {
        let mut w = wc();
        // 16 bytes starting 8 before a line boundary.
        w.store(0x1000 + 56, &[0xCC; 16]);
        let drained = w.fence();
        assert_eq!(drained.len(), 2);
        let mut lines: Vec<u64> = drained.iter().map(|f| f.line_addr).collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![0x1000, 0x1040]);
        assert_eq!(drained.iter().map(Flush::payload_bytes).sum::<usize>(), 16);
    }

    #[test]
    fn overwrite_within_buffer_keeps_latest() {
        let mut w = wc();
        w.store(0x4000, &[1, 1, 1, 1]);
        w.store(0x4000, &[9, 9]);
        let drained = w.fence();
        assert_eq!(drained[0].runs, vec![(0, vec![9, 9, 1, 1])]);
    }

    #[test]
    fn fence_drains_in_allocation_order() {
        let mut w = wc();
        w.store(0x9000, &[1]);
        w.store(0x5000, &[2]);
        w.store(0x7000, &[3]);
        let drained = w.fence();
        let lines: Vec<u64> = drained.iter().map(|f| f.line_addr).collect();
        assert_eq!(lines, vec![0x9000, 0x5000, 0x7000], "FIFO order");
    }

    #[test]
    fn contiguous_stream_yields_one_flush_per_line() {
        // The bandwidth path: a 4 KB contiguous WC stream must produce
        // exactly 64 full-line flushes and nothing else.
        let mut w = wc();
        let mut flushes = Vec::new();
        for i in 0..512u64 {
            flushes.extend(w.store(0x8000 + i * 8, &[0u8; 8]));
        }
        assert_eq!(flushes.len(), 64);
        assert!(flushes.iter().all(|f| f.is_full_line(64)));
        assert_eq!(w.flushes_evict, 0, "no partial evictions in a dense stream");
    }
}
