//! The memory controller and DRAM backing store.
//!
//! Holds the actual bytes (so simulated messages really move data) and
//! models timing: a bandwidth-limited DRAM channel plus fixed write-commit
//! and read latencies. Addresses are node-local *offsets* into this node's
//! DRAM; the northbridge subtracts the DRAM base before handing accesses
//! down.

use crate::params::UarchParams;
use tcc_fabric::channel::Channel;
use tcc_fabric::time::{Duration, SimTime};

/// One node's memory controller + DIMMs.
#[derive(Debug)]
pub struct MemoryController {
    bytes: Vec<u8>,
    channel: Channel,
    write_commit: Duration,
    read_latency: Duration,
    pub writes: u64,
    pub reads: u64,
}

impl MemoryController {
    pub fn new(capacity: usize, params: &UarchParams) -> Self {
        MemoryController {
            bytes: vec![0; capacity],
            channel: Channel::new(Duration::ZERO, params.dram_bytes_per_sec),
            write_commit: params.dram_write,
            read_latency: params.dram_read,
            writes: 0,
            reads: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.bytes.len()
    }

    /// Commit a write at `now`; returns the time the data becomes visible
    /// to subsequent reads.
    pub fn write(&mut self, now: SimTime, offset: u64, data: &[u8]) -> SimTime {
        let off = offset as usize;
        assert!(
            off + data.len() <= self.bytes.len(),
            "DRAM write out of range: {off:#x}+{}",
            data.len()
        );
        self.bytes[off..off + data.len()].copy_from_slice(data);
        self.writes += 1;
        let t = self.channel.transfer(now, data.len() as u64);
        t.sent + self.write_commit
    }

    /// Read `len` bytes at `offset`; returns the data and completion time.
    pub fn read(&mut self, now: SimTime, offset: u64, len: usize) -> (Vec<u8>, SimTime) {
        let off = offset as usize;
        assert!(off + len <= self.bytes.len(), "DRAM read out of range");
        self.reads += 1;
        let t = self.channel.transfer(now, len as u64);
        (
            self.bytes[off..off + len].to_vec(),
            t.sent + self.read_latency,
        )
    }

    /// Zero-cost peek for assertions and polling models that account for
    /// their own timing.
    pub fn peek(&self, offset: u64, len: usize) -> &[u8] {
        let off = offset as usize;
        &self.bytes[off..off + len]
    }

    /// Direct mutation for test setup.
    pub fn poke(&mut self, offset: u64, data: &[u8]) {
        let off = offset as usize;
        self.bytes[off..off + data.len()].copy_from_slice(data);
    }

    /// Reset channel occupancy (new measurement epoch); contents stay.
    pub fn quiesce(&mut self) {
        self.channel.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc() -> MemoryController {
        MemoryController::new(1 << 20, &UarchParams::shanghai())
    }

    #[test]
    fn write_then_read_round_trips_data() {
        let mut m = mc();
        let vis = m.write(SimTime::ZERO, 0x100, &[1, 2, 3, 4]);
        assert!(vis > SimTime::ZERO);
        let (data, done) = m.read(vis, 0x100, 4);
        assert_eq!(data, vec![1, 2, 3, 4]);
        assert!(done > vis);
    }

    #[test]
    fn write_commit_includes_fixed_latency() {
        let mut m = mc();
        let vis = m.write(SimTime::ZERO, 0, &[0u8; 64]);
        // 64 B at 10.6 GB/s ≈ 6 ns serialisation + 10 ns commit.
        assert!(vis.nanos() > 15.0 && vis.nanos() < 18.0, "{vis}");
    }

    #[test]
    fn bandwidth_limits_back_to_back_writes() {
        let mut m = mc();
        let mut last = SimTime::ZERO;
        for i in 0..1000u64 {
            last = m.write(SimTime::ZERO, i * 64, &[0u8; 64]);
        }
        // 64 KB at 10.6 GB/s ≈ 6.04 us (plus one commit latency).
        let us = last.micros();
        assert!((us - 6.05).abs() < 0.2, "{us}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_write_panics() {
        let mut m = mc();
        m.write(SimTime::ZERO, (1 << 20) - 2, &[0u8; 4]);
    }

    #[test]
    fn peek_and_poke() {
        let mut m = mc();
        m.poke(42, &[7]);
        assert_eq!(m.peek(42, 1), &[7]);
        assert_eq!(m.writes, 0, "poke bypasses accounting");
    }
}
