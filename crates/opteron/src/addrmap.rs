//! Northbridge address-map registers: DRAM and MMIO base/limit pairs.
//!
//! Routing in the K10 northbridge is two-staged (paper §IV.C): an address is
//! first matched against the DRAM and MMIO base/limit registers, yielding
//! the home NodeID (DRAM) or a NodeID/destination-link (MMIO); the NodeID
//! then indexes the routing table — except for MMIO ranges owned by the
//! local node, whose destination link is taken directly from the register.
//!
//! TCCluster exploits precisely that: every node calls itself NodeID 0,
//! maps its own DRAM slice as local, and maps the *rest of the global
//! address space* as local MMIO whose destination link is the TCCluster
//! link — so every remote store is forwarded straight out the link with no
//! routing-table hop.

use crate::regs::{LinkId, NodeId};

/// Where an address resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// DRAM owned by `home` (may be this node or a coherent peer).
    Dram { home: NodeId },
    /// MMIO owned by `owner`; if the owner is the local node the packet
    /// goes straight out `link`.
    Mmio { owner: NodeId, link: LinkId },
}

#[derive(Debug, Clone, Copy)]
struct DramRange {
    base: u64,
    limit: u64, // exclusive
    home: NodeId,
}

#[derive(Debug, Clone, Copy)]
struct MmioRange {
    base: u64,
    limit: u64, // exclusive
    owner: NodeId,
    link: LinkId,
}

/// K10 provides 8 DRAM base/limit pairs and 8 MMIO pairs (plus fixed
/// ranges we do not need).
pub const MAX_DRAM_RANGES: usize = 8;
pub const MAX_MMIO_RANGES: usize = 8;

/// The programmable address map of one northbridge.
#[derive(Debug, Clone, Default)]
pub struct AddressMap {
    dram: Vec<DramRange>,
    mmio: Vec<MmioRange>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    OutOfRegisters(&'static str),
    Overlap {
        kind: &'static str,
        base: u64,
        limit: u64,
    },
    Unmapped(u64),
}

impl core::fmt::Display for MapError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MapError::OutOfRegisters(k) => write!(f, "out of {k} base/limit registers"),
            MapError::Overlap { kind, base, limit } => {
                write!(f, "overlapping {kind} range [{base:#x},{limit:#x})")
            }
            MapError::Unmapped(a) => write!(f, "address {a:#x} matches no range"),
        }
    }
}

impl std::error::Error for MapError {}

impl AddressMap {
    pub fn new() -> Self {
        Self::default()
    }

    /// Program a DRAM base/limit pair.
    pub fn add_dram(&mut self, base: u64, limit: u64, home: NodeId) -> Result<(), MapError> {
        assert!(base < limit, "empty DRAM range");
        if self.dram.len() == MAX_DRAM_RANGES {
            return Err(MapError::OutOfRegisters("DRAM"));
        }
        if self.dram.iter().any(|r| base < r.limit && r.base < limit) {
            return Err(MapError::Overlap {
                kind: "DRAM",
                base,
                limit,
            });
        }
        self.dram.push(DramRange { base, limit, home });
        Ok(())
    }

    /// Program an MMIO base/limit pair.
    pub fn add_mmio(
        &mut self,
        base: u64,
        limit: u64,
        owner: NodeId,
        link: LinkId,
    ) -> Result<(), MapError> {
        assert!(base < limit, "empty MMIO range");
        if self.mmio.len() == MAX_MMIO_RANGES {
            return Err(MapError::OutOfRegisters("MMIO"));
        }
        if self.mmio.iter().any(|r| base < r.limit && r.base < limit) {
            return Err(MapError::Overlap {
                kind: "MMIO",
                base,
                limit,
            });
        }
        self.mmio.push(MmioRange {
            base,
            limit,
            owner,
            link,
        });
        Ok(())
    }

    pub fn clear(&mut self) {
        self.dram.clear();
        self.mmio.clear();
    }

    /// Resolve an address. DRAM ranges take precedence (the hardware
    /// forbids programming both for one address; we check in `validate`).
    pub fn resolve(&self, addr: u64) -> Result<Target, MapError> {
        if let Some(r) = self.dram.iter().find(|r| addr >= r.base && addr < r.limit) {
            return Ok(Target::Dram { home: r.home });
        }
        if let Some(r) = self.mmio.iter().find(|r| addr >= r.base && addr < r.limit) {
            return Ok(Target::Mmio {
                owner: r.owner,
                link: r.link,
            });
        }
        Err(MapError::Unmapped(addr))
    }

    /// Check global invariants: DRAM and MMIO ranges must be mutually
    /// disjoint, and each class internally disjoint (enforced at insert).
    pub fn validate(&self) -> Result<(), MapError> {
        for d in &self.dram {
            for m in &self.mmio {
                if d.base < m.limit && m.base < d.limit {
                    return Err(MapError::Overlap {
                        kind: "DRAM/MMIO",
                        base: d.base.max(m.base),
                        limit: d.limit.min(m.limit),
                    });
                }
            }
        }
        Ok(())
    }

    /// Iterate programmed DRAM ranges as (base, limit, home).
    pub fn dram_ranges(&self) -> impl Iterator<Item = (u64, u64, NodeId)> + '_ {
        self.dram.iter().map(|r| (r.base, r.limit, r.home))
    }

    /// Iterate programmed MMIO ranges as (base, limit, owner, link).
    pub fn mmio_ranges(&self) -> impl Iterator<Item = (u64, u64, NodeId, LinkId)> + '_ {
        self.mmio.iter().map(|r| (r.base, r.limit, r.owner, r.link))
    }

    /// Total DRAM bytes mapped.
    pub fn dram_bytes(&self) -> u64 {
        self.dram.iter().map(|r| r.limit - r.base).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N0: NodeId = NodeId(0);
    const L2: LinkId = LinkId(2);

    #[test]
    fn figure3_address_map_node0() {
        // Paper Fig. 3: global space 0x1000-0x6FFF; Node0 owns 0x1000-0x1FFF
        // as DRAM, everything else is MMIO out the TCCluster link.
        let mut map = AddressMap::new();
        map.add_dram(0x1000, 0x2000, N0).unwrap();
        map.add_mmio(0x2000, 0x7000, N0, L2).unwrap();
        map.validate().unwrap();

        assert_eq!(map.resolve(0x1800), Ok(Target::Dram { home: N0 }));
        assert_eq!(
            map.resolve(0x2000),
            Ok(Target::Mmio {
                owner: N0,
                link: L2
            })
        );
        assert_eq!(
            map.resolve(0x6FFF),
            Ok(Target::Mmio {
                owner: N0,
                link: L2
            })
        );
        assert_eq!(map.resolve(0x0800), Err(MapError::Unmapped(0x0800)));
        assert_eq!(map.dram_bytes(), 0x1000);
    }

    #[test]
    fn figure3_address_map_node1_differs() {
        // Node1's view of the same global space: it owns 0x2000-0x2FFF.
        // Write to 0x1800 from Node1 → MMIO → network packet toward Node0.
        let mut map = AddressMap::new();
        map.add_dram(0x2000, 0x3000, N0).unwrap(); // NodeID 0 on every node!
        map.add_mmio(0x1000, 0x2000, N0, L2).unwrap();
        map.add_mmio(0x3000, 0x7000, N0, L2).unwrap();
        map.validate().unwrap();
        assert!(matches!(map.resolve(0x1800), Ok(Target::Mmio { .. })));
        assert!(matches!(map.resolve(0x2800), Ok(Target::Dram { .. })));
    }

    #[test]
    fn dram_mmio_overlap_caught_by_validate() {
        let mut map = AddressMap::new();
        map.add_dram(0x1000, 0x3000, N0).unwrap();
        map.add_mmio(0x2000, 0x4000, N0, L2).unwrap();
        assert!(matches!(
            map.validate(),
            Err(MapError::Overlap {
                kind: "DRAM/MMIO",
                ..
            })
        ));
    }

    #[test]
    fn same_class_overlap_rejected_at_insert() {
        let mut map = AddressMap::new();
        map.add_dram(0x1000, 0x3000, N0).unwrap();
        assert!(matches!(
            map.add_dram(0x2000, 0x4000, NodeId(1)),
            Err(MapError::Overlap { kind: "DRAM", .. })
        ));
    }

    #[test]
    fn register_budget() {
        let mut map = AddressMap::new();
        for i in 0..8u64 {
            map.add_dram(i << 20, (i + 1) << 20, NodeId(i as u8))
                .unwrap();
        }
        assert!(matches!(
            map.add_dram(9 << 20, 10 << 20, N0),
            Err(MapError::OutOfRegisters("DRAM"))
        ));
    }

    #[test]
    fn contiguity_requirement_demonstrated() {
        // The northbridge can only map *intervals*: a node wishing to
        // export two discontiguous windows burns two MMIO registers. This
        // is the paper's "memory holes are impossible" constraint —
        // a 256-supernode cluster cannot give each peer its own register.
        let mut map = AddressMap::new();
        let mut used = 0;
        for i in 0..MAX_MMIO_RANGES as u64 {
            map.add_mmio(i * 0x10000, i * 0x10000 + 0x8000, N0, L2)
                .unwrap();
            used += 1;
        }
        assert_eq!(used, MAX_MMIO_RANGES);
        assert!(map.add_mmio(0x9_0000_0000, 0x9_0001_0000, N0, L2).is_err());
    }
}
