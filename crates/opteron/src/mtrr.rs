//! Memory Type Range Registers.
//!
//! The K10 core consults the MTRRs on every access to decide cacheability
//! and write behaviour. TCCluster's firmware programs the remote-MMIO
//! window **write-combining** on the send side (so stores coalesce into
//! 64 B HT packets) and the locally-exported window **uncacheable** on the
//! receive side (so polling reads bypass the cache and observe incoming
//! posted writes — the fabric cannot invalidate remote caches).

/// x86 memory types (the subset the model distinguishes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemType {
    /// Write-back cacheable — ordinary RAM.
    WriteBack,
    /// Uncacheable — every access goes to the memory system, serialised.
    Uncacheable,
    /// Write-combining — stores coalesce in WC buffers, weakly ordered.
    WriteCombining,
}

/// A variable-range MTRR.
#[derive(Debug, Clone, Copy)]
pub struct MtrrEntry {
    pub base: u64,
    /// Exclusive end of the range.
    pub limit: u64,
    pub mem_type: MemType,
}

/// The MTRR file of one core. Default type (outside all ranges) is
/// write-back, matching a BIOS that maps all of DRAM WB.
#[derive(Debug, Clone, Default)]
pub struct Mtrrs {
    entries: Vec<MtrrEntry>,
}

/// K10 exposes 8 variable-range MTRR pairs.
pub const MAX_VARIABLE_MTRRS: usize = 8;

impl Mtrrs {
    pub fn new() -> Self {
        Self::default()
    }

    /// Program a range. Ranges must not overlap existing ones.
    pub fn program(&mut self, base: u64, limit: u64, mem_type: MemType) {
        assert!(base < limit, "empty MTRR range");
        assert!(
            self.entries.len() < MAX_VARIABLE_MTRRS,
            "out of variable MTRRs"
        );
        assert!(
            !self
                .entries
                .iter()
                .any(|e| base < e.limit && e.base < limit),
            "overlapping MTRR ranges: [{base:#x},{limit:#x})"
        );
        self.entries.push(MtrrEntry {
            base,
            limit,
            mem_type,
        });
    }

    /// Remove all programmed ranges (warm reset reprogramming).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Memory type of `addr`.
    pub fn resolve(&self, addr: u64) -> MemType {
        self.entries
            .iter()
            .find(|e| addr >= e.base && addr < e.limit)
            .map(|e| e.mem_type)
            .unwrap_or(MemType::WriteBack)
    }

    /// Memory type of the whole access `[addr, addr+len)`; panics if the
    /// access straddles ranges with different types (real hardware makes
    /// that undefined — firmware must never produce it).
    pub fn resolve_span(&self, addr: u64, len: u64) -> MemType {
        let first = self.resolve(addr);
        let last = self.resolve(addr + len - 1);
        assert_eq!(
            first, last,
            "access [{addr:#x}+{len}) straddles MTRR types {first:?}/{last:?}"
        );
        first
    }

    pub fn entries(&self) -> &[MtrrEntry] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_writeback() {
        let m = Mtrrs::new();
        assert_eq!(m.resolve(0x1234), MemType::WriteBack);
    }

    #[test]
    fn programmed_ranges_resolve() {
        let mut m = Mtrrs::new();
        m.program(0x1_0000, 0x2_0000, MemType::WriteCombining);
        m.program(0x2_0000, 0x3_0000, MemType::Uncacheable);
        assert_eq!(m.resolve(0x0_FFFF), MemType::WriteBack);
        assert_eq!(m.resolve(0x1_0000), MemType::WriteCombining);
        assert_eq!(m.resolve(0x1_FFFF), MemType::WriteCombining);
        assert_eq!(m.resolve(0x2_0000), MemType::Uncacheable);
        assert_eq!(m.resolve(0x3_0000), MemType::WriteBack);
    }

    #[test]
    fn span_within_one_range() {
        let mut m = Mtrrs::new();
        m.program(0x1000, 0x2000, MemType::WriteCombining);
        assert_eq!(m.resolve_span(0x1000, 64), MemType::WriteCombining);
    }

    #[test]
    #[should_panic(expected = "straddles")]
    fn span_across_types_panics() {
        let mut m = Mtrrs::new();
        m.program(0x1000, 0x2000, MemType::WriteCombining);
        m.resolve_span(0x1FC0, 128);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlap_rejected() {
        let mut m = Mtrrs::new();
        m.program(0x1000, 0x3000, MemType::Uncacheable);
        m.program(0x2000, 0x4000, MemType::WriteCombining);
    }

    #[test]
    #[should_panic(expected = "out of variable MTRRs")]
    fn register_budget_enforced() {
        let mut m = Mtrrs::new();
        for i in 0..9u64 {
            m.program(i * 0x1000, (i + 1) * 0x1000, MemType::Uncacheable);
        }
    }

    #[test]
    fn clear_resets() {
        let mut m = Mtrrs::new();
        m.program(0x1000, 0x2000, MemType::Uncacheable);
        m.clear();
        assert_eq!(m.resolve(0x1800), MemType::WriteBack);
        assert!(m.entries().is_empty());
    }
}
