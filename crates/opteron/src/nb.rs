//! The northbridge: system request queue, crossbar, IO bridge and the
//! routing decision that glues address map, routing table and tag table
//! together.
//!
//! Packet walk (paper §IV.C): a packet entering the northbridge — from a
//! local core or from a link — is matched against the DRAM/MMIO base/limit
//! registers. A DRAM hit yields the home NodeID: if it is this node, the
//! access goes to the local memory controller (via the IO bridge when the
//! packet arrived non-coherent); otherwise the routing table picks the
//! outgoing link. An MMIO hit owned by this node forwards directly out the
//! register's destination link, bypassing the routing table — the hook
//! TCCluster exploits by claiming NodeID 0 everywhere.

use crate::addrmap::{AddressMap, MapError, Target};
use crate::regs::{LinkId, NodeId, LINKS_PER_NODE};
use crate::route::{Route, RoutingTable};
use crate::tags::TagTable;
use tcc_ht::packet::{Command, Packet};

/// Where a packet entered the northbridge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// From a local core (through the system request queue).
    Core,
    /// From an HT link; `coherent` reflects the link's negotiated type.
    Link { id: LinkId, coherent: bool },
}

/// What the northbridge decided to do with a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Disposition {
    /// Deliver to the local memory controller at this DRAM offset.
    /// `bridged` is true when the packet crossed the IO bridge
    /// (non-coherent → coherent conversion, costs `nb_rx`).
    LocalMemory { offset: u64, bridged: bool },
    /// Forward out of `link`.
    Forward { link: LinkId },
    /// Dropped by interrupt/broadcast filtering (TCCluster links must not
    /// carry broadcasts off-node).
    Filtered { reason: &'static str },
}

/// Routing failures — all fatal in hardware, surfaced as errors here so
/// tests can assert on the exact failure mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NbError {
    Unmapped(u64),
    NoRoute(NodeId),
    /// A response arrived whose tag matches nothing — the signature of
    /// trying to run non-posted traffic over a TCCluster link.
    OrphanResponse,
    /// A command that cannot be routed at all (e.g. response with no tag).
    Unroutable(&'static str),
}

impl From<MapError> for NbError {
    fn from(e: MapError) -> Self {
        match e {
            MapError::Unmapped(a) => NbError::Unmapped(a),
            // Overlap/ordering errors belong to programming time
            // (`validate` rejects them); a resolve that still surfaces
            // one routes as unroutable rather than aborting mid-run.
            _ => NbError::Unroutable("address map misprogrammed"),
        }
    }
}

/// Precomputed disposition of flat (full-cacheline posted-write) traffic
/// for one address range: what [`Northbridge::dispose`] would decide for
/// any address inside the range, resolved once at train time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlatPlan {
    /// Deliver to local DRAM at `local_base + (addr - base)`.
    Local { base: u64, local_base: u64 },
    /// Forward out of `link`.
    Forward { link: LinkId },
}

/// The flat-lane dispatch table: every address range of one node's map,
/// sorted by base, each carrying its precomputed [`FlatPlan`]. For a flat
/// packet this collapses `dispose`'s resolve → routing-table → second
/// local-offset walk into a single scan of at most
/// [`crate::addrmap::MAX_DRAM_RANGES`] + [`crate::addrmap::MAX_MMIO_RANGES`]
/// entries.
///
/// Staleness contract: the table is a snapshot of `addr_map` + `routes` at
/// [`Northbridge::flat_table`] time. Callers must rebuild it whenever
/// firmware reprograms the map — the event engine does so at construction,
/// which happens on every retrain.
#[derive(Debug, Clone, Default)]
pub struct FlatTable {
    entries: Vec<(u64, u64, FlatPlan)>,
}

impl FlatTable {
    /// Plan for `addr`, or `None` when the address falls outside every
    /// planned range (unmapped, or a range whose route could not be
    /// precomputed) — the caller falls back to the general path, which
    /// reproduces `dispose`'s exact behavior including its errors.
    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]
    pub fn lookup(&self, addr: u64) -> Option<FlatPlan> {
        for &(base, limit, plan) in &self.entries {
            if addr < base {
                return None; // sorted: nothing further can contain addr
            }
            if addr < limit {
                return Some(plan);
            }
        }
        None
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The northbridge of one node.
#[derive(Debug)]
pub struct Northbridge {
    pub node_id: NodeId,
    pub addr_map: AddressMap,
    pub routes: RoutingTable,
    pub tags: TagTable,
    /// Broadcast (interrupt) forwarding enable per link.
    pub broadcast_enable: [bool; LINKS_PER_NODE],
    /// Statistics.
    pub requests_routed: u64,
    pub packets_forwarded: u64,
    pub broadcasts_filtered: u64,
}

impl Northbridge {
    pub fn new(node_id: NodeId) -> Self {
        Northbridge {
            node_id,
            addr_map: AddressMap::new(),
            routes: RoutingTable::new(),
            tags: TagTable::new(),
            broadcast_enable: [true; LINKS_PER_NODE],
            requests_routed: 0,
            packets_forwarded: 0,
            broadcasts_filtered: 0,
        }
    }

    /// Offset of `addr` within this node's local DRAM, if `addr` falls in a
    /// DRAM range homed here. Local DRAM offsets are assigned range-by-range
    /// in programming order.
    fn local_dram_offset(&self, addr: u64) -> Option<u64> {
        let mut local_base = 0u64;
        for (base, limit, home) in self.addr_map.dram_ranges() {
            if home == self.node_id {
                if addr >= base && addr < limit {
                    return Some(local_base + (addr - base));
                }
                local_base += limit - base;
            }
        }
        None
    }

    /// Build the flat-lane dispatch table from the current address map and
    /// routing table. Ranges whose disposition cannot be precomputed (no
    /// route to the home node, remote MMIO routed to self) are omitted, so
    /// lookups there miss and the caller's general-path fallback surfaces
    /// the same error `dispose` would.
    pub fn flat_table(&self) -> FlatTable {
        let mut entries: Vec<(u64, u64, FlatPlan)> = Vec::new();
        for (base, limit, home) in self.addr_map.dram_ranges() {
            let plan = if home == self.node_id {
                self.local_dram_offset(base)
                    .map(|local_base| FlatPlan::Local { base, local_base })
            } else {
                match self.routes.request_route(home) {
                    Some(Route::SelfRoute) => self
                        .local_dram_offset(base)
                        .map(|local_base| FlatPlan::Local { base, local_base }),
                    Some(Route::Link(l)) => Some(FlatPlan::Forward { link: l }),
                    None => None,
                }
            };
            if let Some(plan) = plan {
                entries.push((base, limit, plan));
            }
        }
        for (base, limit, owner, link) in self.addr_map.mmio_ranges() {
            let plan = if owner == self.node_id {
                // Local MMIO forwards straight out the register's link —
                // the TCCluster fast path, no routing-table hop.
                Some(FlatPlan::Forward { link })
            } else {
                match self.routes.request_route(owner) {
                    Some(Route::Link(l)) => Some(FlatPlan::Forward { link: l }),
                    // Remote MMIO routed to self is a dispose-time error;
                    // leave it to the general path.
                    Some(Route::SelfRoute) | None => None,
                }
            };
            if let Some(plan) = plan {
                entries.push((base, limit, plan));
            }
        }
        entries.sort_unstable_by_key(|&(base, _, _)| base);
        FlatTable { entries }
    }

    /// Route an addressed request packet entering from `source`.
    #[cfg_attr(lint, tcc_linear(srctag))]
    pub fn dispose(&mut self, pkt: &Packet, source: Source) -> Result<Disposition, NbError> {
        self.requests_routed += 1;
        match &pkt.cmd {
            Command::Broadcast { .. } => Ok(self.dispose_broadcast(source)),
            Command::RdResponse { tag, .. } | Command::TgtDone { tag, .. } => {
                // Responses route by tag, not address.
                match self.tags.complete(*tag) {
                    Ok(_pending) => Ok(Disposition::LocalMemory {
                        offset: 0,
                        bridged: false,
                    }),
                    Err(_) => Err(NbError::OrphanResponse),
                }
            }
            Command::Fence { .. } | Command::Flush { .. } | Command::Nop { .. } => {
                Err(NbError::Unroutable("link-local command reached router"))
            }
            _ => {
                let Some(addr) = pkt.addr() else {
                    return Err(NbError::Unroutable("addressed command carries no address"));
                };
                let target = self.addr_map.resolve(addr)?;
                let from_noncoherent_link = matches!(
                    source,
                    Source::Link {
                        coherent: false,
                        ..
                    }
                );
                match target {
                    Target::Dram { home } if home == self.node_id => {
                        let offset = self
                            .local_dram_offset(addr)
                            .ok_or(NbError::Unmapped(addr))?;
                        Ok(Disposition::LocalMemory {
                            offset,
                            // ncHT packets cross the IO bridge into the
                            // coherent domain before touching memory.
                            bridged: from_noncoherent_link,
                        })
                    }
                    Target::Dram { home } => {
                        match self
                            .routes
                            .request_route(home)
                            .ok_or(NbError::NoRoute(home))?
                        {
                            Route::SelfRoute => {
                                let offset = self
                                    .local_dram_offset(addr)
                                    .ok_or(NbError::Unmapped(addr))?;
                                Ok(Disposition::LocalMemory {
                                    offset,
                                    bridged: from_noncoherent_link,
                                })
                            }
                            Route::Link(l) => {
                                self.packets_forwarded += 1;
                                Ok(Disposition::Forward { link: l })
                            }
                        }
                    }
                    Target::Mmio { owner, link } if owner == self.node_id => {
                        // Local MMIO: destination link comes straight from
                        // the base/limit register — no routing-table hop.
                        // This is the TCCluster fast path.
                        self.packets_forwarded += 1;
                        Ok(Disposition::Forward { link })
                    }
                    Target::Mmio { owner, .. } => {
                        match self
                            .routes
                            .request_route(owner)
                            .ok_or(NbError::NoRoute(owner))?
                        {
                            Route::SelfRoute => Err(NbError::Unroutable(
                                "MMIO owned remotely but routed to self",
                            )),
                            Route::Link(l) => {
                                self.packets_forwarded += 1;
                                Ok(Disposition::Forward { link: l })
                            }
                        }
                    }
                }
            }
        }
    }

    fn dispose_broadcast(&mut self, source: Source) -> Disposition {
        // Interrupt broadcasts fan out on every *enabled* link except the
        // one they arrived on; with TCCluster links disabled the broadcast
        // stays inside the node/supernode. We return either the single
        // forward target (coherent peer) or Filtered if nothing is enabled.
        let arrived_on = match source {
            Source::Link { id, .. } => Some(id),
            Source::Core => None,
        };
        for l in 0..LINKS_PER_NODE as u8 {
            let id = LinkId(l);
            if Some(id) == arrived_on {
                continue;
            }
            if self.broadcast_enable[l as usize] {
                self.packets_forwarded += 1;
                return Disposition::Forward { link: id };
            }
        }
        self.broadcasts_filtered += 1;
        Disposition::Filtered {
            reason: "broadcast forwarding disabled on all other links",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use tcc_ht::packet::{SrcTag, UnitId};

    const TCC_LINK: LinkId = LinkId(2);

    /// A TCCluster-configured node per paper Fig. 3 (Node0's view).
    fn tcc_node0() -> Northbridge {
        let mut nb = Northbridge::new(NodeId(0));
        nb.addr_map.add_dram(0x1000, 0x2000, NodeId(0)).unwrap();
        nb.addr_map
            .add_mmio(0x2000, 0x7000, NodeId(0), TCC_LINK)
            .unwrap();
        nb.routes
            .set(NodeId(0), crate::route::symmetric(Route::SelfRoute));
        // TCCluster: interrupts must not leave the node.
        nb.broadcast_enable = [false; LINKS_PER_NODE];
        nb
    }

    fn pw(addr: u64) -> Packet {
        Packet::posted_write(addr, Bytes::from_static(&[0xAB; 64]))
    }

    #[test]
    fn local_store_hits_local_memory() {
        let mut nb = tcc_node0();
        let d = nb.dispose(&pw(0x1800), Source::Core).unwrap();
        assert_eq!(
            d,
            Disposition::LocalMemory {
                offset: 0x800,
                bridged: false
            }
        );
    }

    #[test]
    fn remote_store_forwards_out_tcc_link() {
        let mut nb = tcc_node0();
        let d = nb.dispose(&pw(0x2800), Source::Core).unwrap();
        assert_eq!(d, Disposition::Forward { link: TCC_LINK });
        assert_eq!(nb.packets_forwarded, 1);
    }

    #[test]
    fn arriving_tcc_write_is_bridged_to_memory() {
        let mut nb = tcc_node0();
        let d = nb
            .dispose(
                &pw(0x1400),
                Source::Link {
                    id: TCC_LINK,
                    coherent: false,
                },
            )
            .unwrap();
        assert_eq!(
            d,
            Disposition::LocalMemory {
                offset: 0x400,
                bridged: true
            }
        );
    }

    #[test]
    fn unmapped_address_errors() {
        let mut nb = tcc_node0();
        assert_eq!(
            nb.dispose(&pw(0x0100), Source::Core),
            Err(NbError::Unmapped(0x0100))
        );
    }

    #[test]
    fn orphan_response_detected() {
        // A response crossing a TCCluster link matches no local tag.
        let mut nb = tcc_node0();
        let resp = Packet::control(Command::TgtDone {
            unit: UnitId::HOST,
            tag: SrcTag::new(9),
            error: false,
        });
        assert_eq!(
            nb.dispose(
                &resp,
                Source::Link {
                    id: TCC_LINK,
                    coherent: false
                }
            ),
            Err(NbError::OrphanResponse)
        );
    }

    #[test]
    fn interrupt_broadcast_filtered_on_tcc_node() {
        let mut nb = tcc_node0();
        let intr = Packet::control(Command::Broadcast {
            unit: UnitId::HOST,
            addr: 0xFEE0_0000,
        });
        let d = nb.dispose(&intr, Source::Core).unwrap();
        assert!(matches!(d, Disposition::Filtered { .. }));
        assert_eq!(nb.broadcasts_filtered, 1);
    }

    #[test]
    fn interrupt_broadcast_forwards_on_coherent_node() {
        // A regular SMP node forwards broadcasts to its coherent peers.
        let mut nb = tcc_node0();
        nb.broadcast_enable[1] = true;
        let intr = Packet::control(Command::Broadcast {
            unit: UnitId::HOST,
            addr: 0xFEE0_0000,
        });
        let d = nb.dispose(&intr, Source::Core).unwrap();
        assert_eq!(d, Disposition::Forward { link: LinkId(1) });
        // But never back out the link it arrived on.
        let d2 = nb
            .dispose(
                &intr,
                Source::Link {
                    id: LinkId(1),
                    coherent: true,
                },
            )
            .unwrap();
        assert!(matches!(d2, Disposition::Filtered { .. }));
    }

    #[test]
    fn coherent_peer_route_via_routing_table() {
        // An SMP (supernode-internal) configuration: addresses homed on
        // NodeID 1 route out link 0 by table lookup.
        let mut nb = Northbridge::new(NodeId(0));
        nb.addr_map.add_dram(0x0000, 0x1000, NodeId(0)).unwrap();
        nb.addr_map.add_dram(0x1000, 0x2000, NodeId(1)).unwrap();
        nb.routes
            .set(NodeId(0), crate::route::symmetric(Route::SelfRoute));
        nb.routes
            .set(NodeId(1), crate::route::symmetric(Route::Link(LinkId(0))));
        let d = nb.dispose(&pw(0x1800), Source::Core).unwrap();
        assert_eq!(d, Disposition::Forward { link: LinkId(0) });
        assert_eq!(
            nb.dispose(&pw(0x0800), Source::Core).unwrap(),
            Disposition::LocalMemory {
                offset: 0x800,
                bridged: false
            }
        );
    }

    #[test]
    fn missing_route_errors() {
        let mut nb = Northbridge::new(NodeId(0));
        nb.addr_map.add_dram(0x0000, 0x1000, NodeId(3)).unwrap();
        assert_eq!(
            nb.dispose(&pw(0x0), Source::Core),
            Err(NbError::NoRoute(NodeId(3)))
        );
    }

    /// What the flat table says for `addr` must be exactly what `dispose`
    /// says for a flat packet at `addr` (modulo the `bridged` flag, which
    /// is per-source and supplied by the caller).
    fn assert_flat_agrees(nb: &mut Northbridge, table: &FlatTable, addr: u64) {
        let planned = table.lookup(addr);
        let disposed = nb.dispose(&pw(addr), Source::Core);
        match (planned, disposed) {
            (
                Some(FlatPlan::Local { base, local_base }),
                Ok(Disposition::LocalMemory { offset, .. }),
            ) => {
                assert_eq!(local_base + (addr - base), offset, "offset at {addr:#x}");
            }
            (Some(FlatPlan::Forward { link }), Ok(Disposition::Forward { link: l })) => {
                assert_eq!(link, l, "forward link at {addr:#x}");
            }
            (None, Err(_)) => {}
            (p, d) => panic!("flat table disagrees with dispose at {addr:#x}: {p:?} vs {d:?}"),
        }
    }

    #[test]
    fn flat_table_matches_dispose_on_tcc_node() {
        let mut nb = tcc_node0();
        let table = nb.flat_table();
        assert_eq!(table.len(), 2);
        for addr in [
            0x1000, 0x1800, 0x1FFF, 0x2000, 0x2800, 0x6FFF, 0x0100, 0x7000, 0xFFFF,
        ] {
            assert_flat_agrees(&mut nb, &table, addr);
        }
    }

    #[test]
    fn flat_table_matches_dispose_on_smp_node() {
        let mut nb = Northbridge::new(NodeId(0));
        nb.addr_map.add_dram(0x0000, 0x1000, NodeId(0)).unwrap();
        nb.addr_map.add_dram(0x1000, 0x2000, NodeId(1)).unwrap();
        nb.addr_map.add_dram(0x2000, 0x2800, NodeId(0)).unwrap();
        nb.routes
            .set(NodeId(0), crate::route::symmetric(Route::SelfRoute));
        nb.routes
            .set(NodeId(1), crate::route::symmetric(Route::Link(LinkId(0))));
        let table = nb.flat_table();
        // The second local range's offsets continue after the first.
        for addr in [0x0000, 0x0FFF, 0x1000, 0x1800, 0x2000, 0x27FF, 0x3000] {
            assert_flat_agrees(&mut nb, &table, addr);
        }
        assert_eq!(
            table.lookup(0x2400),
            Some(FlatPlan::Local {
                base: 0x2000,
                local_base: 0x1000
            })
        );
    }

    #[test]
    fn flat_table_omits_unroutable_ranges() {
        // DRAM homed on a node with no route: dispose errors, the table
        // misses, the caller falls back and gets the same error.
        let mut nb = Northbridge::new(NodeId(0));
        nb.addr_map.add_dram(0x0000, 0x1000, NodeId(3)).unwrap();
        let table = nb.flat_table();
        assert!(table.is_empty());
        assert_eq!(table.lookup(0x800), None);
        assert_eq!(
            nb.dispose(&pw(0x800), Source::Core),
            Err(NbError::NoRoute(NodeId(3)))
        );
    }

    #[test]
    fn multihop_forwarding_through_intermediate_node() {
        // Node in the middle of a chain: address homed on a node two hops
        // away forwards out the next link without touching local memory.
        let mut nb = Northbridge::new(NodeId(1));
        nb.addr_map.add_dram(0x0000, 0x1000, NodeId(0)).unwrap();
        nb.addr_map.add_dram(0x1000, 0x2000, NodeId(1)).unwrap();
        nb.addr_map.add_dram(0x2000, 0x3000, NodeId(2)).unwrap();
        nb.routes
            .set(NodeId(0), crate::route::symmetric(Route::Link(LinkId(0))));
        nb.routes
            .set(NodeId(1), crate::route::symmetric(Route::SelfRoute));
        nb.routes
            .set(NodeId(2), crate::route::symmetric(Route::Link(LinkId(1))));
        let d = nb
            .dispose(
                &pw(0x2800),
                Source::Link {
                    id: LinkId(0),
                    coherent: true,
                },
            )
            .unwrap();
        assert_eq!(d, Disposition::Forward { link: LinkId(1) });
    }
}
