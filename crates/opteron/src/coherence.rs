//! Coherent-fabric probe cost model.
//!
//! The paper's motivation (§§I, III): MESI-style coherence broadcasts a
//! probe to every node in the coherent domain on each ownership-changing
//! transaction and can complete only when the **last** response arrives, so
//! both latency and bandwidth overhead grow with node count — which is why
//! cache-coherent Opteron systems stop at 8 nodes and why TCCluster drops
//! coherence. This module quantifies that, producing the `coherency_scaling`
//! experiment's series.

use crate::params::UarchParams;
use tcc_fabric::time::Duration;

/// How the coherent domain's nodes are wired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Every node one hop from every other (possible up to 4–8 sockets).
    FullyConnected,
    /// Square mesh (what larger glueless fabrics degenerate to).
    Mesh2D,
}

impl Topology {
    /// Worst-case hop distance between any two of `n` nodes.
    pub fn diameter(self, n: usize) -> usize {
        match self {
            Topology::FullyConnected => {
                if n <= 1 {
                    0
                } else {
                    1
                }
            }
            Topology::Mesh2D => {
                if n <= 1 {
                    return 0;
                }
                let side = (n as f64).sqrt().ceil() as usize;
                let rows = n.div_ceil(side);
                (side - 1) + (rows - 1)
            }
        }
    }
}

/// A coherent domain of `n` nodes.
#[derive(Debug, Clone)]
pub struct CoherentDomain {
    pub n: usize,
    pub topology: Topology,
    pub params: UarchParams,
}

impl CoherentDomain {
    pub fn new(n: usize, topology: Topology, params: UarchParams) -> Self {
        assert!(n >= 1);
        CoherentDomain {
            n,
            topology,
            params,
        }
    }

    /// Latency added to one transaction by probing: the round trip to the
    /// *farthest* peer (last response is pivotal) plus a serialisation term
    /// for collecting N-1 responses at the requester.
    pub fn probe_latency(&self) -> Duration {
        if self.n <= 1 {
            return Duration::ZERO;
        }
        let d = self.topology.diameter(self.n) as u64;
        let round_trip = self.params.probe_latency.times(2 * d);
        // Responses funnel into one northbridge port: ~2 ns each to sink.
        let collect = Duration::from_picos(2_000).times(self.n as u64 - 1);
        round_trip + collect
    }

    /// Probe bytes injected into the fabric per coherent transaction
    /// (probe to each peer + response from each peer).
    pub fn probe_bytes_per_txn(&self) -> u64 {
        2 * self.params.probe_wire_bytes * (self.n as u64 - 1)
    }

    /// Sustainable coherent-write throughput per node, accounting for the
    /// probe traffic competing with data for link bandwidth. `link_bps` is
    /// the per-link bandwidth; each 64 B store moves 72 wire bytes of data
    /// plus the probe overhead.
    pub fn effective_write_bandwidth(&self, link_bps: u64) -> f64 {
        let data_wire = 72.0; // 64 B + command
        let overhead = self.probe_bytes_per_txn() as f64;
        link_bps as f64 * 64.0 / (data_wire + overhead)
    }

    /// End-to-end latency of one remote coherent store (fabric hop plus
    /// the probe phase).
    pub fn store_latency(&self) -> Duration {
        let base = self.params.nb_tx + self.params.probe_latency + self.params.nb_rx;
        base + self.probe_latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain(n: usize, t: Topology) -> CoherentDomain {
        CoherentDomain::new(n, t, UarchParams::shanghai())
    }

    #[test]
    fn diameters() {
        assert_eq!(Topology::FullyConnected.diameter(1), 0);
        assert_eq!(Topology::FullyConnected.diameter(8), 1);
        assert_eq!(Topology::Mesh2D.diameter(4), 2); // 2x2
        assert_eq!(Topology::Mesh2D.diameter(16), 6); // 4x4
        assert_eq!(Topology::Mesh2D.diameter(64), 14); // 8x8
    }

    #[test]
    fn single_node_pays_nothing() {
        let d = domain(1, Topology::FullyConnected);
        assert_eq!(d.probe_latency(), Duration::ZERO);
        assert_eq!(d.probe_bytes_per_txn(), 0);
    }

    #[test]
    fn probe_latency_grows_with_nodes() {
        let l2 = domain(2, Topology::FullyConnected).probe_latency();
        let l8 = domain(8, Topology::FullyConnected).probe_latency();
        let l64 = domain(64, Topology::Mesh2D).probe_latency();
        assert!(l2 < l8, "{l2} vs {l8}");
        assert!(l8 < l64);
        // 64-node mesh probe phase is in the microsecond range — an order
        // of magnitude above the 227 ns TCCluster message.
        assert!(l64.nanos() > 1000.0, "l64 = {l64}");
    }

    #[test]
    fn probe_bandwidth_overhead_grows_linearly() {
        let b2 = domain(2, Topology::FullyConnected).probe_bytes_per_txn();
        let b8 = domain(8, Topology::FullyConnected).probe_bytes_per_txn();
        assert_eq!(b2, 24);
        assert_eq!(b8, 24 * 7);
    }

    #[test]
    fn effective_bandwidth_collapses_at_scale() {
        let link = 3_200_000_000u64;
        let e2 = domain(2, Topology::FullyConnected).effective_write_bandwidth(link);
        let e64 = domain(64, Topology::Mesh2D).effective_write_bandwidth(link);
        assert!(e2 > 2.0e9, "two nodes barely notice: {e2}");
        assert!(e64 < 0.15e9, "64 nodes drown in probes: {e64}");
        assert!(e2 / e64 > 10.0);
    }

    #[test]
    fn noncoherent_store_latency_is_flat_by_contrast() {
        // TCCluster's store path has no probe phase — the comparison the
        // coherency_scaling bench prints. Here: coherent 8-node store is
        // already slower than a 2-node one, while the ncHT path is O(1).
        let c2 = domain(2, Topology::FullyConnected).store_latency();
        let c8 = domain(8, Topology::FullyConnected).store_latency();
        assert!(c8 > c2);
    }
}
