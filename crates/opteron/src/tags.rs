//! The response-matching table.
//!
//! Every non-posted request (read, non-posted write, flush) allocates an
//! entry here and receives a 5-bit SrcTag; the matching response returns
//! carrying the same tag and is routed by looking the entry up — responses
//! carry **no address**. Entries are bound to the *requester's NodeID*,
//! which is what makes remote reads impossible over a TCCluster link: with
//! every node calling itself NodeID 0, a response arriving from the far
//! node would match against the local table and be delivered to the wrong
//! requester — so the architecture forbids non-posted traffic entirely
//! (paper §IV.A).

use crate::regs::NodeId;
use tcc_ht::packet::SrcTag;

/// What a table entry remembers about the outstanding request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pending {
    /// NodeID of the requester the response must be steered to.
    pub requester: NodeId,
    /// Address of the original request (for data delivery).
    pub addr: u64,
    /// Length requested.
    pub len: u32,
}

/// Why a tag operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagError {
    /// All 32 tags are in flight — the requester must stall.
    Exhausted,
    /// A response arrived with a tag that has no outstanding entry, or the
    /// entry belongs to a different node — the TCCluster failure mode.
    Unmatched(SrcTag),
}

impl core::fmt::Display for TagError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TagError::Exhausted => write!(f, "response-matching table full"),
            TagError::Unmatched(t) => write!(f, "no outstanding request for SrcTag {}", t.0),
        }
    }
}

impl std::error::Error for TagError {}

/// The 32-entry response-matching table of one northbridge.
#[derive(Debug, Default)]
pub struct TagTable {
    entries: Vec<Option<Pending>>,
    in_flight: usize,
}

impl TagTable {
    pub fn new() -> Self {
        TagTable {
            entries: vec![None; SrcTag::LIMIT as usize],
            in_flight: 0,
        }
    }

    /// Allocate a tag for a non-posted request.
    #[cfg_attr(lint, tcc_acquires(srctag))]
    pub fn allocate(&mut self, pending: Pending) -> Result<SrcTag, TagError> {
        let slot = self
            .entries
            .iter()
            .position(Option::is_none)
            .ok_or(TagError::Exhausted)?;
        self.entries[slot] = Some(pending);
        self.in_flight += 1;
        Ok(SrcTag::new(slot as u8))
    }

    /// Match an incoming response against the table. `responder_view` is
    /// the NodeID the *response* claims as requester context; on a healthy
    /// coherent fabric that always equals the stored requester. On a
    /// TCCluster link, where both ends are NodeID 0, a response from the
    /// far node aliases into this node's table — `complete` detects the
    /// mismatch when the tag is not actually outstanding.
    #[cfg_attr(lint, tcc_releases(srctag))]
    pub fn complete(&mut self, tag: SrcTag) -> Result<Pending, TagError> {
        let slot = tag.0 as usize;
        let entry = self.entries[slot].take().ok_or(TagError::Unmatched(tag))?;
        self.in_flight -= 1;
        Ok(entry)
    }

    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    pub fn is_full(&self) -> bool {
        self.in_flight == SrcTag::LIMIT as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pending(addr: u64) -> Pending {
        Pending {
            requester: NodeId(0),
            addr,
            len: 64,
        }
    }

    #[test]
    fn allocate_complete_round_trip() {
        let mut t = TagTable::new();
        let tag = t.allocate(pending(0x1000)).unwrap();
        assert_eq!(t.in_flight(), 1);
        let p = t.complete(tag).unwrap();
        assert_eq!(p.addr, 0x1000);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn tags_are_reused_after_completion() {
        let mut t = TagTable::new();
        let a = t.allocate(pending(0)).unwrap();
        t.complete(a).unwrap();
        let b = t.allocate(pending(1)).unwrap();
        assert_eq!(a, b, "lowest free slot reused");
    }

    #[test]
    fn exhaustion_after_32_outstanding() {
        let mut t = TagTable::new();
        for i in 0..32 {
            t.allocate(pending(i)).unwrap();
        }
        assert!(t.is_full());
        assert_eq!(t.allocate(pending(99)), Err(TagError::Exhausted));
    }

    #[test]
    fn unmatched_response_detected() {
        let mut t = TagTable::new();
        let err = t.complete(SrcTag::new(5));
        assert_eq!(err, Err(TagError::Unmatched(SrcTag::new(5))));
    }

    #[test]
    fn double_completion_detected() {
        let mut t = TagTable::new();
        let tag = t.allocate(pending(0x40)).unwrap();
        t.complete(tag).unwrap();
        assert!(matches!(t.complete(tag), Err(TagError::Unmatched(_))));
    }

    #[test]
    fn remote_read_over_tccluster_cannot_complete() {
        // A read issued toward the remote node allocates locally…
        let mut local = TagTable::new();
        let tag = local.allocate(pending(0x2000)).unwrap();
        // …but the remote node (also NodeID 0) has its *own* table; the
        // response it would generate matches against the remote table,
        // where the tag was never allocated:
        let mut remote = TagTable::new();
        assert!(matches!(remote.complete(tag), Err(TagError::Unmatched(_))));
        // The local entry leaks forever — the request never completes.
        assert_eq!(local.in_flight(), 1);
    }
}
