//! A slab pool of reference-counted payload buffers.
//!
//! Every posted-write packet carries its payload as [`Bytes`]. Building
//! that from a fresh `Vec<u8>` per packet is two heap allocations on the
//! hottest path of the simulator (the store-issue loop). The pool instead
//! recycles `Arc<Vec<u8>>` slabs: a slot is reusable as soon as every
//! packet referencing it has been dropped (strong count back to one), so a
//! steady-state stream of bounded in-flight packets allocates nothing.

use bytes::Bytes;
use std::sync::Arc;

/// Per-node payload buffer pool. Not thread-safe by design — each
/// simulated node is driven from one thread.
#[derive(Debug, Default)]
pub struct PayloadPool {
    slots: Vec<Arc<Vec<u8>>>,
    /// Round-robin scan start, so consecutive allocations don't re-probe
    /// slots that were just handed out.
    next: usize,
    /// Statistics: total allocations served / slots grown.
    pub served: u64,
    pub grown: u64,
}

/// Payloads are at most one cache line in this model; sizing slabs to the
/// line keeps every steady-state copy within capacity.
const MIN_SLAB: usize = 64;

/// Probes per allocation before giving up and growing the pool. A deep
/// burst (a whole rendezvous message issued before its packets drain)
/// keeps thousands of slots busy at once; an unbounded scan would make
/// each allocation O(pool) and the burst quadratic. Bounding the probes
/// keeps allocation O(1) while steady-state streams still recycle on the
/// first probe.
const PROBE_LIMIT: usize = 8;

impl PayloadPool {
    pub fn new() -> Self {
        PayloadPool::default()
    }

    /// Copy `data` into a recycled slab (or a new one if every slab is
    /// still referenced by an in-flight packet) and return it as `Bytes`.
    ///
    /// `tcc_alloc_ok`: growing the pool is the amortized fallback when
    /// every slab is in flight — steady-state traffic recycles slabs and
    /// never reaches the `with_capacity` below (`grown` counts the
    /// exceptions, and the simspeed harness asserts they stay rare).
    #[cfg_attr(lint, tcc_alloc_ok)]
    pub fn alloc(&mut self, data: &[u8]) -> Bytes {
        self.served += 1;
        let n = self.slots.len();
        for _ in 0..n.min(PROBE_LIMIT) {
            let i = if self.next < n { self.next } else { 0 };
            self.next = i + 1;
            if let Some(buf) = Arc::get_mut(&mut self.slots[i]) {
                if buf.capacity() >= data.len() {
                    buf.clear();
                    buf.extend_from_slice(data);
                    return Bytes::from(Arc::clone(&self.slots[i]));
                }
            }
        }
        // All slots busy (or too small): grow the pool.
        self.grown += 1;
        let mut buf = Vec::with_capacity(MIN_SLAB.max(data.len()));
        buf.extend_from_slice(data);
        let slab = Arc::new(buf);
        let out = Bytes::from(Arc::clone(&slab));
        self.slots.push(slab);
        out
    }

    /// Fast-lane variant of [`alloc`](Self::alloc) for the one payload
    /// size the flat wire carries: a full cache line. Every slab in the
    /// pool has capacity >= [`MIN_SLAB`] = 64 by construction, so the
    /// recycle probe skips the capacity check the general path pays.
    #[cfg_attr(lint, tcc_alloc_ok)]
    pub fn alloc_line(&mut self, data: &[u8; 64]) -> Bytes {
        self.served += 1;
        let n = self.slots.len();
        for _ in 0..n.min(PROBE_LIMIT) {
            let i = if self.next < n { self.next } else { 0 };
            self.next = i + 1;
            if let Some(buf) = Arc::get_mut(&mut self.slots[i]) {
                debug_assert!(buf.capacity() >= MIN_SLAB);
                buf.clear();
                buf.extend_from_slice(data);
                return Bytes::from(Arc::clone(&self.slots[i]));
            }
        }
        self.grown += 1;
        let mut buf = Vec::with_capacity(MIN_SLAB);
        buf.extend_from_slice(data);
        let slab = Arc::new(buf);
        let out = Bytes::from(Arc::clone(&slab));
        self.slots.push(slab);
        out
    }

    /// Widen a [`FlatWire`] back to the general [`Packet`] form with a
    /// pool-recycled payload — the lossless boundary conversion for fast
    /// lanes that must hand a packet to monitor/retry machinery.
    #[cfg_attr(lint, tcc_alloc_ok)]
    pub fn packet_from_flat(&mut self, wire: &tcc_ht::packet::FlatWire) -> tcc_ht::packet::Packet {
        tcc_ht::packet::Packet::posted_write(wire.addr, self.alloc_line(&wire.data))
    }

    /// Number of slabs currently owned by the pool.
    pub fn slots(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_allocs_reuse_one_slot() {
        let mut p = PayloadPool::new();
        for i in 0..100u8 {
            let b = p.alloc(&[i; 64]);
            assert_eq!(&b[..], &[i; 64]);
            drop(b);
        }
        assert_eq!(p.slots(), 1, "dropped payloads recycle their slab");
        assert_eq!(p.served, 100);
        assert_eq!(p.grown, 1);
    }

    #[test]
    fn live_payloads_force_growth_then_recycle() {
        let mut p = PayloadPool::new();
        let held: Vec<Bytes> = (0..4u8).map(|i| p.alloc(&[i; 8])).collect();
        assert_eq!(p.slots(), 4);
        assert_eq!(&held[2][..], &[2; 8]);
        drop(held);
        let grown_before = p.grown;
        for _ in 0..16 {
            let _ = p.alloc(&[9; 16]);
        }
        assert_eq!(p.grown, grown_before, "no growth once slabs are free");
        assert_eq!(p.slots(), 4);
    }

    #[test]
    fn alloc_line_recycles_and_matches_general_alloc() {
        let mut p = PayloadPool::new();
        let mut line = [0u8; 64];
        for (i, b) in line.iter_mut().enumerate() {
            *b = i as u8;
        }
        for _ in 0..100 {
            let b = p.alloc_line(&line);
            assert_eq!(&b[..], &line[..]);
            drop(b);
        }
        assert_eq!(p.slots(), 1, "dropped fast-lane payloads recycle");
        assert_eq!(p.grown, 1);
        // The two lanes share the same slab pool.
        let g = p.alloc(&line);
        assert_eq!(p.slots(), 1);
        assert_eq!(&g[..], &line[..]);
    }

    #[test]
    fn packet_from_flat_is_lossless() {
        use tcc_ht::packet::{FlatWire, Packet};
        let mut p = PayloadPool::new();
        let wire = FlatWire::new(0xBEEFC0, [0x5A; 64]);
        let pkt = p.packet_from_flat(&wire);
        let direct = Packet::posted_write(0xBEEFC0, p.alloc(&[0x5A; 64]));
        assert_eq!(pkt, direct);
        assert_eq!(FlatWire::from_packet(&pkt), Some(wire));
    }

    #[test]
    fn payload_bytes_are_isolated_per_allocation() {
        let mut p = PayloadPool::new();
        let a = p.alloc(&[1, 2, 3]);
        let b = p.alloc(&[4, 5]);
        assert_eq!(&a[..], &[1, 2, 3]);
        assert_eq!(&b[..], &[4, 5]);
    }
}
