//! Architectural registers of one Opteron node: NodeID, link debug
//! controls, and reset behaviour.

use tcc_ht::init::LinkRegs;

/// Coherent-fabric node identifier (3 bits — at most 8 nodes per coherent
/// domain, the K10 limit the paper works around).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u8);

impl NodeId {
    /// The power-on value: 7. Coherent enumeration uses "still 7" to
    /// recognise nodes it has not visited yet (paper §IV.E).
    pub const UNENUMERATED: NodeId = NodeId(7);
    pub const MAX_COHERENT: u8 = 8;
}

/// Index of one of the four HT links of a K10 package.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u8);

/// Number of HT links per K10 package.
pub const LINKS_PER_NODE: usize = 4;

/// The register file the firmware programs.
#[derive(Debug, Clone)]
pub struct NodeRegs {
    /// This node's NodeID within its coherent domain. TCCluster sets it to
    /// 0 on *every* node so each northbridge believes it is the home node
    /// of every address.
    pub node_id: NodeId,
    /// Per-link physical/identity registers (frequency, width, and the
    /// force-non-coherent debug bit).
    pub links: [LinkRegs; LINKS_PER_NODE],
    /// Interrupt/system-management broadcast forwarding per link. Must be
    /// cleared on TCCluster links — interrupts must never leave the node
    /// (the paper needed a custom kernel with SMCs disabled for this).
    pub broadcast_enable: [bool; LINKS_PER_NODE],
    /// Whether this node has completed memory-controller initialisation.
    pub mem_initialized: bool,
}

impl Default for NodeRegs {
    fn default() -> Self {
        Self::power_on()
    }
}

impl NodeRegs {
    /// State after cold reset.
    pub fn power_on() -> Self {
        NodeRegs {
            node_id: NodeId::UNENUMERATED,
            links: [LinkRegs::processor_default(); LINKS_PER_NODE],
            broadcast_enable: [true; LINKS_PER_NODE],
            mem_initialized: false,
        }
    }

    /// Warm reset: link identities re-train from programmed values; the
    /// NodeID and address-map programming survive.
    pub fn warm_reset(&mut self) {
        // Nothing cleared: the whole point of the TCCluster sequence is
        // that programmed registers persist across warm reset.
    }

    /// Cold reset: everything back to power-on defaults.
    pub fn cold_reset(&mut self) {
        *self = Self::power_on();
    }

    pub fn link(&self, l: LinkId) -> &LinkRegs {
        &self.links[l.0 as usize]
    }

    pub fn link_mut(&mut self, l: LinkId) -> &mut LinkRegs {
        &mut self.links[l.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_on_state() {
        let r = NodeRegs::power_on();
        assert_eq!(r.node_id, NodeId::UNENUMERATED);
        assert!(r.broadcast_enable.iter().all(|&b| b));
        assert!(!r.mem_initialized);
        assert!(!r.links[0].force_noncoherent);
    }

    #[test]
    fn warm_reset_preserves_programming() {
        let mut r = NodeRegs::power_on();
        r.node_id = NodeId(0);
        r.link_mut(LinkId(2)).force_noncoherent = true;
        r.broadcast_enable[2] = false;
        r.warm_reset();
        assert_eq!(r.node_id, NodeId(0));
        assert!(r.link(LinkId(2)).force_noncoherent);
        assert!(!r.broadcast_enable[2]);
    }

    #[test]
    fn cold_reset_clears_programming() {
        let mut r = NodeRegs::power_on();
        r.node_id = NodeId(0);
        r.link_mut(LinkId(1)).force_noncoherent = true;
        r.cold_reset();
        assert_eq!(r.node_id, NodeId::UNENUMERATED);
        assert!(!r.link(LinkId(1)).force_noncoherent);
    }
}
