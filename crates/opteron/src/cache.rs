//! A set-associative cache hierarchy with MESI line states.
//!
//! Used for two purposes: (a) the coherent-domain experiments, where probe
//! traffic among caches is what limits shared-memory scaling (paper §III),
//! and (b) receiver-side realism — the reason TCCluster receive buffers
//! must be mapped uncacheable is that an incoming posted write cannot
//! invalidate a remote cache; this model lets tests demonstrate the stale-
//! read hazard the paper's firmware avoids.

use crate::params::UarchParams;
use tcc_fabric::time::Duration;

/// MESI coherence states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    Modified,
    Exclusive,
    Shared,
    Invalid,
}

#[derive(Debug, Clone)]
struct Line {
    tag: u64,
    state: State,
    lru: u64,
}

/// One cache level (physically indexed, write-back, write-allocate).
#[derive(Debug)]
pub struct Cache {
    sets: Vec<Vec<Line>>,
    ways: usize,
    line_bytes: usize,
    set_shift: u32,
    set_mask: u64,
    tick: u64,
    pub hits: u64,
    pub misses: u64,
    pub latency: Duration,
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    Hit(State),
    /// Miss; if a dirty victim was evicted, its line address.
    Miss {
        writeback: Option<u64>,
    },
}

impl Cache {
    pub fn new(capacity: usize, ways: usize, line_bytes: usize, latency: Duration) -> Self {
        let lines = capacity / line_bytes;
        let sets = lines / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            sets: (0..sets).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
            line_bytes,
            set_shift: line_bytes.trailing_zeros(),
            set_mask: sets as u64 - 1,
            tick: 0,
            hits: 0,
            misses: 0,
            latency,
        }
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr >> self.set_shift) & self.set_mask) as usize
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr >> self.set_shift
    }

    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.line_bytes as u64 - 1)
    }

    /// Look up without side effects.
    pub fn probe(&self, addr: u64) -> State {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        self.sets[set]
            .iter()
            .find(|l| l.tag == tag)
            .map(|l| l.state)
            .filter(|s| *s != State::Invalid)
            .unwrap_or(State::Invalid)
    }

    /// Access for read (`write = false`) or write (`true`). On a miss the
    /// line is filled in the given `fill_state`.
    pub fn access(&mut self, addr: u64, write: bool, fill_state: State) -> Access {
        self.tick += 1;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.tag == tag) {
            if line.state != State::Invalid {
                line.lru = self.tick;
                let prev = line.state;
                if write {
                    line.state = State::Modified;
                }
                self.hits += 1;
                return Access::Hit(prev);
            }
        }
        self.misses += 1;
        // Fill, possibly evicting the LRU way.
        let mut writeback = None;
        let sets = &mut self.sets[set];
        sets.retain(|l| l.state != State::Invalid);
        if sets.len() == self.ways {
            // The set is full, so a least-recently-used victim exists.
            if let Some((victim_idx, _)) = sets.iter().enumerate().min_by_key(|&(_, l)| l.lru) {
                let victim = sets.swap_remove(victim_idx);
                if victim.state == State::Modified {
                    writeback = Some(victim.tag << self.set_shift);
                }
            }
        }
        sets.push(Line {
            tag,
            state: if write { State::Modified } else { fill_state },
            lru: self.tick,
        });
        Access::Miss { writeback }
    }

    /// External probe (snoop): downgrade or invalidate the line.
    /// Returns the state the line was found in (Modified means the prober
    /// gets dirty data from us).
    pub fn snoop(&mut self, addr: u64, invalidate: bool) -> State {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.tag == tag) {
            let was = line.state;
            line.state = if invalidate {
                State::Invalid
            } else {
                State::Shared
            };
            was
        } else {
            State::Invalid
        }
    }

    pub fn hit_rate(&self) -> f64 {
        if self.hits + self.misses == 0 {
            return 0.0;
        }
        self.hits as f64 / (self.hits + self.misses) as f64
    }
}

/// The three-level hierarchy of one core (L3 shared in reality; modelled
/// per-core for the experiments that need it, which are single-core).
#[derive(Debug)]
pub struct Hierarchy {
    pub l1: Cache,
    pub l2: Cache,
    pub l3: Cache,
    pub dram_read: Duration,
}

impl Hierarchy {
    pub fn new(p: &UarchParams) -> Self {
        Hierarchy {
            l1: Cache::new(p.l1_bytes, 2, p.line_bytes, p.l1_latency),
            l2: Cache::new(p.l2_bytes, 16, p.line_bytes, p.l2_latency),
            l3: Cache::new(p.l3_bytes, 32, p.line_bytes, p.l3_latency),
            dram_read: p.dram_read,
        }
    }

    /// Latency of a (cacheable) read at `addr`, filling on the way back.
    pub fn read_latency(&mut self, addr: u64) -> Duration {
        if let Access::Hit(_) = self.l1.access(addr, false, State::Exclusive) {
            return self.l1.latency;
        }
        if let Access::Hit(_) = self.l2.access(addr, false, State::Exclusive) {
            return self.l2.latency;
        }
        if let Access::Hit(_) = self.l3.access(addr, false, State::Exclusive) {
            return self.l3.latency;
        }
        self.dram_read
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B = 512 B.
        Cache::new(512, 2, 64, Duration::from_nanos(1))
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert_eq!(
            c.access(0x1000, false, State::Exclusive),
            Access::Miss { writeback: None }
        );
        assert_eq!(
            c.access(0x1000, false, State::Exclusive),
            Access::Hit(State::Exclusive)
        );
        assert_eq!(
            c.access(0x103F, false, State::Exclusive),
            Access::Hit(State::Exclusive),
            "same line"
        );
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn write_marks_modified_and_evicts_dirty() {
        let mut c = tiny();
        c.access(0x0000, true, State::Exclusive);
        assert_eq!(c.probe(0x0000), State::Modified);
        // Two more lines mapping to set 0 (set stride = 4 * 64 = 256).
        c.access(0x0100, false, State::Exclusive);
        let r = c.access(0x0200, false, State::Exclusive);
        assert_eq!(
            r,
            Access::Miss {
                writeback: Some(0x0000)
            },
            "dirty LRU written back"
        );
    }

    #[test]
    fn lru_keeps_recently_used() {
        let mut c = tiny();
        c.access(0x0000, false, State::Exclusive);
        c.access(0x0100, false, State::Exclusive);
        c.access(0x0000, false, State::Exclusive); // touch
        c.access(0x0200, false, State::Exclusive); // evicts 0x0100
        assert_eq!(c.probe(0x0000), State::Exclusive);
        assert_eq!(c.probe(0x0100), State::Invalid);
    }

    #[test]
    fn snoop_invalidate_and_downgrade() {
        let mut c = tiny();
        c.access(0x40, true, State::Exclusive);
        assert_eq!(c.snoop(0x40, false), State::Modified);
        assert_eq!(c.probe(0x40), State::Shared);
        assert_eq!(c.snoop(0x40, true), State::Shared);
        assert_eq!(c.probe(0x40), State::Invalid);
        assert_eq!(c.snoop(0x9999 & !63, true), State::Invalid, "absent line");
    }

    #[test]
    fn stale_read_hazard_without_invalidation() {
        // The reason receive rings must be UC: a cached copy goes stale
        // when DRAM is updated behind the cache's back (posted write from
        // the TCC link cannot snoop a *remote* node's cache).
        let mut c = tiny();
        c.access(0x80, false, State::Exclusive);
        // DRAM now changes (incoming message) — no snoop is generated.
        // The cache still claims a valid copy:
        assert_ne!(c.probe(0x80), State::Invalid, "stale hit — the hazard");
    }

    #[test]
    fn hierarchy_latencies_ascend() {
        let p = UarchParams::shanghai();
        let mut h = Hierarchy::new(&p);
        let first = h.read_latency(0x4000);
        assert_eq!(first, p.dram_read, "cold read goes to DRAM");
        let second = h.read_latency(0x4000);
        assert_eq!(second, p.l1_latency, "hot read hits L1");
    }
}
